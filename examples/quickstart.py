#!/usr/bin/env python3
"""Quickstart: the full SpinStreams workflow on the paper's running example.

Builds the six-operator topology of Figure 11, then walks the
tool's workflow end to end:

1. steady-state analysis with backpressure (Algorithm 1);
2. what-if: a slower variant where fusion would hurt (Table 2 alert);
3. bottleneck elimination via fission (Algorithm 2);
4. fusion of the under-utilized tail (Algorithm 3, Table 1);
5. validation of every prediction on the discrete-event backend;
6. SS2Py code generation for the chosen topology.

Run with::

    python examples/quickstart.py
"""

from repro import Edge, OperatorSpec, Topology, analysis_report, analyze
from repro.core.fission import eliminate_bottlenecks
from repro.core.fusion import apply_fusion
from repro.core.report import fission_report, fusion_report
from repro.sim import SimulationConfig, simulate
from repro.tool import SpinStreams


def build_fig11(t3_ms=0.7, t4_ms=2.0, t5_ms=1.5):
    """The paper's Figure 11 topology (service times in milliseconds)."""
    operators = [
        OperatorSpec("op1", 1.0e-3),
        OperatorSpec("op2", 1.2e-3),
        OperatorSpec("op3", t3_ms * 1e-3),
        OperatorSpec("op4", t4_ms * 1e-3),
        OperatorSpec("op5", t5_ms * 1e-3),
        OperatorSpec("op6", 0.2e-3),
    ]
    edges = [
        Edge("op1", "op2", 0.7), Edge("op1", "op3", 0.3),
        Edge("op3", "op4", 0.35), Edge("op3", "op5", 0.65),
        Edge("op4", "op5", 0.5), Edge("op4", "op6", 0.5),
        Edge("op2", "op6", 1.0), Edge("op5", "op6", 1.0),
    ]
    return Topology(operators, edges, name="fig11")


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    topology = build_fig11()

    banner("1. Steady-state analysis of the imported topology")
    prediction = analyze(topology)
    measured = simulate(topology, SimulationConfig(items=60_000))
    print(analysis_report(prediction, measured_throughput=measured.throughput))

    banner("2. What-if: fusing op3+op4+op5 in a slower variant (Table 2)")
    slow = build_fig11(1.5, 2.7, 2.2)
    harmful = apply_fusion(slow, ["op3", "op4", "op5"], fused_name="F")
    print(fusion_report(harmful))

    banner("3. Bottleneck elimination on a variant with a slow op2")
    bottlenecked = topology.with_operator(OperatorSpec("op2", 3.0e-3))
    fission = eliminate_bottlenecks(bottlenecked)
    print(fission_report(fission))
    validated = simulate(fission.optimized, SimulationConfig(items=60_000))
    print(f"measured after fission: {validated.throughput:,.0f} items/sec")

    banner("4. Fusing the under-utilized tail (Table 1)")
    tool = SpinStreams(topology)
    candidates = tool.fusion_candidates(max_size=3)
    print("top candidates (lowest mean utilization first):")
    for candidate in candidates[:3]:
        print(f"  {{{', '.join(candidate.members)}}} "
              f"mean-rho={candidate.mean_utilization:.2f} "
              f"fused-rho={candidate.predicted_utilization:.2f}")
    fusion = tool.fuse(["op3", "op4", "op5"], fused_name="F")
    print()
    print(fusion_report(fusion))

    banner("5. Validating the fused topology on the simulator")
    confirmed = simulate(fusion.fused, SimulationConfig(items=60_000))
    print(f"predicted: {fusion.throughput_after:,.0f} items/sec, "
          f"measured: {confirmed.throughput:,.0f} items/sec "
          f"({confirmed.throughput_error(fusion.analysis_after):.2%} error)")

    banner("6. Versions prototyped in this session")
    for entry in tool.history():
        print(" ", entry)


if __name__ == "__main__":
    main()
