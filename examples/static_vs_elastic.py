#!/usr/bin/env python3
"""Static optimization vs reactive elasticity — the paper's positioning.

SpinStreams' introduction argues that dynamic adaptation "although with
a substantial run-time overhead, [is] unavoidable in case of
unpredictable workloads", while a static tool finds the best initial
configuration for free — and that the two are complementary, not
competing.  This example quantifies both halves of that claim on the
same pipeline:

* a *stable* workload, where the static plan wins outright;
* a *shifting* workload, where the reactive controller overtakes the
  (now wrongly sized) static plan despite its adaptation costs.

Run with::

    python examples/static_vs_elastic.py
"""

from repro.baselines.elasticity import (
    ElasticityConfig,
    WorkloadPhase,
    run_elastic,
    run_static,
)
from repro.core.graph import Edge, OperatorSpec, Topology
from repro.sim.network import SimulationConfig


def build_pipeline():
    return Topology(
        [OperatorSpec("ingest", 1e-3),
         OperatorSpec("enrich", 4e-3),
         OperatorSpec("index", 2e-3),
         OperatorSpec("store", 0.3e-3, output_selectivity=0.0)],
        [Edge("ingest", "enrich"), Edge("enrich", "index"),
         Edge("index", "store")],
        name="ingestion-pipeline",
    )


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def report(label, result, horizon):
    print(f"  {label:<8} items delivered: {result.items_processed:>9,.0f}   "
          f"mean throughput: {result.mean_throughput(horizon):>7.1f}/s   "
          f"reconfigurations: {result.reconfigurations}   "
          f"downtime: {result.total_downtime:.1f}s")


def main():
    pipeline = build_pipeline()
    sim = SimulationConfig(items=15_000, seed=3)
    control = ElasticityConfig(control_period=1.0,
                               reconfiguration_downtime=0.3)

    banner("Scenario 1 — stable workload (1000 items/sec for 10 s)")
    stable = [WorkloadPhase(rate=1000.0, duration=10.0)]
    static = run_static(pipeline, stable, sim_config=sim)
    elastic = run_elastic(pipeline, stable, config=control, sim_config=sim)
    report("static", static, 10.0)
    report("elastic", elastic, 10.0)
    print("\n-> the static plan starts with the right degrees "
          f"({dict(static.steps[0].replicas)}) and never pays downtime;")
    print("   the controller spends its ramp-up under-provisioned.")

    banner("Scenario 2 — workload shift (300/s for 5 s, then 1000/s for 10 s)")
    shifting = [WorkloadPhase(rate=300.0, duration=5.0),
                WorkloadPhase(rate=1000.0, duration=10.0)]
    static = run_static(pipeline, shifting, planning_rate=300.0,
                        sim_config=sim)
    elastic = run_elastic(pipeline, shifting, config=control, sim_config=sim)
    report("static", static, 15.0)
    report("elastic", elastic, 15.0)
    print("\n-> sized for 300 items/sec, the static plan is wrong forever "
          "after the shift;")
    print("   the controller converges to "
          f"{dict(elastic.steps[-1].replicas)} and overtakes it.")

    banner("Timeline of the elastic run (scenario 2)")
    print(f"{'t (s)':>6} {'rate':>6} {'tput':>8} {'enrich n':>9} "
          f"{'index n':>8} {'changes':<20}")
    for step in elastic.steps:
        changes = ", ".join(step.reconfigured) or "-"
        print(f"{step.start_time:>6.0f} {step.rate:>6.0f} "
              f"{step.throughput:>8.1f} {step.replicas['enrich']:>9} "
              f"{step.replicas['index']:>8} {changes:<20}")

    print("\nThe paper's conclusion in one line: use SpinStreams to start "
          "right,\nkeep elasticity for the shifts you cannot predict.")


if __name__ == "__main__":
    main()
