#!/usr/bin/env python3
"""Beyond the paper: the §7 future-work features, working end to end.

The paper closes with four research directions; this example exercises
the extensions that implement them:

1. **multiple sources** — a click stream and a view stream merged via
   fictitious-source normalization, throttled proportionally under a
   shared downstream bottleneck;
2. **cyclic topologies** — a retry loop solved by the fixed-point
   analysis and validated against the simulator;
3. **automatic fusion** — the tool compacts an over-decomposed
   topology with no manual sub-graph selection;
4. **latency estimation** — static end-to-end latency under different
   load levels, checked against item-level measurements;
5. **deployment export** — the optimized plan as Flink/Storm sketches.

Run with::

    python examples/beyond_the_paper.py
"""

from repro.core.autofusion import auto_fuse
from repro.core.cycles import CyclicGraph, analyze_cyclic
from repro.core.graph import Edge, OperatorSpec
from repro.core.latency import estimate_latency
from repro.core.multisource import merge_sources
from repro.codegen.deployment import flink_sketch
from repro.core.graph import Topology
from repro.sim import SimulationConfig, simulate, simulate_cyclic


def make_fig11():
    """The paper's Figure 11 running example (Table 1 service times)."""
    operators = [
        OperatorSpec("op1", 1.0e-3), OperatorSpec("op2", 1.2e-3),
        OperatorSpec("op3", 0.7e-3), OperatorSpec("op4", 2.0e-3),
        OperatorSpec("op5", 1.5e-3), OperatorSpec("op6", 0.2e-3),
    ]
    edges = [
        Edge("op1", "op2", 0.7), Edge("op1", "op3", 0.3),
        Edge("op3", "op4", 0.35), Edge("op3", "op5", 0.65),
        Edge("op4", "op5", 0.5), Edge("op4", "op6", 0.5),
        Edge("op2", "op6", 1.0), Edge("op5", "op6", 1.0),
    ]
    return Topology(operators, edges, name="fig11")


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def demo_multiple_sources():
    banner("1. Multiple sources (fictitious-source normalization)")
    operators = [
        OperatorSpec("clicks", 1.0),
        OperatorSpec("views", 1.0),
        OperatorSpec("correlate", 0.4e-3),
        OperatorSpec("store", 0.1e-3, output_selectivity=0.0),
    ]
    edges = [Edge("clicks", "correlate"), Edge("views", "correlate"),
             Edge("correlate", "store")]
    merged = merge_sources(operators, edges,
                           {"clicks": 1500.0, "views": 3500.0},
                           name="click-view")
    analysis = merged.analyze()
    print(f"combined offered load: {merged.total_rate:,.0f} items/sec; "
          f"'correlate' capacity: 2,500 items/sec")
    for source, rate in merged.source_throughputs(analysis).items():
        print(f"  {source}: ingesting {rate:,.0f} items/sec "
              "(throttled proportionally)")
    measured = simulate(merged.topology, SimulationConfig(items=50_000))
    print(f"simulator confirms: {measured.throughput:,.0f} items/sec total "
          f"({measured.throughput_error(analysis):.2%} error)")


def demo_cycles():
    banner("2. Cyclic topologies (retry loop, 20% feedback)")
    graph = CyclicGraph(
        [OperatorSpec("src", 1e-3),
         OperatorSpec("work", 1.2e-3),
         OperatorSpec("verify", 0.3e-3),
         OperatorSpec("done", 0.05e-3, output_selectivity=0.0)],
        [Edge("src", "work"), Edge("work", "verify"),
         Edge("verify", "work", 0.2), Edge("verify", "done", 0.8)],
        name="retry-loop",
    )
    print(f"cycle amplification: {graph.max_cycle_amplification():.2f} "
          "(< 1, so a steady state exists)")
    predicted = analyze_cyclic(graph)
    print(f"'work' sees {predicted.arrival_rate('work'):,.0f} items/sec "
          "(the feedback inflates its load 1.25x) and becomes the bottleneck")
    print(f"predicted throughput: {predicted.throughput:,.0f} items/sec")
    measured = simulate_cyclic(
        graph, SimulationConfig(items=60_000, mailbox_capacity=256))
    print(f"simulator: {measured.throughput:,.0f} items/sec "
          f"({measured.throughput_error(predicted):.2%} error)")


def demo_autofusion():
    banner("3. Automatic fusion of the Figure 11 example")
    topology = make_fig11()
    result = auto_fuse(topology)
    print(f"operators: {len(topology)} -> {len(result.fused)}")
    for step in result.steps:
        print(f"  fused {{{', '.join(step.plan.members)}}} -> "
              f"{step.plan.fused_name} "
              f"(service time {step.plan.service_time * 1e3:.2f} ms)")
    print(f"throughput preserved at {result.throughput:,.0f} items/sec")
    return result


def demo_latency():
    banner("4. Static latency estimation vs measurement")
    topology = make_fig11()
    print(f"{'load':>8} {'model':>10} {'measured':>10}")
    for rate in (400.0, 700.0, 950.0):
        estimate = estimate_latency(topology, source_rate=rate,
                                    assumption="markovian")
        measured = simulate(
            topology,
            SimulationConfig(items=60_000, service_family="exponential"),
            source_rate=rate,
        )
        print(f"{rate:>8.0f} {estimate.end_to_end * 1e3:>8.2f}ms "
              f"{(measured.mean_latency() or 0) * 1e3:>8.2f}ms")


def demo_deployment(autofusion_result):
    banner("5. Deployment export (Flink sketch of the fused topology)")
    sketch = flink_sketch(autofusion_result.fused)
    print(sketch)


def main():
    demo_multiple_sources()
    demo_cycles()
    fused = demo_autofusion()
    demo_latency()
    demo_deployment(fused)


if __name__ == "__main__":
    main()
