#!/usr/bin/env python3
"""Market analytics: profile a real pipeline, then optimize it statically.

The scenario the paper's introduction motivates: a designer assembles a
topology out of heterogeneous operators (a quote source, a price
filter, per-symbol moving averages, a top-k monitor) without knowing
their relative costs.  SpinStreams' workflow then applies:

1. run the application as-is on the actor runtime and *profile* it
   (service times, selectivities, routing frequencies — Section 4.1);
2. analyze the profiled topology, revealing the bottleneck;
3. eliminate the bottleneck via fission (the per-symbol aggregate is
   partitioned-stateful, so replicas split the symbol space);
4. validate the optimized design by running it for real.

Run with::

    python examples/market_analytics.py
"""

from repro.core.graph import (
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
)
from repro.core.fission import eliminate_bottlenecks
from repro.core.report import analysis_report, fission_report
from repro.core.steady_state import analyze
from repro.operators.aggregates import KeyedWindowedAggregate
from repro.operators.basic import Filter
from repro.operators.source_sink import CollectingSink, GeneratorSource
from repro.operators.spatial import TopK
from repro.profiling.profiler import profile_topology
from repro.runtime.synthetic import PaddedOperator
from repro.runtime.system import RuntimeConfig, run_topology
from repro.workloads.generators import market_quotes

SYMBOLS = tuple(f"SYM{i:02d}" for i in range(32))
SOURCE_RATE = 400.0


def declared_topology():
    """The designer's initial guess — service times are placeholders."""
    keys = KeyDistribution.uniform(len(SYMBOLS))
    return Topology(
        [
            OperatorSpec("quotes", 1.0 / SOURCE_RATE),
            OperatorSpec("price_filter", 1e-3, output_selectivity=0.7),
            OperatorSpec("sym_avg", 1e-3, state=StateKind.PARTITIONED,
                         keys=keys),
            OperatorSpec("movers", 1e-3, input_selectivity=20.0),
            OperatorSpec("dashboard", 0.2e-3, output_selectivity=0.0),
        ],
        [
            Edge("quotes", "price_filter"),
            Edge("price_filter", "sym_avg"),
            Edge("sym_avg", "movers"),
            Edge("movers", "dashboard"),
        ],
        name="market-analytics",
    )


def factories():
    """Real operators; the keyed aggregate is the (hidden) heavy one."""
    return {
        "quotes": lambda: GeneratorSource(
            factory=market_quotes(symbols=SYMBOLS), seed=17),
        "price_filter": lambda: PaddedOperator(
            Filter(field="volume", threshold=300.0, pass_rate=0.7), 0.8e-3),
        "sym_avg": lambda: PaddedOperator(
            KeyedWindowedAggregate(key_field="symbol", length=200, slide=1,
                                   statistic="mean"), 6e-3),
        "movers": lambda: PaddedOperator(
            TopK(k=5, score_field="aggregate", length=100, slide=20), 1.5e-3),
        "dashboard": lambda: CollectingSink(capacity=100),
    }


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    topology = declared_topology()

    banner("1. Profiling the application as-is (2 seconds on the runtime)")
    report = profile_topology(topology, factories(), duration=2.0,
                              config=RuntimeConfig(source_rate=SOURCE_RATE))
    for name, profile in report.profiles.items():
        mean = profile.mean_service_time
        mean_text = f"{mean * 1e3:6.2f} ms" if mean else "   (idle)"
        print(f"  {name:<14} {profile.items_processed:>7} items  "
              f"mean service {mean_text}  gain {profile.gain:.2f}")
    profiled = report.profiled_topology()

    banner("2. Steady-state analysis of the profiled topology")
    prediction = analyze(profiled, source_rate=SOURCE_RATE)
    print(analysis_report(prediction))
    if prediction.binding_bottleneck:
        print(f"\n-> the bottleneck is {prediction.binding_bottleneck!r}: "
              "the per-symbol aggregate saturates first")

    banner("3. Bottleneck elimination (fission of the keyed aggregate)")
    fission = eliminate_bottlenecks(profiled, source_rate=SOURCE_RATE)
    print(fission_report(fission))

    banner("4. Validating the optimized design on the real runtime")
    measured = run_topology(
        fission.optimized, factories(), duration=2.5,
        config=RuntimeConfig(source_rate=SOURCE_RATE),
    )
    print(f"predicted throughput: {fission.throughput:,.0f} items/sec")
    print(f"measured throughput:  {measured.throughput:,.0f} items/sec")
    print(f"relative error:       "
          f"{measured.throughput_error(fission.analysis):.2%}")


if __name__ == "__main__":
    main()
