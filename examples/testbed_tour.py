#!/usr/bin/env python3
"""Testbed tour: a miniature of the paper's whole evaluation (Section 5).

Generates random topologies with Algorithm 5 exactly as the paper's
testbed does, then reproduces each experiment at small scale:

* Figure 7 — predicted vs simulated throughput per topology;
* Figure 8 — per-operator departure-rate errors;
* Figure 9 — bottleneck elimination outcomes;
* Figure 10 — throughput under replica bounds.

The full-size (50-topology) versions live in ``benchmarks/``; this
example keeps the runtime to a few seconds so it can serve as a guided
tour.

Run with::

    python examples/testbed_tour.py [num_topologies]
"""

import statistics
import sys

from repro.core.fission import eliminate_bottlenecks
from repro.core.steady_state import analyze
from repro.sim import SimulationConfig, simulate
from repro.topology.dot import topology_to_dot
from repro.topology.random_gen import generate_testbed


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main(count=10):
    testbed = generate_testbed(count, seed=42)
    config = SimulationConfig(items=100_000, seed=7)

    banner(f"Figure 7 — model accuracy on {count} random topologies")
    print(f"{'topology':<14} {'ops':>4} {'predicted':>11} {'measured':>11} "
          f"{'error':>7}")
    measurements = []
    for topology in testbed:
        predicted = analyze(topology)
        measured = simulate(topology, config)
        measurements.append((topology, predicted, measured))
        print(f"{topology.name:<14} {len(topology):>4} "
              f"{predicted.throughput:>11.1f} {measured.throughput:>11.1f} "
              f"{measured.throughput_error(predicted):>7.2%}")
    errors = [m.throughput_error(p) for _, p, m in measurements]
    print(f"\nmean error: {statistics.mean(errors):.2%} "
          f"(paper: below 3% on average)")

    banner("Figure 8 — per-operator departure-rate errors")
    per_operator = []
    for topology, predicted, measured in measurements:
        per_operator.extend(measured.departure_errors(predicted).values())
    print(f"operators: {len(per_operator)}  "
          f"mean: {statistics.mean(per_operator):.2%}  "
          f"above 20%: {sum(1 for e in per_operator if e > 0.2)} "
          "(slowly-converging low-probability paths, as in the paper)")

    banner("Figure 9 — bottleneck elimination")
    ideal = 0
    for topology, _, _ in measurements:
        result = eliminate_bottlenecks(topology)
        status = "ideal" if result.ideal_throughput_reached else (
            "blocked by " + ", ".join(result.residual_bottlenecks))
        if result.ideal_throughput_reached:
            ideal += 1
        print(f"{topology.name:<14} +{result.additional_replicas:>3} "
              f"replicas -> {status}")
    print(f"\nideal throughput reached in {ideal}/{count} topologies "
          "(paper: 43/50)")

    banner("Figure 10 — one topology under replica bounds")
    topology = max((t for t, _, _ in measurements), key=len)
    unbounded = eliminate_bottlenecks(topology)
    total = unbounded.optimized.total_replicas()
    bounds = sorted({max(len(topology), total // 3),
                     max(len(topology), total // 2), total})
    print(f"{topology.name}: unbounded optimization uses {total} replicas")
    for bound in bounds:
        bounded = eliminate_bottlenecks(topology, max_replicas=bound)
        print(f"  bound={bound:>3}: {bounded.throughput:>10.1f} items/sec")
    print(f"  no bound : {unbounded.throughput:>10.1f} items/sec")

    banner("Bonus — Graphviz rendering of the largest topology")
    print("pipe this into `dot -Tpng` to draw it:")
    print(topology_to_dot(topology, analyze(topology))[:400] + "  ...")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)
