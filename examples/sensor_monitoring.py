#!/usr/bin/env python3
"""Sensor monitoring: an over-decomposed pipeline healed by fusion.

The second inefficiency the paper targets (Section 2): a topology "may
be very tangled, composed of too many operators, resulting in a
substantial overhead without actually improving performance".  Here an
IoT pipeline was split into many tiny per-stage operators — unit
conversion, range clamping, deduplication tagging, formatting — each
far faster than the arrival rate.  SpinStreams:

1. analyzes the topology and ranks fusion candidates by utilization;
2. fuses the under-utilized chain into one meta-operator and predicts
   the outcome (no new bottleneck);
3. shows the alert on an *over-greedy* fusion that would swallow the
   heavy anomaly detector too (Table 2 behaviour);
4. runs the fused design on the actor runtime, where one actor executes
   the whole chain per item (Algorithm 4).

Run with::

    python examples/sensor_monitoring.py
"""

from repro.core.fusion import apply_fusion
from repro.core.graph import Edge, OperatorSpec, Topology
from repro.core.report import analysis_report, fusion_report
from repro.core.steady_state import analyze
from repro.operators.base import Record
from repro.operators.basic import FieldMap, Filter, Identity
from repro.operators.source_sink import CollectingSink, GeneratorSource
from repro.runtime.synthetic import PaddedOperator
from repro.runtime.system import RuntimeConfig, run_topology
from repro.tool import SpinStreams
from repro.workloads.generators import sensor_readings

SOURCE_RATE = 250.0


def sensor_topology():
    """Fine-grained pipeline: four tiny stages and one heavy detector."""
    return Topology(
        [
            OperatorSpec("readings", 1.0 / SOURCE_RATE),
            OperatorSpec("to_celsius", 0.3e-3),
            OperatorSpec("clamp", 0.2e-3),
            OperatorSpec("tag", 0.25e-3),
            OperatorSpec("format", 0.35e-3),
            OperatorSpec("anomaly", 3.5e-3),
            OperatorSpec("alerts", 0.1e-3, output_selectivity=0.0),
        ],
        [
            Edge("readings", "to_celsius"),
            Edge("to_celsius", "clamp"),
            Edge("clamp", "tag"),
            Edge("tag", "format"),
            Edge("format", "anomaly"),
            Edge("anomaly", "alerts"),
        ],
        name="sensor-monitoring",
    )


def factories():
    return {
        "readings": lambda: GeneratorSource(factory=sensor_readings(),
                                            seed=23),
        "to_celsius": lambda: PaddedOperator(
            FieldMap("value", fn=lambda f: (f - 32.0) / 1.8), 0.3e-3),
        "clamp": lambda: PaddedOperator(
            FieldMap("value", fn=lambda v: max(-40.0, min(85.0, v))),
            0.2e-3),
        "tag": lambda: PaddedOperator(Identity(), 0.25e-3),
        "format": lambda: PaddedOperator(Identity(), 0.35e-3),
        "anomaly": lambda: PaddedOperator(
            Filter(predicate=lambda item: abs(item.get("value", 0.0)) > 2.0),
            3.5e-3),
        "alerts": lambda: CollectingSink(capacity=50),
    }


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    topology = sensor_topology()
    tool = SpinStreams(topology)

    banner("1. The over-decomposed pipeline")
    prediction = tool.analyze(source_rate=SOURCE_RATE)
    print(analysis_report(prediction))
    lazy = prediction.underutilized(threshold=0.3)
    print(f"\nunder-utilized operators (rho < 0.3): {', '.join(lazy)}")

    banner("2. Ranked fusion candidates")
    for candidate in tool.fusion_candidates(max_size=4, limit=5):
        print(f"  {{{', '.join(candidate.members)}}} "
              f"mean-rho={candidate.mean_utilization:.2f} "
              f"fused-rho={candidate.predicted_utilization:.2f} "
              f"{'(safe)' if candidate.safe else '(RISK)'}")

    banner("3. Fusing the tiny conversion chain")
    good = tool.fuse(["to_celsius", "clamp", "tag", "format"],
                     fused_name="prepare", source_rate=SOURCE_RATE)
    print(fusion_report(good))

    banner("4. The over-greedy fusion SpinStreams warns about")
    greedy = apply_fusion(topology,
                          ["to_celsius", "clamp", "tag", "format", "anomaly"],
                          fused_name="everything",
                          source_rate=SOURCE_RATE * 1.4)
    print(fusion_report(greedy))

    banner("5. Running the fused design (one actor per meta-operator)")
    measured = run_topology(
        good.fused, factories(), duration=2.0,
        config=RuntimeConfig(source_rate=SOURCE_RATE),
        fusion_plans=[good.plan],
    )
    print(f"predicted throughput: {good.throughput_after:,.0f} items/sec")
    print(f"measured throughput:  {measured.throughput:,.0f} items/sec")
    print(f"relative error:       "
          f"{measured.throughput_error(good.analysis_after):.2%}")
    print(f"actors in the fused system: "
          f"{len(good.fused)} (was {len(topology)})")


if __name__ == "__main__":
    main()
