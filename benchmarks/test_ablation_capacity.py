"""Ablation: mailbox capacity sensitivity of the measured throughput.

The cost model abstracts the buffers as "fixed maximum capacity" and
predicts rates independent of the capacity value.  That holds exactly
for deterministic service times; under stochastic services small
buffers couple adjacent stations (a momentarily slow server blocks its
neighbours before the buffer can absorb the burst), shaving a few
percent off the throughput.  This ablation measures the effect so
users know what mailbox sizes make the static predictions trustworthy.
"""

from repro.core.steady_state import analyze
from repro.sim.network import SimulationConfig, simulate
from tests.conftest import make_fig11

CAPACITIES = (1, 2, 4, 16, 64, 256)


def run_capacity_sweep(service_family: str):
    topology = make_fig11(0.7, 2.0, 1.5)
    predicted = analyze(topology)
    rows = []
    for capacity in CAPACITIES:
        measured = simulate(
            topology,
            SimulationConfig(items=80_000, seed=9,
                             mailbox_capacity=capacity,
                             service_family=service_family),
        )
        rows.append((capacity, measured.throughput,
                     measured.throughput_error(predicted)))
    return predicted, rows


def test_ablation_mailbox_capacity(benchmark):
    deterministic = run_capacity_sweep("deterministic")
    exponential = run_capacity_sweep("exponential")

    print("\nAblation — mailbox capacity vs measured throughput "
          "(Figure 11 example)")
    print(f"{'capacity':>9} {'det tput':>10} {'det err':>8} "
          f"{'exp tput':>10} {'exp err':>8}")
    for (cap, det_tput, det_err), (_, exp_tput, exp_err) in zip(
            deterministic[1], exponential[1]):
        print(f"{cap:>9} {det_tput:>10.1f} {det_err:>8.2%} "
              f"{exp_tput:>10.1f} {exp_err:>8.2%}")

    # Deterministic services: capacity is irrelevant (model assumption
    # holds exactly, down to single-slot buffers).
    for _, _, error in deterministic[1]:
        assert error < 0.02

    # Stochastic services: single-slot buffers visibly couple stations;
    # modest buffers already restore the prediction.
    tiny_error = exponential[1][0][2]
    large_error = exponential[1][-1][2]
    assert large_error <= tiny_error + 1e-9
    assert large_error < 0.08

    topology = make_fig11(0.7, 2.0, 1.5)
    benchmark(lambda: simulate(
        topology, SimulationConfig(items=20_000, seed=9,
                                   mailbox_capacity=64)))
