"""Figure 9: the bottleneck-elimination phase on the 50-topology testbed.

Figure 9a reports, per topology, the number of operators and the total
number of additional replicas the parallelization introduced.
Figure 9b re-validates the backpressure model on the parallelized
topologies.  The paper also reports that 43/50 topologies reached the
ideal throughput (the source generation rate) while 7/50 remained
bottlenecked by non-replicable stateful operators — the same split
(majority ideal, stateful residuals otherwise) is asserted here.
"""

import statistics

from repro.core.fission import eliminate_bottlenecks
from repro.core.graph import StateKind


def print_fig9a(measurements) -> None:
    print("\nFigure 9a — operators and additional replicas per topology")
    print(f"{'topology':<14} {'operators':>10} {'replicas+':>10} "
          f"{'ideal':>6}")
    for m in measurements:
        ideal = "yes" if m.fission.ideal_throughput_reached else "NO"
        print(f"{m.topology.name:<14} {len(m.topology):>10} "
              f"{m.fission.additional_replicas:>10} {ideal:>6}")


def print_fig9b(measurements) -> None:
    errors = [m.throughput_error for m in measurements]
    print("\nFigure 9b — model accuracy on parallelized topologies")
    print(f"mean error:   {statistics.mean(errors):.2%}")
    print(f"median error: {statistics.median(errors):.2%}")
    print(f"max error:    {max(errors):.2%}")


def test_fig9_bottleneck_elimination(fission_measurements, benchmark):
    print_fig9a(fission_measurements)
    print_fig9b(fission_measurements)

    ideal = [m for m in fission_measurements
             if m.fission.ideal_throughput_reached]
    blocked = [m for m in fission_measurements
               if not m.fission.ideal_throughput_reached]
    print(f"\nideal throughput reached: {len(ideal)}/"
          f"{len(fission_measurements)} topologies")

    # Shape targets (paper: 43/50 ideal, 7/50 blocked by stateful ops).
    assert len(ideal) >= len(fission_measurements) // 2
    assert blocked, "the testbed should include stateful-blocked topologies"
    for m in blocked:
        # Every residual bottleneck is a non-replicable operator: either
        # truly stateful or partitioned with a skewed key distribution.
        for name in m.fission.residual_bottlenecks:
            state = m.fission.optimized.operator(name).state
            assert state in (StateKind.STATEFUL, StateKind.PARTITIONED)

    # Fission never hurts and the model stays accurate afterwards.
    errors = [m.throughput_error for m in fission_measurements]
    assert statistics.mean(errors) < 0.06

    topologies = [m.topology for m in fission_measurements]
    benchmark(lambda: [eliminate_bottlenecks(t) for t in topologies])
