"""Table 2: a fusion that introduces a bottleneck (Figure 11 example).

Same topology as Table 1, but the fused members are slower (1.5, 2.7
and 2.2 ms).  The paper predicts a fused service time of about 4.42 ms,
making F the bottleneck with a ~24% throughput degradation (1000 ->
760 tuples/sec predicted, 753 measured); SpinStreams raises an alert
before the user commits.  Our self-consistent variant of the example
gives 4.26 ms and ~22% degradation — same shape, same alert.
"""

import math

from repro.core.fusion import apply_fusion
from repro.core.report import analysis_report, fusion_report
from repro.core.steady_state import analyze
from repro.sim.network import SimulationConfig, simulate
from tests.conftest import make_fig11

MEMBERS = ("op3", "op4", "op5")
SIM = SimulationConfig(items=150_000, seed=23)


def run_table2():
    topology = make_fig11(1.5, 2.7, 2.2)
    fusion = apply_fusion(topology, MEMBERS, fused_name="F")
    measured_before = simulate(topology, SIM)
    measured_after = simulate(fusion.fused, SIM)
    return fusion, measured_before, measured_after


def test_table2_harmful_fusion(benchmark):
    fusion, before, after = run_table2()

    print("\nTable 2 — original topology")
    print(analysis_report(fusion.analysis_before,
                          measured_throughput=before.throughput))
    print("\nTable 2 — topology after fusing op3, op4, op5 into F")
    print(analysis_report(fusion.analysis_after,
                          measured_throughput=after.throughput))
    print()
    print(fusion_report(fusion))
    print(f"predicted fused service time: "
          f"{fusion.plan.service_time * 1e3:.4g} ms (paper: 4.42 ms)")

    # The tool raises the alert: fusion would impair performance.
    assert fusion.impairs_performance
    assert math.isclose(fusion.plan.service_time, 4.26e-3, rel_tol=1e-9)

    # The fused operator becomes the bottleneck, pinned at rho = 1.
    assert fusion.analysis_after.binding_bottleneck == "F"
    assert math.isclose(fusion.analysis_after.utilization("F"), 1.0)

    # Degradation in the paper's band: ~20-25% predicted and measured.
    assert 0.15 < fusion.degradation < 0.30
    measured_loss = 1.0 - after.throughput / before.throughput
    assert 0.15 < measured_loss < 0.30

    # The model predicts the degraded measured throughput accurately.
    assert after.throughput_error(fusion.analysis_after) < 0.03

    benchmark(lambda: apply_fusion(make_fig11(1.5, 2.7, 2.2), MEMBERS,
                                   fused_name="F"))
