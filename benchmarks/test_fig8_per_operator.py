"""Figure 8: per-operator departure-rate prediction error.

The paper measures, for each of the 678 operators of its testbed, the
relative error between predicted and measured departure rates: 6.14%
on average (standard deviation 5%), with a few outliers above 20%
caused by operators on very-low-probability paths that have not reached
their steady state yet.  The same shape appears here: a small mean with
a long tail attributable to exactly the same convergence effect.
"""

import statistics


def collect_operator_errors(measurements):
    errors = []
    for m in measurements:
        for name, error in m.measured.departure_errors(m.predicted).items():
            errors.append((m.topology.name, name, error))
    return errors


def print_fig8(errors) -> None:
    values = [e for _, _, e in errors]
    print("\nFigure 8 — per-operator departure-rate prediction error")
    print(f"operators measured: {len(values)}")
    print(f"mean error:         {statistics.mean(values):.2%}")
    print(f"std deviation:      {statistics.pstdev(values):.2%}")
    print(f"errors above 20%:   {sum(1 for v in values if v > 0.2)}")
    worst = sorted(errors, key=lambda t: -t[2])[:5]
    print("worst operators:")
    for topology, operator, error in worst:
        print(f"  {topology}/{operator}: {error:.1%}")


def test_fig8_per_operator_error(testbed_measurements, benchmark):
    errors = collect_operator_errors(testbed_measurements)
    values = [e for _, _, e in errors]
    print_fig8(errors)

    # Shape targets: hundreds of operators, small mean error, long tail
    # (paper: 678 operators, 6.14% mean, sigma 5%, few cases > 20%).
    assert len(values) > 300
    assert statistics.mean(values) < 0.15
    assert statistics.median(values) < 0.05
    # The tail exists but is a small minority.
    tail = sum(1 for v in values if v > 0.2)
    assert tail < len(values) * 0.15

    benchmark(lambda: collect_operator_errors(testbed_measurements))
