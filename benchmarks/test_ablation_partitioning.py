"""Ablation: key-partitioning heuristics — greedy LPT vs consistent hashing.

The `KeyPartitioning()` step of Algorithm 2 is pluggable.  Greedy LPT
uses the profiled key frequencies to pack replicas near-optimally;
consistent hashing ignores frequencies (it works online with unknown
keys) at the cost of a worse hot-replica share ``p_max`` — and
therefore lower post-fission throughput on skewed streams.  This
ablation quantifies the gap across skew levels.
"""

import statistics

from repro.core.fission import eliminate_bottlenecks
from repro.core.graph import Edge, KeyDistribution, OperatorSpec, StateKind, Topology
from repro.core.partitioning import (
    consistent_hash_partitioning,
    greedy_partitioning,
)

SKEWS = (0.2, 0.6, 1.0, 1.4)
REPLICAS = 8
NUM_KEYS = 400


def keyed_topology(keys: KeyDistribution) -> Topology:
    return Topology(
        [OperatorSpec("src", 0.5e-3),
         OperatorSpec("keyed", 4e-3, state=StateKind.PARTITIONED, keys=keys),
         OperatorSpec("sink", 0.05e-3, output_selectivity=0.0)],
        [Edge("src", "keyed"), Edge("keyed", "sink")],
        name="partitioning-ablation",
    )


def run_ablation():
    rows = []
    for alpha in SKEWS:
        keys = KeyDistribution.zipf(NUM_KEYS, alpha)
        greedy = greedy_partitioning(keys, REPLICAS)
        hashed = consistent_hash_partitioning(keys, REPLICAS)
        topology = keyed_topology(keys)
        throughput = {
            heuristic: eliminate_bottlenecks(
                topology, partition_heuristic=heuristic).throughput
            for heuristic in ("greedy", "consistent-hash")
        }
        rows.append({
            "alpha": alpha,
            "greedy_pmax": greedy.p_max,
            "hash_pmax": hashed.p_max,
            "greedy_tput": throughput["greedy"],
            "hash_tput": throughput["consistent-hash"],
        })
    return rows


def test_ablation_partitioning_heuristics(benchmark):
    rows = run_ablation()

    print("\nAblation — key partitioning heuristics "
          f"({NUM_KEYS} keys, {REPLICAS} replicas requested)")
    print(f"{'zipf alpha':>10} {'greedy p_max':>13} {'hash p_max':>11} "
          f"{'greedy tput':>12} {'hash tput':>11}")
    for row in rows:
        print(f"{row['alpha']:>10.1f} {row['greedy_pmax']:>13.4f} "
              f"{row['hash_pmax']:>11.4f} {row['greedy_tput']:>12.1f} "
              f"{row['hash_tput']:>11.1f}")

    for row in rows:
        # Greedy never does worse than consistent hashing.
        assert row["greedy_pmax"] <= row["hash_pmax"] + 1e-12
        assert row["greedy_tput"] >= row["hash_tput"] * (1.0 - 1e-9)

    # At mild skew the heuristics are close; at strong skew greedy
    # clearly wins on the hot-replica share.
    mild, strong = rows[0], rows[-1]
    assert mild["hash_pmax"] / mild["greedy_pmax"] < \
        strong["hash_pmax"] / strong["greedy_pmax"] + 0.5
    assert strong["hash_pmax"] > strong["greedy_pmax"]

    keys = KeyDistribution.zipf(NUM_KEYS, 1.0)
    benchmark(lambda: greedy_partitioning(keys, REPLICAS))
