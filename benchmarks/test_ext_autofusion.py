"""Extension benchmark: automatic fusion on the random testbed.

The paper fuses sub-graphs manually (§5.4) and lists automation as
future work.  This benchmark runs the automatic fusion loop
(``repro.core.autofusion``) over the 50-topology testbed and reports
how many operators it removes while provably preserving the predicted
throughput — the "too tangled, composed of too many operators" problem
of the introduction, solved without user intervention.
"""

import statistics

import pytest

from repro.core.autofusion import auto_fuse
from repro.core.steady_state import analyze
from repro.sim.network import SimulationConfig, simulate


def test_ext_autofusion_compacts_testbed(testbed, benchmark):
    rows = []
    for topology in testbed:
        before = analyze(topology)
        result = auto_fuse(topology)
        rows.append((topology, before, result))

    removed = [r.operators_removed for _, _, r in rows]
    print("\nExtension — automatic fusion over the 50-topology testbed")
    print(f"{'topology':<14} {'ops':>4} {'after':>6} {'removed':>8} "
          f"{'rounds':>7}")
    for topology, _, result in rows:
        print(f"{topology.name:<14} {len(topology):>4} "
              f"{len(result.fused):>6} {result.operators_removed:>8} "
              f"{result.rounds:>7}")
    print(f"\noperators removed: total {sum(removed)}, "
          f"mean {statistics.mean(removed):.1f} per topology")

    # Fusion preserves the predicted throughput on every topology.
    for _, before, result in rows:
        assert result.throughput == pytest.approx(before.throughput,
                                                  rel=1e-9)

    # The testbed's sparse under-utilized graphs offer real compaction.
    assert sum(removed) > len(rows)  # more than one op per topology
    assert max(removed) >= 3

    # Spot-check one compacted topology on the simulator.
    topology, _, result = max(rows, key=lambda row: row[2].operators_removed)
    measured = simulate(result.fused, SimulationConfig(items=100_000, seed=7))
    assert measured.throughput_error(result.analysis) < 0.06

    benchmark(lambda: auto_fuse(testbed[0]))
