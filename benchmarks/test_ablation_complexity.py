"""Ablation: worst-case cost of the restart-from-source analysis.

Proposition 3.4 bounds Algorithm 1 at O(|V| * |E|): a pathological
pipeline where every vertex is a new bottleneck forces one restart per
vertex.  This ablation builds exactly that adversarial input (service
times strictly increasing along a chain), verifies the quadratic visit
count empirically, and shows that analysis stays in the milliseconds
even at the worst case — the reason a *static* tool can afford to
restart from scratch instead of patching rates incrementally.
"""

import time

from repro.core.graph import Edge, OperatorSpec, Topology
from repro.core.steady_state import analyze


def adversarial_pipeline(length: int) -> Topology:
    """Every operator is slower than its predecessor: |V| restarts."""
    specs = [OperatorSpec(f"op{i}", 1e-3 * (1.5 ** i))
             for i in range(length)]
    edges = [Edge(f"op{i}", f"op{i + 1}") for i in range(length - 1)]
    return Topology(specs, edges, name=f"adversarial-{length}")


def measure(length: int):
    topology = adversarial_pipeline(length)
    started = time.perf_counter()
    result = analyze(topology)
    elapsed = time.perf_counter() - started
    return len(result.corrections), elapsed


def test_ablation_restart_complexity(benchmark):
    lengths = (5, 10, 20, 40)
    rows = [(length, *measure(length)) for length in lengths]

    print("\nAblation — worst-case restart cost of Algorithm 1")
    print(f"{'pipeline len':>12} {'corrections':>12} {'analysis time':>14}")
    for length, corrections, elapsed in rows:
        print(f"{length:>12} {corrections:>12} {elapsed * 1e3:>12.2f} ms")

    # One correction per vertex after the source: the O(|V|) restart
    # count that drives the O(|V| * |E|) bound.
    for length, corrections, _ in rows:
        assert corrections == length - 1

    # Doubling the pipeline roughly quadruples the work, yet even the
    # longest adversarial case stays far under a millisecond per vertex.
    for _, _, elapsed in rows:
        assert elapsed < 0.25

    benchmark(lambda: analyze(adversarial_pipeline(40)))
