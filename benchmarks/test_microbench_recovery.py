"""Micro-benchmark: the cost of effectively-once checkpointing.

Aligned barrier snapshots travel through the same mailboxes as data
(control envelopes bypass capacity and fault injection), so their cost
is a per-interval tax on the transport.  At the default interval of
100 items the tax must stay small — the ceiling here is the 15% budget
the recovery design targets — and a crashed run rolled back to the
last complete epoch must still be bit-equal to a fault-free run.

Rates are wall-clock and noisy; the overhead gate keeps generous
headroom above the measured ~2-6% on this container (see the
``recovery`` section of the committed BENCH_*.json for numbers).
"""

from repro.bench import runtime_tuples_per_second
from repro.core.graph import CheckpointConfig
from repro.testing.differential import DifferentialConfig, check_recovery_seed

ITEMS = 20_000

#: The design budget for barrier-snapshot overhead at the default
#: interval (100 items).  Measured values run well below this.
CHECKPOINT_OVERHEAD_CEILING = 0.15


def test_microbench_checkpoint_overhead(benchmark):
    # Throughput noise is one-sided (scheduler stalls only slow a run
    # down), so best-of-3 stabilizes the ratio against CI jitter.
    plain = max(runtime_tuples_per_second(1, ITEMS) for _ in range(3))
    checkpointed = max(
        runtime_tuples_per_second(1, ITEMS, checkpoint=CheckpointConfig())
        for _ in range(3))
    overhead = 1.0 - checkpointed / plain
    print(f"\nplain {plain:,.0f} tuples/sec, "
          f"checkpointed {checkpointed:,.0f} tuples/sec "
          f"(overhead {overhead:.1%})")
    assert overhead <= CHECKPOINT_OVERHEAD_CEILING, (
        f"checkpoint overhead {overhead:.1%} exceeds the "
        f"{CHECKPOINT_OVERHEAD_CEILING:.0%} budget")
    benchmark(lambda: runtime_tuples_per_second(
        1, 5_000, checkpoint=CheckpointConfig()))


def test_microbench_crash_recovery_stays_bit_equal(benchmark):
    config = DifferentialConfig(items=300)
    report = check_recovery_seed(1, config)
    assert report.ok, report.summary()
    assert report.recovery_attempts >= 1
    benchmark(lambda: check_recovery_seed(1, config))
