"""Figure 7: accuracy of the backpressure model on 50 random topologies.

Figure 7a compares the predicted topology throughput against the one
measured on the runtime substrate; Figure 7b reports the relative
prediction error per topology.  The paper reports an average error
below 3% — the shape target here is the same: small errors across the
whole testbed, with predictions tracking the measurements closely.
"""

import statistics

from repro.core.steady_state import analyze


def print_fig7a(measurements) -> None:
    print("\nFigure 7a — predicted vs measured throughput (tuples/sec)")
    print(f"{'topology':<14} {'predicted':>12} {'measured':>12} {'error':>8}")
    for index, m in enumerate(measurements, start=1):
        print(f"{m.topology.name:<14} {m.predicted.throughput:>12.1f} "
              f"{m.measured.throughput:>12.1f} {m.throughput_error:>8.2%}")


def print_fig7b(errors) -> None:
    print("\nFigure 7b — relative prediction error per topology")
    print(f"mean error:   {statistics.mean(errors):.2%}")
    print(f"median error: {statistics.median(errors):.2%}")
    print(f"max error:    {max(errors):.2%}")


def test_fig7_backpressure_model_accuracy(testbed_measurements, benchmark):
    errors = [m.throughput_error for m in testbed_measurements]
    print_fig7a(testbed_measurements)
    print_fig7b(errors)

    # Shape targets (paper: <3% average on Akka; our substrate is the
    # DES, which tracks the fluid model even closer on most topologies,
    # with a small tail from slowly-converging low-probability paths).
    assert statistics.mean(errors) < 0.05
    assert statistics.median(errors) < 0.02
    assert sum(1 for e in errors if e < 0.10) >= 45  # >=90% under 10%

    # Benchmark the analytical model itself: the whole testbed is
    # analyzed in milliseconds, which is the tool's selling point.
    topologies = [m.topology for m in testbed_measurements]
    benchmark(lambda: [analyze(t) for t in topologies])
