"""Figure 10: bounded parallelization (the hold-off replica bound).

The paper compares, on three random topologies, the throughput of the
original topology against the parallelized one under total-replica
bounds of 30, 35 and 40, and without any bound.  The expectation — a
"proportional de-scalability" of throughput with the bound, with the
largest bound matching the unbounded result when fewer replicas are
needed anyway — is exactly what this benchmark asserts.
"""

from repro.core.fission import eliminate_bottlenecks
from repro.core.steady_state import analyze
from repro.sim.network import SimulationConfig, simulate
from repro.topology.random_gen import RandomTopologyGenerator, GeneratorConfig

BOUNDS = (30, 35, 40)

#: Seeds chosen so the unbounded optimization needs a meaningful number
#: of replicas (the bound must actually bind for the figure to show
#: de-scalability, as in the paper's first two topologies).
SEEDS = (1205, 1207, 1213)


def heavy_topology(seed):
    """A random topology whose optimization wants many replicas."""
    config = GeneratorConfig(min_vertices=8, max_vertices=16,
                             source_speedup=8.0)
    return RandomTopologyGenerator(seed=seed, config=config).generate(
        name=f"fig10-{seed}")


def run_figure10():
    rows = []
    for seed in SEEDS:
        topology = heavy_topology(seed)
        original = analyze(topology).throughput
        row = {"topology": topology.name, "original": original}
        for bound in BOUNDS:
            result = eliminate_bottlenecks(topology, max_replicas=bound)
            row[f"bound={bound}"] = result.throughput
            row.setdefault("_replicas", {})[bound] = (
                result.optimized.total_replicas())
        unbounded = eliminate_bottlenecks(topology)
        row["no bound"] = unbounded.throughput
        row["_unbounded_replicas"] = unbounded.optimized.total_replicas()
        rows.append(row)
    return rows


def print_fig10(rows) -> None:
    print("\nFigure 10 — throughput under replica bounds (tuples/sec)")
    header = (f"{'topology':<14} {'original':>10} "
              + " ".join(f"{f'bound={b}':>10}" for b in BOUNDS)
              + f" {'no bound':>10}")
    print(header)
    for row in rows:
        print(f"{row['topology']:<14} {row['original']:>10.1f} "
              + " ".join(f"{row[f'bound={b}']:>10.1f}" for b in BOUNDS)
              + f" {row['no bound']:>10.1f}")


def test_fig10_bounded_parallelization(benchmark):
    rows = run_figure10()
    print_fig10(rows)

    for row in rows:
        series = [row["original"]] + \
            [row[f"bound={b}"] for b in BOUNDS] + [row["no bound"]]
        # Proportional de-scalability: throughput non-decreasing as the
        # bound relaxes, and the original is never better than any
        # parallelized variant.
        for tighter, looser in zip(series, series[1:]):
            assert looser >= tighter * (1.0 - 1e-9)
        # Parallelization with the loosest bound improves on the
        # original (the testbed sources are 8x faster than the fastest
        # operator, so bottlenecks are guaranteed).
        assert row["no bound"] > row["original"] * 1.5

    # In at least one topology the largest bound already matches the
    # unbounded throughput (the paper's third topology behaves so).
    matched = any(
        abs(row["bound=40"] - row["no bound"]) < 1e-6 * row["no bound"]
        or row["_unbounded_replicas"] <= 40
        for row in rows
    )
    assert matched

    benchmark(run_figure10)
