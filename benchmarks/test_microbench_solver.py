"""Micro-benchmark: fixed-point work of the optimizer search.

Before the memoized solver, every analysis requested by the optimizer
pipeline (base prediction, candidate screens, per-round re-analyses,
the conformance-style final prediction) was a full fixed-point solve.
The :mod:`repro.core.solver` memo plus incremental re-solves must cut
that to one full solve per pipeline — at least a 5x reduction in full
fixed points over the Algorithm 5 testbed.
"""

from repro.bench import solver_benchmark


def test_microbench_solver_solve_reduction():
    figures = solver_benchmark()

    print("\nMicro-benchmark — steady-state solve accounting")
    print(f"{figures['topologies']} testbed optimizations: "
          f"{figures['solve_requests']} analyses -> "
          f"{figures['full_solves']} full solves "
          f"({figures['incremental_solves']} incremental, "
          f"{figures['cache_hits']} cached), "
          f"{figures['solve_reduction']:.1f}x fewer fixed points in "
          f"{figures['elapsed_sec'] * 1e3:.0f} ms")

    # One full solve per optimized topology: the initial base
    # prediction; everything else is served from the memo or re-solved
    # incrementally.
    assert figures["full_solves"] == figures["topologies"]
    assert figures["solve_reduction"] >= 5.0
    # Incremental solves must actually skip work, not recompute
    # everything under a different counter.
    assert figures["vertices_reused"] > 0
