"""Micro-benchmark: loop-compiled fusion vs Algorithm 4 dispatch.

The fusion-to-loop code generator exists to delete the per-tuple cost
of the meta-operator's interpretation loop — deque scheduling, member
routing table lookups, origin stamping and supervision bookkeeping.
This micro-benchmark drives both backends synchronously over the same
map→filter chain (the ``fusion`` section of ``BENCH_6.json``) and
gates the speedup, plus the end-to-end effect of batched mailboxes on
the threaded runtime (the ``batching`` section).

Machine speed varies between runs, so the asserted floors keep
headroom below the measured ratios (loop ~2.1–2.5x, batching
~1.5–1.7x on this container; see BENCH_6.json for the committed
numbers).
"""

from repro.bench import (
    loop_compiled_tuples_per_second,
    meta_dispatch_tuples_per_second,
    runtime_tuples_per_second,
)

ITEMS = 50_000

#: Floors under the measured ratios (same headroom philosophy as
#: test_microbench_engine.py).
LOOP_SPEEDUP_FLOOR = 1.6
BATCHING_SPEEDUP_FLOOR = 1.1


def test_microbench_loop_vs_dispatch(benchmark):
    dispatched = meta_dispatch_tuples_per_second(ITEMS, repeats=3)
    loop = loop_compiled_tuples_per_second(ITEMS, repeats=3)
    speedup = loop / dispatched
    print(f"\ndispatched {dispatched:,.0f} tuples/sec, "
          f"loop-compiled {loop:,.0f} tuples/sec ({speedup:.2f}x)")
    assert speedup >= LOOP_SPEEDUP_FLOOR, (
        f"loop-compiled fusion only {speedup:.2f}x over dispatch "
        f"(floor {LOOP_SPEEDUP_FLOOR}x)")
    # Keep pytest-benchmark's timing output for trend tracking.
    benchmark(lambda: loop_compiled_tuples_per_second(5_000, repeats=1))


def test_microbench_batched_runtime(benchmark):
    items = 20_000
    unbatched = runtime_tuples_per_second(1, items)
    batched = runtime_tuples_per_second(8, items)
    speedup = batched / unbatched
    print(f"\nunbatched {unbatched:,.0f} tuples/sec, "
          f"batch=8 {batched:,.0f} tuples/sec ({speedup:.2f}x)")
    assert speedup >= BATCHING_SPEEDUP_FLOOR, (
        f"batched mailboxes only {speedup:.2f}x over unbatched "
        f"(floor {BATCHING_SPEEDUP_FLOOR}x)")
    benchmark(lambda: runtime_tuples_per_second(8, 5_000))
