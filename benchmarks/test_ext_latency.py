"""Extension benchmark: static latency estimates vs measured latency.

Not a paper figure — the paper predicts throughput only — but the
natural companion experiment: the same steady-state analysis extended
with queueing-delay estimates (``repro.core.latency``) is validated
against the item-level timestamps of the simulator across load levels
and service distributions.
"""

import pytest

from repro.core.latency import estimate_latency
from repro.sim.network import SimulationConfig, simulate
from tests.conftest import make_fig11

LOADS = (300.0, 600.0, 800.0, 950.0)


def run_sweep(service_family: str, assumption: str):
    topology = make_fig11()
    rows = []
    for rate in LOADS:
        estimate = estimate_latency(topology, source_rate=rate,
                                    assumption=assumption)
        measured = simulate(
            topology,
            SimulationConfig(items=100_000, seed=5,
                             service_family=service_family),
            source_rate=rate,
        )
        rows.append((rate, estimate.end_to_end, measured.mean_latency()))
    return rows


def test_ext_latency_model(benchmark):
    deterministic = run_sweep("deterministic", "deterministic")
    exponential = run_sweep("exponential", "markovian")

    print("\nExtension — end-to-end latency, model vs simulator "
          "(Figure 11 example)")
    print(f"{'load':>6} | {'det model':>10} {'det meas':>10} | "
          f"{'exp model':>10} {'exp meas':>10}")
    for (rate, det_model, det_meas), (_, exp_model, exp_meas) in zip(
            deterministic, exponential):
        print(f"{rate:>6.0f} | {det_model * 1e3:>9.2f}ms "
              f"{det_meas * 1e3:>9.2f}ms | {exp_model * 1e3:>9.2f}ms "
              f"{exp_meas * 1e3:>9.2f}ms")

    # Deterministic services: latency is the path-weighted service sum
    # at moderate loads; near saturation the merge point (op6 receives
    # three streams) introduces contention the zero-wait assumption
    # ignores, so the tolerance widens with load.
    for rate, model, measured in deterministic:
        tolerance = 0.1 if rate <= 800.0 else 0.35
        assert measured == pytest.approx(model, rel=tolerance)

    # Exponential services: the M/M/1-style estimate tracks the
    # measurement within ~20% across the load range, and both curves
    # grow with load.
    for _, model, measured in exponential:
        assert measured == pytest.approx(model, rel=0.25)
    models = [m for _, m, _ in exponential]
    measures = [m for _, _, m in exponential]
    assert models == sorted(models)
    assert measures == sorted(measures)

    topology = make_fig11()
    benchmark(lambda: estimate_latency(topology, source_rate=800.0))
