"""Baseline benchmark: static optimization vs reactive elasticity.

Reproduces the trade-off the paper's introduction stakes its claim on:
dynamic adaptation mechanisms carry "a substantial run-time overhead"
but are "unavoidable in case of unpredictable workloads", while a
static tool finds "the initial best configuration" for free.  Two
scenarios over the same pipeline:

* **stable workload** — the offered rate never changes: SpinStreams'
  one-shot plan starts right and never pays downtime; the elastic
  controller spends the ramp-up under-provisioned and keeps paying
  reconfiguration downtime, delivering fewer items;
* **shifting workload** — the rate triples mid-run: the static plan
  (sized for the initial rate) stays wrong forever, and the elastic
  baseline overtakes it despite the adaptation costs.
"""

import pytest

from repro.baselines.elasticity import (
    ElasticityConfig,
    WorkloadPhase,
    run_elastic,
    run_static,
)
from repro.sim.network import SimulationConfig
from tests.conftest import make_pipeline

SIM = SimulationConfig(items=15_000, seed=3)
CONTROL = ElasticityConfig(control_period=1.0,
                           reconfiguration_downtime=0.3)

PIPELINE = make_pipeline(1.0, 4.0, 2.0, name="elasticity-pipeline")


def run_scenarios():
    stable = [WorkloadPhase(rate=1000.0, duration=10.0)]
    shifting = [WorkloadPhase(rate=300.0, duration=5.0),
                WorkloadPhase(rate=1000.0, duration=10.0)]
    return {
        "stable": {
            "static": run_static(PIPELINE, stable, sim_config=SIM),
            "elastic": run_elastic(PIPELINE, stable, config=CONTROL,
                                   sim_config=SIM),
            "horizon": 10.0,
        },
        "shifting": {
            "static": run_static(PIPELINE, shifting, planning_rate=300.0,
                                 sim_config=SIM),
            "elastic": run_elastic(PIPELINE, shifting, config=CONTROL,
                                   sim_config=SIM),
            "horizon": 15.0,
        },
    }


def test_baseline_static_vs_elastic(benchmark):
    scenarios = run_scenarios()

    print("\nBaseline — static optimization vs reactive elasticity")
    print(f"{'scenario':<10} {'strategy':<9} {'items':>9} {'mean tput':>10} "
          f"{'reconfigs':>10} {'downtime':>9}")
    for name, data in scenarios.items():
        for strategy in ("static", "elastic"):
            result = data[strategy]
            print(f"{name:<10} {strategy:<9} "
                  f"{result.items_processed:>9.0f} "
                  f"{result.mean_throughput(data['horizon']):>10.1f} "
                  f"{result.reconfigurations:>10} "
                  f"{result.total_downtime:>9.2f}")

    stable = scenarios["stable"]
    shifting = scenarios["shifting"]

    # Stable workload: the paper's claim — static starts right, the
    # elastic baseline loses its ramp-up and downtime.
    assert stable["static"].items_processed > \
        stable["elastic"].items_processed * 1.1
    assert stable["static"].total_downtime == 0.0

    # Shifting workload: the counter-case the paper concedes — the
    # static plan sized for the first phase is overtaken.
    assert shifting["elastic"].items_processed > \
        shifting["static"].items_processed * 1.2

    # The elastic controller does converge to a sufficient degree: its
    # final-period throughput approaches the offered rate.
    final = shifting["elastic"].steps[-1]
    assert final.throughput == pytest.approx(1000.0, rel=0.1)

    benchmark(lambda: run_static(
        PIPELINE, [WorkloadPhase(rate=1000.0, duration=2.0)],
        sim_config=SIM))
