"""Shared benchmark fixtures: the 50-topology testbed and its measurements.

The paper's Figures 7, 8 and 9 all evaluate the same testbed of 50
random topologies (Algorithm 5).  The expensive artifacts — analytical
predictions and discrete-event measurements — are computed once per
pytest session and shared across the benchmark modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import pytest

from repro.core.fission import FissionResult, eliminate_bottlenecks
from repro.core.steady_state import SteadyStateResult, analyze
from repro.sim.network import SimulationConfig, SimulationResult, simulate
from repro.topology.random_gen import generate_testbed

#: Items per simulation: large enough that slow low-probability paths
#: approach their steady state (the paper's Figure 8 shows the residual
#: tail that remains).
SIM_ITEMS = 200_000
TESTBED_SEED = 42
TESTBED_SIZE = 50


@dataclass(frozen=True)
class TopologyMeasurement:
    """Everything Figures 7 and 8 need about one testbed topology."""

    topology: object
    predicted: SteadyStateResult
    measured: SimulationResult

    @property
    def throughput_error(self) -> float:
        return self.measured.throughput_error(self.predicted)


@dataclass(frozen=True)
class FissionMeasurement:
    """Everything Figure 9 needs about one parallelized topology."""

    topology: object
    fission: FissionResult
    measured: SimulationResult

    @property
    def throughput_error(self) -> float:
        return self.measured.throughput_error(self.fission.analysis)


@pytest.fixture(scope="session")
def testbed():
    """The 50 random topologies of the paper's evaluation."""
    return generate_testbed(TESTBED_SIZE, seed=TESTBED_SEED)


@pytest.fixture(scope="session")
def testbed_measurements(testbed) -> List[TopologyMeasurement]:
    """Predicted and DES-measured figures for every testbed topology."""
    results = []
    for topology in testbed:
        predicted = analyze(topology)
        measured = simulate(topology,
                            SimulationConfig(items=SIM_ITEMS, seed=11))
        results.append(TopologyMeasurement(topology, predicted, measured))
    return results


@pytest.fixture(scope="session")
def fission_measurements(testbed) -> List[FissionMeasurement]:
    """Bottleneck-eliminated topologies and their DES measurements."""
    results = []
    for topology in testbed:
        fission = eliminate_bottlenecks(topology)
        measured = simulate(fission.optimized,
                            SimulationConfig(items=SIM_ITEMS, seed=13))
        results.append(FissionMeasurement(topology, fission, measured))
    return results
