"""Micro-benchmark: raw event throughput of the discrete-event engine.

The evaluation's viability rests on the simulator being orders of
magnitude faster than wall-clock deployments: a 50-topology testbed
sweep must take seconds.  This micro-benchmark measures the engine's
event-processing rate on the Figure 11 topology and on the largest
testbed entry — the latter both free-running (deeply backpressured)
and paced at its predicted throughput (pure fast-path flow) — and
gates each against the pre-fast-path engine's rate measured on the
same container (commit 16fbe7d).

The paced and raw testbed runs sit almost entirely on the inlined fast
loop and run at ~2x the seed engine; Figure 11 routes 70% of its
events through the stochastic multi-route branch, which the inlining
helps less, so its gate is a no-regression floor.  Machine speed
varies between runs, so the asserted ratios keep headroom below the
measured speedups (printed for the actual numbers).
"""

from repro.bench import engine_events_per_second, fig11_topology
from repro.core.solver import analyze_cached
from repro.topology.random_gen import generate_testbed

#: events/sec of the seed engine (no fast path) on this container.
SEED_BASELINE = {
    "fig11": 563_238.0,
    "testbed_raw": 510_421.0,
    "testbed_paced": 566_889.0,
}

#: Asserted speedup floors over :data:`SEED_BASELINE` (measured: fig11
#: ~1.1x, testbed_raw ~2.1x, testbed_paced ~2.1x).
SPEEDUP_FLOOR = {
    "fig11": 0.8,
    "testbed_raw": 1.5,
    "testbed_paced": 1.5,
}


def test_microbench_engine_event_rate(benchmark):
    largest = max(generate_testbed(10), key=len)
    paced_rate = analyze_cached(largest).throughput

    cases = {
        "fig11": engine_events_per_second(fig11_topology(), 100_000),
        "testbed_raw": engine_events_per_second(largest, 50_000),
        "testbed_paced": engine_events_per_second(
            largest, 50_000, source_rate=paced_rate),
    }

    print("\nMicro-benchmark — discrete-event engine throughput")
    for name, (rate, events) in cases.items():
        speedup = rate / SEED_BASELINE[name]
        print(f"{name:<14} {rate:>12,.0f} events/sec "
              f"({events:,} events, {speedup:.2f}x over seed engine)")

    for name, (rate, _) in cases.items():
        floor = SEED_BASELINE[name] * SPEEDUP_FLOOR[name]
        assert rate > floor, (
            f"{name}: {rate:,.0f} events/sec under the "
            f"{SPEEDUP_FLOOR[name]}x-over-seed floor {floor:,.0f}"
        )

    topology = fig11_topology()
    benchmark(lambda: engine_events_per_second(topology, items=20_000,
                                               repeats=1))
