"""Micro-benchmark: raw event throughput of the discrete-event engine.

The evaluation's viability rests on the simulator being orders of
magnitude faster than wall-clock deployments: a 50-topology testbed
sweep must take seconds.  This micro-benchmark measures the engine's
event-processing rate on the Figure 11 topology and on the largest
testbed entry, asserting the floor that keeps the experiment suite
practical.
"""

import time

from repro.sim.network import SimulationConfig, build_engine
from repro.topology.random_gen import generate_testbed
from tests.conftest import make_fig11


def events_per_second(topology, items=100_000):
    config = SimulationConfig(items=items, seed=5)
    engine, rate = build_engine(topology, config)
    horizon = items / rate
    started = time.perf_counter()
    measurements = engine.run(until=horizon, warmup=0.0)
    elapsed = time.perf_counter() - started
    total_events = sum(
        station.consumed for station in engine.stations
    )
    return total_events / elapsed, total_events


def test_microbench_engine_event_rate(benchmark):
    fig11_rate, fig11_events = events_per_second(make_fig11())
    largest = max(generate_testbed(10), key=len)
    testbed_rate, testbed_events = events_per_second(largest, items=50_000)

    print("\nMicro-benchmark — discrete-event engine throughput")
    print(f"fig11 ({6} operators):      {fig11_rate:>12,.0f} events/sec "
          f"({fig11_events:,} events)")
    print(f"{largest.name} ({len(largest)} operators): "
          f"{testbed_rate:>12,.0f} events/sec ({testbed_events:,} events)")

    # The practicality floor: a few hundred thousand events per second
    # keeps the full evaluation in seconds.
    assert fig11_rate > 100_000
    assert testbed_rate > 50_000

    topology = make_fig11()
    benchmark(lambda: events_per_second(topology, items=20_000))
