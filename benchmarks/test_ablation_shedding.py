"""Ablation: backpressure (BAS) vs load shedding.

Section 2 of the paper discusses the two communication semantics of
SPSs: backpressure (the one SpinStreams models — "definitely the most
diffused approach") and load shedding, which "prevents the streaming
buffers to indefinitely grow by discarding input items" at the cost of
data loss.  This ablation runs the same overloaded pipeline under both
semantics and quantifies the trade-off the paper describes: identical
goodput (the bottleneck bounds both), but shedding silently discards
the overflow while backpressure preserves exactly-once delivery.
"""

import pytest

from repro.core.steady_state import analyze
from repro.sim.network import SimulationConfig, simulate
from tests.conftest import make_pipeline

#: Source three times faster than the 4 ms bottleneck stage.
OVERLOADED = make_pipeline(1.0 + 1e-12, 4.0, 0.5, name="overloaded")


def run_semantics(backpressure: bool):
    config = SimulationConfig(items=80_000, seed=3,
                              backpressure=backpressure)
    return simulate(OVERLOADED, config)


def test_ablation_backpressure_vs_shedding(benchmark):
    blocking = run_semantics(backpressure=True)
    shedding = run_semantics(backpressure=False)
    predicted = analyze(OVERLOADED)

    print("\nAblation — backpressure vs load shedding (overloaded pipeline)")
    print(f"{'semantics':<14} {'source rate':>12} {'goodput':>10} "
          f"{'drop rate':>10} {'loss':>7}")
    for label, result in (("backpressure", blocking),
                          ("shedding", shedding)):
        offered = result.vertices[OVERLOADED.source].consumption_rate
        loss = result.total_drop_rate() / offered if offered else 0.0
        print(f"{label:<14} {offered:>12.1f} {result.goodput():>10.1f} "
              f"{result.total_drop_rate():>10.1f} {loss:>7.1%}")

    # Backpressure: the source is throttled to the bottleneck's pace
    # (the quantity Algorithm 1 predicts) and nothing is lost.
    assert blocking.throughput == pytest.approx(predicted.throughput,
                                                rel=0.02)
    assert blocking.total_drop_rate() == 0.0

    # Shedding: the source runs at full speed, goodput is identical
    # (the bottleneck bounds both), and the overflow is destroyed.
    offered = shedding.vertices[OVERLOADED.source].consumption_rate
    assert offered == pytest.approx(1000.0, rel=0.02)
    assert shedding.goodput() == pytest.approx(blocking.goodput(), rel=0.03)
    assert shedding.total_drop_rate() == pytest.approx(
        offered - shedding.goodput(), rel=0.05)

    # Latency: shedding keeps the buffers permanently full ahead of the
    # bottleneck too, so it buys no latency under sustained overload.
    assert shedding.mean_latency() == pytest.approx(
        blocking.mean_latency(), rel=0.25)

    benchmark(lambda: run_semantics(backpressure=False))
