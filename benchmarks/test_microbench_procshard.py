"""Micro-benchmark: what the multi-process backend buys (and costs).

The tentpole claim of the sharded backend is escaping the GIL: a
CPU-bound fissioned chain whose replicas spin (GIL held) must run ≥2x
faster across 4 shard processes than under the threaded runtime.  That
claim needs cores to be testable — this container may have only one —
so the speedup gate arms only when ``os.cpu_count() >= 4`` (live on
GitHub CI runners) and degrades to an IPC-tax sanity floor otherwise:
even with nothing to win, pipes, pickling and the credit protocol may
not cost more than half the threaded throughput.

The measured figures are printed either way and recorded with the host
core count in ``BENCH_8.json`` by ``spinstreams bench --sharding``.
"""

import os

from repro.bench import (
    sharded_busy_tuples_per_second,
    threaded_busy_tuples_per_second,
)

BUSY_TIME = 2e-4
REPLICATION = 4
ITEMS = 4_000

#: Required process/threaded speedup at 4 shards on a >=4-core host.
MULTI_CORE_FLOOR = 2.0
#: Single-core fallback: the process backend may not lose more than
#: half the threaded rate to IPC overhead.
IPC_TAX_FLOOR = 0.5


def test_microbench_procshard_speedup():
    threaded = threaded_busy_tuples_per_second(ITEMS, BUSY_TIME, REPLICATION)
    process = sharded_busy_tuples_per_second(4, ITEMS, BUSY_TIME, REPLICATION)
    speedup = process / threaded
    cores = os.cpu_count() or 1

    print("\nMicro-benchmark — threaded vs process backend "
          f"({REPLICATION} busy replicas x {BUSY_TIME * 1e6:.0f} us, "
          f"{cores} cores)")
    print(f"threaded   {threaded:>12,.0f} tuples/sec")
    print(f"process_4  {process:>12,.0f} tuples/sec ({speedup:.2f}x)")

    if cores >= 4:
        assert speedup >= MULTI_CORE_FLOOR, (
            f"process backend at 4 shards reached only {speedup:.2f}x over "
            f"threaded on a {cores}-core host (floor {MULTI_CORE_FLOOR}x): "
            "the GIL escape is not paying for its IPC")
    else:
        # One or two cores: there is no parallelism to win, so the only
        # testable property is that the IPC machinery is not ruinous.
        assert speedup >= IPC_TAX_FLOOR, (
            f"process backend at 4 shards kept only {speedup:.2f} of the "
            f"threaded rate on a {cores}-core host (floor {IPC_TAX_FLOOR}): "
            "IPC overhead is out of hand")
