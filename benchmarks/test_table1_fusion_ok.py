"""Table 1: a feasible fusion of the Figure 11 example.

Six operators with service times (1.0, 1.2, 0.7, 2.0, 1.5, 0.2) ms;
operators 3, 4 and 5 are under-utilized and get fused.  The paper
predicts a fused service time of 2.80 ms and no new bottleneck
(throughput stays at 1000 tuples/sec predicted, ~970 measured).  With
the probabilities printed in Figure 11 the self-consistent fused time
is 2.6375 ms; the shape target — fusion feasible, utilization of F
below one, throughput unchanged — is identical.
"""

import math

from repro.core.fusion import apply_fusion
from repro.core.report import analysis_report
from repro.core.steady_state import analyze
from repro.sim.network import SimulationConfig, simulate
from tests.conftest import make_fig11

MEMBERS = ("op3", "op4", "op5")
SIM = SimulationConfig(items=150_000, seed=21)


def run_table1():
    topology = make_fig11(0.7, 2.0, 1.5)
    fusion = apply_fusion(topology, MEMBERS, fused_name="F")
    measured_before = simulate(topology, SIM)
    measured_after = simulate(fusion.fused, SIM)
    return fusion, measured_before, measured_after


def test_table1_feasible_fusion(benchmark):
    fusion, before, after = run_table1()

    print("\nTable 1 — original topology")
    print(analysis_report(fusion.analysis_before,
                          measured_throughput=before.throughput))
    print("\nTable 1 — topology after fusing op3, op4, op5 into F")
    print(analysis_report(fusion.analysis_after,
                          measured_throughput=after.throughput))
    print(f"\npredicted fused service time: "
          f"{fusion.plan.service_time * 1e3:.4g} ms (paper: 2.80 ms)")

    # The fusion is feasible: no alert, no predicted throughput loss.
    assert not fusion.impairs_performance
    assert math.isclose(fusion.throughput_before, 1000.0)
    assert math.isclose(fusion.throughput_after, 1000.0)

    # Fused service time ~2.6 ms and utilization below one (paper 0.84).
    assert math.isclose(fusion.plan.service_time, 2.6375e-3, rel_tol=1e-9)
    rho_fused = fusion.analysis_after.utilization("F")
    assert 0.5 < rho_fused < 1.0

    # Measurements confirm: throughput unchanged within a few percent.
    assert after.throughput_error(fusion.analysis_after) < 0.03
    assert abs(after.throughput - before.throughput) < 0.05 * before.throughput

    benchmark(lambda: apply_fusion(make_fig11(0.7, 2.0, 1.5), MEMBERS,
                                   fused_name="F"))
