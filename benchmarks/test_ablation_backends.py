"""Ablation: measurement substrate — discrete-event vs threaded actors.

DESIGN.md substitutes the paper's Akka deployment with two backends:
the virtual-time discrete-event simulator (fast, deterministic) and the
threaded bounded-mailbox actor runtime (real concurrency, wall-clock).
This ablation runs the Figure 11 example on both and checks they agree
with each other and with the analytical prediction — evidence that the
conclusions drawn from the fast backend transfer to a real runtime.
"""

import pytest

from repro.core.steady_state import analyze
from repro.operators.basic import Identity
from repro.operators.source_sink import CountingSink, GeneratorSource
from repro.runtime.synthetic import PaddedOperator
from repro.runtime.system import RuntimeConfig, run_topology
from repro.sim.network import SimulationConfig, simulate
from tests.conftest import make_fig11

#: Figure 11 scaled 10x slower so the threaded runtime's sleep-based
#: service padding stays well above scheduler granularity.
SCALE = 10.0


def scaled_fig11():
    topology = make_fig11(0.7 * SCALE, 2.0 * SCALE, 1.5 * SCALE)
    # make_fig11 only parameterizes op3/op4/op5; scale the others too.
    for name in ("op1", "op2", "op6"):
        spec = topology.operator(name)
        topology = topology.with_operator(
            spec.with_service_time(spec.service_time * SCALE))
    return topology


def runtime_factories(topology):
    factories = {}
    for spec in topology.operators:
        if spec.name == topology.source:
            factories[spec.name] = lambda: GeneratorSource(seed=3)
        elif not topology.out_edges(spec.name):
            factories[spec.name] = CountingSink
        else:
            service_time = spec.service_time
            factories[spec.name] = (
                lambda st=service_time: PaddedOperator(Identity(), st))
    return factories


def test_ablation_backends_agree(benchmark):
    topology = scaled_fig11()
    predicted = analyze(topology)

    des = simulate(topology, SimulationConfig(items=60_000, seed=5))
    threaded = run_topology(
        topology, runtime_factories(topology), duration=3.0,
        config=RuntimeConfig(source_rate=predicted.source_rate),
    )

    print("\nAblation — measurement backends on the Figure 11 example")
    print(f"analytical prediction: {predicted.throughput:10.1f} items/sec")
    print(f"discrete-event:        {des.throughput:10.1f} items/sec "
          f"({des.throughput_error(predicted):.2%} vs model)")
    print(f"threaded actors:       {threaded.throughput:10.1f} items/sec "
          f"({threaded.throughput_error(predicted):.2%} vs model)")

    assert des.throughput_error(predicted) < 0.02
    assert threaded.throughput_error(predicted) < 0.10
    agreement = abs(des.throughput - threaded.throughput) / des.throughput
    assert agreement < 0.10

    # The DES is the fast backend: benchmark a full measurement sweep.
    benchmark(lambda: simulate(topology,
                               SimulationConfig(items=20_000, seed=5)))
