"""Guard the README quickstart: the documented snippet must keep working."""

import math
import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_snippet_executes(self):
        blocks = python_blocks(README.read_text(encoding="utf-8"))
        assert blocks, "README lost its quickstart code block"
        namespace = {}
        exec(compile(blocks[0], str(README), "exec"), namespace)

    def test_quickstart_numbers_still_true(self):
        """The concrete numbers quoted in the README comments."""
        from repro import (
            Edge,
            OperatorSpec,
            Topology,
            analyze,
            apply_fusion,
            eliminate_bottlenecks,
        )
        topology = Topology(
            operators=[
                OperatorSpec("source", service_time=0.001),
                OperatorSpec("classify", service_time=0.004),
                OperatorSpec("store", service_time=0.0005),
            ],
            edges=[Edge("source", "classify"), Edge("classify", "store")],
        )
        result = analyze(topology)
        assert math.isclose(result.throughput, 250.0)
        assert result.bottlenecks == ["classify"]

        optimized = eliminate_bottlenecks(topology)
        assert optimized.replications["classify"] == 4
        assert math.isclose(optimized.throughput, 1000.0)

        fusion = apply_fusion(topology, ["classify", "store"])
        assert isinstance(fusion.impairs_performance, bool)

    def test_cli_commands_in_readme_exist(self):
        from repro.cli import build_parser
        parser = build_parser()
        subcommands = set()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                subcommands.update(action.choices)
        text = README.read_text(encoding="utf-8")
        for command in re.findall(r"^spinstreams (\w+)", text, re.MULTILINE):
            assert command in subcommands, f"README references unknown " \
                                           f"subcommand {command!r}"
