"""The SS3xx verdicts gating every backend's entry point.

The acceptance case of the subsystem: an operator whose ``__init__``
captures a lambda is refused — with the rule ID in the error — by the
process backend, the deployment-plan generator and the sharded
placement (which pins it to the glue shard instead of scattering it),
while ``unsafe=True`` remains an explicit escape hatch everywhere.
"""

import pytest

from repro.codegen.deployment import deployment_plan, shard_placement
from repro.core.graph import (
    CheckpointConfig,
    Edge,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)
from repro.runtime.adaptive import AdaptiveConfig
from repro.runtime.checkpoint import run_recoverable
from repro.runtime.procshard import ProcShardConfig, ProcShardSystem
from repro.runtime.system import ActorSystem, RuntimeConfig

from tests.analysis.fixtures import deployfixtures as fx

SOURCE_CLASS = "repro.operators.source_sink.GeneratorSource"
SINK_CLASS = "repro.operators.source_sink.CollectingSink"


def _runnable(work_class, work_state=StateKind.STATELESS,
              checkpoint=None, replication=1):
    return Topology(
        operators=[
            OperatorSpec("source", service_time=0.001,
                         operator_class=SOURCE_CLASS,
                         operator_args={"seed": 7}),
            OperatorSpec("work", service_time=0.0005, state=work_state,
                         replication=replication,
                         operator_class=work_class),
            OperatorSpec("sink", service_time=0.0002,
                         state=StateKind.STATEFUL,
                         output_selectivity=0.0,
                         operator_class=SINK_CLASS),
        ],
        edges=[Edge("source", "work"), Edge("work", "sink")],
        name="gate-pipeline",
        checkpoint=checkpoint,
    )


def _factories(topology):
    from repro.testing.differential import topology_factories

    return topology_factories(topology)


class TestActorSystemGate:
    def test_checkpointed_build_refuses_unsnapshotable_state(self):
        topology = _runnable(fx.RESOURCE_NO_HOOKS_PATH, StateKind.STATEFUL,
                             checkpoint=CheckpointConfig(interval_items=25))
        with pytest.raises(TopologyError, match="SS302"):
            ActorSystem.build(topology, _factories(topology),
                              config=RuntimeConfig(watchdog=False))

    def test_unsafe_flag_overrides_the_gate(self):
        topology = _runnable(fx.RESOURCE_NO_HOOKS_PATH, StateKind.STATEFUL,
                             checkpoint=CheckpointConfig(interval_items=25))
        system = ActorSystem.build(
            topology, _factories(topology),
            config=RuntimeConfig(watchdog=False, unsafe=True))
        system.stop()

    def test_elastic_build_refuses_global_writers(self):
        topology = _runnable(fx.GLOBAL_APPENDER_PATH)
        with pytest.raises(TopologyError, match="SS305"):
            ActorSystem.build(topology, _factories(topology),
                              config=RuntimeConfig(watchdog=False,
                                                   elastic=True))

    def test_elastic_with_checkpoint_names_ss310(self):
        topology = _runnable(fx.MODULE_FN_PATH)
        config = RuntimeConfig(watchdog=False, elastic=True,
                               checkpoint=CheckpointConfig())
        with pytest.raises(TopologyError, match="SS310"):
            ActorSystem.build(topology, _factories(topology), config=config)

    def test_threaded_build_is_not_gated(self):
        # No checkpoint, no elasticity: lambdas and globals are legal.
        topology = _runnable(fx.LAMBDA_CLOSURE_PATH)
        system = ActorSystem.build(topology, _factories(topology),
                                   config=RuntimeConfig(watchdog=False))
        system.stop()


class TestRecoverableGate:
    def test_refuses_before_spawning_anything(self):
        topology = _runnable(fx.HALF_HOOKED_PATH, StateKind.STATEFUL)
        with pytest.raises(TopologyError, match="SS302"):
            run_recoverable(topology, _factories(topology),
                            runtime=RuntimeConfig(max_items=10,
                                                  watchdog=False),
                            checkpoint=CheckpointConfig(interval_items=5))


class TestProcShardGate:
    def test_refuses_unpicklable_operator(self):
        topology = _runnable(fx.LAMBDA_CLOSURE_PATH)
        with pytest.raises(TopologyError, match="SS301"):
            ProcShardSystem.build(
                topology, _factories(topology),
                config=ProcShardConfig(shards=2),
                placement={"source": (0,), "work": (1,), "sink": (0,)})

    def test_refuses_scattered_stateful_operator(self):
        topology = _runnable(fx.PLAIN_STATE_PATH, StateKind.STATEFUL,
                             replication=2)
        with pytest.raises(TopologyError, match="SS312"):
            ProcShardSystem.build(
                topology, _factories(topology),
                config=ProcShardConfig(shards=2),
                placement={"source": (0,), "work": (0, 1), "sink": (0,)})

    def test_placement_errors_name_ss311(self):
        topology = _runnable(fx.MODULE_FN_PATH)
        with pytest.raises(TopologyError, match="SS311"):
            ProcShardSystem.build(
                topology, _factories(topology),
                config=ProcShardConfig(shards=2),
                placement={"source": (0,), "work": (0, 1), "sink": (0,)})


class TestDeploymentPlanGate:
    def test_sharded_plan_refuses_unpicklable_closure(self):
        """The PR's acceptance criterion: deployment_plan(shards=N)
        rejects an operator whose __init__ captures a lambda."""
        topology = _runnable(fx.LAMBDA_CLOSURE_PATH)
        with pytest.raises(TopologyError, match="SS301") as excinfo:
            deployment_plan(topology, shards=2)
        assert "work" in str(excinfo.value)

    def test_unsafe_flag_overrides(self):
        topology = _runnable(fx.LAMBDA_CLOSURE_PATH)
        plan = deployment_plan(topology, shards=2, unsafe=True)
        assert "shards" in plan

    def test_unsharded_plan_is_not_process_gated(self):
        # Without shards the plan targets the threaded backend, where
        # closure-holding state never crosses a pickle boundary.
        topology = _runnable(fx.LAMBDA_CLOSURE_PATH)
        assert isinstance(deployment_plan(topology), dict)

    def test_checkpointed_plan_refuses_unsnapshotable_state(self):
        topology = _runnable(fx.RESOURCE_NO_HOOKS_PATH, StateKind.STATEFUL,
                             checkpoint=CheckpointConfig(interval_items=25))
        with pytest.raises(TopologyError, match="SS302"):
            deployment_plan(topology)


class TestShardPlacementPinning:
    def test_unsafe_operator_is_pinned_to_the_glue_shard(self):
        topology = _runnable(fx.LAMBDA_CLOSURE_PATH, replication=2)
        placement = shard_placement(topology, shards=3)
        assert placement.by_vertex["work"] == (0, 0)
        assert "SS301" in placement.reasons["work"]

    def test_safe_operators_still_spread(self):
        topology = _runnable(fx.MODULE_FN_PATH, replication=2)
        placement = shard_placement(topology, shards=2)
        assert set(placement.by_vertex["work"]) <= {0, 1}


class TestAdaptiveConfigGate:
    def test_zero_cooldown_is_rejected_with_rule_id(self):
        with pytest.raises(ValueError, match="SS314"):
            AdaptiveConfig(cooldown_ticks=0)

    def test_unsafe_flag_allows_it(self):
        assert AdaptiveConfig(cooldown_ticks=0, unsafe=True).cooldown_ticks == 0
