"""Operator classes seeding the SS3xx deployment-safety defect corpus.

Each operator rule (SS301–SS305) gets at least one trigger class and a
clean near-miss that is as close as possible to the trigger without
the defect, so the analyzer's discrimination (not just its recall) is
under test.  Plan rules (SS310–SS315) are triggered from topology
fixtures and test code, not classes.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Sequence

from repro.core.graph import StateKind
from repro.operators.base import KeyedOperator, Operator


def _path(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def _scale_by_two(value: float) -> float:
    """A module-level function: picklable, unlike its lambda twin."""
    return value * 2.0


#: A module-level lambda an __init__ might capture by name (trigger).
SCALE_LAMBDA = lambda value: value * 2.0  # noqa: E731

#: Module-level mutable containers a hot path might write (trigger).
EVENT_LOG: List[Any] = []
SHARED_INDEX: Dict[str, Any] = {}


# -- SS301: lambda captured in __init__ state --------------------------
class LambdaClosureMap(Operator):
    """Trigger: __init__ stores a literal lambda — unpicklable."""

    def __init__(self, scale: float = 2.0) -> None:
        self.fn = lambda value: value * scale

    def operator_function(self, item: Any) -> List[Any]:
        return [self.fn(item)]


class NamedLambdaMap(Operator):
    """Trigger: captures a *module-level* lambda by name."""

    def __init__(self) -> None:
        self.fn = SCALE_LAMBDA

    def operator_function(self, item: Any) -> List[Any]:
        return [self.fn(item)]


class NestedDefMap(Operator):
    """Trigger: a function defined inside __init__ is closure-bound."""

    def __init__(self, scale: float = 2.0) -> None:
        def scaled(value: float) -> float:
            return value * scale

        self.fn = scaled

    def operator_function(self, item: Any) -> List[Any]:
        return [self.fn(item)]


class ModuleFnMap(Operator):
    """Near-miss: same shape, but the default is a module-level def."""

    def __init__(self) -> None:
        self.fn = _scale_by_two

    def operator_function(self, item: Any) -> List[Any]:
        return [self.fn(item)]


# -- SS301: OS resources in __init__ state -----------------------------
class LockHolder(Operator):
    """Trigger: a lock (and a file handle) cannot cross fork/pickle."""

    def __init__(self, path: str = "/dev/null") -> None:
        self.lock = threading.Lock()
        self.sink = open(path, "w")

    def operator_function(self, item: Any) -> List[Any]:
        return [item]


class PlainStateHolder(Operator):
    """Near-miss: plain containers and scalars pickle fine."""

    state = StateKind.STATEFUL

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self.buffer: List[Any] = []

    def operator_function(self, item: Any) -> List[Any]:
        self.buffer.append(item)
        if len(self.buffer) >= self.capacity:
            drained, self.buffer = self.buffer, []
            return drained
        return []


# -- SS301/SS303: one-shot iterator in __init__ state ------------------
class IteratorSource(Operator):
    """Trigger: holds ``iter(...)`` without snapshot hooks — neither
    picklable (SS301) nor replayable after recovery (SS303)."""

    state = StateKind.STATEFUL

    def __init__(self, items: Sequence[Any] = ()) -> None:
        self._iter = iter(list(items))
        self.exhausted = False

    def operator_function(self, item: Any) -> List[Any]:
        try:
            return [next(self._iter)]
        except StopIteration:
            self.exhausted = True
            return []


class MaterializedSource(Operator):
    """Near-miss: materializes the items and overrides both hooks
    (the shape of the catalog's IterableSource)."""

    state = StateKind.STATEFUL

    def __init__(self, items: Sequence[Any] = ()) -> None:
        self._items = list(items)
        self._position = 0

    def operator_function(self, item: Any) -> List[Any]:
        if self._position >= len(self._items):
            return []
        value = self._items[self._position]
        self._position += 1
        return [value]

    def snapshot_state(self) -> Any:
        return {"position": self._position}

    def restore_state(self, snapshot: Any) -> None:
        self._position = int(snapshot["position"])


# -- SS302: unsnapshotable resource under default deepcopy -------------
class ResourceNoHooks(Operator):
    """Trigger: __init__ resource + default deepcopy snapshot."""

    state = StateKind.STATEFUL

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.count = 0

    def operator_function(self, item: Any) -> List[Any]:
        self.count += 1
        return [item]


class ResourceWithHooks(Operator):
    """Near-miss: same resource, but explicit hooks skip it."""

    state = StateKind.STATEFUL

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.count = 0

    def operator_function(self, item: Any) -> List[Any]:
        self.count += 1
        return [item]

    def snapshot_state(self) -> Any:
        return {"count": self.count}

    def restore_state(self, snapshot: Any) -> None:
        self.count = int(snapshot["count"])


class HalfHookedCounter(Operator):
    """Trigger: overrides snapshot_state only — restore would use the
    in-place default against a custom snapshot shape."""

    state = StateKind.STATEFUL

    def __init__(self) -> None:
        self.count = 0

    def operator_function(self, item: Any) -> List[Any]:
        self.count += 1
        return [item]

    def snapshot_state(self) -> Any:
        return {"count": self.count}


# -- SS304: partitioned state that migration cannot split --------------
class KeylessPartitioned(Operator):
    """Trigger: meant to be declared partitioned-stateful in the spec,
    but the class never overrides key_of."""

    def __init__(self) -> None:
        self._windows: Dict[str, List[float]] = {}

    def operator_function(self, item: Any) -> List[Any]:
        key = str(item.get("key", "")) if hasattr(item, "get") else ""
        self._windows.setdefault(key, []).append(1.0)
        return [item]


class MonolithicKeyed(KeyedOperator):
    """Trigger: keyed, but a global accumulator spans all keys — a
    migration handing half the key space away would tear it."""

    def __init__(self, key_field: str = "key") -> None:
        super().__init__(key_field)
        self._last: Dict[str, float] = {}
        self.grand_total = 0.0

    def operator_function(self, item: Any) -> List[Any]:
        key = self.key_of(item) or ""
        value = float(item.get("value", 0.0))
        self._last[key] = value
        self.grand_total += value
        return [item]


class CleanKeyed(KeyedOperator):
    """Near-miss: every write is key-indexed (migratable by key)."""

    def __init__(self, key_field: str = "key") -> None:
        super().__init__(key_field)
        self._last: Dict[str, float] = {}

    def operator_function(self, item: Any) -> List[Any]:
        key = self.key_of(item) or ""
        self._last[key] = float(item.get("value", 0.0))
        return [item]


# -- SS305: module-global state written from the hot path --------------
class GlobalAppender(Operator):
    """Trigger: appends to a module-level list — replicas race."""

    def operator_function(self, item: Any) -> List[Any]:
        EVENT_LOG.append(item)
        return [item]


class GlobalRebinder(Operator):
    """Trigger: rebinds a module global via a ``global`` statement."""

    def operator_function(self, item: Any) -> List[Any]:
        global SHARED_INDEX
        SHARED_INDEX = {"last": item}
        return [item]


class LocalShadower(Operator):
    """Near-miss: a *local* named like the module container."""

    def operator_function(self, item: Any) -> List[Any]:
        EVENT_LOG = []  # noqa: N806 - deliberate shadow
        EVENT_LOG.append(item)
        return [math.fsum([1.0])] and [item]


LAMBDA_CLOSURE_PATH = _path(LambdaClosureMap)
NAMED_LAMBDA_PATH = _path(NamedLambdaMap)
NESTED_DEF_PATH = _path(NestedDefMap)
MODULE_FN_PATH = _path(ModuleFnMap)
LOCK_HOLDER_PATH = _path(LockHolder)
PLAIN_STATE_PATH = _path(PlainStateHolder)
ITERATOR_SOURCE_PATH = _path(IteratorSource)
MATERIALIZED_SOURCE_PATH = _path(MaterializedSource)
RESOURCE_NO_HOOKS_PATH = _path(ResourceNoHooks)
RESOURCE_WITH_HOOKS_PATH = _path(ResourceWithHooks)
HALF_HOOKED_PATH = _path(HalfHookedCounter)
KEYLESS_PARTITIONED_PATH = _path(KeylessPartitioned)
MONOLITHIC_KEYED_PATH = _path(MonolithicKeyed)
CLEAN_KEYED_PATH = _path(CleanKeyed)
GLOBAL_APPENDER_PATH = _path(GlobalAppender)
GLOBAL_REBINDER_PATH = _path(GlobalRebinder)
LOCAL_SHADOWER_PATH = _path(LocalShadower)
