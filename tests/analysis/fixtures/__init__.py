"""Seeded defect corpus for the static-analysis passes.

``ss1XX_{trigger,clean}.xml`` drafts exercise the graph-verifier rules;
:mod:`.opfixtures` holds operator classes that exercise the
operator-code rules.  Each rule has exactly one trigger and one clean
near-miss, so both the hit and the no-false-positive side are pinned.
"""
