"""Operator classes seeding the SS2xx defect corpus.

Each rule gets a trigger class and a clean near-miss that is as close
as possible to the trigger without the defect, so the analyzer's
discrimination (not just its recall) is under test.
"""

from __future__ import annotations

import random
from typing import Any, List

from repro.core.graph import StateKind
from repro.operators.base import KeyedOperator, Operator


def _path(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


# -- SS201: declared stateless, provably stateful ----------------------
class SneakyCounter(Operator):
    """Declared stateless (the default) but keeps a running count."""

    def __init__(self) -> None:
        self.total = 0

    def operator_function(self, item: Any) -> List[Any]:
        self.total += 1
        return [item]


class HonestMap(Operator):
    """Near-miss: same shape, but the accumulator is a local."""

    def operator_function(self, item: Any) -> List[Any]:
        total = 0
        total += 1
        return [item] if total else []


# -- SS201 via alias/helper: writes hidden behind indirection ----------
class AliasedBuffer(Operator):
    """Declared stateless; mutates state through a local alias and a
    helper method (the transitive closure must catch both)."""

    def __init__(self) -> None:
        self._items: List[Any] = []

    def _stash(self, item: Any) -> None:
        bucket = self._items
        bucket.append(item)

    def operator_function(self, item: Any) -> List[Any]:
        self._stash(item)
        return [item]


# -- SS202: declared stateful, provably pure ---------------------------
class OverDeclaredMap(Operator):
    """Declared stateful but the function is a pure map."""

    state = StateKind.STATEFUL

    def operator_function(self, item: Any) -> List[Any]:
        return [item]


class GenuineAccumulator(Operator):
    """Near-miss: declared stateful and genuinely stateful."""

    state = StateKind.STATEFUL

    def __init__(self) -> None:
        self.seen = 0

    def operator_function(self, item: Any) -> List[Any]:
        self.seen += 1
        return [item]


# -- SS203: mutable class-level attribute ------------------------------
class SharedBufferOperator(Operator):
    """A class-level list is shared by every replica: a static race."""

    state = StateKind.STATEFUL
    shared: List[Any] = []

    def operator_function(self, item: Any) -> List[Any]:
        self.shared.append(item)
        return [item]


class ImmutableDefaultsOperator(Operator):
    """Near-miss: the class-level attribute is an immutable tuple."""

    defaults = ("a", "b")

    def operator_function(self, item: Any) -> List[Any]:
        return [item] if item in self.defaults else []


# -- SS204: nondeterminism ---------------------------------------------
class JitterMap(Operator):
    """Module-level random: replicas and replays diverge."""

    def operator_function(self, item: Any) -> List[Any]:
        return [item] if random.random() < 0.5 else []


class SeededJitterMap(Operator):
    """Near-miss: a privately seeded RNG is reproducible."""

    def __init__(self, seed: int = 1) -> None:
        self.rng = random.Random(seed)

    def operator_function(self, item: Any) -> List[Any]:
        return [item] if self.rng.random() < 0.5 else []


# -- SS205: impure key_of ----------------------------------------------
class RandomKeyRouter(KeyedOperator):
    """key_of consults an RNG: routing is unstable across deliveries."""

    def __init__(self) -> None:
        super().__init__(key_field="key")
        self._last = {}

    def key_of(self, item: Any) -> str:
        return random.choice(["a", "b"])

    def operator_function(self, item: Any) -> List[Any]:
        self._last[self.key_of(item)] = item
        return [item]


class FieldKeyRouter(KeyedOperator):
    """Near-miss: key_of is a pure projection of the item."""

    def __init__(self) -> None:
        super().__init__(key_field="key")
        self._last = {}

    def operator_function(self, item: Any) -> List[Any]:
        self._last[self.key_of(item)] = item
        return [item]


# -- SS206: I/O side effects -------------------------------------------
class PrintingMap(Operator):
    """Prints every item: output interleaving breaks under fission."""

    def operator_function(self, item: Any) -> List[Any]:
        print(item)
        return [item]


class QuietMap(Operator):
    """Near-miss: formats the item but performs no I/O."""

    def operator_function(self, item: Any) -> List[Any]:
        label = f"item={item!r}"
        return [item] if label else []


# -- SS207: unanalyzable operator class --------------------------------
#: A dotted path that does not import (the SS207 trigger).
MISSING_CLASS_PATH = f"{__name__}.DoesNotExist"

SNEAKY_COUNTER_PATH = _path(SneakyCounter)
HONEST_MAP_PATH = _path(HonestMap)
ALIASED_BUFFER_PATH = _path(AliasedBuffer)
OVER_DECLARED_PATH = _path(OverDeclaredMap)
GENUINE_ACCUMULATOR_PATH = _path(GenuineAccumulator)
SHARED_BUFFER_PATH = _path(SharedBufferOperator)
IMMUTABLE_DEFAULTS_PATH = _path(ImmutableDefaultsOperator)
JITTER_PATH = _path(JitterMap)
SEEDED_JITTER_PATH = _path(SeededJitterMap)
RANDOM_KEY_PATH = _path(RandomKeyRouter)
FIELD_KEY_PATH = _path(FieldKeyRouter)
PRINTING_PATH = _path(PrintingMap)
QUIET_PATH = _path(QuietMap)
