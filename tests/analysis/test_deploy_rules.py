"""The deployment-safety analyzer: the SS3xx corpus and plan verifier.

Mirrors the SS1xx/SS2xx corpus style: every operator rule (SS301-305)
has trigger classes and a clean near-miss in ``deployfixtures``, every
plan rule (SS310-315) has a trigger and a near-miss built from XML
fixtures or in test code, and a property test pins that Algorithm 5's
random testbeds are deployable on every backend.
"""

import importlib
import inspect
import os
import pkgutil

import pytest

from repro.analysis.deploy import (
    DEPLOY_RULES,
    PLAN_RULES,
    analyze_deploy,
    analyze_deploy_path,
    deploy_errors,
    process_unsafe_operators,
    try_analyze_deploy,
    verify_deploy,
    verify_plan,
)
from repro.analysis.lint import BACKENDS, lint_topology
from repro.core.graph import (
    CheckpointConfig,
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
)
from repro.operators.base import Operator
from repro.runtime.adaptive import AdaptiveConfig
from repro.runtime.system import RuntimeConfig
from repro.topology.random_gen import RandomTopologyGenerator

from tests.analysis.fixtures import deployfixtures as fx

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _fixture(name):
    return os.path.join(FIXTURES, name)


def _topology(work_class=None, work_state=StateKind.STATELESS,
              source_class=None, checkpoint=None):
    """source -> work -> sink with an optional class on ``work``."""
    keys = (KeyDistribution.uniform(4)
            if work_state is StateKind.PARTITIONED else None)
    return Topology(
        operators=[
            OperatorSpec("source", service_time=0.001,
                         operator_class=source_class),
            OperatorSpec("work", service_time=0.0005, state=work_state,
                         keys=keys, operator_class=work_class),
            OperatorSpec("sink", service_time=0.0002,
                         output_selectivity=0.0),
        ],
        edges=[Edge("source", "work"), Edge("work", "sink")],
        name="deploy-fixture",
        checkpoint=checkpoint,
    )


class TestDeployFacts:
    def test_lambda_closure_is_not_process_safe(self):
        facts = analyze_deploy_path(fx.LAMBDA_CLOSURE_PATH)
        assert not facts.process_safe
        assert any("lambda" in e for e in facts.init_lambdas)

    def test_named_module_lambda_is_caught(self):
        facts = analyze_deploy_path(fx.NAMED_LAMBDA_PATH)
        assert not facts.process_safe
        assert any("SCALE_LAMBDA" in e for e in facts.init_lambdas)

    def test_nested_def_is_caught(self):
        facts = analyze_deploy_path(fx.NESTED_DEF_PATH)
        assert not facts.process_safe

    def test_module_function_default_is_safe(self):
        facts = analyze_deploy_path(fx.MODULE_FN_PATH)
        assert facts.process_safe

    def test_resources_are_not_process_safe(self):
        facts = analyze_deploy_path(fx.LOCK_HOLDER_PATH)
        assert not facts.process_safe
        assert len(facts.init_resources) == 2  # the lock and the file

    def test_iterator_without_hooks_is_not_replayable(self):
        facts = analyze_deploy_path(fx.ITERATOR_SOURCE_PATH)
        assert facts.init_iterators and not facts.replayable

    def test_materialized_source_is_replayable(self):
        facts = analyze_deploy_path(fx.MATERIALIZED_SOURCE_PATH)
        assert facts.replayable and facts.process_safe

    def test_local_class_is_unimportable(self):
        class Hidden(Operator):
            def operator_function(self, item):
                return [item]

        facts = analyze_deploy(Hidden)
        assert not facts.importable
        assert any("function body" in e for e in facts.import_evidence)

    def test_rejects_non_operator_classes(self):
        with pytest.raises(TypeError):
            analyze_deploy(dict)

    def test_try_analyze_swallows_bad_paths(self):
        assert try_analyze_deploy("no.such.module.Cls") is None
        assert try_analyze_deploy(None) is None


#: (rule, trigger path, clean near-miss path, declared state, verify
#: kwargs) — the operator-rule defect corpus.  The same near-miss must
#: stay clean under the exact configuration that fires the trigger.
_CKPT = CheckpointConfig(interval_items=50)
CORPUS = [
    ("SS301", fx.LAMBDA_CLOSURE_PATH, fx.MODULE_FN_PATH,
     StateKind.STATELESS, dict(backend="process")),
    ("SS301", fx.NAMED_LAMBDA_PATH, fx.MODULE_FN_PATH,
     StateKind.STATELESS, dict(backend="process")),
    ("SS301", fx.NESTED_DEF_PATH, fx.MODULE_FN_PATH,
     StateKind.STATELESS, dict(backend="process")),
    ("SS301", fx.LOCK_HOLDER_PATH, fx.PLAIN_STATE_PATH,
     StateKind.STATEFUL, dict(backend="process")),
    ("SS301", fx.ITERATOR_SOURCE_PATH, fx.MATERIALIZED_SOURCE_PATH,
     StateKind.STATEFUL, dict(backend="process")),
    ("SS302", fx.RESOURCE_NO_HOOKS_PATH, fx.RESOURCE_WITH_HOOKS_PATH,
     StateKind.STATEFUL, dict(backend="threaded", checkpoint=_CKPT)),
    ("SS302", fx.HALF_HOOKED_PATH, fx.RESOURCE_WITH_HOOKS_PATH,
     StateKind.STATEFUL, dict(backend="threaded", checkpoint=_CKPT)),
    ("SS303", fx.ITERATOR_SOURCE_PATH, fx.MATERIALIZED_SOURCE_PATH,
     StateKind.STATEFUL, dict(backend="threaded", checkpoint=_CKPT,
                              at_source=True)),
    ("SS304", fx.KEYLESS_PARTITIONED_PATH, fx.CLEAN_KEYED_PATH,
     StateKind.PARTITIONED, dict(backend="elastic")),
    ("SS304", fx.MONOLITHIC_KEYED_PATH, fx.CLEAN_KEYED_PATH,
     StateKind.PARTITIONED, dict(backend="elastic")),
    ("SS305", fx.GLOBAL_APPENDER_PATH, fx.LOCAL_SHADOWER_PATH,
     StateKind.STATELESS, dict(backend="process")),
    ("SS305", fx.GLOBAL_REBINDER_PATH, fx.LOCAL_SHADOWER_PATH,
     StateKind.STATELESS, dict(backend="process")),
]


def _verify(class_path, state, backend, checkpoint=None, at_source=False):
    if at_source:
        topology = _topology(source_class=class_path, checkpoint=checkpoint)
    else:
        topology = _topology(class_path, state, checkpoint=checkpoint)
    return verify_deploy(topology, backend=backend)


@pytest.mark.parametrize("rule,trigger,clean,state,kwargs", CORPUS,
                         ids=[f"{r}-{t.rsplit('.', 1)[-1]}"
                              for r, t, _, _, _ in CORPUS])
class TestDeployCorpus:
    def test_trigger_fires_the_rule(self, rule, trigger, clean, state,
                                    kwargs):
        report = _verify(trigger, state, **kwargs)
        assert report.has(rule), (
            f"{trigger} did not fire {rule}; got {report.rules()}")

    def test_clean_near_miss_does_not_fire(self, rule, trigger, clean,
                                           state, kwargs):
        report = _verify(clean, state, **kwargs)
        assert not report.has(rule), (
            f"{clean} falsely fired {rule}: {report.render()}")


def test_corpus_covers_every_deploy_rule():
    assert {entry[0] for entry in CORPUS} == set(DEPLOY_RULES)


class TestRuleActivation:
    """Rules only fire for backends whose contract they protect."""

    def test_threaded_without_checkpoint_has_no_preconditions(self):
        report = verify_deploy(_topology(fx.LAMBDA_CLOSURE_PATH),
                               backend="threaded")
        assert report.clean and report.passes == ("deploy",)

    def test_lambda_state_is_fine_when_staying_in_process(self):
        # SS301 is about the pickle boundary; the elastic backend is
        # thread-based and does not care.
        report = verify_deploy(_topology(fx.LAMBDA_CLOSURE_PATH),
                               backend="elastic")
        assert not report.has("SS301")

    def test_runtime_config_widens_the_rule_set(self):
        topology = _topology(fx.RESOURCE_NO_HOOKS_PATH, StateKind.STATEFUL)
        runtime = RuntimeConfig(checkpoint=_CKPT)
        assert verify_deploy(topology, backend="threaded").clean
        assert verify_deploy(topology, backend="threaded",
                             runtime=runtime).has("SS302")

    def test_deploy_errors_keeps_only_requested_rules(self):
        topology = _topology(fx.LOCK_HOLDER_PATH, StateKind.STATEFUL,
                             checkpoint=_CKPT)
        rules = {d.rule for d in deploy_errors(topology, ["SS301"])}
        assert rules == {"SS301"}

    def test_process_unsafe_operators_names_the_offender(self):
        topology = _topology(fx.LAMBDA_CLOSURE_PATH)
        assert process_unsafe_operators(topology) == frozenset({"work"})


class TestPlanRules:
    def test_ss310_elastic_with_checkpoint(self):
        topology = _topology(checkpoint=_CKPT)
        report = verify_plan(topology, backend="elastic")
        assert report.has("SS310")
        assert not verify_plan(topology, backend="threaded").has("SS310")

    def test_ss310_from_xml_fixture(self):
        report = lint_topology(_fixture("ss310_trigger.xml"),
                               backend="elastic", plan=True)
        assert report.has("SS310")
        clean = lint_topology(_fixture("ss310_clean.xml"),
                              backend="elastic", plan=True)
        assert not clean.has("SS310")

    def test_ss311_unknown_operator(self):
        report = verify_plan(
            _topology(), backend="process",
            placement={"source": (0,), "work": (0,), "sink": (0,),
                       "ghost": (1,)},
            shards=2)
        assert report.has("SS311")
        assert any(d.subject == "ghost" for d in report.by_rule("SS311"))

    def test_ss311_replica_count_mismatch(self):
        report = verify_plan(
            _topology(), backend="process",
            placement={"source": (0,), "work": (0, 1), "sink": (0,)},
            shards=2)
        assert report.has("SS311")

    def test_ss311_shard_out_of_range(self):
        report = verify_plan(
            _topology(), backend="process",
            placement={"source": (0,), "work": (5,), "sink": (0,)},
            shards=2)
        assert report.has("SS311")

    def test_ss311_missing_assignment(self):
        report = verify_plan(
            _topology(), backend="process",
            placement={"source": (0,), "work": (0,)}, shards=1)
        assert any(d.subject == "sink" for d in report.by_rule("SS311"))

    def test_ss311_valid_placement_is_clean(self):
        report = verify_plan(
            _topology(), backend="process",
            placement={"source": (0,), "work": (1,), "sink": (0,)},
            shards=2)
        assert report.clean

    def test_ss312_scattered_stateful_operator(self):
        topology = Topology(
            operators=[
                OperatorSpec("source", service_time=0.001),
                OperatorSpec("work", service_time=0.0005, replication=2,
                             state=StateKind.STATEFUL),
                OperatorSpec("sink", service_time=0.0002,
                             output_selectivity=0.0),
            ],
            edges=[Edge("source", "work"), Edge("work", "sink")],
            name="scatter",
        )
        scattered = verify_plan(
            topology, backend="process",
            placement={"source": (0,), "work": (0, 1), "sink": (0,)},
            shards=2)
        assert scattered.has("SS312")
        gathered = verify_plan(
            topology, backend="process",
            placement={"source": (0,), "work": (1, 1), "sink": (0,)},
            shards=2)
        assert not gathered.has("SS312")

    def test_ss312_sees_through_declared_stateless(self):
        # A provably-stateful class scattered over shards is flagged
        # even when the spec under-declares it.
        from tests.analysis.fixtures import opfixtures

        topology = Topology(
            operators=[
                OperatorSpec("source", service_time=0.001),
                OperatorSpec("work", service_time=0.0005, replication=2,
                             operator_class=opfixtures.SNEAKY_COUNTER_PATH),
                OperatorSpec("sink", service_time=0.0002,
                             output_selectivity=0.0),
            ],
            edges=[Edge("source", "work"), Edge("work", "sink")],
            name="sneaky-scatter",
        )
        report = verify_plan(
            topology, backend="process",
            placement={"source": (0,), "work": (0, 1), "sink": (0,)},
            shards=2)
        assert report.has("SS312")

    def test_ss313_edge_flush_beyond_budget(self):
        report = lint_topology(_fixture("ss313_trigger.xml"), plan=True)
        assert report.has("SS313")
        clean = lint_topology(_fixture("ss313_clean.xml"), plan=True)
        assert not clean.has("SS313")

    def test_ss313_global_batch_beyond_budget(self):
        topology = _topology().with_latency_budget(0.01)
        runtime = RuntimeConfig(batch_size=8, batch_flush_timeout=0.05)
        report = verify_plan(topology, runtime=runtime)
        assert report.has("SS313")
        assert not verify_plan(topology).has("SS313")

    def test_ss313_needs_a_declared_budget(self):
        report = lint_topology(_fixture("ss313_trigger.xml"))
        assert not report.has("SS313")  # plan pass is opt-in

    def test_ss314_zero_cooldown(self):
        adaptive = AdaptiveConfig(cooldown_ticks=0, unsafe=True)
        report = verify_plan(_topology(), backend="elastic",
                             adaptive=adaptive)
        assert report.has("SS314")
        assert not verify_plan(_topology(), backend="elastic",
                               adaptive=AdaptiveConfig()).has("SS314")

    def test_ss315_overhead_beyond_ceiling_warns(self):
        heavy = CheckpointConfig(interval_items=10, snapshot_overhead=0.01)
        report = verify_plan(_topology(checkpoint=heavy))
        assert report.has("SS315")
        assert report.exit_code <= 1  # a warning, not an error

    def test_ss315_cheap_checkpoint_is_clean(self):
        cheap = CheckpointConfig(interval_items=1000,
                                 snapshot_overhead=1e-6)
        assert not verify_plan(_topology(checkpoint=cheap)).has("SS315")

    def test_plan_rules_all_covered_here(self):
        # Every SS31x rule is pinned by a test above.
        assert set(PLAN_RULES) == {"SS310", "SS311", "SS312", "SS313",
                                   "SS314", "SS315"}


class TestLintFacade:
    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            lint_topology(_topology(), backend="quantum")

    def test_backend_adds_the_deploy_pass(self):
        report = lint_topology(_topology(fx.LAMBDA_CLOSURE_PATH),
                               backend="process")
        assert "deploy" in report.passes
        assert report.has("SS301")

    def test_plan_adds_the_plan_pass(self):
        report = lint_topology(_topology(), plan=True)
        assert "plan" in report.passes

    def test_default_lint_skips_the_deploy_pass(self):
        report = lint_topology(_topology(fx.LAMBDA_CLOSURE_PATH))
        assert "deploy" not in report.passes
        assert not report.has("SS301")

    def test_process_placement_is_solved_and_checked(self):
        # With shards given, the solver-driven placement is computed
        # and verified; the built-in placement pins unsafe operators
        # to the glue shard, so it must verify clean.
        report = lint_topology(_topology(), backend="process", plan=True,
                               shards=2)
        assert report.ok


class TestCatalogAudit:
    def test_builtin_catalog_is_deployable_everywhere(self):
        """Every shipped operator must survive any backend: importable,
        picklable __init__ state, replayable, no global writes."""
        import repro.operators as ops

        checked = 0
        for modinfo in pkgutil.iter_modules(ops.__path__):
            module = importlib.import_module(
                f"repro.operators.{modinfo.name}")
            for _, cls in inspect.getmembers(module, inspect.isclass):
                if (not issubclass(cls, Operator) or inspect.isabstract(cls)
                        or cls.__module__ != module.__name__):
                    continue
                facts = analyze_deploy(cls)
                assert facts.process_safe, (
                    f"{facts.class_path}: not process-safe "
                    f"({facts.pickle_evidence()})")
                assert facts.replayable, (
                    f"{facts.class_path}: not replayable "
                    f"({facts.init_iterators})")
                assert not facts.global_writes, (
                    f"{facts.class_path}: writes module globals "
                    f"({facts.global_writes})")
                checked += 1
        assert checked >= 25  # the whole shipped catalog, not a subset


@pytest.mark.parametrize("seed", range(1, 21))
def test_random_testbeds_deploy_on_every_backend(seed):
    """Algorithm 5's generated testbeds must be deployable as-is: the
    generator only draws from the audited catalog, so the SS3xx pass
    has nothing to say on any backend."""
    topology = RandomTopologyGenerator(seed=seed).generate()
    for backend in BACKENDS:
        report = lint_topology(topology, check_code=False,
                               backend=backend, plan=True)
        assert report.ok, (
            f"seed {seed} fails on {backend}: {report.render()}")
