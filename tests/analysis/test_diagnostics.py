"""The diagnostic framework: severities, reports, renderings."""

import json

import pytest

from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    Severity,
    all_rules,
    report_from,
    rule_info,
)


def _diag(rule="SS101", severity=Severity.ERROR, message="boom",
          subject=None, location=None):
    return Diagnostic(rule=rule, severity=severity, message=message,
                      subject=subject, location=location)


class TestSeverity:
    def test_ordering_doubles_as_exit_code(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert int(Severity.ERROR) == 2

    def test_parse_round_trips_labels(self):
        for severity in Severity:
            assert Severity.parse(severity.label) is severity

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestDiagnostic:
    def test_render_mentions_rule_subject_and_location(self):
        text = _diag(subject="op1", location="app.xml").render()
        assert "error SS101" in text
        assert "[op1]" in text
        assert "(app.xml)" in text

    def test_to_dict_is_json_serializable(self):
        payload = json.dumps(_diag().to_dict())
        assert json.loads(payload)["rule"] == "SS101"


class TestLintReport:
    def test_empty_report_is_clean_and_ok(self):
        report = LintReport()
        assert report.clean and report.ok
        assert report.exit_code == 0
        assert report.max_severity is None

    def test_info_only_report_exits_zero(self):
        report = report_from([_diag(severity=Severity.INFO)])
        assert not report.clean and report.ok
        assert report.exit_code == 0

    def test_warning_and_error_exit_codes(self):
        warn = report_from([_diag(severity=Severity.WARNING)])
        err = warn.merge(report_from([_diag(severity=Severity.ERROR)]))
        assert warn.exit_code == 1
        assert err.exit_code == 2

    def test_merge_concatenates_and_unions_passes(self):
        left = report_from([_diag(rule="SS101")], subject_name="t",
                           passes=("graph",))
        right = report_from([_diag(rule="SS201")], passes=("opcode",))
        merged = left + right
        assert merged.rules() == ["SS101", "SS201"]
        assert merged.passes == ("graph", "opcode")
        assert merged.subject_name == "t"

    def test_filter_keeps_min_severity(self):
        report = report_from([
            _diag(severity=Severity.INFO),
            _diag(severity=Severity.WARNING),
            _diag(severity=Severity.ERROR),
        ])
        assert len(report.filter(Severity.WARNING)) == 2

    def test_render_orders_most_severe_first(self):
        report = report_from([
            _diag(rule="SS901", severity=Severity.INFO),
            _diag(rule="SS902", severity=Severity.ERROR),
        ])
        lines = report.render().splitlines()
        assert "SS902" in lines[1]
        assert "SS901" in lines[2]

    def test_json_schema_is_stable(self):
        report = report_from([_diag()], subject_name="app",
                             passes=("graph",))
        payload = json.loads(report.to_json())
        assert set(payload) == {"subject", "passes", "ok", "exit_code",
                                "counts", "diagnostics"}
        assert payload["counts"] == {"error": 1, "warning": 0, "info": 0}
        assert payload["exit_code"] == 2

    def test_header_lines_for_clean_report(self):
        assert "clean" in LintReport().header_lines()[0]


class TestRuleRegistry:
    def test_every_pass_registers_its_rules(self):
        # Importing the passes populates the registry.
        import repro.analysis  # noqa: F401

        owners = {info.owner for info in all_rules()}
        assert owners == {"graph", "opcode", "deploy", "plan"}
        rules = {info.rule for info in all_rules()}
        assert {"SS101", "SS201", "SS301", "SS310"} <= rules

    def test_rule_info_lookup(self):
        import repro.analysis  # noqa: F401

        info = rule_info("SS301")
        assert info is not None
        assert info.owner == "deploy"
        assert info.severity is Severity.ERROR
        assert rule_info("SS999") is None


class TestSarif:
    def test_sarif_rule_metadata_comes_from_the_registry(self):
        import repro.analysis  # noqa: F401

        report = report_from([
            _diag(rule="SS301", subject="work",
                  location="pkg.mod.Cls"),
            _diag(rule="SS315", severity=Severity.WARNING,
                  location="app.xml"),
        ])
        payload = json.loads(report.to_sarif())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert rules["SS315"]["defaultConfiguration"]["level"] == "warning"
        assert "shortDescription" in rules["SS301"]

    def test_sarif_location_shapes(self):
        report = report_from([
            _diag(rule="SS301", subject="work", location="pkg.mod.Cls"),
            _diag(rule="SS108", location="app.xml"),
        ])
        results = json.loads(report.to_sarif())["runs"][0]["results"]
        by_rule = {r["ruleId"]: r for r in results}
        logical = by_rule["SS301"]["locations"][0]["logicalLocations"]
        assert logical[0]["fullyQualifiedName"] == "pkg.mod.Cls"
        physical = by_rule["SS108"]["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "app.xml"
        assert by_rule["SS301"]["message"]["text"].startswith("[work]")

    def test_unregistered_rules_still_emit(self):
        payload = json.loads(report_from([_diag(rule="XX999")]).to_sarif())
        run = payload["runs"][0]
        assert run["tool"]["driver"]["rules"] == [{"id": "XX999"}]
        assert run["results"][0]["ruleIndex"] == 0
