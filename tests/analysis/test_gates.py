"""The analysis verdicts gating the optimization pipeline.

The acceptance case of the subsystem: bottleneck elimination refuses
to replicate an operator that is declared stateless but provably
stateful, automatic fusion keeps impure operators standalone, SS2Py
embeds the lint report in generated programs, and the shrinker
attaches a lint report to reproduction kernels.
"""

import warnings

import pytest

from repro.codegen.ss2py import CodegenConfig, generate_code
from repro.core.autofusion import auto_fuse
from repro.core.candidates import enumerate_candidates
from repro.core.fission import eliminate_bottlenecks
from repro.core.graph import (
    Edge,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)
from repro.testing.shrink import shrink
from repro.tool import SpinStreams

from tests.analysis.fixtures import opfixtures as fx


def _bottleneck_topology(work_class, work_state=StateKind.STATELESS):
    """``work`` is a 4x bottleneck, so fission wants to replicate it."""
    return Topology(
        operators=[
            OperatorSpec("source", service_time=0.001),
            OperatorSpec("work", service_time=0.004, state=work_state,
                         operator_class=work_class),
            OperatorSpec("sink", service_time=0.0002,
                         output_selectivity=0.0),
        ],
        edges=[Edge("source", "work"), Edge("work", "sink")],
        name="gate-fixture",
    )


class TestFissionGate:
    def test_refuses_to_replicate_provably_stateful_operator(self):
        """The PR's acceptance criterion: a STATELESS declaration with
        stateful code must not be replicated."""
        topology = _bottleneck_topology(fx.SNEAKY_COUNTER_PATH)
        with pytest.raises(TopologyError, match="SS201") as excinfo:
            eliminate_bottlenecks(topology)
        message = str(excinfo.value)
        assert "work" in message
        assert "stateless" in message and "stateful" in message

    def test_warn_mode_replicates_with_a_warning(self):
        topology = _bottleneck_topology(fx.SNEAKY_COUNTER_PATH)
        with pytest.warns(UserWarning, match="SS201"):
            result = eliminate_bottlenecks(topology, code_safety="warn")
        assert result.optimized.operator("work").replication > 1

    def test_off_mode_skips_the_check(self):
        topology = _bottleneck_topology(fx.SNEAKY_COUNTER_PATH)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = eliminate_bottlenecks(topology, code_safety="off")
        assert result.optimized.operator("work").replication > 1

    def test_honest_stateless_code_replicates_normally(self):
        topology = _bottleneck_topology(fx.HONEST_MAP_PATH)
        result = eliminate_bottlenecks(topology)
        assert result.optimized.operator("work").replication > 1

    def test_declared_stateful_is_not_second_guessed(self):
        """A correct (or over-cautious) declaration never trips the
        gate: the paper's algorithm throttles the source instead."""
        topology = _bottleneck_topology(fx.SNEAKY_COUNTER_PATH,
                                        work_state=StateKind.STATEFUL)
        result = eliminate_bottlenecks(topology)
        assert result.optimized.operator("work").replication == 1

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="code_safety"):
            eliminate_bottlenecks(
                _bottleneck_topology(None), code_safety="maybe")

    def test_tool_facade_forwards_code_safety(self):
        tool = SpinStreams(_bottleneck_topology(fx.SNEAKY_COUNTER_PATH))
        with pytest.raises(TopologyError, match="SS201"):
            tool.eliminate_bottlenecks()


def _fusion_topology(middle_class):
    """A slow source over an under-utilized chain around ``middle``."""
    return Topology(
        operators=[
            OperatorSpec("source", service_time=0.01),
            OperatorSpec("left", service_time=0.0001),
            OperatorSpec("middle", service_time=0.0001,
                         operator_class=middle_class),
            OperatorSpec("right", service_time=0.0001),
            OperatorSpec("sink", service_time=0.0001,
                         output_selectivity=0.0),
        ],
        edges=[Edge("source", "left"), Edge("left", "middle"),
               Edge("middle", "right"), Edge("right", "sink")],
        name="fusion-gate",
    )


class TestFusionExclusion:
    def test_enumerate_candidates_respects_exclude(self):
        topology = _fusion_topology(fx.JITTER_PATH)
        candidates = enumerate_candidates(topology, exclude={"middle"})
        assert candidates
        assert all("middle" not in c.members for c in candidates)

    def test_auto_fuse_keeps_impure_operators_standalone(self):
        topology = _fusion_topology(fx.JITTER_PATH)
        result = auto_fuse(topology)
        assert result.plans  # something still fused around it
        assert all("middle" not in plan.members for plan in result.plans)
        assert "middle" in result.fused.names

    def test_code_safety_off_allows_fusing_impure_operators(self):
        topology = _fusion_topology(fx.JITTER_PATH)
        result = auto_fuse(topology, code_safety=False)
        assert any("middle" in plan.members for plan in result.plans)

    def test_pure_operators_fuse_by_default(self):
        topology = _fusion_topology(fx.QUIET_PATH)
        result = auto_fuse(topology)
        assert any("middle" in plan.members for plan in result.plans)


def _executable_topology(work_class):
    """A runnable pipeline: every operator names a class (codegen
    requires it)."""
    return Topology(
        operators=[
            OperatorSpec(
                "source", service_time=0.001,
                operator_class="repro.operators.source_sink.GeneratorSource"),
            OperatorSpec("work", service_time=0.0005,
                         operator_class=work_class),
            OperatorSpec(
                "sink", service_time=0.0002, state=StateKind.STATEFUL,
                output_selectivity=0.0,
                operator_class="repro.operators.source_sink.CountingSink"),
        ],
        edges=[Edge("source", "work"), Edge("work", "sink")],
        name="codegen-gate",
    )


class TestCodegenHeader:
    def test_generated_program_embeds_lint_report(self):
        code = generate_code(_executable_topology(fx.SNEAKY_COUNTER_PATH))
        assert "# Static checks (spinstreams lint)" in code
        assert "SS201" in code
        compile(code, "<generated>", "exec")  # header must stay valid code

    def test_clean_topology_gets_clean_header(self):
        code = generate_code(_executable_topology(fx.HONEST_MAP_PATH))
        assert "# Static checks (spinstreams lint): clean" in code

    def test_header_can_be_disabled(self):
        code = generate_code(
            _executable_topology(fx.HONEST_MAP_PATH),
            config=CodegenConfig(include_lint=False),
        )
        assert "Static checks" not in code


class TestShrinkLintAttachment:
    def test_shrunk_kernel_carries_its_lint_report(self):
        topology = _bottleneck_topology(fx.SNEAKY_COUNTER_PATH)
        result = shrink(topology, lambda t: "work" in t.names)
        assert result.lint is not None
        assert result.lint.has("SS201")

    def test_edge_capacity_survives_shrinking(self):
        topology = Topology(
            operators=[
                OperatorSpec("source", service_time=0.001),
                OperatorSpec("a", service_time=0.0005),
                OperatorSpec("b", service_time=0.0005),
                OperatorSpec("sink", service_time=0.0002,
                             output_selectivity=0.0),
            ],
            edges=[Edge("source", "a", capacity=7),
                   Edge("a", "b", capacity=7), Edge("b", "sink")],
            name="capacities",
        )
        result = shrink(topology, lambda t: "a" in t.names)
        kept = {(e.source, e.target): e.capacity
                for e in result.reduced.edges}
        assert kept[("source", "a")] == 7


def test_tool_lint_entry_point():
    tool = SpinStreams(_bottleneck_topology(fx.SNEAKY_COUNTER_PATH))
    report = tool.lint()
    assert report.has("SS201")
    assert not tool.lint(check_code=False).has("SS201")
