"""The operator-code analyzer: state inference and the SS2xx corpus."""

import importlib
import inspect
import pkgutil

import pytest

from repro.analysis.opcode import (
    OPCODE_RULES,
    analyze_class_path,
    analyze_operator_class,
    impure_operators,
    state_rank,
    try_analyze,
    verify_code,
)
from repro.core.graph import (
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
)
from repro.operators.base import Operator

from tests.analysis.fixtures import opfixtures as fx


def _topology(work_class=None, work_state=StateKind.STATELESS):
    """source -> work -> sink with an optional class on ``work``."""
    keys = (KeyDistribution.uniform(4)
            if work_state is StateKind.PARTITIONED else None)
    return Topology(
        operators=[
            OperatorSpec("source", service_time=0.001),
            OperatorSpec("work", service_time=0.0005, state=work_state,
                         keys=keys, operator_class=work_class),
            OperatorSpec("sink", service_time=0.0002,
                         output_selectivity=0.0),
        ],
        edges=[Edge("source", "work"), Edge("work", "sink")],
        name="opcode-fixture",
    )


class TestStateInference:
    def test_counter_write_is_stateful(self):
        facts = analyze_class_path(fx.SNEAKY_COUNTER_PATH)
        assert facts.inferred is StateKind.STATEFUL
        assert facts.mismatch
        assert any("self.total" in w for w in facts.writes)

    def test_local_accumulator_stays_stateless(self):
        facts = analyze_class_path(fx.HONEST_MAP_PATH)
        assert facts.inferred is StateKind.STATELESS
        assert not facts.writes

    def test_alias_and_helper_indirection_is_caught(self):
        facts = analyze_class_path(fx.ALIASED_BUFFER_PATH)
        assert facts.inferred is StateKind.STATEFUL
        assert any("append" in w for w in facts.writes)

    def test_keyed_writer_is_partitioned(self):
        facts = analyze_class_path(fx.FIELD_KEY_PATH)
        assert facts.inferred is StateKind.PARTITIONED
        assert facts.keyed

    def test_rank_ordering(self):
        assert (state_rank(StateKind.STATELESS)
                < state_rank(StateKind.PARTITIONED)
                < state_rank(StateKind.STATEFUL))

    def test_rejects_non_operator_classes(self):
        with pytest.raises(TypeError):
            analyze_operator_class(dict)

    def test_try_analyze_swallows_bad_paths(self):
        assert try_analyze(fx.MISSING_CLASS_PATH) is None
        assert try_analyze(None) is None


CORPUS = [
    ("SS201", fx.SNEAKY_COUNTER_PATH, fx.HONEST_MAP_PATH,
     StateKind.STATELESS),
    ("SS201", fx.ALIASED_BUFFER_PATH, fx.HONEST_MAP_PATH,
     StateKind.STATELESS),
    ("SS202", fx.OVER_DECLARED_PATH, fx.GENUINE_ACCUMULATOR_PATH,
     StateKind.STATEFUL),
    ("SS203", fx.SHARED_BUFFER_PATH, fx.IMMUTABLE_DEFAULTS_PATH,
     None),
    ("SS204", fx.JITTER_PATH, fx.SEEDED_JITTER_PATH,
     StateKind.STATELESS),
    ("SS205", fx.RANDOM_KEY_PATH, fx.FIELD_KEY_PATH,
     StateKind.PARTITIONED),
    ("SS206", fx.PRINTING_PATH, fx.QUIET_PATH, StateKind.STATELESS),
    ("SS207", fx.MISSING_CLASS_PATH, fx.HONEST_MAP_PATH,
     StateKind.STATELESS),
]


@pytest.mark.parametrize("rule,trigger,clean,declared", CORPUS,
                         ids=[f"{r}-{t.rsplit('.', 1)[-1]}"
                              for r, t, _, _ in CORPUS])
class TestOpcodeCorpus:
    def _declared(self, path, declared):
        if declared is not None:
            return declared
        # SS203: use the class's own declaration (the rule is
        # independent of the declared kind).
        from repro.operators.base import load_operator_class

        return load_operator_class(path).state

    def test_trigger_fires_the_rule(self, rule, trigger, clean, declared):
        report = verify_code(
            _topology(trigger, self._declared(trigger, declared)))
        assert report.has(rule), (
            f"{trigger} did not fire {rule}; got {report.rules()}")

    def test_clean_near_miss_does_not_fire(self, rule, trigger, clean,
                                           declared):
        report = verify_code(
            _topology(clean, self._declared(clean, declared)))
        assert not report.has(rule), (
            f"{clean} falsely fired {rule}: {report.render()}")


def test_corpus_covers_every_opcode_rule():
    assert {entry[0] for entry in CORPUS} == set(OPCODE_RULES)


def test_specs_without_classes_are_skipped():
    report = verify_code(_topology(None))
    assert report.clean


def test_over_declared_is_info_severity():
    report = verify_code(
        _topology(fx.OVER_DECLARED_PATH, StateKind.STATEFUL))
    assert report.has("SS202")
    assert report.exit_code == 0


def test_impure_operators_flags_nondet_and_io():
    topology = Topology(
        operators=[
            OperatorSpec("source", service_time=0.001),
            OperatorSpec("jitter", service_time=0.0005,
                         operator_class=fx.JITTER_PATH),
            OperatorSpec("printer", service_time=0.0005,
                         operator_class=fx.PRINTING_PATH),
            OperatorSpec("quiet", service_time=0.0005,
                         operator_class=fx.QUIET_PATH),
            OperatorSpec("sink", service_time=0.0002,
                         output_selectivity=0.0),
        ],
        edges=[Edge("source", "jitter"), Edge("jitter", "printer"),
               Edge("printer", "quiet"), Edge("quiet", "sink")],
        name="impurity",
    )
    assert impure_operators(topology) == frozenset({"jitter", "printer"})


def test_builtin_catalog_audits_clean():
    """Every shipped operator's declaration matches its code (and no
    built-in is impure) — the declared-vs-inferred regression gate."""
    import repro.operators as ops

    checked = 0
    for modinfo in pkgutil.iter_modules(ops.__path__):
        module = importlib.import_module(f"repro.operators.{modinfo.name}")
        for _, cls in inspect.getmembers(module, inspect.isclass):
            if (not issubclass(cls, Operator) or inspect.isabstract(cls)
                    or cls.__module__ != module.__name__):
                continue
            facts = analyze_operator_class(cls)
            assert not facts.mismatch, (
                f"{facts.class_path}: declared {facts.declared.value} but "
                f"inferred {facts.inferred.value} ({facts.evidence()})")
            assert facts.pure, (
                f"{facts.class_path}: impure built-in "
                f"({facts.nondeterministic + facts.io_calls})")
            assert not facts.mutable_class_attrs, (
                f"{facts.class_path}: shared mutable class attributes "
                f"{facts.mutable_class_attrs}")
            assert not facts.impure_key_of
            checked += 1
    assert checked >= 25  # the whole shipped catalog, not a subset
