"""The graph verifier against the seeded defect corpus.

Every SS1xx rule has one trigger fixture and one clean near-miss; the
parametrized tests pin both the hit and the absence of false
positives.  A property test checks that Algorithm 5's random testbeds
always lint clean at error level — the generator's output is, by
construction, a valid input for the paper's pipeline.
"""

import os

import pytest

from repro.analysis import lint_topology, verify_graph
from repro.analysis.diagnostics import Severity
from repro.analysis.graph import GRAPH_RULES, draft_of
from repro.topology.random_gen import RandomTopologyGenerator
from repro.topology.xmlio import parse_draft, parse_topology

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: Rules whose trigger is warning severity (the rest are errors).
WARNING_RULES = {"SS107", "SS115", "SS116"}


def _fixture(rule: str, kind: str) -> str:
    return os.path.join(FIXTURES, f"{rule.lower()}_{kind}.xml")


@pytest.mark.parametrize("rule", GRAPH_RULES)
class TestDefectCorpus:
    def test_trigger_fires_the_rule(self, rule):
        report = verify_graph(parse_draft(_fixture(rule, "trigger")))
        assert report.has(rule), (
            f"{rule} trigger fixture did not fire {rule}; "
            f"got {report.rules()}")
        expected = (Severity.WARNING if rule in WARNING_RULES
                    else Severity.ERROR)
        assert all(d.severity is expected for d in report.by_rule(rule))

    def test_clean_near_miss_stays_clean(self, rule):
        report = verify_graph(parse_draft(_fixture(rule, "clean")))
        assert report.clean, (
            f"{rule} near-miss fixture is not clean: {report.render()}")

    def test_diagnostics_carry_the_source_path(self, rule):
        path = _fixture(rule, "trigger")
        report = verify_graph(parse_draft(path))
        assert all(d.location == path for d in report.by_rule(rule))


def test_corpus_covers_every_graph_rule():
    for rule in GRAPH_RULES:
        assert os.path.exists(_fixture(rule, "trigger"))
        assert os.path.exists(_fixture(rule, "clean"))


def test_verify_graph_accepts_validated_topologies():
    topology = parse_topology(
        _fixture("SS101", "clean"))
    report = verify_graph(topology)
    assert report.clean
    assert report.passes == ("graph",)


def test_draft_of_round_trips_specs():
    topology = parse_topology(_fixture("SS112", "clean"))
    draft = draft_of(topology)
    rebuilt = draft.build(strict=True)
    assert rebuilt.names == topology.names
    assert rebuilt.operator("work").keys is not None


def test_stateful_replication_warning_on_validated_topology():
    topology = parse_topology(_fixture("SS116", "trigger"))
    report = verify_graph(topology)
    assert report.has("SS116")
    assert report.ok  # warning, not error


@pytest.mark.parametrize("seed", range(1, 21))
def test_random_testbeds_lint_clean_at_error_level(seed):
    """Algorithm 5 output is always a valid pipeline input."""
    topology = RandomTopologyGenerator(seed=seed).generate()
    report = lint_topology(topology)
    assert report.ok, (
        f"seed {seed} topology has lint errors:\n{report.render()}")
