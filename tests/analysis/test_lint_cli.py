"""``spinstreams lint``: text/JSON output and severity exit codes."""

import json
import os

from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "examples", "topologies")


def _fixture(name):
    return os.path.join(FIXTURES, name)


class TestExitCodes:
    def test_clean_topology_exits_zero(self, capsys):
        code = main(["lint", _fixture("ss101_clean.xml")])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_warning_exits_one(self, capsys):
        code = main(["lint", _fixture("ss116_trigger.xml")])
        assert code == 1
        assert "SS116" in capsys.readouterr().out

    def test_error_exits_two(self, capsys):
        code = main(["lint", _fixture("ss108_trigger.xml")])
        assert code == 2
        assert "SS108" in capsys.readouterr().out


class TestJsonOutput:
    def test_json_report_schema(self, capsys):
        code = main(["lint", "--json", _fixture("ss108_trigger.xml")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        assert payload["exit_code"] == 2
        assert payload["counts"]["error"] >= 1
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert "SS108" in rules

    def test_report_written_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["lint", "--json", "-o", str(out),
                     _fixture("ss101_clean.xml")])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert "written to" in capsys.readouterr().out


class TestSarifOutput:
    def test_sarif_log_schema(self, capsys):
        code = main(["lint", "--sarif", _fixture("ss108_trigger.xml")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        assert payload["version"] == "2.1.0"
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "spinstreams"
        assert {r["id"] for r in driver["rules"]} >= {"SS108"}
        results = payload["runs"][0]["results"]
        assert any(r["ruleId"] == "SS108" and r["level"] == "error"
                   for r in results)

    def test_sarif_anchors_xml_locations(self, capsys):
        main(["lint", "--sarif", _fixture("ss108_trigger.xml")])
        payload = json.loads(capsys.readouterr().out)
        locations = [loc
                     for result in payload["runs"][0]["results"]
                     for loc in result.get("locations", ())]
        uris = {loc["physicalLocation"]["artifactLocation"]["uri"]
                for loc in locations if "physicalLocation" in loc}
        assert any(uri.endswith("ss108_trigger.xml") for uri in uris)


class TestDeployFlags:
    def test_backend_process_rejects_unpicklable_closure(self, capsys):
        """The PR's acceptance criterion: the lambda-closure operator
        fails ``lint --backend process`` with the rule ID."""
        code = main(["lint", "--backend", "process",
                     _fixture("ss301_trigger.xml")])
        assert code == 2
        assert "SS301" in capsys.readouterr().out

    def test_same_topology_passes_without_backend(self, capsys):
        code = main(["lint", _fixture("ss301_trigger.xml")])
        capsys.readouterr()
        assert code == 0

    def test_clean_near_miss_passes_backend_process(self, capsys):
        code = main(["lint", "--backend", "process",
                     _fixture("ss301_clean.xml")])
        capsys.readouterr()
        assert code == 0

    def test_plan_json_reports_the_plan_pass(self, capsys):
        code = main(["lint", "--json", "--plan", "--backend", "process",
                     "--shards", "2", _fixture("ss301_clean.xml")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert "deploy" in payload["passes"]
        assert "plan" in payload["passes"]

    def test_elastic_plan_flags_checkpoint_conflict(self, capsys):
        code = main(["lint", "--json", "--plan", "--backend", "elastic",
                     _fixture("ss310_trigger.xml")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        assert "SS310" in {d["rule"] for d in payload["diagnostics"]}


class TestCodePass:
    def test_examples_lint_clean(self, capsys):
        """The shipped example topologies must stay error-free (the CI
        lint-smoke job enforces the same invariant)."""
        for name in sorted(os.listdir(EXAMPLES)):
            code = main(["lint", os.path.join(EXAMPLES, name)])
            capsys.readouterr()
            assert code == 0, f"{name} has lint findings"

    def test_examples_deploy_clean_on_every_backend(self, capsys):
        """The shipped examples must also pass the full deployment
        check — the CI lint-smoke job runs the same command."""
        for name in sorted(os.listdir(EXAMPLES)):
            for backend in ("threaded", "process", "elastic"):
                code = main(["lint", "--plan", "--backend", backend,
                             os.path.join(EXAMPLES, name)])
                out = capsys.readouterr().out
                assert code == 0, (
                    f"{name} fails deployment lint on {backend}: {out}")

    def test_no_code_flag_skips_opcode_pass(self, capsys):
        path = os.path.join(EXAMPLES, "runnable_pipeline.xml")
        code = main(["lint", "--json", "--no-code", path])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["passes"] == ["graph"]
