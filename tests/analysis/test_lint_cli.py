"""``spinstreams lint``: text/JSON output and severity exit codes."""

import json
import os

from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "examples", "topologies")


def _fixture(name):
    return os.path.join(FIXTURES, name)


class TestExitCodes:
    def test_clean_topology_exits_zero(self, capsys):
        code = main(["lint", _fixture("ss101_clean.xml")])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_warning_exits_one(self, capsys):
        code = main(["lint", _fixture("ss116_trigger.xml")])
        assert code == 1
        assert "SS116" in capsys.readouterr().out

    def test_error_exits_two(self, capsys):
        code = main(["lint", _fixture("ss108_trigger.xml")])
        assert code == 2
        assert "SS108" in capsys.readouterr().out


class TestJsonOutput:
    def test_json_report_schema(self, capsys):
        code = main(["lint", "--json", _fixture("ss108_trigger.xml")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        assert payload["exit_code"] == 2
        assert payload["counts"]["error"] >= 1
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert "SS108" in rules

    def test_report_written_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["lint", "--json", "-o", str(out),
                     _fixture("ss101_clean.xml")])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert "written to" in capsys.readouterr().out


class TestCodePass:
    def test_examples_lint_clean(self, capsys):
        """The shipped example topologies must stay error-free (the CI
        lint-smoke job enforces the same invariant)."""
        for name in sorted(os.listdir(EXAMPLES)):
            code = main(["lint", os.path.join(EXAMPLES, name)])
            capsys.readouterr()
            assert code == 0, f"{name} has lint findings"

    def test_no_code_flag_skips_opcode_pass(self, capsys):
        path = os.path.join(EXAMPLES, "runnable_pipeline.xml")
        code = main(["lint", "--json", "--no-code", path])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["passes"] == ["graph"]
