"""Unit tests for the XML topology format."""

import math
import os

import pytest

from repro.core.graph import KeyDistribution, OperatorSpec, StateKind
from repro.topology.random_gen import generate_testbed
from repro.topology.xmlio import (
    XmlFormatError,
    parse_topology,
    read_key_distribution,
    topology_to_xml,
    write_key_distribution,
    write_topology,
)
from tests.conftest import make_fig11

MINIMAL = """
<topology name="mini">
  <operator name="src" service-time="1.0"/>
  <operator name="work" service-time="2.5" type="stateless"/>
  <edge from="src" to="work"/>
</topology>
"""

RICH = """
<topology name="rich">
  <operator name="src" service-time="1.0" time-unit="ms"
            class="repro.operators.source_sink.GeneratorSource"/>
  <operator name="agg" service-time="4000" time-unit="us"
            type="partitioned-stateful" input-selectivity="10"
            replication="3"
            class="repro.operators.aggregates.KeyedWindowedAggregate">
    <arg name="length" value="1000" type="int"/>
    <arg name="slide" value="10" type="int"/>
    <arg name="statistic" value="mean"/>
    <keys>
      <key id="a" probability="0.5"/>
      <key id="b" probability="0.3"/>
      <key id="c" probability="0.2"/>
    </keys>
  </operator>
  <operator name="flt" service-time="0.002" time-unit="s"
            output-selectivity="0.6"/>
  <edge from="src" to="agg" probability="0.7"/>
  <edge from="src" to="flt" probability="0.3"/>
</topology>
"""


class TestParsing:
    def test_minimal(self):
        topology = parse_topology(MINIMAL)
        assert topology.name == "mini"
        assert topology.names == ["src", "work"]
        assert math.isclose(topology.operator("work").service_time, 2.5e-3)

    def test_time_units(self):
        topology = parse_topology(RICH)
        assert math.isclose(topology.operator("src").service_time, 1e-3)
        assert math.isclose(topology.operator("agg").service_time, 4e-3)
        assert math.isclose(topology.operator("flt").service_time, 2e-3)

    def test_state_and_selectivities(self):
        topology = parse_topology(RICH)
        agg = topology.operator("agg")
        assert agg.state is StateKind.PARTITIONED
        assert agg.input_selectivity == 10.0
        assert agg.replication == 3
        assert topology.operator("flt").output_selectivity == 0.6

    def test_typed_args(self):
        agg = parse_topology(RICH).operator("agg")
        assert agg.operator_args == {"length": 1000, "slide": 10,
                                     "statistic": "mean"}

    def test_inline_keys(self):
        agg = parse_topology(RICH).operator("agg")
        assert math.isclose(agg.keys.max_frequency(), 0.5)
        assert len(agg.keys) == 3

    def test_edge_probabilities(self):
        topology = parse_topology(RICH)
        assert math.isclose(topology.edge("src", "agg").probability, 0.7)

    def test_operator_class_recorded(self):
        topology = parse_topology(RICH)
        assert topology.operator("src").operator_class.endswith(
            "GeneratorSource")


class TestParsingErrors:
    def test_invalid_xml(self):
        with pytest.raises(XmlFormatError, match="invalid XML"):
            parse_topology("<topology><broken</topology>")

    def test_wrong_root(self):
        with pytest.raises(XmlFormatError, match="root element"):
            parse_topology("<graph/>")

    def test_missing_required_attribute(self):
        with pytest.raises(XmlFormatError, match="missing required"):
            parse_topology('<topology><operator name="a"/></topology>')

    def test_unknown_time_unit(self):
        xml = ('<topology><operator name="a" service-time="1" '
               'time-unit="fortnights"/></topology>')
        with pytest.raises(XmlFormatError, match="time unit"):
            parse_topology(xml)

    def test_bad_service_time(self):
        xml = '<topology><operator name="a" service-time="soon"/></topology>'
        with pytest.raises(XmlFormatError, match="bad service-time"):
            parse_topology(xml)

    def test_unknown_element(self):
        xml = ('<topology><operator name="a" service-time="1"/>'
               "<wormhole/></topology>")
        with pytest.raises(XmlFormatError, match="unexpected element"):
            parse_topology(xml)

    def test_unknown_arg_type(self):
        xml = ('<topology><operator name="a" service-time="1">'
               '<arg name="x" value="1" type="complex"/></operator>'
               "</topology>")
        with pytest.raises(XmlFormatError, match="unknown arg type"):
            parse_topology(xml)

    def test_empty_keys_element(self):
        xml = ('<topology><operator name="a" service-time="1" '
               'type="partitioned"><keys/></operator></topology>')
        with pytest.raises(XmlFormatError, match="<keys>"):
            parse_topology(xml)

    def test_bad_edge_probability(self):
        xml = ('<topology><operator name="a" service-time="1"/>'
               '<operator name="b" service-time="1"/>'
               '<edge from="a" to="b" probability="likely"/></topology>')
        with pytest.raises(XmlFormatError, match="bad probability"):
            parse_topology(xml)

    def test_missing_file(self, tmp_path):
        missing = str(tmp_path / "no_such_topology.xml")
        with pytest.raises(XmlFormatError, match="not found") as excinfo:
            parse_topology(missing)
        message = str(excinfo.value)
        assert "no_such_topology.xml" in message
        assert os.path.abspath(missing) in message

    def test_missing_relative_file_mentions_cwd_resolution(self):
        # A TopologyError subclass, so the CLI reports it as a user
        # error instead of a traceback.
        from repro.core.graph import TopologyError

        with pytest.raises(TopologyError, match="working directory"):
            parse_topology("definitely_not_here.xml")


class TestRoundTrip:
    def test_fig11_round_trip(self):
        original = make_fig11()
        parsed = parse_topology(topology_to_xml(original))
        assert parsed.names == original.names
        for name in original.names:
            assert math.isclose(parsed.operator(name).service_time,
                                original.operator(name).service_time)
        for edge in original.edges:
            assert math.isclose(
                parsed.edge(edge.source, edge.target).probability,
                edge.probability,
            )

    def test_testbed_round_trips_exactly(self):
        for topology in generate_testbed(5):
            parsed = parse_topology(topology_to_xml(topology))
            for spec in topology.operators:
                twin = parsed.operator(spec.name)
                assert twin.state is spec.state
                assert math.isclose(twin.service_time, spec.service_time)
                assert math.isclose(twin.input_selectivity,
                                    spec.input_selectivity)
                assert math.isclose(twin.output_selectivity,
                                    spec.output_selectivity)
                assert dict(twin.operator_args) == dict(spec.operator_args)
                if spec.keys is not None:
                    assert dict(twin.keys.frequencies) == pytest.approx(
                        dict(spec.keys.frequencies))

    def test_write_and_parse_file(self, tmp_path):
        path = tmp_path / "topo.xml"
        write_topology(make_fig11(), str(path))
        parsed = parse_topology(str(path))
        assert parsed.name == "fig11"

    def test_serializer_rejects_unknown_unit(self):
        with pytest.raises(XmlFormatError, match="time unit"):
            topology_to_xml(make_fig11(), time_unit="parsec")


FIXTURES = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "examples", "topologies")


class TestFixtureFileRoundTrip:
    """Shipped fixtures survive parse -> serialize -> reparse intact."""

    @pytest.mark.parametrize("filename", [
        "fig11.xml", "runnable_pipeline.xml", "testbed_sample.xml",
    ])
    def test_fixture_round_trips(self, filename):
        original = parse_topology(os.path.join(FIXTURES, filename))
        parsed = parse_topology(topology_to_xml(original))
        assert parsed.name == original.name
        assert parsed.names == original.names
        for spec in original.operators:
            twin = parsed.operator(spec.name)
            assert twin.state is spec.state
            assert math.isclose(twin.service_time, spec.service_time)
            assert math.isclose(twin.input_selectivity,
                                spec.input_selectivity)
            assert math.isclose(twin.output_selectivity,
                                spec.output_selectivity)
            assert twin.replication == spec.replication
            assert twin.operator_class == spec.operator_class
            assert dict(twin.operator_args) == dict(spec.operator_args)
            if spec.keys is None:
                assert twin.keys is None
            else:
                assert dict(twin.keys.frequencies) == pytest.approx(
                    dict(spec.keys.frequencies))
        for edge in original.edges:
            assert math.isclose(
                parsed.edge(edge.source, edge.target).probability,
                edge.probability,
            )


class TestKeyFiles:
    def test_round_trip_csv(self, tmp_path):
        path = str(tmp_path / "keys.csv")
        keys = KeyDistribution.zipf(10, 1.3)
        write_key_distribution(keys, path)
        loaded = read_key_distribution(path)
        assert dict(loaded.frequencies) == pytest.approx(
            dict(keys.frequencies))

    def test_keys_file_reference(self, tmp_path):
        keys_path = tmp_path / "keys.csv"
        write_key_distribution(KeyDistribution.uniform(4), str(keys_path))
        xml_path = tmp_path / "topo.xml"
        xml_path.write_text(
            '<topology><operator name="a" service-time="1" '
            'type="partitioned"><keys file="keys.csv"/></operator>'
            "</topology>"
        )
        topology = parse_topology(str(xml_path))
        assert len(topology.operator("a").keys) == 4

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "keys.csv"
        path.write_text("# header\n\nk0,0.5\nk1,0.5\n")
        assert len(read_key_distribution(str(path))) == 2

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "keys.csv"
        path.write_text("k0,0.5,extra\n")
        with pytest.raises(XmlFormatError, match="key,probability"):
            read_key_distribution(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "keys.csv"
        path.write_text("# nothing\n")
        with pytest.raises(XmlFormatError, match="empty"):
            read_key_distribution(str(path))


class TestCheckpointElement:
    XML = (
        '<topology name="ck">'
        '<checkpoint interval-items="50" retained="3" '
        'snapshot-overhead="2.0" time-unit="ms"/>'
        '<operator name="a" service-time="1"/>'
        '</topology>'
    )

    def test_parse(self):
        topology = parse_topology(self.XML)
        assert topology.checkpoint is not None
        assert topology.checkpoint.interval_items == 50
        assert topology.checkpoint.retained == 3
        assert topology.checkpoint.snapshot_overhead == pytest.approx(2.0e-3)

    def test_defaults(self):
        topology = parse_topology(
            '<topology><checkpoint interval-items="10"/>'
            '<operator name="a" service-time="1"/></topology>')
        assert topology.checkpoint.retained == 2
        assert topology.checkpoint.snapshot_overhead == 0.0

    def test_absent_means_disabled(self):
        topology = parse_topology(
            '<topology><operator name="a" service-time="1"/></topology>')
        assert topology.checkpoint is None

    def test_round_trip(self):
        topology = parse_topology(self.XML)
        again = parse_topology(topology_to_xml(topology))
        assert again.checkpoint == topology.checkpoint

    def test_missing_interval_rejected(self):
        with pytest.raises(XmlFormatError, match="interval-items"):
            parse_topology(
                '<topology><checkpoint/>'
                '<operator name="a" service-time="1"/></topology>')

    def test_bad_interval_rejected_strict(self):
        xml = ('<topology><checkpoint interval-items="0"/>'
               '<operator name="a" service-time="1"/></topology>')
        with pytest.raises(XmlFormatError, match="interval"):
            parse_topology(xml)

    def test_bad_interval_dropped_lenient(self):
        xml = ('<topology><checkpoint interval-items="0"/>'
               '<operator name="a" service-time="1"/></topology>')
        assert parse_topology(xml, strict=False).checkpoint is None

    def test_duplicate_rejected(self):
        xml = ('<topology><checkpoint interval-items="1"/>'
               '<checkpoint interval-items="2"/>'
               '<operator name="a" service-time="1"/></topology>')
        with pytest.raises(XmlFormatError, match="one <checkpoint>"):
            parse_topology(xml)


class TestLatencyBudgetElement:
    XML = (
        '<topology name="lb">'
        '<latency-budget value="250" time-unit="ms"/>'
        '<operator name="a" service-time="1"/>'
        '</topology>'
    )

    def test_parse_scales_the_unit(self):
        topology = parse_topology(self.XML)
        assert topology.latency_budget == pytest.approx(0.25)

    def test_default_unit_is_milliseconds(self):
        topology = parse_topology(
            '<topology><latency-budget value="40"/>'
            '<operator name="a" service-time="1"/></topology>')
        assert topology.latency_budget == pytest.approx(0.04)

    def test_absent_means_unbounded(self):
        topology = parse_topology(
            '<topology><operator name="a" service-time="1"/></topology>')
        assert topology.latency_budget is None

    def test_round_trip(self):
        topology = parse_topology(self.XML)
        again = parse_topology(topology_to_xml(topology))
        assert again.latency_budget == pytest.approx(topology.latency_budget)

    def test_missing_value_rejected(self):
        with pytest.raises(XmlFormatError, match="value"):
            parse_topology(
                '<topology><latency-budget/>'
                '<operator name="a" service-time="1"/></topology>')

    def test_unknown_unit_rejected(self):
        with pytest.raises(XmlFormatError, match="time unit"):
            parse_topology(
                '<topology><latency-budget value="1" time-unit="h"/>'
                '<operator name="a" service-time="1"/></topology>')

    def test_nonpositive_rejected_strict(self):
        xml = ('<topology><latency-budget value="0"/>'
               '<operator name="a" service-time="1"/></topology>')
        with pytest.raises(XmlFormatError, match="positive"):
            parse_topology(xml)

    def test_nonpositive_dropped_lenient(self):
        xml = ('<topology><latency-budget value="0"/>'
               '<operator name="a" service-time="1"/></topology>')
        assert parse_topology(xml, strict=False).latency_budget is None

    def test_duplicate_rejected(self):
        xml = ('<topology><latency-budget value="1"/>'
               '<latency-budget value="2"/>'
               '<operator name="a" service-time="1"/></topology>')
        with pytest.raises(XmlFormatError, match="one <latency-budget>"):
            parse_topology(xml)
