"""Unit tests for random-topology generation (paper Algorithm 5)."""

import math
import random

import pytest

from repro.core.graph import StateKind, TopologyError
from repro.core.steady_state import analyze
from repro.topology.catalog import (
    TESTBED_CATALOG,
    eligible_templates,
    templates_by_name,
)
from repro.topology.random_gen import (
    GeneratorConfig,
    RandomTopologyGenerator,
    generate_edges,
    generate_testbed,
    zipf_probabilities,
)


class TestGenerateEdges:
    def test_vertex_zero_is_only_root(self):
        rng = random.Random(1)
        for _ in range(20):
            edges = generate_edges(10, 11, rng)
            has_input = {v for _, v in edges}
            assert has_input == set(range(1, 10))

    def test_edges_respect_topological_numbering(self):
        rng = random.Random(2)
        for u, v in generate_edges(12, 13, rng):
            assert u < v

    def test_at_least_expected_edges(self):
        rng = random.Random(3)
        for _ in range(20):
            edges = generate_edges(8, 9, rng)
            assert len(edges) >= 9 or len(edges) >= 7  # may exceed E slightly

    def test_no_duplicate_edges(self):
        rng = random.Random(4)
        edges = generate_edges(15, 18, rng)
        assert len(edges) == len(set(edges))

    def test_too_many_edges_rejected(self):
        with pytest.raises(TopologyError, match="too many"):
            generate_edges(4, 7, random.Random(1))

    def test_too_few_edges_rejected(self):
        with pytest.raises(TopologyError, match="too few"):
            generate_edges(4, 2, random.Random(1))


class TestZipfProbabilities:
    def test_sums_to_one(self):
        rng = random.Random(5)
        probabilities = zipf_probabilities(5, 1.5, rng)
        assert math.isclose(sum(probabilities), 1.0)

    def test_skew_present(self):
        rng = random.Random(6)
        probabilities = zipf_probabilities(4, 2.0, rng)
        assert max(probabilities) > 2.0 * min(probabilities)

    def test_all_positive(self):
        rng = random.Random(7)
        assert all(p > 0 for p in zipf_probabilities(6, 1.2, rng))


class TestCatalog:
    def test_twenty_templates(self):
        assert len(TESTBED_CATALOG) == 20

    def test_all_three_state_kinds_present(self):
        kinds = {template.state for template in TESTBED_CATALOG}
        assert kinds == {StateKind.STATELESS, StateKind.PARTITIONED,
                         StateKind.STATEFUL}

    def test_join_requires_two_inputs(self):
        joins = [t for t in TESTBED_CATALOG if t.min_inputs >= 2]
        assert joins
        assert all(t.name not in {x.name for x in eligible_templates(1)}
                   for t in joins)

    def test_templates_by_name_unique(self):
        assert len(templates_by_name()) == len(TESTBED_CATALOG)

    def test_sampled_operators_have_realistic_service_times(self):
        rng = random.Random(8)
        for template in TESTBED_CATALOG:
            for _ in range(5):
                sampled = template.sample(rng)
                low, high = template.service_range
                assert low <= sampled.service_time <= high

    def test_partitioned_samples_carry_keys(self):
        rng = random.Random(9)
        keyed = [t for t in TESTBED_CATALOG
                 if t.state is StateKind.PARTITIONED]
        for template in keyed:
            assert template.sample(rng).keys is not None

    def test_windowed_samples_set_input_selectivity(self):
        rng = random.Random(10)
        template = templates_by_name()["wma"]
        sampled = template.sample(rng)
        assert sampled.input_selectivity in (1.0, 10.0, 50.0)

    def test_executable_classes_resolvable(self):
        from repro.operators.base import load_operator_class
        for template in TESTBED_CATALOG:
            load_operator_class(template.operator_class)


class TestGenerator:
    def test_deterministic_under_seed(self):
        a = RandomTopologyGenerator(seed=11).generate("t")
        b = RandomTopologyGenerator(seed=11).generate("t")
        assert a.names == b.names
        assert [(e.source, e.target, e.probability) for e in a.edges] == \
               [(e.source, e.target, e.probability) for e in b.edges]

    def test_different_seeds_differ(self):
        a = RandomTopologyGenerator(seed=11).generate()
        b = RandomTopologyGenerator(seed=12).generate()
        assert (a.names != b.names or
                [e.target for e in a.edges] != [e.target for e in b.edges])

    def test_vertex_count_in_configured_range(self):
        config = GeneratorConfig(min_vertices=5, max_vertices=8)
        for seed in range(10):
            topology = RandomTopologyGenerator(seed, config).generate()
            assert 5 <= len(topology) <= 8

    def test_source_is_fastest_with_speedup(self):
        topology = RandomTopologyGenerator(seed=13).generate()
        source_time = topology.operator(topology.source).service_time
        others = [spec.service_time for spec in topology.operators
                  if spec.name != topology.source]
        assert source_time < min(others)

    def test_source_speedup_factor(self):
        config = GeneratorConfig(source_speedup=2.0)
        topology = RandomTopologyGenerator(seed=14, config=config).generate()
        source_rate = topology.operator(topology.source).service_rate
        fastest = max(spec.service_rate for spec in topology.operators
                      if spec.name != topology.source)
        assert source_rate == pytest.approx(2.0 * fastest, rel=1e-9)

    def test_generated_topologies_always_analyzable(self):
        for seed in range(20):
            topology = RandomTopologyGenerator(seed).generate()
            result = analyze(topology)
            assert result.throughput > 0.0

    def test_invalid_config_rejected(self):
        with pytest.raises(TopologyError):
            GeneratorConfig(min_vertices=1)
        with pytest.raises(TopologyError):
            GeneratorConfig(min_vertices=5, max_vertices=4)
        with pytest.raises(TopologyError):
            GeneratorConfig(beta_range=(0.5, 1.2))
        with pytest.raises(TopologyError):
            GeneratorConfig(source_speedup=0.0)


class TestTestbed:
    def test_fifty_topologies(self):
        testbed = generate_testbed(50)
        assert len(testbed) == 50
        assert len({t.name for t in testbed}) == 50

    def test_sizes_span_paper_range(self):
        sizes = [len(t) for t in generate_testbed(50)]
        assert min(sizes) >= 2
        assert max(sizes) <= 20
        assert max(sizes) - min(sizes) >= 8  # real diversity

    def test_operators_assigned_from_catalog(self):
        names = {template.name for template in TESTBED_CATALOG}
        for topology in generate_testbed(10):
            for spec in topology.operators:
                if spec.name == topology.source:
                    continue
                suffix = spec.name.split("_", 1)[1]
                assert suffix in names

    def test_bottlenecks_exist_in_every_topology(self):
        # The source is 33% faster than every operator, so each topology
        # exhibits backpressure (Section 5.1 setup).
        for topology in generate_testbed(15):
            result = analyze(topology)
            assert result.bottlenecks, topology.name
