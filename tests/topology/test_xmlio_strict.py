"""Strict vs lenient semantic validation at parse time.

Strict parsing (the default) rejects probability mass != 1 and
non-positive buffer capacities with an :class:`XmlFormatError` naming
the offending operator or edge; ``strict=False`` keeps the lenient
behavior (renormalize / drop) that the conformance shrinker relies on.
"""

import math

import pytest

from repro.core.graph import Edge, TopologyError
from repro.topology.xmlio import (
    XmlFormatError,
    parse_draft,
    parse_topology,
    topology_to_xml,
)

BAD_MASS = """<topology name="bad-mass">
  <operator name="source" type="stateless" service-time="1.0" time-unit="ms" />
  <operator name="work" type="stateless" service-time="0.5" time-unit="ms" />
  <operator name="other" type="stateless" service-time="0.5" time-unit="ms" />
  <operator name="sink" type="stateless" service-time="0.2" time-unit="ms" output-selectivity="0.0" />
  <edge from="source" to="work" probability="0.6" />
  <edge from="source" to="other" probability="0.2" />
  <edge from="work" to="sink" />
  <edge from="other" to="sink" />
</topology>
"""

BAD_CAPACITY = """<topology name="bad-capacity">
  <operator name="source" type="stateless" service-time="1.0" time-unit="ms" />
  <operator name="sink" type="stateless" service-time="0.2" time-unit="ms" output-selectivity="0.0" />
  <edge from="source" to="sink" buffer-capacity="0" />
</topology>
"""

GOOD_CAPACITY = BAD_CAPACITY.replace("bad-capacity", "good-capacity").replace(
    'buffer-capacity="0"', 'buffer-capacity="16"')


class TestStrictParsing:
    def test_probability_mass_violation_names_the_operator(self):
        with pytest.raises(XmlFormatError,
                           match=r"operator 'source'.*sum to 0\.8"):
            parse_topology(BAD_MASS)

    def test_bad_capacity_names_the_edge(self):
        with pytest.raises(XmlFormatError,
                           match=r"edge 'source->sink'.*capacity"):
            parse_topology(BAD_CAPACITY)

    def test_error_is_a_topology_error(self):
        """Callers catching TopologyError keep working."""
        with pytest.raises(TopologyError):
            parse_topology(BAD_MASS)


class TestLenientEscapeHatch:
    def test_mass_is_renormalized(self):
        topology = parse_topology(BAD_MASS, strict=False)
        total = sum(e.probability for e in topology.out_edges("source"))
        assert math.isclose(total, 1.0)
        by_target = {e.target: e.probability
                     for e in topology.out_edges("source")}
        assert math.isclose(by_target["work"], 0.75)

    def test_invalid_capacity_is_dropped(self):
        topology = parse_topology(BAD_CAPACITY, strict=False)
        (edge,) = topology.edges
        assert edge.capacity is None

    def test_draft_preserves_raw_values_for_the_linter(self):
        draft = parse_draft(BAD_MASS)
        assert math.isclose(draft.out_mass()["source"], 0.8)


class TestBufferCapacity:
    def test_capacity_parses_onto_the_edge(self):
        topology = parse_topology(GOOD_CAPACITY)
        (edge,) = topology.edges
        assert edge.capacity == 16

    def test_capacity_round_trips_through_xml(self):
        topology = parse_topology(GOOD_CAPACITY)
        text = topology_to_xml(topology)
        assert 'buffer-capacity="16"' in text
        again = parse_topology(text)
        assert again.edges[0].capacity == 16

    def test_edge_rejects_non_positive_capacity(self):
        with pytest.raises(TopologyError, match="capacity"):
            Edge("a", "b", capacity=0)

    def test_unparseable_capacity_is_lexical(self):
        with pytest.raises(XmlFormatError):
            parse_draft(GOOD_CAPACITY.replace('buffer-capacity="16"',
                                              'buffer-capacity="many"'))
