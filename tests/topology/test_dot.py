"""Unit tests for DOT rendering."""

from repro.core.graph import OperatorSpec
from repro.core.steady_state import analyze
from repro.topology.dot import topology_to_dot
from tests.conftest import make_fig11, make_pipeline


class TestDot:
    def test_all_vertices_and_edges_present(self, fig11_table1):
        dot = topology_to_dot(fig11_table1)
        for name in fig11_table1.names:
            assert f'"{name}"' in dot
        assert '"op1" -> "op2"' in dot

    def test_probability_labels_on_split_edges(self, fig11_table1):
        dot = topology_to_dot(fig11_table1)
        assert 'label="0.7"' in dot
        # probability-1 edges carry no label
        assert '"op2" -> "op6";' in dot

    def test_analysis_annotations(self):
        topology = make_pipeline(1.0, 4.0)
        dot = topology_to_dot(topology, analyze(topology))
        assert "rho=" in dot
        assert 'color="red"' in dot  # the bottleneck is highlighted

    def test_replication_shown(self, fig11_table1):
        dot = topology_to_dot(fig11_table1.with_replications({"op4": 3}))
        assert "n=3" in dot

    def test_quotes_escaped(self):
        from repro.core.graph import Topology
        topology = Topology([OperatorSpec('we"ird', 1e-3)], [],
                            name='na"me')
        dot = topology_to_dot(topology)
        assert '\\"' in dot

    def test_valid_digraph_structure(self, fig11_table1):
        dot = topology_to_dot(fig11_table1)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
