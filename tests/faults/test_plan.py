"""Unit tests for seeded fault plans, schedules and derated predictions."""

import pytest

from repro.core.steady_state import analyze
from repro.faults import (
    ChaosProfile,
    CrashFault,
    FaultInjector,
    FaultPlan,
    FaultPlanConfig,
    FaultyOperator,
    ItemClock,
    MailboxDropFault,
    PoisonFault,
    SlowdownFault,
    SourceHiccup,
    chaos_profile,
    derating_factors,
    generate_fault_plan,
)
from repro.operators.base import Record
from repro.operators.basic import Identity
from repro.runtime.supervision import (
    Directive,
    OperatorCrash,
    PoisonedTuple,
    SupervisionPolicy,
    SupervisorStrategy,
)
from tests.conftest import make_pipeline


class TestGeneration:
    def test_same_seed_same_plan(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        a = generate_fault_plan(topology, seed=11)
        b = generate_fault_plan(topology, seed=11)
        assert a == b

    def test_different_seed_different_plan(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        a = generate_fault_plan(topology, seed=11)
        b = generate_fault_plan(topology, seed=12)
        assert a != b

    def test_source_only_gets_hiccups(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        plan = generate_fault_plan(
            topology, seed=5,
            config=FaultPlanConfig(crashes_per_operator=3.0,
                                   poisons_per_operator=3.0,
                                   fault_fraction=1.0))
        source = topology.source
        assert all(f.vertex != source for f in plan.poisons)
        assert all(f.vertex != source for f in plan.crashes)
        assert all(f.vertex != source for f in plan.slowdowns)
        assert all(f.vertex == source for f in plan.hiccups)

    def test_item_indices_within_horizon(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        items = 5_000
        plan = generate_fault_plan(topology, seed=9, items=items)
        for fault in plan.poisons + plan.crashes:
            assert 0 <= fault.item_index < items
        for fault in plan.slowdowns:
            assert 0 <= fault.start_item < fault.end_item

    def test_describe_lists_every_fault(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        plan = generate_fault_plan(topology, seed=3)
        text = plan.describe()
        assert f"fault plan (seed 3)" in text
        faults = (len(plan.poisons) + len(plan.crashes) + len(plan.slowdowns)
                  + len(plan.hiccups) + len(plan.drops))
        assert len(text.splitlines()) == faults + 1

    def test_empty_plan(self):
        assert FaultPlan(seed=0).empty
        assert "(no faults)" in FaultPlan(seed=0).describe()


class TestSchedules:
    def plan(self):
        return FaultPlan(
            seed=1,
            poisons=(PoisonFault("op1", 5),),
            crashes=(CrashFault("op1", 9),),
            slowdowns=(SlowdownFault("op1", 20, 30, 2.0),),
            hiccups=(SourceHiccup("op0", 3, 0.25),),
            drops=(MailboxDropFault("op2", 10, 15),),
        )

    def test_action_lookup(self):
        schedule = FaultInjector(self.plan()).schedule("op1")
        assert schedule.action(5) == "poison"
        assert schedule.action(9) == "crash"
        assert schedule.action(6) is None

    def test_slowdown_window(self):
        schedule = FaultInjector(self.plan()).schedule("op1")
        assert schedule.service_factor(19) == 1.0
        assert schedule.service_factor(20) == 2.0
        assert schedule.service_factor(29) == 2.0
        assert schedule.service_factor(30) == 1.0

    def test_hiccup_and_drops(self):
        injector = FaultInjector(self.plan())
        assert injector.schedule("op0").hiccup_pause(3) == 0.25
        assert injector.schedule("op0").hiccup_pause(4) == 0.0
        drops = injector.schedule("op2")
        assert drops.drops_arrival(10) and drops.drops_arrival(14)
        assert not drops.drops_arrival(15)

    def test_untouched_vertex_gets_empty_schedule(self):
        schedule = FaultInjector(self.plan()).schedule("nowhere")
        assert schedule.empty
        assert schedule.action(0) is None


class TestFaultyOperator:
    def test_raises_on_schedule(self):
        plan = FaultPlan(seed=1, poisons=(PoisonFault("op1", 1),),
                         crashes=(CrashFault("op1", 2),))
        schedule = FaultInjector(plan).schedule("op1")
        op = FaultyOperator(Identity(), schedule, ItemClock())
        assert op.operator_function(Record({})) == [Record({})]
        with pytest.raises(PoisonedTuple):
            op.operator_function(Record({}))
        with pytest.raises(OperatorCrash):
            op.operator_function(Record({}))
        # Past the schedule the operator works again.
        assert op.operator_function(Record({})) == [Record({})]

    def test_shared_clock_survives_reinstantiation(self):
        """A restarted wrapper must not replay the faults already fired."""
        plan = FaultPlan(seed=1, crashes=(CrashFault("op1", 0),))
        schedule = FaultInjector(plan).schedule("op1")
        clock = ItemClock()
        first = FaultyOperator(Identity(), schedule, clock)
        with pytest.raises(OperatorCrash):
            first.operator_function(Record({}))
        rebuilt = FaultyOperator(Identity(), schedule, clock)
        assert rebuilt.operator_function(Record({})) == [Record({})]


def constant_strategy(downtime: float, horizon: float) -> SupervisorStrategy:
    return SupervisorStrategy(default=SupervisionPolicy(
        on_crash=Directive.RESTART, max_restarts=1_000_000, window=horizon,
        backoff_base=downtime, backoff_factor=1.0, backoff_max=downtime))


class TestDerating:
    def test_no_faults_no_derating(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        availability, gain, inputs = derating_factors(
            topology, FaultPlan(seed=0), horizon=10.0,
            strategy=constant_strategy(0.1, 10.0))
        assert all(v == 1.0 for v in availability.values())
        assert all(v == 1.0 for v in gain.values())
        assert all(v == 1.0 for v in inputs.values())

    def test_crash_downtime_reduces_availability(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        plan = FaultPlan(seed=1, crashes=(CrashFault("op1", 100),))
        availability, gain, _ = derating_factors(
            topology, plan, horizon=10.0,
            strategy=constant_strategy(1.0, 10.0))
        # One crash, one virtual second of restart downtime on a 10s
        # horizon: 10% of op1's serving time is gone.
        assert availability["op1"] == pytest.approx(0.9)
        assert availability["op2"] == 1.0
        assert gain["op1"] < 1.0  # the crashed item is consumed, not emitted

    def test_drop_window_derates_input(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        plan = FaultPlan(seed=1, drops=(MailboxDropFault("op1", 0, 100),))
        _, _, inputs = derating_factors(
            topology, plan, horizon=10.0,
            strategy=constant_strategy(0.1, 10.0))
        assert inputs["op1"] < 1.0
        assert inputs["op2"] == 1.0

    def test_derated_throughput_bounded_by_base(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        profile = chaos_profile(topology, seed=7)
        assert isinstance(profile, ChaosProfile)
        assert profile.derated.throughput <= profile.base.throughput + 1e-9
        assert 0.0 <= profile.predicted_degradation < 1.0

    def test_profile_is_deterministic(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        a = chaos_profile(topology, seed=7)
        b = chaos_profile(topology, seed=7)
        assert a.plan == b.plan
        assert a.derated.throughput == b.derated.throughput

    def test_derated_model_feeds_analyze(self):
        """The steady-state solver accepts the derating maps directly."""
        topology = make_pipeline(1.0, 2.0, 0.5)
        base = analyze(topology)
        derated = analyze(
            topology,
            availability={name: 0.5 for name in topology.names},
            gain_factor={name: 1.0 for name in topology.names},
            input_factor={name: 1.0 for name in topology.names},
        )
        assert derated.throughput == pytest.approx(base.throughput * 0.5)
