"""Golden-file tests of the fusion-to-loop code generator.

The loop source emitted for a fused chain is an API surface: it is
embedded as documentation in SS2Py programs and ``exec``'d by the
runtime, so accidental drift matters.  Three committed goldens cover
the operator families — a stateless map→filter chain, a windowed
aggregation chain and a keyed (partitioned-state) chain.

To regenerate after an intentional change:

    PYTHONPATH=src python tests/test_fuseloop_goldens.py --regen
"""

import pathlib

import pytest

from repro.codegen.fuseloop import generate_loop_source, loop_eligibility
from repro.core.fusion import plan_fusion
from repro.core.graph import Edge, OperatorSpec, Topology

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def normalize(text):
    """Whitespace-insensitive form: formatting churn is not an API break.

    Strips trailing whitespace per line, leading/trailing blank lines
    and collapses runs of blank lines — everything else (names, order,
    structure) must match the golden byte-for-byte.
    """
    lines = [line.rstrip() for line in text.strip().splitlines()]
    collapsed = []
    for line in lines:
        if line == "" and collapsed and collapsed[-1] == "":
            continue
        collapsed.append(line)
    return "\n".join(collapsed) + "\n"


def _chain(specs, members):
    names = [spec.name for spec in specs]
    edges = [Edge(a, b) for a, b in zip(names, names[1:])]
    topology = Topology(specs, edges, name="golden")
    return topology, plan_fusion(topology, members)


def build_cases():
    """The three golden chains: (name, topology, fusion plan)."""
    source = OperatorSpec(
        name="source", service_time=0.001,
        operator_class="repro.operators.source_sink.GeneratorSource")
    sink = OperatorSpec(
        name="sink", service_time=0.001,
        operator_class="repro.operators.source_sink.CollectingSink")

    map_filter = _chain([
        source,
        OperatorSpec(name="map", service_time=0.001,
                     operator_class="repro.operators.basic.FieldMap",
                     operator_args={"field": "value"}),
        OperatorSpec(name="filt", service_time=0.001,
                     output_selectivity=0.5,
                     operator_class="repro.operators.basic.Filter",
                     operator_args={"threshold": 0.5}),
        sink,
    ], ["map", "filt"])

    windowed = _chain([
        source,
        OperatorSpec(name="wsum", service_time=0.001,
                     input_selectivity=4.0,
                     operator_class="repro.operators.aggregates.WindowedSum",
                     operator_args={"length": 8, "slide": 4}),
        sink,
    ], ["wsum", "sink"])

    keyed = _chain([
        source,
        OperatorSpec(name="keyed", service_time=0.001,
                     input_selectivity=4.0,
                     operator_class=(
                         "repro.operators.aggregates.KeyedWindowedAggregate"),
                     operator_args={"key_field": "key", "length": 8,
                                    "slide": 4}),
        sink,
    ], ["keyed", "sink"])

    return [
        ("loop_map_filter", map_filter),
        ("loop_windowed", windowed),
        ("loop_keyed", keyed),
    ]


CASES = build_cases()


@pytest.mark.parametrize("name,case", CASES, ids=[n for n, _ in CASES])
class TestFuseloopGoldens:
    def test_chain_is_loop_eligible(self, name, case):
        topology, plan = case
        verdict = loop_eligibility(plan, topology)
        assert verdict.eligible, verdict.reasons

    def test_generated_source_matches_golden(self, name, case):
        topology, plan = case
        verdict = loop_eligibility(plan, topology)
        generated = generate_loop_source(plan, verdict.chain)
        golden_path = GOLDEN_DIR / f"{name}.py.golden"
        assert golden_path.exists(), (
            f"missing golden {golden_path}; regenerate with "
            "PYTHONPATH=src python tests/test_fuseloop_goldens.py --regen")
        golden = golden_path.read_text(encoding="utf-8")
        assert normalize(generated) == normalize(golden), (
            f"loop codegen drifted from {golden_path.name}; if intentional, "
            "regenerate with --regen")

    def test_generated_source_compiles(self, name, case):
        topology, plan = case
        verdict = loop_eligibility(plan, topology)
        compile(generate_loop_source(plan, verdict.chain),
                f"<golden:{name}>", "exec")


class TestNormalizer:
    def test_trailing_whitespace_ignored(self):
        assert normalize("a  \nb\n") == normalize("a\nb")

    def test_blank_line_runs_collapse(self):
        assert normalize("a\n\n\n\nb") == normalize("a\n\nb")

    def test_content_changes_detected(self):
        assert normalize("a\nb") != normalize("a\nc")


def _regen():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, (topology, plan) in build_cases():
        verdict = loop_eligibility(plan, topology)
        assert verdict.eligible, (name, verdict.reasons)
        path = GOLDEN_DIR / f"{name}.py.golden"
        path.write_text(generate_loop_source(plan, verdict.chain),
                        encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
