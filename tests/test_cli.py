"""Tests for the spinstreams command-line interface."""

import pytest

from repro.cli import main
from repro.topology.xmlio import parse_topology, write_topology
from tests.conftest import make_fig11, make_pipeline


@pytest.fixture
def fig11_xml(tmp_path):
    path = tmp_path / "fig11.xml"
    write_topology(make_fig11(), str(path))
    return str(path)


@pytest.fixture
def bottlenecked_xml(tmp_path):
    path = tmp_path / "pipeline.xml"
    write_topology(make_pipeline(1.0, 3.0), str(path))
    return str(path)


class TestAnalyze:
    def test_basic(self, fig11_xml, capsys):
        assert main(["analyze", fig11_xml]) == 0
        out = capsys.readouterr().out
        assert "predicted throughput: 1,000" in out

    def test_with_measurement(self, fig11_xml, capsys):
        assert main(["analyze", fig11_xml, "--measure",
                     "--items", "20000"]) == 0
        out = capsys.readouterr().out
        assert "measured throughput" in out
        assert "relative error" in out

    def test_source_rate_flag(self, fig11_xml, capsys):
        assert main(["analyze", fig11_xml, "--source-rate", "100"]) == 0
        assert "100 items/sec" in capsys.readouterr().out


class TestOptimize:
    def test_reports_replicas(self, bottlenecked_xml, capsys):
        assert main(["optimize", bottlenecked_xml]) == 0
        out = capsys.readouterr().out
        assert "additional replicas: 2" in out

    def test_writes_optimized_xml(self, bottlenecked_xml, tmp_path, capsys):
        output = str(tmp_path / "optimized.xml")
        assert main(["optimize", bottlenecked_xml, "-o", output]) == 0
        optimized = parse_topology(output)
        assert optimized.operator("op1").replication == 3

    def test_invalid_bound_reports_error(self, bottlenecked_xml, capsys):
        assert main(["optimize", bottlenecked_xml,
                     "--max-replicas", "1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCandidates:
    def test_lists_candidates(self, fig11_xml, capsys):
        assert main(["candidates", fig11_xml]) == 0
        out = capsys.readouterr().out
        assert "fusion candidates" in out
        assert "op3" in out


class TestFuse:
    def test_feasible_fusion(self, fig11_xml, capsys):
        assert main(["fuse", fig11_xml, "--ops", "op3,op4,op5",
                     "--name", "F"]) == 0
        out = capsys.readouterr().out
        assert "fusion is feasible" in out

    def test_writes_fused_xml(self, fig11_xml, tmp_path, capsys):
        output = str(tmp_path / "fused.xml")
        assert main(["fuse", fig11_xml, "--ops", "op3,op4,op5",
                     "--name", "F", "-o", output]) == 0
        fused = parse_topology(output)
        assert "F" in fused

    def test_invalid_subgraph_reports_error(self, fig11_xml, capsys):
        assert main(["fuse", fig11_xml, "--ops", "op2,op3"]) == 2
        assert "front-end" in capsys.readouterr().err


class TestSimulate:
    def test_reports_measured_and_error(self, fig11_xml, capsys):
        assert main(["simulate", fig11_xml, "--items", "20000"]) == 0
        out = capsys.readouterr().out
        assert "measured throughput" in out

    def test_per_operator_flag(self, fig11_xml, capsys):
        assert main(["simulate", fig11_xml, "--items", "20000",
                     "--per-operator"]) == 0
        out = capsys.readouterr().out
        assert "per-operator departure rates" in out
        assert "op5" in out


class TestGenerateAndRandom:
    def test_random_topology_to_file(self, tmp_path, capsys):
        output = str(tmp_path / "random.xml")
        assert main(["random", "--seed", "5", "-o", output]) == 0
        topology = parse_topology(output)
        assert len(topology) >= 2

    def test_random_reproducible(self, tmp_path):
        a, b = str(tmp_path / "a.xml"), str(tmp_path / "b.xml")
        main(["random", "--seed", "5", "-o", a])
        main(["random", "--seed", "5", "-o", b])
        assert open(a).read() == open(b).read()

    def test_generate_code_from_random(self, tmp_path, capsys):
        xml = str(tmp_path / "random.xml")
        main(["random", "--seed", "5", "-o", xml])
        script = str(tmp_path / "app.py")
        assert main(["generate", xml, "-o", script]) == 0
        compile(open(script).read(), script, "exec")


class TestRender:
    def test_dot_output(self, fig11_xml, capsys):
        assert main(["render", fig11_xml]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_dot_to_file(self, fig11_xml, tmp_path):
        output = str(tmp_path / "graph.dot")
        assert main(["render", fig11_xml, "-o", output]) == 0
        assert open(output).read().startswith("digraph")


class TestLatency:
    def test_reports_end_to_end(self, fig11_xml, capsys):
        assert main(["latency", fig11_xml, "--source-rate", "600"]) == 0
        out = capsys.readouterr().out
        assert "end-to-end latency" in out
        assert "op5" in out

    def test_assumption_flag(self, fig11_xml, capsys):
        assert main(["latency", fig11_xml, "--assumption",
                     "deterministic"]) == 0
        assert "deterministic" in capsys.readouterr().out


class TestAutofuse:
    def test_compacts_and_reports(self, fig11_xml, capsys):
        assert main(["autofuse", fig11_xml]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        assert "throughput preserved" in out

    def test_writes_fused_xml(self, fig11_xml, tmp_path):
        output = str(tmp_path / "auto.xml")
        assert main(["autofuse", fig11_xml, "-o", output]) == 0
        fused = parse_topology(output)
        assert len(fused) < 6


class TestDeploy:
    def test_json_plan(self, fig11_xml, capsys):
        assert main(["deploy", fig11_xml]) == 0
        import json
        plan = json.loads(capsys.readouterr().out)
        assert plan["topology"] == "fig11"

    def test_flink_sketch(self, fig11_xml, capsys):
        assert main(["deploy", fig11_xml, "--format", "flink"]) == 0
        assert "setParallelism" in capsys.readouterr().out

    def test_storm_sketch_to_file(self, fig11_xml, tmp_path):
        output = str(tmp_path / "topology.java")
        assert main(["deploy", fig11_xml, "--format", "storm",
                     "-o", output]) == 0
        assert "TopologyBuilder" in open(output).read()


class TestMemory:
    def test_reports_footprint(self, fig11_xml, capsys):
        assert main(["memory", fig11_xml]) == 0
        out = capsys.readouterr().out
        assert "total:" in out
        assert "MB" in out

    def test_bytes_per_item_flag(self, fig11_xml, capsys):
        assert main(["memory", fig11_xml, "--bytes-per-item", "1000"]) == 0
        assert "1000 bytes/item" in capsys.readouterr().out


class TestConformance:
    def test_small_sweep_is_green(self, capsys):
        assert main(["conformance", "--seeds", "2",
                     "--runtime-seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "4 checks, 0 failed" in out

    def test_single_seed_replay(self, capsys):
        assert main(["conformance", "--seed", "100", "--runtime-seeds", "0",
                     "--no-optimizer"]) == 0
        out = capsys.readouterr().out
        assert "seed=100" in out
        assert "OK" in out


class TestChaosRecover:
    def test_recover_sweep_is_bit_equal(self, capsys):
        assert main(["chaos", "--recover", "--seed", "1",
                     "--recover-seeds", "2", "--recover-items", "200"]) == 0
        out = capsys.readouterr().out
        assert "recovery sweep: seeds 1..2" in out
        assert "2/2 seeds bit-equal after crash+recover" in out
        # The crash plans actually fire: rollbacks happened.
        assert "rollbacks: 0" not in out
