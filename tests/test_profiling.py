"""Tests for the profiler (service times, gains, edge frequencies)."""

import pytest

from repro.core.graph import Edge, OperatorSpec, Topology
from repro.operators.base import Record
from repro.operators.basic import Filter, Identity
from repro.operators.source_sink import CountingSink, GeneratorSource
from repro.profiling.profiler import ServiceTimer, profile_topology
from repro.runtime.synthetic import PaddedOperator
from repro.runtime.system import RuntimeConfig


def profiled_topology():
    # Declared service times deliberately wrong (10x off): the profiler
    # should correct them.
    return Topology(
        [
            OperatorSpec("src", 5e-3),
            OperatorSpec("work", 50e-3),       # actually ~5 ms
            OperatorSpec("flt", 10e-3),        # actually ~1 ms, drops 50%
            OperatorSpec("sink", 1e-3, output_selectivity=0.0),
        ],
        [Edge("src", "work"), Edge("work", "flt"), Edge("flt", "sink")],
        name="profiled",
    )


def factories():
    return {
        "src": lambda: GeneratorSource(seed=5),
        "work": lambda: PaddedOperator(Identity(), 5e-3),
        "flt": lambda: PaddedOperator(Filter(threshold=0.5), 1e-3),
        "sink": CountingSink,
    }


class TestProfileRun:
    @pytest.fixture(scope="class")
    def report(self):
        return profile_topology(
            profiled_topology(), factories(), duration=1.5,
            config=RuntimeConfig(source_rate=150.0),
        )

    def test_measures_service_times(self, report):
        work = report.profiles["work"]
        assert work.items_processed > 50
        assert work.mean_service_time == pytest.approx(5e-3, rel=0.2)

    def test_measures_gain_of_filter(self, report):
        flt = report.profiles["flt"]
        assert flt.gain == pytest.approx(0.5, abs=0.15)

    def test_edge_frequencies_sum_to_one(self, report):
        src = report.profiles["src"]
        assert sum(src.edge_frequencies.values()) == pytest.approx(1.0)

    def test_profiled_topology_updates_service_times(self, report):
        updated = report.profiled_topology()
        assert updated.operator("work").service_time == pytest.approx(
            5e-3, rel=0.25)
        # Structure preserved.
        assert updated.names == profiled_topology().names

    def test_profiled_topology_updates_selectivity(self, report):
        updated = report.profiled_topology()
        assert updated.operator("flt").output_selectivity == pytest.approx(
            0.5, abs=0.15)

    def test_under_sampled_operators_keep_declared_values(self, report):
        updated = report.profiled_topology(min_items=10 ** 9)
        assert updated.operator("work").service_time == pytest.approx(50e-3)

    def test_service_rate_property(self, report):
        work = report.profiles["work"]
        assert work.service_rate == pytest.approx(200.0, rel=0.25)


class TestServiceTimer:
    def test_measures_mean_and_gain(self):
        timer = ServiceTimer(PaddedOperator(Identity(), 2e-3))
        for i in range(20):
            timer.measure(Record({"value": float(i)}))
        assert timer.mean_service_time == pytest.approx(2e-3, rel=0.5)
        assert timer.gain == 1.0

    def test_gain_of_filter(self):
        timer = ServiceTimer(Filter(threshold=0.5))
        for value in (0.1, 0.9, 0.2, 0.8):
            timer.measure(Record({"value": value}))
        assert timer.gain == 0.5

    def test_requires_samples(self):
        from repro.core.graph import TopologyError
        timer = ServiceTimer(Identity())
        with pytest.raises(TopologyError, match="no samples"):
            _ = timer.mean_service_time


class TestPercentiles:
    def test_percentiles_from_samples(self):
        from repro.profiling.profiler import OperatorProfile
        profile = OperatorProfile(
            name="x", items_processed=10, mean_service_time=1e-3,
            gain=1.0, edge_frequencies={},
            service_samples=tuple(i * 1e-3 for i in range(1, 11)),
        )
        assert profile.percentile(0.0) == pytest.approx(1e-3)
        assert profile.percentile(0.5) == pytest.approx(6e-3)
        assert profile.percentile(1.0) == pytest.approx(10e-3)

    def test_percentile_without_samples_is_none(self):
        from repro.profiling.profiler import OperatorProfile
        profile = OperatorProfile(
            name="x", items_processed=0, mean_service_time=None,
            gain=1.0, edge_frequencies={},
        )
        assert profile.percentile(0.9) is None

    def test_percentile_out_of_range_rejected(self):
        from repro.core.graph import TopologyError
        from repro.profiling.profiler import OperatorProfile
        profile = OperatorProfile(
            name="x", items_processed=0, mean_service_time=None,
            gain=1.0, edge_frequencies={},
        )
        with pytest.raises(TopologyError, match="percentile"):
            profile.percentile(1.5)

    def test_profiled_run_collects_samples(self, ):
        report = profile_topology(
            profiled_topology(), factories(), duration=1.0,
            config=RuntimeConfig(source_rate=100.0),
        )
        work = report.profiles["work"]
        assert len(work.service_samples) > 20
        # The padded operator's p90 sits close to its constant 5 ms.
        assert work.percentile(0.9) == pytest.approx(5e-3, rel=0.3)
