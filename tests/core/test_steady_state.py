"""Unit tests for the steady-state analysis (paper Algorithm 1)."""

import math

import pytest

from repro.core.graph import (
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)
from repro.core.steady_state import analyze, operator_capacity, predicted_throughput
from tests.conftest import make_diamond, make_fig11, make_pipeline


class TestPipelines:
    def test_no_bottleneck_passes_source_rate(self):
        topology = make_pipeline(2.0, 1.0, 0.5)
        result = analyze(topology)
        assert math.isclose(result.throughput, 500.0)
        assert result.bottlenecks == []

    def test_slowest_operator_dictates_throughput(self, pipeline3):
        # src 1ms, mid 2ms: backpressure caps ingestion at 500/s.
        result = analyze(pipeline3)
        assert math.isclose(result.throughput, 500.0)
        assert result.bottlenecks == ["op1"]
        assert result.binding_bottleneck == "op1"

    def test_bottleneck_utilization_pinned_at_one(self, pipeline3):
        result = analyze(pipeline3)
        assert math.isclose(result.utilization("op1"), 1.0)

    def test_downstream_of_bottleneck_underutilized(self, pipeline3):
        result = analyze(pipeline3)
        # op2 is 0.5ms (2000/s capacity) fed at 500/s.
        assert math.isclose(result.utilization("op2"), 0.25)

    def test_deepest_bottleneck_wins(self):
        topology = make_pipeline(1.0, 2.0, 4.0)
        result = analyze(topology)
        assert math.isclose(result.throughput, 250.0)
        assert result.binding_bottleneck == "op2"

    def test_every_correction_lowers_source_rate(self):
        topology = make_pipeline(1.0, 2.0, 4.0)
        result = analyze(topology)
        for correction in result.corrections:
            assert correction.source_rate_after < correction.source_rate_before

    def test_explicit_source_rate_overrides_service_rate(self, pipeline3):
        result = analyze(pipeline3, source_rate=100.0)
        assert math.isclose(result.throughput, 100.0)
        assert result.bottlenecks == []

    def test_source_rate_above_capacity_throttles_source_itself(self):
        topology = make_pipeline(1.0, 0.5)
        result = analyze(topology, source_rate=2000.0)
        # The source can only serve 1000/s.
        assert math.isclose(result.throughput, 1000.0)
        assert result.binding_bottleneck == "op0"

    def test_invalid_source_rate_rejected(self, pipeline3):
        with pytest.raises(TopologyError, match="source rate"):
            analyze(pipeline3, source_rate=0.0)

    def test_single_operator_topology(self):
        topology = Topology([OperatorSpec("only", 1e-3)], [])
        result = analyze(topology)
        assert math.isclose(result.throughput, 1000.0)


class TestBranching:
    def test_arrival_rates_follow_probabilities(self):
        topology = make_diamond(left_ms=1.5, right_ms=1.8)  # no bottleneck
        result = analyze(topology)
        assert math.isclose(result.arrival_rate("left"), 500.0)
        assert math.isclose(result.arrival_rate("right"), 500.0)

    def test_merge_sums_branch_departures(self, diamond):
        result = analyze(diamond)
        # right (3ms, capacity 333/s) throttles; flows rescale.
        merged = result.arrival_rate("sink")
        assert math.isclose(
            merged,
            result.departure_rate("left") + result.departure_rate("right"),
        )

    def test_branch_bottleneck_scales_whole_graph(self):
        topology = make_diamond(src_ms=1.0, left_ms=2.0, right_ms=4.0,
                                p_left=0.5)
        result = analyze(topology)
        # right capacity 250/s fed at 500/s: rho=2 halves the source.
        assert math.isclose(result.throughput, 500.0)
        assert math.isclose(result.utilization("right"), 1.0)

    def test_fig11_throughput(self, fig11_table1):
        result = analyze(fig11_table1)
        assert math.isclose(result.throughput, 1000.0)
        assert result.bottlenecks == []

    def test_fig11_utilizations_match_hand_computation(self, fig11_table1):
        result = analyze(fig11_table1)
        assert math.isclose(result.utilization("op2"), 700.0 * 1.2e-3)
        assert math.isclose(result.utilization("op3"), 300.0 * 0.7e-3)
        # op4 gets 300*0.35=105/s at 2ms.
        assert math.isclose(result.utilization("op4"), 105.0 * 2e-3)
        # op5 gets 300*0.65 + 105*0.5 = 247.5/s at 1.5ms.
        assert math.isclose(result.utilization("op5"), 247.5 * 1.5e-3)

    def test_flow_conservation_at_sinks(self, fig11_table1):
        result = analyze(fig11_table1)
        assert math.isclose(result.sink_rate, result.throughput)


class TestSelectivity:
    def test_output_selectivity_amplifies_departures(self):
        specs = [
            OperatorSpec("src", 1e-3),
            OperatorSpec("fm", 1e-3, output_selectivity=3.0),
            OperatorSpec("sink", 0.1e-3),
        ]
        edges = [Edge("src", "fm"), Edge("fm", "sink")]
        result = analyze(Topology(specs, edges))
        assert math.isclose(result.departure_rate("fm"), 3000.0)
        assert math.isclose(result.arrival_rate("sink"), 3000.0)

    def test_input_selectivity_decimates_departures(self):
        specs = [
            OperatorSpec("src", 1e-3),
            OperatorSpec("win", 1e-3, input_selectivity=10.0),
            OperatorSpec("sink", 0.1e-3),
        ]
        edges = [Edge("src", "win"), Edge("win", "sink")]
        result = analyze(Topology(specs, edges))
        assert math.isclose(result.departure_rate("win"), 100.0)

    def test_utilization_ignores_selectivity(self):
        specs = [
            OperatorSpec("src", 1e-3),
            OperatorSpec("win", 1.5e-3, input_selectivity=10.0),
        ]
        result = analyze(Topology(specs, [Edge("src", "win")]))
        # rho = lambda/mu regardless of selectivity (Section 3.4)...
        assert math.isclose(result.utilization("win"), 1.0)
        # ...so the window op still throttles the source.
        assert math.isclose(result.throughput, 1000.0 / 1.5)

    def test_selectivity_driven_bottleneck(self):
        # flatmap triples the rate; downstream 1ms op saturates at 1000/s
        # so the source is throttled to 1000/3.
        specs = [
            OperatorSpec("src", 1e-3),
            OperatorSpec("fm", 0.2e-3, output_selectivity=3.0),
            OperatorSpec("slow", 1e-3),
        ]
        edges = [Edge("src", "fm"), Edge("fm", "slow")]
        result = analyze(Topology(specs, edges))
        assert math.isclose(result.throughput, 1000.0 / 3.0)
        assert result.binding_bottleneck == "slow"

    def test_sink_with_zero_output_selectivity(self):
        specs = [
            OperatorSpec("src", 1e-3),
            OperatorSpec("sink", 0.1e-3, output_selectivity=0.0),
        ]
        result = analyze(Topology(specs, [Edge("src", "sink")]))
        assert math.isclose(result.departure_rate("sink"), 0.0)
        assert math.isclose(result.arrival_rate("sink"), 1000.0)


class TestReplication:
    def test_stateless_replicas_multiply_capacity(self):
        topology = make_pipeline(1.0, 3.0).with_replications({"op1": 3})
        result = analyze(topology)
        assert math.isclose(result.throughput, 1000.0)
        assert math.isclose(result.utilization("op1"), 1.0)

    def test_insufficient_replicas_still_bottleneck(self):
        topology = make_pipeline(1.0, 3.0).with_replications({"op1": 2})
        result = analyze(topology)
        assert math.isclose(result.throughput, 2000.0 / 3.0)

    def test_partitioned_capacity_uses_p_max(self):
        keys = KeyDistribution({"hot": 0.5, "a": 0.25, "b": 0.25})
        spec = OperatorSpec("keyed", 2e-3, state=StateKind.PARTITIONED,
                            keys=keys, replication=2)
        topology = Topology(
            [OperatorSpec("src", 1e-3), spec], [Edge("src", "keyed")]
        )
        capacity, p_max = operator_capacity(topology, "keyed")
        assert math.isclose(p_max, 0.5)
        assert math.isclose(capacity, 500.0 / 0.5)

    def test_stateful_cannot_be_replicated(self):
        spec = OperatorSpec("st", 1e-3, state=StateKind.STATEFUL,
                            replication=2)
        topology = Topology(
            [OperatorSpec("src", 1e-3), spec], [Edge("src", "st")]
        )
        with pytest.raises(TopologyError, match="stateful"):
            operator_capacity(topology, "st")

    def test_single_replica_capacity_is_service_rate(self, pipeline3):
        capacity, p_max = operator_capacity(pipeline3, "op1")
        assert math.isclose(capacity, 500.0)
        assert p_max == 1.0


class TestResultApi:
    def test_underutilized_excludes_source(self, fig11_table1):
        result = analyze(fig11_table1)
        lazy = result.underutilized(threshold=0.5)
        assert "op1" not in lazy
        assert {"op3", "op4", "op5", "op6"} <= set(lazy)

    def test_bottlenecks_deduplicated_in_order(self):
        topology = make_pipeline(1.0, 2.0, 4.0)
        result = analyze(topology)
        assert result.bottlenecks == ["op1", "op2"]

    def test_predicted_throughput_helper(self, pipeline3):
        assert math.isclose(predicted_throughput(pipeline3), 500.0)

    def test_rates_present_for_every_operator(self, fig11_table1):
        result = analyze(fig11_table1)
        assert set(result.rates) == set(fig11_table1.names)

    def test_capacity_reported(self, pipeline3):
        result = analyze(pipeline3)
        assert math.isclose(result.rates["op1"].capacity, 500.0)

    def test_result_is_reproducible(self, fig11_table2):
        first = analyze(fig11_table2)
        second = analyze(fig11_table2)
        for name in fig11_table2.names:
            assert math.isclose(first.departure_rate(name),
                                second.departure_rate(name))


class TestInvariants:
    """Paper invariants: 3.1 (utilizations), 3.3 (maintenance), 3.5 (flow)."""

    def test_all_utilizations_at_most_one(self, fig11_table2):
        result = analyze(fig11_table2)
        for name in fig11_table2.names:
            assert result.utilization(name) <= 1.0 + 1e-9

    def test_flow_conservation_per_operator(self, fig11_table1):
        result = analyze(fig11_table1)
        for name in fig11_table1.names:
            spec = fig11_table1.operator(name)
            rates = result.rates[name]
            assert math.isclose(
                rates.departure_rate,
                min(rates.arrival_rate, rates.capacity) * spec.gain,
                rel_tol=1e-9,
            )

    def test_proposition_3_5_sink_rate_equals_source_rate(self):
        # With unit selectivities the total sink departure rate equals
        # the source departure rate (Proposition 3.5).
        topology = make_fig11(5.0, 2.0, 1.5)  # op3 slow: corrections occur
        result = analyze(topology)
        assert math.isclose(result.sink_rate, result.throughput, rel_tol=1e-9)

    def test_corrective_factor_is_inverse_utilization(self):
        topology = make_pipeline(1.0, 4.0)
        result = analyze(topology)
        correction = result.corrections[0]
        ratio = correction.source_rate_before / correction.source_rate_after
        assert math.isclose(ratio, correction.utilization)
