"""Tests for the multiple-source normalization extension."""

import math

import pytest

from repro.core.graph import Edge, OperatorSpec, TopologyError
from repro.core.multisource import FICTITIOUS_SOURCE, merge_sources
from repro.sim.network import SimulationConfig, simulate


def two_source_app():
    operators = [
        OperatorSpec("clicks", 1.0),    # declared times are replaced
        OperatorSpec("views", 1.0),
        OperatorSpec("join", 0.4e-3),
        OperatorSpec("sink", 0.1e-3, output_selectivity=0.0),
    ]
    edges = [
        Edge("clicks", "join"), Edge("views", "join"), Edge("join", "sink"),
    ]
    return operators, edges


class TestNormalization:
    def test_builds_single_source_topology(self):
        operators, edges = two_source_app()
        merged = merge_sources(operators, edges,
                               {"clicks": 300.0, "views": 700.0})
        topology = merged.topology
        assert topology.source == FICTITIOUS_SOURCE
        assert set(topology.names) == {
            FICTITIOUS_SOURCE, "clicks", "views", "join", "sink"
        }

    def test_fictitious_source_rate_is_sum(self):
        operators, edges = two_source_app()
        merged = merge_sources(operators, edges,
                               {"clicks": 300.0, "views": 700.0})
        spec = merged.topology.operator(FICTITIOUS_SOURCE)
        assert math.isclose(spec.service_rate, 1000.0)
        assert math.isclose(merged.total_rate, 1000.0)

    def test_routing_proportional_to_rates(self):
        operators, edges = two_source_app()
        merged = merge_sources(operators, edges,
                               {"clicks": 300.0, "views": 700.0})
        topology = merged.topology
        assert math.isclose(
            topology.edge(FICTITIOUS_SOURCE, "clicks").probability, 0.3)
        assert math.isclose(
            topology.edge(FICTITIOUS_SOURCE, "views").probability, 0.7)

    def test_sources_receive_their_own_rates(self):
        operators, edges = two_source_app()
        merged = merge_sources(operators, edges,
                               {"clicks": 300.0, "views": 700.0})
        analysis = merged.analyze()
        assert math.isclose(analysis.arrival_rate("clicks"), 300.0)
        assert math.isclose(analysis.arrival_rate("views"), 700.0)

    def test_merge_point_sees_aggregate(self):
        operators, edges = two_source_app()
        merged = merge_sources(operators, edges,
                               {"clicks": 300.0, "views": 700.0})
        analysis = merged.analyze()
        assert math.isclose(analysis.arrival_rate("join"), 1000.0)

    def test_downstream_bottleneck_throttles_proportionally(self):
        operators, edges = two_source_app()
        # join at 0.4 ms handles 2500/s; raise the rates beyond that.
        merged = merge_sources(operators, edges,
                               {"clicks": 1500.0, "views": 3500.0})
        throughputs = merged.source_throughputs()
        # join caps the total at 2500/s, split 30/70.
        assert throughputs["clicks"] == pytest.approx(750.0)
        assert throughputs["views"] == pytest.approx(1750.0)

    def test_simulated_multi_source_matches_model(self):
        operators, edges = two_source_app()
        merged = merge_sources(operators, edges,
                               {"clicks": 1500.0, "views": 3500.0})
        analysis = merged.analyze()
        measured = simulate(merged.topology,
                            SimulationConfig(items=60_000, seed=5))
        assert measured.throughput_error(analysis) < 0.02


class TestValidation:
    def test_unknown_source_rejected(self):
        operators, edges = two_source_app()
        with pytest.raises(TopologyError, match="unknown source"):
            merge_sources(operators, edges, {"ghost": 100.0})

    def test_non_positive_rate_rejected(self):
        operators, edges = two_source_app()
        with pytest.raises(TopologyError, match="positive"):
            merge_sources(operators, edges,
                          {"clicks": 0.0, "views": 100.0})

    def test_source_with_inputs_rejected(self):
        operators, edges = two_source_app()
        with pytest.raises(TopologyError, match="input edges"):
            merge_sources(operators, edges,
                          {"clicks": 100.0, "join": 100.0, "views": 100.0})

    def test_undeclared_roots_rejected(self):
        operators, edges = two_source_app()
        with pytest.raises(TopologyError, match="declared as sources"):
            merge_sources(operators, edges, {"clicks": 100.0})

    def test_reserved_name_rejected(self):
        operators, edges = two_source_app()
        operators.append(OperatorSpec(FICTITIOUS_SOURCE, 1e-3))
        with pytest.raises(TopologyError, match="reserved"):
            merge_sources(operators, edges,
                          {"clicks": 100.0, "views": 100.0})

    def test_empty_sources_rejected(self):
        operators, edges = two_source_app()
        with pytest.raises(TopologyError, match="at least one"):
            merge_sources(operators, edges, {})

    def test_single_source_degenerate_case_works(self):
        operators = [OperatorSpec("only", 1.0), OperatorSpec("sink", 1e-4)]
        edges = [Edge("only", "sink")]
        merged = merge_sources(operators, edges, {"only": 500.0})
        assert math.isclose(merged.analyze().throughput, 500.0)
