"""Unit tests for the topology model (repro.core.graph)."""

import math

import pytest

from repro.core.graph import (
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)
from tests.conftest import make_diamond, make_fig11, make_pipeline


class TestStateKind:
    def test_parse_stateless(self):
        assert StateKind.parse("stateless") is StateKind.STATELESS

    def test_parse_partitioned_aliases(self):
        assert StateKind.parse("partitioned") is StateKind.PARTITIONED
        assert StateKind.parse("partitioned-stateful") is StateKind.PARTITIONED
        assert StateKind.parse("PARTITIONED_STATEFUL") is StateKind.PARTITIONED

    def test_parse_stateful(self):
        assert StateKind.parse(" Stateful ") is StateKind.STATEFUL

    def test_parse_unknown_raises(self):
        with pytest.raises(TopologyError, match="unknown operator state"):
            StateKind.parse("mysterious")


class TestKeyDistribution:
    def test_uniform_sums_to_one(self):
        keys = KeyDistribution.uniform(10)
        assert math.isclose(sum(f for _, f in keys.items()), 1.0)
        assert len(keys) == 10

    def test_uniform_max_frequency(self):
        assert math.isclose(KeyDistribution.uniform(4).max_frequency(), 0.25)

    def test_zipf_is_skewed(self):
        keys = KeyDistribution.zipf(10, 1.5)
        frequencies = dict(keys.items())
        assert frequencies["k0"] > frequencies["k9"]
        assert math.isclose(sum(frequencies.values()), 1.0)

    def test_zipf_higher_exponent_more_skew(self):
        mild = KeyDistribution.zipf(50, 0.8).max_frequency()
        harsh = KeyDistribution.zipf(50, 2.0).max_frequency()
        assert harsh > mild

    def test_empty_rejected(self):
        with pytest.raises(TopologyError, match="at least one key"):
            KeyDistribution({})

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(TopologyError, match="non-positive"):
            KeyDistribution({"a": 0.0, "b": 1.0})

    def test_not_normalized_rejected(self):
        with pytest.raises(TopologyError, match="sum to 1"):
            KeyDistribution({"a": 0.4, "b": 0.4})

    def test_uniform_invalid_count(self):
        with pytest.raises(TopologyError):
            KeyDistribution.uniform(0)

    def test_zipf_invalid_exponent(self):
        with pytest.raises(TopologyError):
            KeyDistribution.zipf(5, 0.0)


class TestOperatorSpec:
    def test_service_rate_is_inverse_time(self):
        spec = OperatorSpec("a", 0.004)
        assert math.isclose(spec.service_rate, 250.0)

    def test_gain_combines_selectivities(self):
        spec = OperatorSpec("a", 0.001, input_selectivity=10.0,
                            output_selectivity=2.0)
        assert math.isclose(spec.gain, 0.2)

    def test_defaults(self):
        spec = OperatorSpec("a", 0.001)
        assert spec.state is StateKind.STATELESS
        assert spec.replication == 1
        assert spec.keys is None

    def test_with_replication_copies(self):
        spec = OperatorSpec("a", 0.001)
        replicated = spec.with_replication(4)
        assert replicated.replication == 4
        assert spec.replication == 1
        assert replicated.name == "a"

    def test_with_service_time_copies(self):
        spec = OperatorSpec("a", 0.001)
        slower = spec.with_service_time(0.002)
        assert math.isclose(slower.service_time, 0.002)
        assert math.isclose(spec.service_time, 0.001)

    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError, match="non-empty"):
            OperatorSpec("", 0.001)

    def test_non_positive_service_time_rejected(self):
        with pytest.raises(TopologyError, match="service_time"):
            OperatorSpec("a", 0.0)

    def test_non_positive_input_selectivity_rejected(self):
        with pytest.raises(TopologyError, match="input selectivity"):
            OperatorSpec("a", 0.001, input_selectivity=0.0)

    def test_negative_output_selectivity_rejected(self):
        with pytest.raises(TopologyError, match="output selectivity"):
            OperatorSpec("a", 0.001, output_selectivity=-0.5)

    def test_zero_output_selectivity_allowed_for_sinks(self):
        assert OperatorSpec("a", 0.001, output_selectivity=0.0).gain == 0.0

    def test_replication_below_one_rejected(self):
        with pytest.raises(TopologyError, match="replication"):
            OperatorSpec("a", 0.001, replication=0)

    def test_partitioned_needs_keys(self):
        with pytest.raises(TopologyError, match="key distribution"):
            OperatorSpec("a", 0.001, state=StateKind.PARTITIONED)

    def test_partitioned_with_keys_ok(self):
        spec = OperatorSpec("a", 0.001, state=StateKind.PARTITIONED,
                            keys=KeyDistribution.uniform(5))
        assert len(spec.keys) == 5


class TestEdge:
    def test_defaults_probability_one(self):
        assert Edge("a", "b").probability == 1.0

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError, match="self-loop"):
            Edge("a", "a")

    def test_zero_probability_rejected(self):
        with pytest.raises(TopologyError, match="probability"):
            Edge("a", "b", 0.0)

    def test_probability_above_one_rejected(self):
        with pytest.raises(TopologyError, match="probability"):
            Edge("a", "b", 1.5)


class TestTopologyValidation:
    def test_simple_pipeline_valid(self):
        topology = make_pipeline(1.0, 2.0)
        assert len(topology) == 2
        assert topology.source == "op0"

    def test_duplicate_operator_rejected(self):
        with pytest.raises(TopologyError, match="duplicate operator"):
            Topology([OperatorSpec("a", 1e-3), OperatorSpec("a", 1e-3)], [])

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(TopologyError, match="unknown operator"):
            Topology([OperatorSpec("a", 1e-3)], [Edge("a", "ghost")])

    def test_duplicate_edge_rejected(self):
        operators = [OperatorSpec("a", 1e-3), OperatorSpec("b", 1e-3)]
        with pytest.raises(TopologyError, match="duplicate edge"):
            Topology(operators, [Edge("a", "b", 0.5), Edge("a", "b", 0.5)])

    def test_probabilities_must_sum_to_one(self):
        operators = [OperatorSpec(n, 1e-3) for n in ("a", "b", "c")]
        with pytest.raises(TopologyError, match="sum to"):
            Topology(operators, [Edge("a", "b", 0.5), Edge("a", "c", 0.4)])

    def test_multiple_sources_rejected(self):
        operators = [OperatorSpec(n, 1e-3) for n in ("a", "b", "c")]
        with pytest.raises(TopologyError, match="exactly one source"):
            Topology(operators, [Edge("a", "c", 1.0), Edge("b", "c", 1.0)])

    def test_cycle_rejected(self):
        operators = [OperatorSpec(n, 1e-3) for n in ("s", "a", "b")]
        edges = [Edge("s", "a"), Edge("a", "b"), Edge("b", "a")]
        # b->a gives 'a' two inputs and creates the cycle a->b->a; the
        # single source is 's'.  Probabilities: a has one output edge.
        with pytest.raises(TopologyError, match="cycle"):
            Topology(operators, edges)

    def test_no_operators_rejected(self):
        with pytest.raises(TopologyError, match="exactly one source"):
            Topology([], [])

    def test_unreachable_with_second_component_rejected(self):
        # a->b plus isolated pair c->d: two sources, caught first.
        operators = [OperatorSpec(n, 1e-3) for n in ("a", "b", "c", "d")]
        with pytest.raises(TopologyError, match="exactly one source"):
            Topology(operators, [Edge("a", "b"), Edge("c", "d")])


class TestTopologyAccessors:
    def test_topological_order_respects_edges(self):
        topology = make_fig11()
        order = topology.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for edge in topology.edges:
            assert position[edge.source] < position[edge.target]

    def test_source_and_sinks(self, fig11_table1):
        assert fig11_table1.source == "op1"
        assert fig11_table1.sinks == ["op6"]

    def test_contains_and_iter(self, fig11_table1):
        assert "op3" in fig11_table1
        assert "ghost" not in fig11_table1
        assert {spec.name for spec in fig11_table1} == {
            "op1", "op2", "op3", "op4", "op5", "op6"
        }

    def test_operator_lookup_error(self, fig11_table1):
        with pytest.raises(TopologyError, match="unknown operator"):
            fig11_table1.operator("ghost")

    def test_out_edges_and_successors(self, fig11_table1):
        assert set(fig11_table1.successors("op1")) == {"op2", "op3"}
        probs = {e.target: e.probability for e in fig11_table1.out_edges("op1")}
        assert math.isclose(probs["op2"], 0.7)

    def test_in_edges_and_predecessors(self, fig11_table1):
        assert set(fig11_table1.predecessors("op6")) == {"op2", "op4", "op5"}

    def test_edge_lookup(self, fig11_table1):
        edge = fig11_table1.edge("op3", "op5")
        assert math.isclose(edge.probability, 0.65)
        with pytest.raises(TopologyError, match="no edge"):
            fig11_table1.edge("op6", "op1")

    def test_names_matches_order(self, fig11_table1):
        assert fig11_table1.names == fig11_table1.topological_order()

    def test_total_replicas(self, fig11_table1):
        assert fig11_table1.total_replicas() == 6
        boosted = fig11_table1.with_replications({"op4": 3})
        assert boosted.total_replicas() == 8


class TestPaths:
    def test_paths_to_sink_cover_all_routes(self, fig11_table1):
        paths = fig11_table1.paths_to("op6")
        # op1->op2->op6, op1->op3->op4->op6, op1->op3->op4->op5->op6,
        # op1->op3->op5->op6.
        assert len(paths) == 4
        total = sum(probability for _, probability in paths)
        assert math.isclose(total, 1.0)

    def test_paths_to_source_is_trivial(self, fig11_table1):
        paths = fig11_table1.paths_to("op1")
        assert paths == [(["op1"], 1.0)]

    def test_visit_probability_matches_path_sum(self, fig11_table1):
        for name in fig11_table1.names:
            path_sum = sum(p for _, p in fig11_table1.paths_to(name))
            assert math.isclose(
                fig11_table1.visit_probability(name), path_sum, rel_tol=1e-12
            )

    def test_visit_probability_of_sinks_sums_to_one(self, diamond):
        total = sum(diamond.visit_probability(s) for s in diamond.sinks)
        assert math.isclose(total, 1.0)

    def test_visit_probability_mid_diamond(self):
        topology = make_diamond(p_left=0.3)
        assert math.isclose(topology.visit_probability("left"), 0.3)
        assert math.isclose(topology.visit_probability("right"), 0.7)
        assert math.isclose(topology.visit_probability("sink"), 1.0)


class TestSubgraphConnectivity:
    def test_connected_subgraph(self, fig11_table1):
        assert fig11_table1.subgraph_is_connected(["op3", "op4", "op5"])

    def test_disconnected_subgraph(self, fig11_table1):
        assert not fig11_table1.subgraph_is_connected(["op2", "op3"])

    def test_empty_subgraph_not_connected(self, fig11_table1):
        assert not fig11_table1.subgraph_is_connected([])

    def test_single_vertex_connected(self, fig11_table1):
        assert fig11_table1.subgraph_is_connected(["op4"])


class TestDerivation:
    def test_with_replications_keeps_structure(self, fig11_table1):
        topology = fig11_table1.with_replications({"op4": 2, "op5": 3})
        assert topology.operator("op4").replication == 2
        assert topology.operator("op5").replication == 3
        assert topology.operator("op2").replication == 1
        assert len(topology.edges) == len(fig11_table1.edges)

    def test_with_operator_replaces_one_spec(self, fig11_table1):
        replaced = fig11_table1.with_operator(OperatorSpec("op4", 9e-3))
        assert math.isclose(replaced.operator("op4").service_time, 9e-3)
        assert math.isclose(fig11_table1.operator("op4").service_time, 2e-3)

    def test_with_operator_unknown_rejected(self, fig11_table1):
        with pytest.raises(TopologyError, match="unknown operator"):
            fig11_table1.with_operator(OperatorSpec("ghost", 1e-3))

    def test_describe_mentions_every_operator(self, fig11_table1):
        text = fig11_table1.describe()
        for name in fig11_table1.names:
            assert name in text
