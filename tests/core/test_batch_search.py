"""The analytical batch-size grid search (``search_batch_sizes``).

Batching trades per-tuple hop overhead for queueing delay; the search
prices every grid size with ``predict_batching`` and keeps the smallest
one within tolerance of the best, then refines hot edges one at a
time.  These tests pin the decision logic — a costly hop earns a batch,
a free hop does not, a latency budget can veto, explicit ``Edge.batch``
overrides are never re-chosen — and the ``auto_fuse(batch_search=True)``
integration that rides the fused topology through the search.
"""

from __future__ import annotations

import pytest

from repro.core.autofusion import (
    DEFAULT_BATCH_GRID,
    BatchSizeChoice,
    auto_fuse,
    search_batch_sizes,
)
from repro.core.graph import (
    BatchConfig,
    Edge,
    OperatorSpec,
    Topology,
    TopologyError,
)


def hop_chain(stage_time: float = 2e-4, stages: int = 3) -> Topology:
    """Linear chain of cheap operators; the hop dominates the stage."""
    specs = [OperatorSpec(name="src", service_time=stage_time)]
    specs += [OperatorSpec(name=f"s{i}", service_time=stage_time)
              for i in range(stages)]
    specs += [OperatorSpec(name="sink", service_time=stage_time / 2)]
    names = [spec.name for spec in specs]
    edges = [Edge(a, b) for a, b in zip(names, names[1:])]
    return Topology(specs, edges, name="hop-chain")


class TestGridSweep:
    def test_costly_hop_earns_a_batch(self):
        choice = search_batch_sizes(hop_chain(), hop_overhead=2e-4)
        assert choice.global_size > 1
        assert choice.throughput_gain > 1.0
        # Every free edge got the choice materialized on the topology.
        for edge in choice.batched.edges:
            size = choice.per_edge[(edge.source, edge.target)]
            if size > 1:
                assert edge.batch is not None
                assert edge.batch.size == size

    def test_free_hop_stays_unbatched(self):
        choice = search_batch_sizes(hop_chain(), hop_overhead=0.0)
        # With a free hop batching only adds latency; the smallest-
        # within-tolerance rule must collapse to size 1.
        assert choice.global_size == 1
        for edge in choice.batched.edges:
            assert edge.batch is None

    def test_smallest_size_within_tolerance_wins(self):
        choice = search_batch_sizes(hop_chain(), hop_overhead=2e-4)
        # A tiny tolerance forces the literal argmax; the default 1%
        # tolerance must never pick a *larger* size than that.
        greedy = search_batch_sizes(hop_chain(), hop_overhead=2e-4,
                                    rel_improvement=0.0, refine_edges=False)
        assert choice.global_size <= greedy.global_size

    def test_latency_budget_caps_the_batch(self):
        unbounded = search_batch_sizes(hop_chain(), hop_overhead=5e-4,
                                       refine_edges=False)
        assert unbounded.global_size > 1
        budget = unbounded.prediction.mean_added_latency / 2
        bounded = search_batch_sizes(hop_chain(), hop_overhead=5e-4,
                                     refine_edges=False,
                                     latency_budget=budget)
        assert bounded.prediction.mean_added_latency <= budget
        assert bounded.global_size < unbounded.global_size

    def test_impossible_budget_rejected(self):
        with pytest.raises(TopologyError, match="latency budget"):
            search_batch_sizes(hop_chain(), hop_overhead=5e-4,
                               grid=(16, 32), latency_budget=1e-12)

    def test_explicit_edge_override_respected(self):
        topology = hop_chain()
        pinned = Topology(
            list(topology.operators),
            [Edge("src", "s0", batch=BatchConfig(size=7))]
            + [e for e in topology.edges if e.source != "src"],
            name=topology.name)
        choice = search_batch_sizes(pinned, hop_overhead=2e-4)
        assert ("src", "s0") not in choice.per_edge
        batched = {(e.source, e.target): e.batch for e in choice.batched.edges}
        assert batched[("src", "s0")].size == 7


class TestValidation:
    def test_empty_grid_rejected(self):
        with pytest.raises(TopologyError, match="grid"):
            search_batch_sizes(hop_chain(), hop_overhead=1e-4, grid=())

    def test_sub_one_size_rejected(self):
        with pytest.raises(TopologyError, match=">= 1"):
            search_batch_sizes(hop_chain(), hop_overhead=1e-4, grid=(0, 4))


class TestRefinement:
    def test_refinement_never_loses_throughput(self):
        base = search_batch_sizes(hop_chain(), hop_overhead=2e-4,
                                  refine_edges=False)
        refined = search_batch_sizes(hop_chain(), hop_overhead=2e-4,
                                     refine_edges=True)
        assert refined.throughput >= base.throughput
        if refined.refined:
            assert refined.per_edge != base.per_edge


class TestAutoFuseIntegration:
    def test_batch_search_rides_the_fused_topology(self):
        result = auto_fuse(hop_chain(stages=4), batch_search=True,
                           hop_overhead=2e-4)
        assert isinstance(result.batching, BatchSizeChoice)
        assert result.batching.grid == tuple(sorted(set(DEFAULT_BATCH_GRID)))
        # The search prices the *fused* topology, not the original.
        searched = {v for key in result.batching.per_edge for v in key}
        assert searched <= {spec.name for spec in result.batching.batched}

    def test_default_off(self):
        result = auto_fuse(hop_chain())
        assert result.batching is None
