"""Analytical batching cost model (`predict_batching`) and its DES twin.

The model claims: packing ``b`` tuples per message amortizes the
per-message hop overhead to ``h/b`` per tuple (throughput up), while
each batched edge adds a mean fill wait of ``(b-1)/(2λ)`` capped by the
flush timeout (latency up).  These tests pin the monotonicity, the
degenerate cases and the agreement between the solver's derating and
the simulator's :meth:`SimulationConfig.effective_service_time`.
"""

import pytest

from repro.core.graph import BatchConfig, Edge, OperatorSpec, Topology, TopologyError
from repro.core.solver import predict_batching
from repro.sim.network import SimulationConfig

HOP = 0.0005  # 0.5 ms per message: hop-dominated relative to service


def _chain():
    # A fast source (5000/s) keeps the hop-laden operators the
    # bottleneck, so amortizing the hop is visible as throughput gain.
    return Topology(
        [OperatorSpec(name="source", service_time=0.0002),
         OperatorSpec(name="map", service_time=0.0004),
         OperatorSpec(name="sink", service_time=0.0004)],
        [Edge("source", "map"), Edge("map", "sink")],
    )


class TestPredictBatching:
    def test_batch_size_one_is_the_baseline(self):
        prediction = predict_batching(_chain(), batch_size=1, hop_overhead=HOP)
        assert prediction.throughput == pytest.approx(
            prediction.baseline_throughput)
        assert prediction.throughput_gain == pytest.approx(1.0)
        assert prediction.edge_latencies == ()

    def test_zero_hop_overhead_gains_nothing(self):
        prediction = predict_batching(_chain(), batch_size=8, hop_overhead=0.0)
        assert prediction.throughput_gain == pytest.approx(1.0)

    def test_gain_is_monotone_in_batch_size(self):
        gains = [predict_batching(_chain(), batch_size=b, hop_overhead=HOP)
                 .throughput_gain for b in (1, 2, 4, 8)]
        assert gains == sorted(gains)
        assert gains[-1] > 1.0

    def test_gain_bounded_by_hop_elimination(self):
        # Amortizing can at best remove the whole hop: gain <= (T+h)/T.
        prediction = predict_batching(_chain(), batch_size=64,
                                      hop_overhead=HOP)
        bound = (0.0004 + HOP) / 0.0004
        assert 1.0 < prediction.throughput_gain <= bound + 1e-9

    def test_added_latency_grows_with_batch_size(self):
        waits = [predict_batching(_chain(), batch_size=b, hop_overhead=HOP,
                                  flush_timeout=100.0).mean_added_latency
                 for b in (2, 4, 8)]
        assert waits == sorted(waits)
        assert waits[0] > 0.0

    def test_flush_timeout_caps_added_latency(self):
        capped = predict_batching(_chain(), batch_size=64, hop_overhead=HOP,
                                  flush_timeout=0.001)
        assert all(entry.added_latency <= 0.001
                   for entry in capped.edge_latencies)

    def test_fill_wait_matches_closed_form(self):
        prediction = predict_batching(_chain(), batch_size=4,
                                      hop_overhead=HOP, flush_timeout=100.0)
        rates = {(e.source, e.target): e for e in prediction.edge_latencies}
        entry = rates[("source", "map")]
        # (b - 1) / (2 λ); on a backpressured chain every edge carries
        # the steady-state throughput.
        assert entry.added_latency == pytest.approx(
            3.0 / (2.0 * prediction.throughput), rel=1e-6)

    def test_per_edge_override_beats_global_size(self):
        topology = _chain()
        override = Topology(
            list(topology.operators),
            [Edge("source", "map", batch=BatchConfig(size=16,
                                                     flush_timeout=0.5)),
             Edge("map", "sink")],
        )
        prediction = predict_batching(override, batch_size=2,
                                      hop_overhead=HOP, flush_timeout=100.0)
        sizes = {(e.source, e.target): e.batch_size
                 for e in prediction.edge_latencies}
        assert sizes == {("source", "map"): 16, ("map", "sink"): 2}

    def test_invalid_arguments_rejected(self):
        with pytest.raises(TopologyError):
            predict_batching(_chain(), batch_size=0, hop_overhead=HOP)
        with pytest.raises(TopologyError):
            predict_batching(_chain(), batch_size=2, hop_overhead=-1e-6)


class TestSimulatorDerating:
    def test_effective_service_time_matches_model(self):
        # The DES derates exactly like the analytical model: T + h/b on
        # every non-source vertex.
        topology = _chain()
        config = SimulationConfig(hop_overhead=HOP, batch_size=4)
        assert config.effective_service_time(topology, "map") == \
            pytest.approx(0.0004 + HOP / 4)
        assert config.effective_service_time(topology, "sink") == \
            pytest.approx(0.0004 + HOP / 4)

    def test_source_pays_no_hop(self):
        config = SimulationConfig(hop_overhead=HOP, batch_size=4)
        assert config.effective_service_time(_chain(), "source") == \
            pytest.approx(0.0002)

    def test_zero_hop_is_identity(self):
        config = SimulationConfig()
        assert config.effective_service_time(_chain(), "map") == \
            pytest.approx(0.0004)

    def test_edge_override_reaches_simulator(self):
        topology = _chain()
        override = Topology(
            list(topology.operators),
            [Edge("source", "map", batch=BatchConfig(size=8,
                                                     flush_timeout=0.5)),
             Edge("map", "sink")],
        )
        config = SimulationConfig(hop_overhead=HOP, batch_size=2)
        assert config.effective_service_time(override, "map") == \
            pytest.approx(0.0004 + HOP / 8)
        assert config.effective_service_time(override, "sink") == \
            pytest.approx(0.0004 + HOP / 2)
