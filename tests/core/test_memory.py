"""Tests for the memory-estimation extension."""

import math

import pytest

from repro.core.graph import (
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)
from repro.core.memory import estimate_memory, memory_report
from repro.sim.network import SimulationConfig, simulate
from tests.conftest import make_fig11, make_pipeline


def windowed_topology():
    keys = KeyDistribution.uniform(50)
    return Topology(
        [
            OperatorSpec("src", 1e-3),
            OperatorSpec("agg", 0.5e-3, state=StateKind.PARTITIONED,
                         keys=keys, input_selectivity=10.0,
                         operator_args={"length": 1000, "slide": 10}),
            OperatorSpec("win", 0.4e-3, state=StateKind.STATEFUL,
                         input_selectivity=10.0,
                         operator_args={"length": 500, "slide": 10}),
            OperatorSpec("sink", 0.05e-3, output_selectivity=0.0),
        ],
        [Edge("src", "agg"), Edge("agg", "win"), Edge("win", "sink")],
        name="windowed",
    )


class TestStateMemory:
    def test_partitioned_state_scales_with_keys(self):
        estimate = estimate_memory(windowed_topology())
        # 1000-item windows for each of 50 keys.
        assert estimate.operators["agg"].state_items == 50_000

    def test_global_window_state(self):
        estimate = estimate_memory(windowed_topology())
        assert estimate.operators["win"].state_items == 500

    def test_stateless_operators_hold_no_state(self):
        estimate = estimate_memory(windowed_topology())
        assert estimate.operators["src"].state_items == 0.0
        assert estimate.operators["sink"].state_items == 0.0


class TestQueueMemory:
    def test_source_has_no_queue(self, fig11_table1):
        estimate = estimate_memory(fig11_table1)
        assert estimate.operators["op1"].queued_items == 0.0

    def test_saturated_operator_sits_at_full_buffer(self):
        topology = make_pipeline(1.0, 4.0, 0.5)
        estimate = estimate_memory(topology, mailbox_capacity=32)
        assert estimate.operators["op1"].queued_items == pytest.approx(32.0)

    def test_queue_bounded_by_mailbox_times_replicas(self):
        topology = make_pipeline(1.0, 4.0).with_replications({"op1": 3})
        estimate = estimate_memory(topology, mailbox_capacity=16)
        assert estimate.operators["op1"].queued_items <= 16 * 3

    def test_littles_law_matches_simulation(self):
        # Moderately loaded exponential pipeline: the queued-item
        # estimate L = lambda * W should track lambda * measured wait.
        topology = make_pipeline(1.0, 0.8, 0.2)
        estimate = estimate_memory(topology, assumption="markovian",
                                   source_rate=900.0)
        measured = simulate(
            topology,
            SimulationConfig(items=100_000, seed=5,
                             service_family="exponential"),
            source_rate=900.0,
        )
        measured_items = (measured.vertices["op1"].arrival_rate
                          * measured.mean_wait("op1"))
        assert estimate.operators["op1"].queued_items == pytest.approx(
            measured_items, rel=0.35)


class TestTotalsAndReport:
    def test_totals_aggregate(self):
        estimate = estimate_memory(windowed_topology(), bytes_per_item=100.0)
        expected_items = sum(op.total_items
                             for op in estimate.operators.values())
        assert math.isclose(estimate.total_items, expected_items)
        assert math.isclose(estimate.total_bytes, expected_items * 100.0)

    def test_heaviest_ranking(self):
        estimate = estimate_memory(windowed_topology())
        heaviest = estimate.heaviest(2)
        assert heaviest[0].name == "agg"
        assert heaviest[0].total_items >= heaviest[1].total_items

    def test_report_mentions_everything(self):
        estimate = estimate_memory(windowed_topology())
        text = memory_report(estimate)
        for name in windowed_topology().names:
            assert name in text
        assert "total:" in text

    def test_invalid_bytes_rejected(self, fig11_table1):
        with pytest.raises(TopologyError, match="bytes_per_item"):
            estimate_memory(fig11_table1, bytes_per_item=0.0)

    def test_fusion_reduces_queue_memory(self, fig11_table1):
        from repro.core.fusion import apply_fusion
        fused = apply_fusion(fig11_table1, ["op3", "op4", "op5"], "F").fused
        before = estimate_memory(fig11_table1, source_rate=900.0,
                                 assumption="markovian")
        after = estimate_memory(fused, source_rate=900.0,
                                assumption="markovian")
        # Three mailboxes collapse into one.
        assert len(after.operators) < len(before.operators)
