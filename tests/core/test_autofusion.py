"""Tests for the automatic fusion extension."""

import math

import pytest

from repro.core.autofusion import auto_fuse
from repro.core.graph import Edge, OperatorSpec, Topology, TopologyError
from repro.core.steady_state import analyze
from repro.sim.network import SimulationConfig, simulate
from tests.conftest import make_fig11, make_pipeline


def lazy_pipeline():
    """A long chain of tiny operators behind a pacing source."""
    return make_pipeline(1.0, 0.1, 0.15, 0.1, 0.2, 0.1, name="lazy")


class TestAutoFuse:
    def test_collapses_underutilized_chain(self):
        result = auto_fuse(lazy_pipeline())
        assert result.operators_removed >= 3
        assert len(result.fused) <= 3

    def test_preserves_throughput(self):
        topology = lazy_pipeline()
        before = analyze(topology).throughput
        result = auto_fuse(topology)
        assert result.throughput == pytest.approx(before)

    def test_fig11_fuses_the_tail(self, fig11_table1):
        result = auto_fuse(fig11_table1)
        assert result.operators_removed >= 2
        fused_members = {m for plan in result.plans for m in plan.members}
        assert {"op3", "op4", "op5"} <= fused_members

    def test_never_fuses_into_a_bottleneck(self, fig11_table2):
        # In the Table 2 variant the op3+op4+op5 merge would saturate;
        # auto-fusion must avoid it (or pick only harmless subsets).
        before = analyze(fig11_table2).throughput
        result = auto_fuse(fig11_table2)
        assert result.throughput == pytest.approx(before)

    def test_busy_topology_left_alone(self):
        topology = make_pipeline(1.0, 0.9, 0.95)
        result = auto_fuse(topology, max_utilization=0.5)
        assert result.rounds == 0
        assert result.fused is topology

    def test_plans_cover_all_merges(self):
        result = auto_fuse(lazy_pipeline())
        total_members = sum(len(plan.members) for plan in result.plans)
        # Members of later rounds may be fused names of earlier rounds;
        # at minimum every removed operator appears once.
        assert total_members >= result.operators_removed

    def test_headroom_validation(self, fig11_table1):
        with pytest.raises(TopologyError, match="headroom"):
            auto_fuse(fig11_table1, headroom=0.0)

    def test_headroom_limits_aggressiveness(self):
        topology = lazy_pipeline()
        tight = auto_fuse(topology, headroom=0.3)
        loose = auto_fuse(topology, headroom=0.95)
        assert len(loose.fused) <= len(tight.fused)

    def test_fused_result_simulates_correctly(self):
        topology = lazy_pipeline()
        result = auto_fuse(topology)
        measured = simulate(result.fused,
                            SimulationConfig(items=40_000, seed=5))
        assert measured.throughput_error(result.analysis) < 0.02

    def test_source_rate_respected(self, fig11_table1):
        result = auto_fuse(fig11_table1, source_rate=200.0)
        assert result.throughput == pytest.approx(200.0)
