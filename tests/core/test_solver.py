"""Memoized/incremental solver: bit-exactness and solve accounting.

The whole point of :mod:`repro.core.solver` is that it is *not* an
approximation: cached, incremental and fresh solves must produce
identical floats.  The tests compare complete result payloads
(``OperatorRates`` fields, corrections, source rates) with ``==`` — no
tolerances anywhere.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.autofusion import auto_fuse
from repro.core.candidates import enumerate_candidates
from repro.core.fission import eliminate_bottlenecks
from repro.core.fusion import apply_fusion
from repro.core.graph import Edge, OperatorSpec, Topology
from repro.core.solver import (
    SteadyStateSolver,
    analyze_cached,
    clear_cache,
    topology_signature,
)
from repro.core.steady_state import analyze
from repro.instrumentation import SOLVER
from repro.topology.random_gen import RandomTopologyGenerator


@pytest.fixture(autouse=True)
def _fresh_default_cache():
    clear_cache()
    yield
    clear_cache()


def _assert_identical(left, right):
    """Exact equality of two steady-state results (all floats bitwise)."""
    assert set(left.rates) == set(right.rates)
    for name, rates in left.rates.items():
        assert rates == right.rates[name], name
    assert left.corrections == right.corrections
    assert left.source_rate == right.source_rate


def _random_topology(seed: int) -> Topology:
    return RandomTopologyGenerator(seed=seed).generate(name=f"prop-{seed}")


class TestCachedAnalyze:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=50_000))
    def test_cached_equals_fresh(self, seed):
        topology = _random_topology(seed)
        solver = SteadyStateSolver()
        _assert_identical(solver.analyze(topology), analyze(topology))

    def test_second_call_is_a_hit_rebound_to_caller_topology(self):
        topology = _random_topology(7)
        clone = Topology(topology.operators, topology.edges,
                         name=topology.name)
        before = SOLVER.snapshot()
        first = analyze_cached(topology)
        second = analyze_cached(clone)
        delta = SOLVER.since(before)
        assert delta.full_solves == 1 and delta.cache_hits == 1
        assert first.topology is topology
        assert second.topology is clone
        # The hit shares the converged rates verbatim.
        assert second.rates is first.rates

    def test_explicit_and_default_source_rate_share_an_entry(self):
        topology = _random_topology(11)
        rate = topology.operator(topology.source).service_rate
        before = SOLVER.snapshot()
        analyze_cached(topology)
        analyze_cached(topology, source_rate=rate)
        assert SOLVER.since(before).cache_hits == 1

    def test_derating_parameters_key_the_cache(self):
        topology = _random_topology(13)
        availability = {name: 0.5 for name in topology.names}
        solver = SteadyStateSolver()
        derated = solver.analyze(topology, availability=availability)
        plain = solver.analyze(topology)
        _assert_identical(derated,
                          analyze(topology, availability=availability))
        assert derated.rates != plain.rates

    def test_operator_args_do_not_fragment_the_cache(self):
        spec = OperatorSpec("src", 1e-3, operator_args={"a": 1})
        sink = OperatorSpec("snk", 1e-3)
        one = Topology([spec, sink], [Edge("src", "snk")])
        two = Topology([dataclasses.replace(spec, operator_args={"a": 2}),
                        sink], [Edge("src", "snk")])
        assert topology_signature(one) == topology_signature(two)

    def test_lru_eviction_bounds_the_cache(self):
        solver = SteadyStateSolver(max_entries=3)
        for seed in range(6):
            solver.analyze(_random_topology(seed))
        assert len(solver) == 3


class TestIncrementalAnalyze:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=50_000))
    def test_fission_edit_equals_fresh(self, seed):
        topology = _random_topology(seed)
        solver = SteadyStateSolver()
        solver.analyze(topology)
        edited = eliminate_bottlenecks(topology).optimized
        _assert_identical(solver.analyze_edit(topology, edited),
                          analyze(edited))

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=50_000))
    def test_fusion_edit_equals_fresh(self, seed):
        topology = _random_topology(seed)
        analysis = analyze_cached(topology)
        candidates = enumerate_candidates(topology, analysis=analysis)
        if not candidates:
            return
        fused = apply_fusion(topology, candidates[0].members,
                             analysis=analysis).fused
        from repro.core.solver import analyze_edit
        _assert_identical(analyze_edit(topology, fused), analyze(fused))

    def test_edit_without_cached_base_still_exact(self):
        topology = _random_topology(23)
        edited = eliminate_bottlenecks(topology).optimized
        solver = SteadyStateSolver()
        before = SOLVER.snapshot()
        result = solver.analyze_edit(topology, edited)
        delta = SOLVER.since(before)
        # Fission itself ran incrementally through the default solver;
        # this private solver has no base entry, so it full-solves.
        assert delta.incremental_solves == 0
        _assert_identical(result, analyze(edited))

    def test_incremental_reuses_clean_vertices(self):
        # A long chain with a slow head: replicating the head dirties
        # only it; every downstream vertex rides the memoized pass.
        operators = [OperatorSpec("src", 1e-3),
                     OperatorSpec("slow", 4e-3)]
        edges = [Edge("src", "slow")]
        for index in range(8):
            operators.append(OperatorSpec(f"op{index}", 0.5e-3))
            edges.append(Edge("slow" if index == 0 else f"op{index - 1}",
                              f"op{index}"))
        topology = Topology(operators, edges, name="chain")
        solver = SteadyStateSolver()
        solver.analyze(topology)
        edited = topology.with_replications({"slow": 4})
        before = SOLVER.snapshot()
        result = solver.analyze_edit(topology, edited)
        delta = SOLVER.since(before)
        assert delta.incremental_solves == 1
        assert delta.vertices_reused > 0
        _assert_identical(result, analyze(edited))


class TestOptimizerSolveAccounting:
    """Satellite: callers reuse provided analyses instead of re-solving."""

    def test_enumerate_candidates_with_analysis_makes_no_solve_request(self):
        topology = _random_topology(29)
        analysis = analyze_cached(topology)
        before = SOLVER.snapshot()
        enumerate_candidates(topology, analysis=analysis)
        assert SOLVER.since(before).solve_requests == 0

    def test_apply_fusion_reuses_the_provided_before_analysis(self):
        topology = _random_topology(29)
        analysis = analyze_cached(topology)
        candidates = enumerate_candidates(topology, analysis=analysis)
        assert candidates, "seed 29 must yield at least one candidate"
        before = SOLVER.snapshot()
        result = apply_fusion(topology, candidates[0].members,
                              analysis=analysis)
        delta = SOLVER.since(before)
        assert result.analysis_before is analysis
        assert delta.full_solves == 0
        assert delta.incremental_solves == 1  # the after-analysis only

    def test_warm_auto_fuse_performs_no_full_solve(self):
        topology = _random_topology(29)
        analyze_cached(topology)
        before = SOLVER.snapshot()
        result = auto_fuse(topology)
        delta = SOLVER.since(before)
        assert delta.full_solves == 0
        assert delta.solve_requests >= 2  # baseline + final at minimum
        _assert_identical(result.analysis, analyze(result.fused))

    def test_optimizer_pipeline_full_solve_reduction(self):
        """The harness workflow does >=5x fewer full fixed points."""
        topology = _random_topology(29)
        before = SOLVER.snapshot()
        analyze_cached(topology)
        fission = eliminate_bottlenecks(topology)
        fused = auto_fuse(fission.optimized)
        analyze_cached(fused.fused)
        delta = SOLVER.since(before)
        assert delta.full_solves == 1
        assert delta.solve_requests >= 5 * delta.full_solves
