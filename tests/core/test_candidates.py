"""Unit tests for fusion-candidate enumeration and ranking."""

import math

import pytest

from repro.core.candidates import enumerate_candidates
from repro.core.fusion import validate_fusion
from repro.core.graph import Edge, OperatorSpec, Topology
from repro.core.steady_state import analyze
from tests.conftest import make_fig11, make_pipeline


class TestEnumeration:
    def test_fig11_proposes_underutilized_tail(self, fig11_table1):
        candidates = enumerate_candidates(fig11_table1, limit=None)
        member_sets = [set(c.members) for c in candidates]
        assert {"op3", "op4", "op5"} in member_sets

    def test_all_candidates_structurally_valid(self, fig11_table1):
        for candidate in enumerate_candidates(fig11_table1, limit=None):
            front_end = validate_fusion(fig11_table1, candidate.members)
            assert front_end == candidate.front_end

    def test_ranked_by_mean_utilization(self, fig11_table1):
        candidates = enumerate_candidates(fig11_table1, limit=None)
        utilizations = [c.mean_utilization for c in candidates]
        assert utilizations == sorted(utilizations)

    def test_limit_respected(self, fig11_table1):
        assert len(enumerate_candidates(fig11_table1, limit=2)) <= 2

    def test_max_size_respected(self, fig11_table1):
        for candidate in enumerate_candidates(fig11_table1, max_size=2,
                                              limit=None):
            assert len(candidate.members) == 2

    def test_busy_operators_excluded(self, fig11_table1):
        # op2 runs at rho = 0.84; with the default 0.75 threshold it
        # never appears in a candidate.
        for candidate in enumerate_candidates(fig11_table1, limit=None):
            assert "op2" not in candidate.members

    def test_source_never_in_candidates(self, fig11_table1):
        for candidate in enumerate_candidates(fig11_table1, limit=None):
            assert "op1" not in candidate.members

    def test_no_candidates_in_saturated_pipeline(self):
        # Every operator runs at high utilization: nothing to fuse.
        topology = make_pipeline(1.0, 0.95, 0.9)
        assert enumerate_candidates(topology, max_utilization=0.5) == []

    def test_reuses_supplied_analysis(self, fig11_table1):
        analysis = analyze(fig11_table1)
        with_supplied = enumerate_candidates(fig11_table1, analysis=analysis,
                                             limit=None)
        without = enumerate_candidates(fig11_table1, limit=None)
        assert ([c.members for c in with_supplied]
                == [c.members for c in without])


class TestScoring:
    def test_predicted_service_time_matches_algorithm3(self, fig11_table1):
        candidates = enumerate_candidates(fig11_table1, limit=None)
        tail = next(c for c in candidates
                    if set(c.members) == {"op3", "op4", "op5"})
        assert math.isclose(tail.predicted_service_time, 2.6375e-3)

    def test_safe_flag_tracks_predicted_utilization(self, fig11_table2):
        candidates = enumerate_candidates(fig11_table2, limit=None)
        tail = next(c for c in candidates
                    if set(c.members) == {"op3", "op4", "op5"})
        assert not tail.safe
        assert tail.predicted_utilization > 1.0

    def test_predicted_utilization_uses_front_end_arrivals(self):
        # Pipeline tail fusion: arrival rate at the front-end is the
        # source rate, so rho_F = rate * (sum of times).
        topology = make_pipeline(1.0, 0.3, 0.4)
        candidates = enumerate_candidates(topology, limit=None)
        pair = next(c for c in candidates
                    if set(c.members) == {"op1", "op2"})
        assert math.isclose(pair.predicted_utilization, 1000.0 * 0.7e-3)

    def test_max_utilization_metric(self, fig11_table1):
        analysis = analyze(fig11_table1)
        for candidate in enumerate_candidates(fig11_table1, limit=None):
            expected = max(analysis.utilization(m) for m in candidate.members)
            assert math.isclose(candidate.max_utilization, expected)
