"""The sharding cost model and the solver-driven placement pass.

``predict_sharding`` prices serialization + pipe hops analytically and
caps each shard at one core; ``shard_placement`` turns solver
utilizations into a replica-to-shard map (hot operators get their own
shard, glue stays on shard 0); ``deployment_plan(shards=N)`` carries
both into the deployment descriptor.
"""

from __future__ import annotations

import pytest

from repro.codegen.deployment import deployment_plan, shard_placement
from repro.core.graph import Edge, OperatorSpec, Topology, TopologyError
from repro.core.solver import predict_sharding


def hot_chain(replication: int = 4) -> Topology:
    """src -> hot (CPU-bound, fissioned) -> sink."""
    specs = [
        OperatorSpec(name="src", service_time=2.5e-4),
        OperatorSpec(name="hot", service_time=1e-3,
                     replication=replication),
        OperatorSpec(name="sink", service_time=1e-4),
    ]
    edges = [Edge("src", "hot"), Edge("hot", "sink")]
    return Topology(specs, edges, name="hot-chain")


def spread_placement(replication: int = 4):
    return {"src": (0,), "hot": tuple(range(replication)), "sink": (0,)}


class TestPredictSharding:
    def test_spreading_a_hot_operator_beats_one_process(self):
        prediction = predict_sharding(hot_chain(), spread_placement(),
                                      batch_size=32)
        # Four dedicated cores for a 1ms operator vs everything on one
        # core: the model must predict a clear multiple.
        assert prediction.predicted_speedup > 2.0
        assert prediction.throughput > prediction.single_process_throughput

    def test_single_shard_placement_equals_one_process(self):
        placement = {"src": (0,), "hot": (0, 0, 0, 0), "sink": (0,)}
        prediction = predict_sharding(hot_chain(), placement)
        assert prediction.crossing_edges == ()
        # No crossing edges, everything on one core: the sharded
        # estimate must collapse to the single-process one (speedup 1).
        assert prediction.throughput == pytest.approx(
            prediction.single_process_throughput)
        assert prediction.predicted_speedup == pytest.approx(1.0)

    def test_batching_amortizes_the_hop(self):
        unbatched = predict_sharding(hot_chain(), spread_placement(),
                                     batch_size=1)
        batched = predict_sharding(hot_chain(), spread_placement(),
                                   batch_size=64)
        assert batched.throughput > unbatched.throughput
        assert batched.ipc_tax < unbatched.ipc_tax

    def test_shard_loads_capped_at_one_core(self):
        prediction = predict_sharding(hot_chain(), spread_placement(),
                                      batch_size=32)
        assert prediction.shard_loads
        for _, load in prediction.shard_loads:
            assert load <= 1.0 + 1e-9

    def test_crossing_edges_reported_by_home(self):
        prediction = predict_sharding(hot_chain(), spread_placement(),
                                      batch_size=32)
        # hot's home is shard 0 (first replica), so only the scattered
        # replicas cross; the src->hot and hot->sink home edges do not.
        assert ("src", "hot") not in prediction.crossing_edges

    def test_missing_vertex_rejected(self):
        with pytest.raises(TopologyError, match="placement"):
            predict_sharding(hot_chain(), {"src": (0,), "hot": (0, 1, 2, 3)})

    def test_wrong_replica_count_rejected(self):
        with pytest.raises(TopologyError, match="replica"):
            predict_sharding(hot_chain(),
                             {"src": (0,), "hot": (0, 1), "sink": (0,)})

    def test_negative_shard_rejected(self):
        with pytest.raises(TopologyError, match="shard"):
            predict_sharding(hot_chain(),
                             {"src": (0,), "hot": (0, 1, 2, -1),
                              "sink": (0,)})


class TestShardPlacement:
    def test_hot_replicas_spread_glue_stays_home(self):
        placement = shard_placement(hot_chain(), shards=4)
        assert placement.by_vertex["src"] == (0,)
        assert placement.by_vertex["sink"] == (0,)
        # The hot operator's four replicas use all four shards.
        assert sorted(placement.by_vertex["hot"]) == [0, 1, 2, 3]

    def test_one_shard_degenerates_to_threaded_layout(self):
        placement = shard_placement(hot_chain(), shards=1)
        for shards_of in placement.by_vertex.values():
            assert set(shards_of) == {0}
        assert placement.backend_of("hot") == "thread"

    def test_backend_of_reflects_scatter(self):
        placement = shard_placement(hot_chain(), shards=4)
        assert placement.backend_of("hot") == "process"
        assert placement.backend_of("src") == "thread"

    def test_members_partition_the_replicas(self):
        placement = shard_placement(hot_chain(), shards=4)
        members = [m for shard in range(4)
                   for m in placement.members(shard)]
        # src, sink, and one entry per hot replica — each exactly once.
        assert sorted(members) == sorted(
            ["src", "sink"] + [f"hot#{i}" for i in range(4)])


class TestDeploymentPlanShards:
    def test_plan_carries_shards_section(self):
        plan = deployment_plan(hot_chain(), shards=4)
        section = plan["shards"]
        assert section["count"] == 4
        assert len(section["placement"]) == 4
        assert section["predicted_speedup"] > 2.0
        assert 0.0 <= section["predicted_ipc_tax"] < 1.0

    def test_operator_entries_carry_placement(self):
        plan = deployment_plan(hot_chain(), shards=4)
        by_name = {entry["name"]: entry for entry in plan["operators"]}
        assert by_name["hot"]["placement"]["backend"] == "process"
        assert by_name["src"]["placement"]["backend"] == "thread"
        assert by_name["src"]["placement"]["shards"] == [0]

    def test_no_shards_requested_no_section(self):
        plan = deployment_plan(hot_chain())
        assert "shards" not in plan
        for entry in plan["operators"]:
            assert "placement" not in entry
