"""Unit and validation tests for the latency extension."""

import math

import pytest

from repro.core.graph import Edge, OperatorSpec, Topology, TopologyError
from repro.core.latency import estimate_latency, waiting_time
from repro.core.steady_state import analyze
from repro.sim.network import SimulationConfig, simulate
from tests.conftest import make_fig11, make_pipeline


class TestWaitingTime:
    def test_deterministic_no_wait_below_saturation(self):
        assert waiting_time(0.8, 800.0, 1000.0, 64, "deterministic") == 0.0

    def test_saturated_wait_is_buffer_drain(self):
        wait = waiting_time(1.0, 1200.0, 1000.0, 64, "markovian")
        assert math.isclose(wait, 64 / 1000.0)

    def test_markovian_grows_with_utilization(self):
        low = waiting_time(0.3, 300.0, 1000.0, 64, "markovian")
        high = waiting_time(0.9, 900.0, 1000.0, 64, "markovian")
        assert high > low > 0.0

    def test_md1_is_half_markovian(self):
        mm1 = waiting_time(0.5, 500.0, 1000.0, 64, "markovian")
        md1 = waiting_time(0.5, 500.0, 1000.0, 64, "md1")
        assert math.isclose(md1, mm1 / 2.0)

    def test_wait_capped_by_buffer(self):
        # rho = 0.999: the raw M/M/1 wait would exceed the full buffer.
        wait = waiting_time(0.999, 999.0, 1000.0, 8, "markovian")
        assert wait <= 8 / 1000.0 + 1e-12

    def test_unknown_assumption_rejected(self):
        with pytest.raises(TopologyError, match="assumption"):
            waiting_time(0.5, 1.0, 2.0, 8, "psychic")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(TopologyError, match="capacity"):
            waiting_time(0.5, 1.0, 0.0, 8, "markovian")


class TestEstimate:
    def test_unloaded_deterministic_is_path_service_sum(self):
        # src -> a -> b, far below saturation: end-to-end latency is
        # just the service times after the source.
        topology = make_pipeline(1.0, 0.4, 0.3)
        estimate = estimate_latency(topology, source_rate=100.0,
                                    assumption="deterministic")
        assert math.isclose(estimate.end_to_end, 0.7e-3)

    def test_source_generation_excluded(self, fig11_table1):
        estimate = estimate_latency(fig11_table1, source_rate=100.0,
                                    assumption="deterministic")
        assert estimate.operators["op1"].waiting_time == 0.0
        # Weighted path sums through op2.. without op1's 1 ms.
        assert estimate.end_to_end < 3.0e-3

    def test_fig11_path_weighting(self, fig11_table1):
        estimate = estimate_latency(fig11_table1, source_rate=100.0,
                                    assumption="deterministic")
        # 0.7*(1.4) + 0.195*(2.4) + 0.0525*(2.9) + 0.0525*(4.4) ms.
        expected = (0.7 * 1.4 + 0.195 * 2.4 + 0.0525 * 2.9
                    + 0.0525 * 4.4) * 1e-3
        assert math.isclose(estimate.end_to_end, expected, rel_tol=1e-9)

    def test_saturation_adds_buffer_delays(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        relaxed = estimate_latency(topology, source_rate=100.0,
                                   mailbox_capacity=64)
        saturated = estimate_latency(topology, mailbox_capacity=64)
        assert saturated.end_to_end > relaxed.end_to_end * 10

    def test_mailbox_capacity_scales_saturated_latency(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        small = estimate_latency(topology, mailbox_capacity=8)
        large = estimate_latency(topology, mailbox_capacity=128)
        assert large.end_to_end > small.end_to_end

    def test_reuses_supplied_analysis(self, fig11_table1):
        analysis = analyze(fig11_table1, source_rate=500.0)
        a = estimate_latency(fig11_table1, analysis=analysis)
        b = estimate_latency(fig11_table1, source_rate=500.0)
        assert math.isclose(a.end_to_end, b.end_to_end)

    def test_residence_accessors(self, fig11_table1):
        estimate = estimate_latency(fig11_table1, source_rate=100.0)
        assert estimate.residence_time("op4") >= 2.0e-3
        assert estimate.waiting_time("op4") >= 0.0


class TestValidationAgainstSimulator:
    def test_deterministic_unloaded_matches_measurement(self, fig11_table1):
        estimate = estimate_latency(fig11_table1, source_rate=600.0,
                                    assumption="deterministic")
        measured = simulate(
            fig11_table1,
            SimulationConfig(items=60_000, seed=5),
            source_rate=600.0,
        )
        assert measured.mean_latency() == pytest.approx(
            estimate.end_to_end, rel=0.05)

    def test_markovian_matches_exponential_measurement(self, fig11_table1):
        estimate = estimate_latency(fig11_table1, source_rate=800.0,
                                    assumption="markovian")
        measured = simulate(
            fig11_table1,
            SimulationConfig(items=100_000, seed=5,
                             service_family="exponential"),
            source_rate=800.0,
        )
        assert measured.mean_latency() == pytest.approx(
            estimate.end_to_end, rel=0.15)

    def test_saturated_buffer_latency_matches(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        estimate = estimate_latency(topology, assumption="deterministic",
                                    mailbox_capacity=64)
        measured = simulate(topology, SimulationConfig(items=80_000, seed=5))
        assert measured.mean_latency() == pytest.approx(
            estimate.end_to_end, rel=0.05)

    def test_latency_monotone_in_load(self, fig11_table1):
        latencies = []
        for rate in (400.0, 700.0, 950.0):
            measured = simulate(
                fig11_table1,
                SimulationConfig(items=80_000, seed=5,
                                 service_family="exponential"),
                source_rate=rate,
            )
            estimate = estimate_latency(fig11_table1, source_rate=rate)
            latencies.append((estimate.end_to_end, measured.mean_latency()))
        model = [pair[0] for pair in latencies]
        meas = [pair[1] for pair in latencies]
        assert model == sorted(model)
        assert meas == sorted(meas)
