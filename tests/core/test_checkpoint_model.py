"""Analytical checkpoint cost model and its DES mirror."""

import pytest

from repro.core.graph import CheckpointConfig, Edge, OperatorSpec, Topology, TopologyError
from repro.core.solver import SteadyStateSolver, predict_checkpoint
from repro.sim.network import SimulationConfig, _relative_arrivals


def chain(checkpoint=None):
    specs = [
        OperatorSpec("src", 1.0e-3),
        OperatorSpec("mid", 2.0e-3, output_selectivity=0.5),
        OperatorSpec("snk", 0.5e-3),
    ]
    edges = [Edge("src", "mid"), Edge("mid", "snk")]
    return Topology(specs, edges, name="ckpt-model", checkpoint=checkpoint)


class TestPredictCheckpoint:
    def test_zero_overhead_is_free(self):
        prediction = predict_checkpoint(chain(), interval_items=100,
                                        snapshot_overhead=0.0)
        assert prediction.throughput == prediction.baseline_throughput
        assert prediction.overhead_ratio == 0.0
        assert all(tax == 0.0 for _, tax in prediction.vertex_taxes)

    def test_overhead_costs_throughput(self):
        prediction = predict_checkpoint(chain(), interval_items=50,
                                        snapshot_overhead=5.0e-3)
        assert prediction.throughput < prediction.baseline_throughput
        assert 0.0 < prediction.overhead_ratio < 1.0

    def test_longer_interval_cheaper(self):
        short = predict_checkpoint(chain(), interval_items=10,
                                   snapshot_overhead=1.0e-3)
        long = predict_checkpoint(chain(), interval_items=1000,
                                  snapshot_overhead=1.0e-3)
        assert long.throughput > short.throughput
        assert long.overhead_ratio < short.overhead_ratio
        # ...but recovery replays more on average
        assert long.mean_replay_items > short.mean_replay_items

    def test_selective_pipeline_taxes_late_operators_more(self):
        # mid halves the stream, so snk sees one tuple per two source
        # items: per tuple it pays twice the per-barrier amortization.
        prediction = predict_checkpoint(chain(), interval_items=100,
                                        snapshot_overhead=1.0e-3)
        taxes = dict(prediction.vertex_taxes)
        assert taxes["snk"] == pytest.approx(2.0 * taxes["mid"], rel=1e-6)

    def test_config_resolution_order(self):
        topology = chain(checkpoint=CheckpointConfig(
            interval_items=25, snapshot_overhead=1.0e-3))
        from_topology = predict_checkpoint(topology)
        assert from_topology.interval_items == 25
        override = predict_checkpoint(
            topology, checkpoint=CheckpointConfig(interval_items=75))
        assert override.interval_items == 75

    def test_validation(self):
        with pytest.raises(TopologyError):
            predict_checkpoint(chain(), interval_items=0)
        with pytest.raises(TopologyError):
            predict_checkpoint(chain(), interval_items=10,
                               snapshot_overhead=-1.0)

    def test_recovery_time_scales_with_interval(self):
        fast = predict_checkpoint(chain(), interval_items=10,
                                  snapshot_overhead=1.0e-4)
        slow = predict_checkpoint(chain(), interval_items=1000,
                                  snapshot_overhead=1.0e-4)
        assert slow.mean_recovery_time > fast.mean_recovery_time


class TestSimMirror:
    def test_relative_arrivals_follow_selectivity(self):
        relative = _relative_arrivals(chain())
        assert relative["src"] == pytest.approx(1.0)
        assert relative["mid"] == pytest.approx(1.0)
        assert relative["snk"] == pytest.approx(0.5)

    def test_sim_tax_matches_analytical_tax(self):
        topology = chain()
        config = SimulationConfig(checkpoint_interval=50,
                                  checkpoint_overhead=2.0e-3)
        prediction = predict_checkpoint(topology, interval_items=50,
                                        snapshot_overhead=2.0e-3,
                                        solver=SteadyStateSolver())
        taxes = dict(prediction.vertex_taxes)
        for name in topology.names:
            simulated = (config.effective_service_time(topology, name)
                         - topology.operator(name).service_time)
            assert simulated == pytest.approx(taxes[name], rel=1e-6), name

    def test_disabled_by_default(self):
        config = SimulationConfig()
        topology = chain()
        for name in topology.names:
            assert config.effective_service_time(topology, name) == \
                topology.operator(name).service_time
