"""Unit tests for bottleneck elimination (paper Algorithm 2)."""

import math

import pytest

from repro.core.fission import apply_replica_bound, eliminate_bottlenecks
from repro.core.graph import (
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)
from repro.core.steady_state import analyze
from tests.conftest import make_pipeline


def keyed_spec(name, service_ms, keys):
    return OperatorSpec(name, service_ms * 1e-3, state=StateKind.PARTITIONED,
                        keys=keys)


def stateful_spec(name, service_ms):
    return OperatorSpec(name, service_ms * 1e-3, state=StateKind.STATEFUL)


class TestStatelessFission:
    def test_optimal_degree_is_ceil_rho(self):
        # src 1ms -> op 3.5ms: rho = 3.5 -> 4 replicas.
        topology = make_pipeline(1.0, 3.5)
        result = eliminate_bottlenecks(topology)
        assert result.replications["op1"] == 4

    def test_exact_integer_rho_uses_exact_degree(self):
        topology = make_pipeline(1.0, 3.0)
        result = eliminate_bottlenecks(topology)
        assert result.replications["op1"] == 3

    def test_ideal_throughput_reached(self):
        topology = make_pipeline(1.0, 3.5, 2.2)
        result = eliminate_bottlenecks(topology)
        assert result.ideal_throughput_reached
        assert math.isclose(result.throughput, 1000.0)

    def test_non_bottlenecks_stay_single(self):
        topology = make_pipeline(1.0, 3.0, 0.5)
        result = eliminate_bottlenecks(topology)
        assert result.replications["op2"] == 1

    def test_additional_replicas_counted(self):
        topology = make_pipeline(1.0, 3.0, 2.0)
        result = eliminate_bottlenecks(topology)
        # op1 needs 3 (2 extra), op2 needs 2 (1 extra).
        assert result.additional_replicas == 3

    def test_input_replications_reset_before_analysis(self):
        topology = make_pipeline(1.0, 3.0).with_replications({"op1": 7})
        result = eliminate_bottlenecks(topology)
        assert result.replications["op1"] == 3

    def test_chain_of_bottlenecks_all_resolved(self):
        topology = make_pipeline(0.5, 1.0, 2.0, 4.0)
        result = eliminate_bottlenecks(topology)
        assert result.ideal_throughput_reached
        assert result.replications == {"op0": 1, "op1": 2, "op2": 4, "op3": 8}

    def test_optimized_analysis_has_no_saturated_stateless(self):
        topology = make_pipeline(1.0, 3.3, 2.7)
        result = eliminate_bottlenecks(topology)
        for name in ("op1", "op2"):
            assert result.analysis.utilization(name) <= 1.0 + 1e-9


class TestStatefulBottlenecks:
    def test_stateful_throttles_source(self):
        topology = Topology(
            [OperatorSpec("src", 1e-3), stateful_spec("agg", 4.0)],
            [Edge("src", "agg")],
        )
        result = eliminate_bottlenecks(topology)
        assert result.replications["agg"] == 1
        assert not result.ideal_throughput_reached
        assert math.isclose(result.throughput, 250.0)
        assert "agg" in result.residual_bottlenecks

    def test_downstream_degrees_shrink_after_stateful_throttling(self):
        # src 1ms -> stateful 2ms -> stateless 3ms.
        # Without the stateful cap, op2 would need ceil(3)=3 replicas;
        # throttled to 500/s it needs only ceil(1.5)=2.
        topology = Topology(
            [OperatorSpec("src", 1e-3), stateful_spec("st", 2.0),
             OperatorSpec("op2", 3e-3)],
            [Edge("src", "st"), Edge("st", "op2")],
        )
        result = eliminate_bottlenecks(topology)
        assert result.replications["op2"] == 2

    def test_stateless_upstream_of_stateful_still_parallelized(self):
        # src 1ms -> stateless 2ms -> stateful 1.5ms.
        # The stateless op is a bottleneck at 1000/s (needs 2 replicas);
        # then the stateful op throttles to 1/1.5ms = 666/s, after which
        # the stateless op (rho = 666*2ms = 1.33) still needs 2 replicas.
        topology = Topology(
            [OperatorSpec("src", 1e-3), OperatorSpec("sl", 2e-3),
             stateful_spec("st", 1.5)],
            [Edge("src", "sl"), Edge("sl", "st")],
        )
        result = eliminate_bottlenecks(topology)
        assert result.replications["sl"] == 2
        assert math.isclose(result.throughput, 1000.0 / 1.5)

    def test_decision_records_failure(self):
        topology = Topology(
            [OperatorSpec("src", 1e-3), stateful_spec("agg", 4.0)],
            [Edge("src", "agg")],
        )
        result = eliminate_bottlenecks(topology)
        decision = {d.name: d for d in result.decisions}["agg"]
        assert decision.was_bottleneck
        assert not decision.removed
        assert decision.state is StateKind.STATEFUL


class TestPartitionedFission:
    def test_balanced_keys_fully_parallelized(self):
        # 99 keys split exactly 33/33/33 across three replicas.
        keys = KeyDistribution.uniform(99)
        topology = Topology(
            [OperatorSpec("src", 1e-3), keyed_spec("keyed", 3.0, keys)],
            [Edge("src", "keyed")],
        )
        result = eliminate_bottlenecks(topology)
        assert result.replications["keyed"] == 3
        assert result.ideal_throughput_reached

    def test_skewed_keys_mitigate_but_not_remove(self):
        # 50% of the traffic on one key, rho = 3: the hot replica still
        # saturates, mirroring the paper's example (Section 3.2).
        keys = KeyDistribution({"hot": 0.5, "a": 0.2, "b": 0.2, "c": 0.1})
        topology = Topology(
            [OperatorSpec("src", 1e-3), keyed_spec("keyed", 3.0, keys)],
            [Edge("src", "keyed")],
        )
        result = eliminate_bottlenecks(topology)
        assert not result.ideal_throughput_reached
        # Hot replica handles 50% at 3ms: capacity = 1/(0.5*3ms) = 666/s.
        assert math.isclose(result.throughput, 1000.0 / 1.5, rel_tol=1e-6)

    def test_skewed_decision_reports_p_max(self):
        keys = KeyDistribution({"hot": 0.5, "a": 0.3, "b": 0.2})
        topology = Topology(
            [OperatorSpec("src", 1e-3), keyed_spec("keyed", 2.0, keys)],
            [Edge("src", "keyed")],
        )
        result = eliminate_bottlenecks(topology)
        decision = {d.name: d for d in result.decisions}["keyed"]
        assert math.isclose(decision.p_max, 0.5)

    def test_fewer_keys_than_optimal_caps_replicas(self):
        keys = KeyDistribution({"a": 0.5, "b": 0.5})
        topology = Topology(
            [OperatorSpec("src", 1e-3), keyed_spec("keyed", 4.0, keys)],
            [Edge("src", "keyed")],
        )
        result = eliminate_bottlenecks(topology)
        # Only 2 keys: at most 2 replicas despite n_opt = 4.
        assert result.replications["keyed"] == 2
        assert math.isclose(result.throughput, 500.0)


class TestReplicaBound:
    def test_bound_not_applied_when_already_within(self):
        topology = make_pipeline(1.0, 3.0)
        result = eliminate_bottlenecks(topology, max_replicas=10)
        assert not result.bound_applied
        assert result.replications["op1"] == 3

    def test_bound_scales_down_proportionally(self):
        topology = make_pipeline(0.5, 4.0, 8.0)
        unbounded = eliminate_bottlenecks(topology)
        total = unbounded.optimized.total_replicas()
        bounded = eliminate_bottlenecks(topology, max_replicas=total - 5)
        assert bounded.bound_applied
        assert bounded.optimized.total_replicas() <= total - 5
        assert bounded.throughput < unbounded.throughput

    def test_bound_throughput_descalability(self):
        # Throughput should de-scale roughly with the bound (Figure 10).
        topology = make_pipeline(0.2, 4.0, 6.0)
        results = [
            eliminate_bottlenecks(topology, max_replicas=bound).throughput
            for bound in (10, 20, 40)
        ]
        assert results[0] <= results[1] <= results[2]

    def test_bound_below_operator_count_rejected(self, pipeline3):
        with pytest.raises(TopologyError, match="below the number"):
            eliminate_bottlenecks(pipeline3, max_replicas=2)

    def test_apply_replica_bound_direct(self):
        topology = make_pipeline(1.0, 1.0, 1.0).with_replications(
            {"op1": 10, "op2": 10}
        )
        bounded = apply_replica_bound(topology, 12)
        assert bounded.total_replicas() <= 12
        assert bounded.operator("op0").replication == 1

    def test_apply_replica_bound_never_drops_below_one(self):
        topology = make_pipeline(1.0, 1.0).with_replications({"op1": 30})
        bounded = apply_replica_bound(topology, 3)
        assert bounded.operator("op1").replication >= 1

    def test_apply_replica_bound_uses_full_budget_when_possible(self):
        topology = make_pipeline(1.0, 1.0, 1.0).with_replications(
            {"op1": 16, "op2": 8}
        )
        bounded = apply_replica_bound(topology, 13)
        assert bounded.total_replicas() == 13


class TestDecisionsAndResult:
    def test_decisions_cover_every_operator(self, pipeline3):
        result = eliminate_bottlenecks(pipeline3)
        assert {d.name for d in result.decisions} == set(pipeline3.names)

    def test_source_decision_never_replicated(self, pipeline3):
        result = eliminate_bottlenecks(pipeline3)
        source_decision = result.decisions[0]
        assert source_decision.name == pipeline3.source
        assert source_decision.replicas == 1

    def test_original_topology_untouched(self, pipeline3):
        eliminate_bottlenecks(pipeline3)
        assert all(spec.replication == 1 for spec in pipeline3.operators)

    def test_result_analysis_consistent_with_fresh_analysis(self):
        topology = make_pipeline(1.0, 2.5, 1.8)
        result = eliminate_bottlenecks(topology)
        fresh = analyze(result.optimized)
        assert math.isclose(result.throughput, fresh.throughput)

    def test_invalid_source_rate_rejected(self, pipeline3):
        with pytest.raises(TopologyError, match="source rate"):
            eliminate_bottlenecks(pipeline3, source_rate=-1.0)

    def test_explicit_source_rate_respected(self):
        topology = make_pipeline(1.0, 2.0)
        result = eliminate_bottlenecks(topology, source_rate=300.0)
        # At 300/s the 2ms operator is not a bottleneck (rho = 0.6).
        assert result.replications["op1"] == 1
        assert math.isclose(result.throughput, 300.0)
