"""Unit tests for the key-partitioning heuristics."""

import math

import pytest

from repro.core.graph import KeyDistribution, TopologyError
from repro.core.partitioning import (
    PartitionPlan,
    consistent_hash_partitioning,
    greedy_partitioning,
    key_partitioning,
    partition_shares,
)


class TestGreedy:
    def test_uniform_keys_balance_perfectly(self):
        plan = greedy_partitioning(KeyDistribution.uniform(100), 4)
        assert plan.replicas == 4
        assert math.isclose(plan.p_max, 0.25, rel_tol=1e-9)

    def test_loads_sum_to_one(self):
        plan = greedy_partitioning(KeyDistribution.zipf(50, 1.2), 5)
        assert math.isclose(sum(plan.loads), 1.0, rel_tol=1e-9)

    def test_every_key_assigned(self):
        keys = KeyDistribution.zipf(30, 1.0)
        plan = greedy_partitioning(keys, 3)
        assert set(plan.assignment) == {f"k{i}" for i in range(30)}

    def test_assignment_indices_within_range(self):
        plan = greedy_partitioning(KeyDistribution.uniform(20), 6)
        assert all(0 <= index < plan.replicas
                   for index in plan.assignment.values())

    def test_heavy_key_caps_balance(self):
        # One key with 60% of the traffic: p_max can never drop below it.
        keys = KeyDistribution({"hot": 0.6, "a": 0.2, "b": 0.2})
        plan = greedy_partitioning(keys, 3)
        assert math.isclose(plan.p_max, 0.6)

    def test_fewer_keys_than_replicas_drops_empty_bins(self):
        keys = KeyDistribution({"a": 0.5, "b": 0.5})
        plan = greedy_partitioning(keys, 5)
        assert plan.replicas == 2

    def test_single_replica_gets_everything(self):
        plan = greedy_partitioning(KeyDistribution.uniform(10), 1)
        assert plan.replicas == 1
        assert math.isclose(plan.p_max, 1.0)

    def test_deterministic(self):
        keys = KeyDistribution.zipf(40, 1.1)
        first = greedy_partitioning(keys, 4)
        second = greedy_partitioning(keys, 4)
        assert first.assignment == second.assignment

    def test_invalid_replicas_rejected(self):
        with pytest.raises(TopologyError, match="replicas"):
            greedy_partitioning(KeyDistribution.uniform(3), 0)

    def test_load_imbalance_at_least_one(self):
        plan = greedy_partitioning(KeyDistribution.zipf(64, 1.5), 8)
        assert plan.load_imbalance() >= 1.0


class TestConsistentHash:
    def test_loads_sum_to_one(self):
        plan = consistent_hash_partitioning(KeyDistribution.uniform(200), 4)
        assert math.isclose(sum(plan.loads), 1.0, rel_tol=1e-9)

    def test_deterministic_across_calls(self):
        keys = KeyDistribution.uniform(100)
        assert (consistent_hash_partitioning(keys, 4).assignment ==
                consistent_hash_partitioning(keys, 4).assignment)

    def test_reassignment_is_local_when_adding_replica(self):
        # Consistent hashing's selling point: adding one replica only
        # moves a fraction of the keys.
        keys = KeyDistribution.uniform(500)
        before = consistent_hash_partitioning(keys, 4).assignment
        after = consistent_hash_partitioning(keys, 5).assignment
        moved = sum(1 for key in before if before[key] != after[key])
        assert moved < len(before) * 0.6

    def test_worse_than_greedy_on_skew(self):
        keys = KeyDistribution.zipf(100, 1.4)
        greedy = greedy_partitioning(keys, 4)
        hashed = consistent_hash_partitioning(keys, 4)
        assert hashed.p_max >= greedy.p_max - 1e-12

    def test_more_virtual_nodes_smooths_uniform_keys(self):
        keys = KeyDistribution.uniform(2000)
        rough = consistent_hash_partitioning(keys, 4, virtual_nodes=2)
        smooth = consistent_hash_partitioning(keys, 4, virtual_nodes=256)
        assert smooth.p_max <= rough.p_max + 0.02

    def test_invalid_virtual_nodes_rejected(self):
        with pytest.raises(TopologyError, match="virtual_nodes"):
            consistent_hash_partitioning(KeyDistribution.uniform(5), 2,
                                         virtual_nodes=0)


class TestEntryPoint:
    def test_returns_replicas_pmax_and_plan(self):
        keys = KeyDistribution.uniform(100)
        replicas, p_max, plan = key_partitioning(keys, 4)
        assert replicas == 4
        assert math.isclose(p_max, plan.p_max)
        assert isinstance(plan, PartitionPlan)

    def test_never_exceeds_requested_replicas(self):
        keys = KeyDistribution({"a": 0.9, "b": 0.1})
        replicas, _, _ = key_partitioning(keys, 5)
        assert replicas <= 5

    def test_consistent_hash_heuristic_selectable(self):
        keys = KeyDistribution.uniform(64)
        _, _, plan = key_partitioning(keys, 4, heuristic="consistent-hash")
        assert math.isclose(sum(plan.loads), 1.0, rel_tol=1e-9)

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(TopologyError, match="heuristic"):
            key_partitioning(KeyDistribution.uniform(4), 2, heuristic="magic")

    def test_partition_shares_shortcut(self):
        shares = partition_shares(KeyDistribution.uniform(100), 4)
        assert len(shares) == 4
        assert math.isclose(sum(shares), 1.0, rel_tol=1e-9)

    def test_p_max_lower_bound(self):
        # p_max >= 1/n always, and >= the heaviest key frequency.
        keys = KeyDistribution.zipf(30, 1.8)
        replicas, p_max, _ = key_partitioning(keys, 4)
        assert p_max >= 1.0 / 4 - 1e-12
        assert p_max >= keys.max_frequency() - 1e-12
