"""Tests for the cyclic-topology extension."""

import math

import pytest

from repro.core.cycles import CyclicGraph, analyze_cyclic
from repro.core.graph import Edge, KeyDistribution, OperatorSpec, StateKind, TopologyError
from repro.sim.cyclic import simulate_cyclic
from repro.sim.network import SimulationConfig


def retry_loop(work_ms=0.5, feedback=0.2):
    operators = [
        OperatorSpec("src", 1e-3),
        OperatorSpec("work", work_ms * 1e-3),
        OperatorSpec("check", 0.3e-3),
        OperatorSpec("sink", 0.05e-3, output_selectivity=0.0),
    ]
    edges = [
        Edge("src", "work"),
        Edge("work", "check"),
        Edge("check", "work", feedback),
        Edge("check", "sink", 1.0 - feedback),
    ]
    return CyclicGraph(operators, edges, name="retry")


class TestGraphValidation:
    def test_detects_cycle(self):
        assert retry_loop().cycles_exist()

    def test_acyclic_graph_reports_no_cycle(self):
        graph = CyclicGraph(
            [OperatorSpec("a", 1e-3), OperatorSpec("b", 1e-3)],
            [Edge("a", "b")],
        )
        assert not graph.cycles_exist()
        assert graph.max_cycle_amplification() == 0.0

    def test_amplification_of_retry_loop(self):
        assert math.isclose(retry_loop(feedback=0.3)
                            .max_cycle_amplification(), 0.3)

    def test_amplifying_cycle_rejected(self):
        # flatmap (x3) in a 50% loop: amplification 1.5 >= 1.
        operators = [
            OperatorSpec("src", 1e-3),
            OperatorSpec("fm", 0.5e-3, output_selectivity=3.0),
            OperatorSpec("gate", 0.3e-3),
        ]
        edges = [
            Edge("src", "fm"), Edge("fm", "gate"),
            Edge("gate", "fm", 0.5), Edge("gate", "src", 0.5),
        ]
        # gate -> src is invalid (src must have no inputs); route the
        # remainder to a sink instead.
        edges[-1] = Edge("gate", "sink", 0.5)
        operators.append(OperatorSpec("sink", 1e-4, output_selectivity=0.0))
        graph = CyclicGraph(operators, edges)
        with pytest.raises(TopologyError, match="amplification"):
            analyze_cyclic(graph)

    def test_multiple_sources_rejected(self):
        with pytest.raises(TopologyError, match="exactly one source"):
            CyclicGraph(
                [OperatorSpec("a", 1e-3), OperatorSpec("b", 1e-3),
                 OperatorSpec("c", 1e-3)],
                [Edge("a", "c"), Edge("b", "c")],
            )

    def test_unreachable_rejected(self):
        operators = [OperatorSpec(n, 1e-3) for n in ("a", "b", "c", "d")]
        # c and d form a reachable-from-nowhere 2-cycle.
        edges = [Edge("a", "b"), Edge("c", "d"), Edge("d", "c")]
        with pytest.raises(TopologyError, match="not reachable"):
            CyclicGraph(operators, edges)


class TestAnalysis:
    def test_feedback_amplifies_internal_rates(self):
        result = analyze_cyclic(retry_loop())
        # Geometric series: work sees 1000 / (1 - 0.2) = 1250 items/sec.
        assert result.arrival_rate("work") == pytest.approx(1250.0)
        assert result.arrival_rate("sink") == pytest.approx(1000.0)
        assert result.throughput == pytest.approx(1000.0)

    def test_loop_bottleneck_throttles_source(self):
        # work at 1.2 ms with the 1.25x loop amplification: capacity
        # binding at 1 / (1.25 * 1.2ms) = 666.7 items/sec.
        result = analyze_cyclic(retry_loop(work_ms=1.2))
        assert result.throughput == pytest.approx(1000.0 / 1.5)
        assert result.utilization("work") == pytest.approx(1.0)
        assert result.corrections >= 1

    def test_heavier_feedback_lowers_throughput(self):
        light = analyze_cyclic(retry_loop(work_ms=1.2, feedback=0.1))
        heavy = analyze_cyclic(retry_loop(work_ms=1.2, feedback=0.4))
        assert heavy.throughput < light.throughput

    def test_acyclic_graph_matches_algorithm1(self):
        from repro.core.steady_state import analyze
        from repro.core.graph import Topology
        operators = [
            OperatorSpec("src", 1e-3), OperatorSpec("mid", 2e-3),
            OperatorSpec("out", 0.5e-3),
        ]
        edges = [Edge("src", "mid"), Edge("mid", "out")]
        cyclic = analyze_cyclic(CyclicGraph(operators, edges))
        acyclic = analyze(Topology(operators, edges))
        assert cyclic.throughput == pytest.approx(acyclic.throughput)

    def test_replicated_operator_capacity(self):
        operators = [
            OperatorSpec("src", 1e-3),
            OperatorSpec("work", 2e-3, replication=3),
            OperatorSpec("check", 0.3e-3),
            OperatorSpec("sink", 0.05e-3, output_selectivity=0.0),
        ]
        edges = [
            Edge("src", "work"), Edge("work", "check"),
            Edge("check", "work", 0.2), Edge("check", "sink", 0.8),
        ]
        result = analyze_cyclic(CyclicGraph(operators, edges))
        # 3 replicas at 500/s each cover the amplified 1250/s load.
        assert result.throughput == pytest.approx(1000.0)

    def test_invalid_source_rate_rejected(self):
        with pytest.raises(TopologyError, match="source rate"):
            analyze_cyclic(retry_loop(), source_rate=-1.0)


class TestSimulatedValidation:
    def test_unloaded_loop_matches(self):
        graph = retry_loop()
        predicted = analyze_cyclic(graph)
        measured = simulate_cyclic(
            graph, SimulationConfig(items=60_000, seed=5,
                                    mailbox_capacity=256))
        assert measured.throughput_error(predicted) < 0.02
        assert measured.vertices["work"].arrival_rate == pytest.approx(
            1250.0, rel=0.02)

    def test_throttled_loop_matches(self):
        graph = retry_loop(work_ms=1.2)
        predicted = analyze_cyclic(graph)
        measured = simulate_cyclic(
            graph, SimulationConfig(items=60_000, seed=5,
                                    mailbox_capacity=256))
        assert measured.throughput_error(predicted) < 0.02


class TestDeadlockDetection:
    def test_tight_loop_with_tiny_buffers_deadlocks(self):
        from repro.sim.engine import SimulationError
        # Heavy feedback and single-slot buffers: the loop's buffers
        # fill and every sender blocks — a genuine BAS deadlock the
        # simulator must surface rather than silently under-measure.
        graph = retry_loop(work_ms=2.0, feedback=0.8)
        with pytest.raises(SimulationError, match="deadlock"):
            simulate_cyclic(
                graph,
                SimulationConfig(items=50_000, seed=5, mailbox_capacity=1),
            )

    def test_saturated_loop_flagged_as_deadlock_prone(self):
        # A saturated operator *inside* the cycle means a BAS deployment
        # eventually deadlocks no matter how large the buffers are; the
        # solver flags the regime so users reach for flow control.
        graph = retry_loop(work_ms=2.0, feedback=0.8)
        predicted = analyze_cyclic(graph)
        assert predicted.saturated_in_cycle == ["work"]

    def test_saturated_loop_deadlocks_even_with_big_buffers(self):
        from repro.sim.engine import SimulationError
        graph = retry_loop(work_ms=2.0, feedback=0.8)
        with pytest.raises(SimulationError, match="deadlock"):
            simulate_cyclic(
                graph,
                SimulationConfig(items=200_000, seed=5,
                                 mailbox_capacity=2048),
            )

    def test_loop_with_headroom_is_not_flagged(self):
        # Bottlenecked loop but the *check* stage has 4x headroom and
        # feedback is light: the fixed point is reachable (validated by
        # TestSimulatedValidation) and no cycle member saturates
        # except the binding one... which is 'work' again — so verify a
        # genuinely unsaturated loop instead.
        graph = retry_loop(work_ms=0.5, feedback=0.2)
        predicted = analyze_cyclic(graph)
        assert predicted.saturated_in_cycle == []

    def test_vertices_on_cycles(self):
        graph = retry_loop()
        on_cycle = graph.vertices_on_cycles()
        assert on_cycle == frozenset({"work", "check"})

    def test_acyclic_networks_never_deadlock(self):
        # Single-slot buffers on an acyclic pipeline: slow, not stuck.
        from tests.conftest import make_pipeline
        from repro.sim.network import simulate
        topology = make_pipeline(1.0, 3.0, 2.0)
        measured = simulate(
            topology, SimulationConfig(items=30_000, seed=5,
                                       mailbox_capacity=1))
        assert measured.throughput > 0.0
