"""Unit tests for the textual reports (Table 1/2 style)."""

import pytest

from repro.core.fission import eliminate_bottlenecks
from repro.core.fusion import apply_fusion
from repro.core.report import (
    analysis_report,
    comparison_rows,
    fission_report,
    format_table,
    fusion_report,
)
from repro.core.steady_state import analyze
from tests.conftest import make_pipeline


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["a", "bb"], [["1", "222"], ["33", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1].replace("  ", "")) == {"-"}
        # All rows have the same width.
        assert len({len(line) for line in lines[:2]}) == 1

    def test_non_string_cells_coerced(self):
        text = format_table(["x"], [[42]])
        assert "42" in text


class TestAnalysisReport:
    def test_contains_metrics_and_throughput(self, fig11_table1):
        text = analysis_report(analyze(fig11_table1))
        assert "mu^-1 (ms)" in text
        assert "delta^-1 (ms)" in text
        assert "rho" in text
        assert "predicted throughput: 1,000" in text

    def test_measured_throughput_and_error(self, fig11_table1):
        text = analysis_report(analyze(fig11_table1),
                               measured_throughput=970.0)
        assert "measured throughput" in text
        assert "relative error" in text
        assert "3.00%" in text

    def test_bottlenecks_listed(self):
        topology = make_pipeline(1.0, 4.0)
        text = analysis_report(analyze(topology))
        assert "bottlenecks" in text
        assert "op1" in text

    def test_no_bottleneck_line_when_clean(self, fig11_table1):
        text = analysis_report(analyze(fig11_table1))
        assert "bottlenecks" not in text


class TestFissionReport:
    def test_mentions_replicas_and_outcome(self):
        topology = make_pipeline(1.0, 3.0)
        text = fission_report(eliminate_bottlenecks(topology))
        assert "additional replicas: 2" in text
        assert "ideal throughput reached" in text

    def test_mentions_residual_bottlenecks(self):
        from repro.core.graph import Edge, OperatorSpec, StateKind, Topology
        topology = Topology(
            [OperatorSpec("src", 1e-3),
             OperatorSpec("st", 4e-3, state=StateKind.STATEFUL)],
            [Edge("src", "st")],
        )
        text = fission_report(eliminate_bottlenecks(topology))
        assert "residual bottlenecks: st" in text

    def test_mentions_bound(self):
        topology = make_pipeline(0.5, 4.0)
        text = fission_report(eliminate_bottlenecks(topology, max_replicas=5))
        assert "replica bound: 5" in text


class TestFusionReport:
    def test_feasible_fusion_message(self, fig11_table1):
        result = apply_fusion(fig11_table1, ["op3", "op4", "op5"], "F")
        text = fusion_report(result)
        assert "fusion is feasible" in text
        assert "F" in text

    def test_alert_on_harmful_fusion(self, fig11_table2):
        result = apply_fusion(fig11_table2, ["op3", "op4", "op5"], "F")
        text = fusion_report(result)
        assert "ALERT" in text
        assert "degradation" in text


class TestComparisonRows:
    def test_error_column_computed(self):
        rows = comparison_rows({"a": 100.0}, {"a": 90.0})
        assert rows == [["a", "100.0", "90.0", "10.00%"]]

    def test_missing_measurement_is_nan(self):
        rows = comparison_rows({"a": 100.0}, {})
        assert rows[0][2] == "nan"
