"""Unit tests for operator fusion (paper Section 3.3, Algorithm 3)."""

import math

import pytest

from repro.core.fusion import (
    FusionError,
    apply_fusion,
    build_fused_topology,
    find_front_end,
    fusion_service_time,
    plan_fusion,
    validate_fusion,
)
from repro.core.graph import Edge, OperatorSpec, StateKind, Topology
from repro.core.steady_state import analyze
from tests.conftest import make_fig11, make_pipeline


class TestValidation:
    def test_fig11_candidate_is_valid(self, fig11_table1):
        assert validate_fusion(fig11_table1, ["op3", "op4", "op5"]) == "op3"

    def test_front_end_detection(self, fig11_table1):
        assert find_front_end(fig11_table1, ["op3", "op4"]) == "op3"

    def test_two_front_ends_detected_in_tail_pair(self, fig11_table1):
        # op5 receives from op3 (outside {op4, op5}) so both members
        # have external inputs.
        with pytest.raises(FusionError, match="exactly one front-end"):
            find_front_end(fig11_table1, ["op4", "op5"])

    def test_two_front_ends_rejected(self, fig11_table1):
        # op2 and op3 both receive from op1.
        with pytest.raises(FusionError, match="exactly one front-end"):
            validate_fusion(fig11_table1, ["op2", "op3"])

    def test_single_member_rejected(self, fig11_table1):
        with pytest.raises(FusionError, match="at least two"):
            validate_fusion(fig11_table1, ["op4"])

    def test_duplicates_rejected(self, fig11_table1):
        with pytest.raises(FusionError, match="duplicate"):
            validate_fusion(fig11_table1, ["op4", "op4"])

    def test_source_cannot_be_fused(self, fig11_table1):
        with pytest.raises(FusionError, match="source"):
            validate_fusion(fig11_table1, ["op1", "op2"])

    def test_unreachable_member_rejected(self):
        # a -> b -> d, a -> c -> d; {b, c, d}: two front-ends though...
        # build a case where c is unreachable from front-end b inside
        # the sub-graph: a->b, a->c, b->d, c->d, d->e; members {b, d}
        # are fine, but {b, d, c} has two front-ends.  Instead use
        # members {d, e} with front-end d, then add unreachable f.
        operators = [OperatorSpec(n, 1e-3) for n in "abcdef"]
        edges = [
            Edge("a", "b", 0.5), Edge("a", "c", 0.5),
            Edge("b", "d"), Edge("c", "e"),
            Edge("d", "f", 1.0), Edge("e", "f", 1.0),
        ]
        topology = Topology(operators, edges)
        # {d, f, e}: front-ends are d and e -> rejected for that reason.
        with pytest.raises(FusionError):
            validate_fusion(topology, ["d", "f", "e"])

    def test_contraction_cycle_guard(self):
        # With a single front-end an acyclic graph can never produce a
        # cyclic contraction (every external path out of the sub-graph
        # would need to re-enter it through an externally-fed member,
        # which would itself be a second front-end).  The internal
        # guard still exists defensively; exercise it directly on a
        # sub-graph that *does* re-enter: {b, d} exited at c.
        from repro.core.fusion import _check_contraction_acyclic
        operators = [OperatorSpec(n, 1e-3) for n in "abcd"]
        edges = [Edge("a", "b"), Edge("b", "c", 0.5), Edge("b", "d", 0.5),
                 Edge("c", "d")]
        topology = Topology(operators, edges)
        with pytest.raises(FusionError, match="cycle"):
            _check_contraction_acyclic(topology, frozenset({"b", "d"}))

    def test_unknown_member_rejected(self, fig11_table1):
        with pytest.raises(FusionError):
            validate_fusion(fig11_table1, ["op4", "ghost"])


class TestServiceTime:
    def test_linear_chain_sums_times(self):
        topology = make_pipeline(1.0, 2.0, 3.0, 0.5)
        time = fusion_service_time(topology, frozenset({"op1", "op2"}), "op1")
        assert math.isclose(time, 5e-3)

    def test_fig11_weighted_average(self, fig11_table1):
        # W(op5) = 1.5; W(op4) = 2.0 + 0.5 * 1.5 = 2.75;
        # W(op3) = 0.7 + 0.35 * 2.75 + 0.65 * 1.5 = 2.6375 ms.
        time = fusion_service_time(
            fig11_table1, frozenset({"op3", "op4", "op5"}), "op3"
        )
        assert math.isclose(time, 2.6375e-3)

    def test_partial_subgraph_ignores_external_edges(self, fig11_table1):
        # Fusing only {op4, op5}: W(op4) = 2.0 + 0.5 * 1.5 = 2.75 ms
        # (the op4->op6 exit contributes no internal time).
        time = fusion_service_time(fig11_table1, frozenset({"op4", "op5"}),
                                   "op4")
        assert math.isclose(time, 2.75e-3)

    def test_gain_amplifies_downstream_cost(self):
        # fm (x3 outputs) -> slow: each input to the fused op costs
        # T_fm + 3 * T_slow.
        operators = [
            OperatorSpec("src", 1e-3),
            OperatorSpec("fm", 1e-3, output_selectivity=3.0),
            OperatorSpec("slow", 2e-3),
        ]
        edges = [Edge("src", "fm"), Edge("fm", "slow")]
        topology = Topology(operators, edges)
        time = fusion_service_time(topology, frozenset({"fm", "slow"}), "fm")
        assert math.isclose(time, 1e-3 + 3 * 2e-3)

    def test_input_selectivity_discounts_downstream_cost(self):
        # win consumes 10 items per output: downstream runs 1/10th.
        operators = [
            OperatorSpec("src", 1e-3),
            OperatorSpec("win", 1e-3, input_selectivity=10.0),
            OperatorSpec("post", 5e-3),
        ]
        edges = [Edge("src", "win"), Edge("win", "post")]
        topology = Topology(operators, edges)
        time = fusion_service_time(topology, frozenset({"win", "post"}), "win")
        assert math.isclose(time, 1e-3 + 0.1 * 5e-3)


class TestPlan:
    def test_plan_fields(self, fig11_table1):
        plan = plan_fusion(fig11_table1, ["op3", "op4", "op5"], "F")
        assert plan.members == ("op3", "op4", "op5")
        assert plan.front_end == "op3"
        assert plan.fused_name == "F"
        assert len(plan.internal_edges) == 3   # 3->4, 3->5, 4->5
        assert len(plan.member_edges) == 5     # + 4->6, 5->6

    def test_default_name_derived_from_members(self, fig11_table1):
        plan = plan_fusion(fig11_table1, ["op3", "op4"])
        assert plan.fused_name == "F(op3+op4)"

    def test_name_clash_rejected(self, fig11_table1):
        with pytest.raises(FusionError, match="already in use"):
            plan_fusion(fig11_table1, ["op3", "op4"], fused_name="op2")

    def test_exit_rates_sum_to_one_for_unit_selectivity(self, fig11_table1):
        plan = plan_fusion(fig11_table1, ["op3", "op4", "op5"], "F")
        assert math.isclose(plan.output_selectivity, 1.0)
        assert set(plan.exit_rates) == {"op6"}

    def test_edge_probabilities_normalized(self, fig11_table1):
        plan = plan_fusion(fig11_table1, ["op3", "op4"], "F")
        probabilities = plan.edge_probabilities
        assert math.isclose(sum(probabilities.values()), 1.0)
        assert set(probabilities) == {"op5", "op6"}

    def test_exit_rates_with_filter_member(self):
        # A fused filter (selectivity 0.5) halves the exit rate.
        operators = [
            OperatorSpec("src", 1e-3),
            OperatorSpec("flt", 1e-3, output_selectivity=0.5),
            OperatorSpec("map", 1e-3),
            OperatorSpec("sink", 1e-3),
        ]
        edges = [Edge("src", "flt"), Edge("flt", "map"), Edge("map", "sink")]
        topology = Topology(operators, edges)
        plan = plan_fusion(topology, ["flt", "map"], "F")
        assert math.isclose(plan.output_selectivity, 0.5)


class TestBuildFusedTopology:
    def test_structure_after_fig11_fusion(self, fig11_table1):
        plan = plan_fusion(fig11_table1, ["op3", "op4", "op5"], "F")
        fused = build_fused_topology(fig11_table1, plan)
        assert set(fused.names) == {"op1", "op2", "F", "op6"}
        assert math.isclose(fused.edge("op1", "F").probability, 0.3)
        assert math.isclose(fused.edge("F", "op6").probability, 1.0)

    def test_fused_operator_marked_stateful(self, fig11_table1):
        plan = plan_fusion(fig11_table1, ["op3", "op4", "op5"], "F")
        fused = build_fused_topology(fig11_table1, plan)
        assert fused.operator("F").state is StateKind.STATEFUL

    def test_fused_service_time_installed(self, fig11_table1):
        plan = plan_fusion(fig11_table1, ["op3", "op4", "op5"], "F")
        fused = build_fused_topology(fig11_table1, plan)
        assert math.isclose(fused.operator("F").service_time, 2.6375e-3)

    def test_untouched_edges_survive(self, fig11_table1):
        plan = plan_fusion(fig11_table1, ["op3", "op4", "op5"], "F")
        fused = build_fused_topology(fig11_table1, plan)
        assert math.isclose(fused.edge("op1", "op2").probability, 0.7)
        assert math.isclose(fused.edge("op2", "op6").probability, 1.0)

    def test_fused_topology_is_valid_and_analyzable(self, fig11_table2):
        plan = plan_fusion(fig11_table2, ["op3", "op4", "op5"], "F")
        fused = build_fused_topology(fig11_table2, plan)
        result = analyze(fused)
        assert result.throughput > 0


class TestApplyFusion:
    """The paper's Tables 1 and 2."""

    def test_table1_fusion_is_feasible(self, fig11_table1):
        result = apply_fusion(fig11_table1, ["op3", "op4", "op5"], "F")
        assert not result.impairs_performance
        assert math.isclose(result.throughput_before, 1000.0)
        assert math.isclose(result.throughput_after, 1000.0)
        assert math.isclose(result.degradation, 0.0)

    def test_table1_fused_utilization_below_one(self, fig11_table1):
        result = apply_fusion(fig11_table1, ["op3", "op4", "op5"], "F")
        rho = result.analysis_after.utilization("F")
        # Paper reports rho_F = 0.84 with their (unstated) probabilities;
        # with Figure 11's printed probabilities we get ~0.79.
        assert 0.5 < rho < 1.0

    def test_table2_fusion_impairs_performance(self, fig11_table2):
        result = apply_fusion(fig11_table2, ["op3", "op4", "op5"], "F")
        assert result.impairs_performance
        # Paper reports ~24% degradation (1000 -> 760 predicted); our
        # self-consistent variant gives ~22%.
        assert 0.15 < result.degradation < 0.30

    def test_table2_fused_operator_is_the_bottleneck(self, fig11_table2):
        result = apply_fusion(fig11_table2, ["op3", "op4", "op5"], "F")
        assert result.analysis_after.binding_bottleneck == "F"
        assert math.isclose(result.analysis_after.utilization("F"), 1.0)

    def test_table2_fused_service_time(self, fig11_table2):
        # W(5)=2.2, W(4)=2.7+0.5*2.2=3.8, W(3)=1.5+0.35*3.8+0.65*2.2
        # = 4.26 ms (paper: 4.42 ms with its variant).
        result = apply_fusion(fig11_table2, ["op3", "op4", "op5"], "F")
        assert math.isclose(result.plan.service_time, 4.26e-3, rel_tol=1e-9)

    def test_explicit_source_rate_propagates(self, fig11_table2):
        result = apply_fusion(fig11_table2, ["op3", "op4", "op5"], "F",
                              source_rate=200.0)
        # At 200/s the fused operator is not a bottleneck.
        assert not result.impairs_performance

    def test_pipeline_tail_fusion(self):
        topology = make_pipeline(1.0, 0.3, 0.4, 0.2)
        result = apply_fusion(topology, ["op1", "op2", "op3"], "F")
        assert not result.impairs_performance
        assert math.isclose(
            result.fused.operator("F").service_time, 0.9e-3
        )
