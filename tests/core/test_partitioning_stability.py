"""Key-hash shard routing must be stable across interpreter processes.

The builtin ``hash`` of a string is salted per interpreter via
PYTHONHASHSEED; any routing decision derived from it would send the
same key to different replicas in different shard processes, silently
splitting partitioned state.  This is the same class of bug PR 4 fixed
in the join operator (crc32-based bucket hashing); these tests pin the
shared :func:`repro.core.partitioning.stable_key_hash` to crc32 and
prove the full route (hash -> replica index) identical across
subprocesses launched with different PYTHONHASHSEED values.
"""

from __future__ import annotations

import os
import subprocess
import sys
import zlib

from repro.core.partitioning import key_partitioning, stable_key_hash
from repro.core.graph import KeyDistribution

_PROBE = r"""
import sys
from repro.core.partitioning import stable_key_hash
keys = ["alpha", "beta", "k42", "Straße", "", "0", "key-with-dash"]
print(";".join(f"{k}={stable_key_hash(k) % 4}" for k in keys))
"""


def _route_table(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src_path = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src_path)
    result = subprocess.run(
        [sys.executable, "-c", _PROBE],
        env=env, capture_output=True, text=True, check=True, timeout=60,
    )
    return result.stdout.strip()


class TestStableKeyHash:
    def test_is_crc32_of_utf8(self):
        for key in ("a", "key", "Straße", 42, ("t", 1)):
            assert stable_key_hash(key) == zlib.crc32(
                str(key).encode("utf-8"))

    def test_non_string_keys_stringify(self):
        assert stable_key_hash(42) == stable_key_hash("42")

    def test_routing_stable_across_hash_seeds(self):
        # Three interpreters with adversarially different hash salts
        # must route every key to the same replica.  With the salted
        # builtin hash the probability all seven keys agree across
        # three random salts is ~(1/4)^14.
        tables = {seed: _route_table(seed) for seed in ("0", "1", "4242")}
        assert len(set(tables.values())) == 1, tables

    def test_matches_parent_process(self):
        expected = ";".join(
            f"{k}={stable_key_hash(k) % 4}"
            for k in ["alpha", "beta", "k42", "Straße", "", "0",
                      "key-with-dash"])
        assert _route_table("7") == expected


class TestPartitionPlanStability:
    def test_greedy_assignment_ignores_hash_seed(self):
        # The greedy heuristic sorts by (frequency, key) — no hashing
        # at all — so the driver-computed plan any worker inherits is
        # deterministic by construction.
        keys = KeyDistribution.zipf(50, 1.0)
        first = key_partitioning(keys, 4)
        second = key_partitioning(keys, 4)
        assert first[2].assignment == second[2].assignment

    def test_emitter_fallback_uses_stable_hash(self):
        # The EmitterActor routes unseen keys (absent from the
        # partition plan) by stable_key_hash, never builtin hash.
        import inspect

        from repro.runtime.actors import EmitterActor

        source = inspect.getsource(EmitterActor._pick)
        assert "stable_key_hash(key)" in source
        assert "= hash(key)" not in source
