"""Tests for the deployment-plan exporters."""

import json

import pytest

from repro.codegen.deployment import (
    deployment_json,
    deployment_plan,
    flink_sketch,
    storm_sketch,
)
from repro.core.autofusion import auto_fuse
from repro.core.fission import eliminate_bottlenecks
from repro.core.graph import Edge, KeyDistribution, OperatorSpec, StateKind, Topology
from tests.conftest import make_fig11, make_pipeline


def optimized_topology():
    keys = KeyDistribution.uniform(120)
    topology = Topology(
        [
            OperatorSpec("src", 0.5e-3),
            OperatorSpec("map", 2e-3),
            OperatorSpec("agg", 3e-3, state=StateKind.PARTITIONED, keys=keys),
            OperatorSpec("sink", 0.1e-3, output_selectivity=0.0),
        ],
        [Edge("src", "map"), Edge("map", "agg"), Edge("agg", "sink")],
        name="deploy-test",
    )
    return eliminate_bottlenecks(topology).optimized


class TestPlan:
    def test_contains_every_operator_with_parallelism(self):
        topology = optimized_topology()
        plan = deployment_plan(topology)
        names = {entry["name"] for entry in plan["operators"]}
        assert names == set(topology.names)
        by_name = {entry["name"]: entry for entry in plan["operators"]}
        assert by_name["map"]["parallelism"] == 4
        assert by_name["agg"]["parallelism"] == 6

    def test_partitioning_metadata(self):
        plan = deployment_plan(optimized_topology())
        agg = next(e for e in plan["operators"] if e["name"] == "agg")
        assert agg["partitioning"]["keys"] == 120
        assert agg["state"] == "partitioned-stateful"

    def test_predicted_figures_present(self):
        plan = deployment_plan(optimized_topology())
        assert plan["predicted_throughput"] == pytest.approx(2000.0)
        for entry in plan["operators"]:
            assert 0.0 <= entry["predicted_utilization"] <= 1.0 + 1e-9

    def test_edges_serialized(self):
        plan = deployment_plan(optimized_topology())
        assert {"from": "src", "to": "map", "probability": 1.0} \
            in plan["edges"]

    def test_fusion_annotations(self, fig11_table1):
        result = auto_fuse(fig11_table1)
        plan = deployment_plan(result.fused, fusion_plans=result.plans)
        fused_entries = [e for e in plan["operators"]
                         if "fused_members" in e]
        assert fused_entries
        assert all("fused_front_end" in e for e in fused_entries)

    def test_checkpoint_section_absent_by_default(self):
        plan = deployment_plan(optimized_topology())
        assert "checkpointing" not in plan

    def test_checkpoint_section_carries_predictions(self):
        from repro.core.graph import CheckpointConfig

        topology = optimized_topology().with_checkpoint(
            CheckpointConfig(interval_items=50, retained=3,
                             snapshot_overhead=1.0e-3))
        plan = deployment_plan(topology)
        section = plan["checkpointing"]
        assert section["interval_items"] == 50
        assert section["retained_epochs"] == 3
        assert section["snapshot_overhead_ms"] == pytest.approx(1.0)
        assert 0.0 < section["predicted_overhead_ratio"] < 1.0
        assert section["predicted_throughput"] < plan["predicted_throughput"]
        assert section["predicted_mean_recovery_s"] > 0.0

    def test_json_round_trip(self):
        text = deployment_json(optimized_topology())
        parsed = json.loads(text)
        assert parsed["topology"] == "deploy-test"
        assert parsed["source"] == "src"
        assert parsed["sinks"] == ["sink"]


class TestSketches:
    def test_flink_sketch_carries_parallelism(self):
        sketch = flink_sketch(optimized_topology())
        assert ".setParallelism(4);" in sketch
        assert "keyBy" in sketch           # the partitioned aggregate
        assert "env.execute" in sketch

    def test_flink_sketch_unions_multi_input(self, fig11_table1):
        sketch = flink_sketch(fig11_table1)
        assert ".union(" in sketch         # op6 merges three streams

    def test_storm_sketch_structure(self):
        sketch = storm_sketch(optimized_topology())
        assert 'builder.setSpout("src"' in sketch
        assert 'builder.setBolt("agg"' in sketch
        assert "fieldsGrouping" in sketch  # keyed routing
        assert "shuffleGrouping" in sketch

    def test_identifiers_sanitized(self):
        topology = Topology(
            [OperatorSpec("weird-name.1", 1e-3),
             OperatorSpec("2nd", 2e-3)],
            [Edge("weird-name.1", "2nd")],
        )
        sketch = flink_sketch(topology)
        assert "weird_name_1" in sketch
        assert "op_2nd" in sketch
