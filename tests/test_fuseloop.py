"""Unit tests of the fusion-to-loop safety gate and execution planner.

The load-bearing property: **no impure operator is ever loop-compiled**.
The SS2xx operator-code analyzer (:mod:`repro.analysis.opcode`) is the
gate — every path that can reach :class:`repro.codegen.fuseloop.LoopOperator`
(direct eligibility checks, the runtime's ``fusion_mode`` dispatch, the
auto-fusion planner, the deployment descriptor and SS2Py embedding) must
consult it and fall back to the Algorithm 4 meta-operator actor, which
tolerates impurity because it preserves per-member dispatch.

The impure specimens come from the PR 4 analyzer fixture gallery
(``tests/analysis/fixtures/opfixtures.py``): module-level RNG, printing,
RNG-driven key routing, undeclared state, cross-instance shared buffers.
"""

import pytest

from repro.codegen.deployment import deployment_plan
from repro.codegen.fuseloop import (
    LoopOperator,
    chain_of,
    choose_execution,
    generate_loop_source,
    loop_eligibility,
    loop_eligibility_from_operators,
)
from repro.codegen.ss2py import CodegenConfig, generate_code
from repro.core.autofusion import auto_fuse
from repro.core.fusion import apply_fusion, plan_fusion
from repro.core.graph import Edge, OperatorSpec, Topology, TopologyError
from repro.core.steady_state import analyze
from repro.faults.plan import FaultPlan, PoisonFault
from repro.operators.basic import Identity
from repro.operators.source_sink import CollectingSink, GeneratorSource
from repro.runtime.system import ActorSystem, RuntimeConfig

from tests.analysis.fixtures import opfixtures as fx

IDENTITY_PATH = "repro.operators.basic.Identity"
SOURCE_PATH = "repro.operators.source_sink.GeneratorSource"
SINK_PATH = "repro.operators.source_sink.CollectingSink"


def chain_topology(mid_class=IDENTITY_PATH, mid_args=None):
    """source -> mid -> ident -> sink, fusing the two middle stages."""
    specs = [
        OperatorSpec(name="source", service_time=0.001,
                     operator_class=SOURCE_PATH),
        OperatorSpec(name="mid", service_time=0.001,
                     operator_class=mid_class,
                     operator_args=dict(mid_args or {})),
        OperatorSpec(name="ident", service_time=0.001,
                     operator_class=IDENTITY_PATH),
        OperatorSpec(name="sink", service_time=0.001,
                     operator_class=SINK_PATH),
    ]
    edges = [Edge("source", "mid"), Edge("mid", "ident"),
             Edge("ident", "sink")]
    topology = Topology(specs, edges, name="gate")
    return topology, plan_fusion(topology, ["mid", "ident"])


def diamond_topology():
    """source -> a -> {b, c} -> sink; the fused sub-graph is not a chain."""
    specs = [
        OperatorSpec(name="source", service_time=0.001,
                     operator_class=SOURCE_PATH),
        OperatorSpec(name="a", service_time=0.001,
                     operator_class=IDENTITY_PATH),
        OperatorSpec(name="b", service_time=0.001,
                     operator_class=IDENTITY_PATH),
        OperatorSpec(name="c", service_time=0.001,
                     operator_class=IDENTITY_PATH),
        OperatorSpec(name="sink", service_time=0.001,
                     operator_class=SINK_PATH),
    ]
    edges = [Edge("source", "a"),
             Edge("a", "b", probability=0.5),
             Edge("a", "c", probability=0.5),
             Edge("b", "sink"), Edge("c", "sink")]
    topology = Topology(specs, edges, name="diamond")
    return topology, plan_fusion(topology, ["a", "b", "c"])


IMPURE_PATHS = [
    pytest.param(fx.JITTER_PATH, id="module-rng"),
    pytest.param(fx.PRINTING_PATH, id="printing-io"),
    pytest.param(fx.RANDOM_KEY_PATH, id="random-key-routing"),
    pytest.param(fx.SNEAKY_COUNTER_PATH, id="undeclared-state"),
]


class TestEligibilityGate:
    """SS2xx verdicts decide eligibility; impurity always rejects."""

    @pytest.mark.parametrize("class_path", IMPURE_PATHS)
    def test_impure_member_rejected(self, class_path):
        topology, plan = chain_topology(mid_class=class_path)
        verdict = loop_eligibility(plan, topology)
        assert not verdict.eligible
        assert any(reason.startswith("mid:") for reason in verdict.reasons)

    def test_pure_chain_is_eligible(self):
        topology, plan = chain_topology(mid_class=fx.HONEST_MAP_PATH)
        verdict = loop_eligibility(plan, topology)
        assert verdict.eligible
        assert verdict.chain == ("mid", "ident")
        assert verdict.reasons == ()

    def test_instantiated_impure_rejected(self):
        _, plan = chain_topology()
        verdict = loop_eligibility_from_operators(
            plan, {"mid": fx.JitterMap(), "ident": Identity()})
        assert not verdict.eligible
        assert any("mid" in reason for reason in verdict.reasons)

    def test_instantiated_pure_eligible(self):
        _, plan = chain_topology()
        verdict = loop_eligibility_from_operators(
            plan, {"mid": fx.HonestMap(), "ident": Identity()})
        assert verdict.eligible

    def test_missing_operator_class_rejected(self):
        topology, plan = chain_topology(mid_class=None)
        verdict = loop_eligibility(plan, topology)
        assert not verdict.eligible
        assert any("no operator_class" in reason
                   for reason in verdict.reasons)

    def test_unloadable_class_rejected(self):
        topology, plan = chain_topology(mid_class="no.such.module.Nope")
        verdict = loop_eligibility(plan, topology)
        assert not verdict.eligible

    def test_missing_operator_instance_rejected(self):
        _, plan = chain_topology()
        verdict = loop_eligibility_from_operators(
            plan, {"mid": Identity()})  # "ident" instance absent
        assert not verdict.eligible
        assert any("ident" in reason for reason in verdict.reasons)


class TestChainStructure:
    def test_chain_of_linear_plan(self):
        _, plan = chain_topology()
        assert chain_of(plan) == ("mid", "ident")

    def test_branching_plan_is_not_a_chain(self):
        _, plan = diamond_topology()
        assert chain_of(plan) is None
        verdict = loop_eligibility(plan, diamond_topology()[0])
        assert not verdict.eligible
        assert any("linear chain" in reason for reason in verdict.reasons)

    def test_generate_loop_source_rejects_nonchain(self):
        _, plan = diamond_topology()
        with pytest.raises(TopologyError):
            generate_loop_source(plan)

    def test_loop_operator_requires_all_members(self):
        _, plan = chain_topology()
        with pytest.raises(ValueError):
            LoopOperator(plan, {"mid": Identity()})


class TestChooseExecution:
    def test_eligible_without_analysis_is_loop(self):
        topology, plan = chain_topology()
        choice = choose_execution(plan, topology)
        assert choice.execution == "loop"
        assert "eligible" in choice.reason

    def test_cold_vertex_stays_meta(self):
        topology, plan = chain_topology()
        result = apply_fusion(topology, ["mid", "ident"])
        choice = choose_execution(plan, topology,
                                  analysis=result.analysis_after,
                                  utilization_threshold=2.0)
        assert choice.execution == "meta"
        assert choice.utilization is not None
        assert "below threshold" in choice.reason

    def test_hot_vertex_goes_loop(self):
        topology, plan = chain_topology()
        result = apply_fusion(topology, ["mid", "ident"])
        choice = choose_execution(plan, topology,
                                  analysis=result.analysis_after,
                                  utilization_threshold=0.0)
        assert choice.execution == "loop"

    def test_impure_never_loop_even_when_hot(self):
        topology, plan = chain_topology(mid_class=fx.JITTER_PATH)
        choice = choose_execution(plan, topology, utilization_threshold=0.0)
        assert choice.execution == "meta"
        assert "mid" in choice.reason


class TestRuntimeFusionModes:
    """The ActorSystem's fusion_mode dispatch honors the gate."""

    def _factories(self, mid):
        return {
            "source": lambda: GeneratorSource(seed=3),
            "mid": mid,
            "ident": Identity,
            "sink": CollectingSink,
        }

    def _build(self, mid, **config):
        topology, _ = chain_topology()
        result = apply_fusion(topology, ["mid", "ident"])
        runtime = RuntimeConfig(max_items=20, watchdog=False, **config)
        return ActorSystem.build(result.fused, self._factories(mid),
                                 config=runtime,
                                 fusion_plans=[result.plan])

    def test_loop_mode_refuses_impure_member(self):
        with pytest.raises(TopologyError, match="cannot be loop-compiled"):
            self._build(fx.JitterMap, fusion_mode="loop")

    def test_auto_mode_falls_back_to_meta_for_impure(self):
        system = self._build(fx.JitterMap, fusion_mode="auto")
        try:
            assert list(system.fusion_executions.values()) == ["meta"]
        finally:
            system.stop()

    def test_loop_mode_compiles_pure_chain(self):
        system = self._build(Identity, fusion_mode="loop")
        try:
            assert list(system.fusion_executions.values()) == ["loop"]
        finally:
            system.stop()

    def test_meta_mode_never_loop_compiles(self):
        system = self._build(Identity)  # default fusion_mode="meta"
        try:
            assert list(system.fusion_executions.values()) == ["meta"]
        finally:
            system.stop()

    def test_fault_injected_member_forces_meta(self):
        fault = FaultPlan(seed=1,
                          poisons=(PoisonFault(vertex="mid", item_index=5),))
        system = self._build(Identity, fusion_mode="auto", fault_plan=fault)
        try:
            assert list(system.fusion_executions.values()) == ["meta"]
        finally:
            system.stop()

    def test_loop_mode_refuses_fault_injected_member(self):
        fault = FaultPlan(seed=1,
                          poisons=(PoisonFault(vertex="mid", item_index=5),))
        with pytest.raises(TopologyError, match="fault plan injects"):
            self._build(Identity, fusion_mode="loop", fault_plan=fault)

    def test_invalid_fusion_mode_raises(self):
        with pytest.raises(TopologyError, match="fusion_mode"):
            self._build(Identity, fusion_mode="bogus")


class TestPlannerSurfaces:
    """executions(), deployment_plan and SS2Py all surface the choice."""

    def test_auto_fuse_executions(self):
        # Middle stages at 10x the source rate: utilization 0.1 each, so
        # the auto-fusion planner collapses them in one round.
        specs = [
            OperatorSpec(name="source", service_time=0.001,
                         operator_class=SOURCE_PATH),
            OperatorSpec(name="mid", service_time=0.0001,
                         operator_class=IDENTITY_PATH),
            OperatorSpec(name="ident", service_time=0.0001,
                         operator_class=IDENTITY_PATH),
            OperatorSpec(name="sink", service_time=0.0001,
                         operator_class=SINK_PATH),
        ]
        edges = [Edge("source", "mid"), Edge("mid", "ident"),
                 Edge("ident", "sink")]
        topology = Topology(specs, edges, name="cold")
        result = auto_fuse(topology)
        assert result.plans, "expected the cold chain to fuse"
        choices = result.executions(utilization_threshold=0.0)
        assert choices
        for name, choice in choices.items():
            assert choice.fused_name == name
            assert choice.execution == "loop"

    def test_deployment_plan_marks_execution(self):
        topology, plan = chain_topology()
        result = apply_fusion(topology, ["mid", "ident"])
        deployment = deployment_plan(
            result.fused, fusion_plans=[plan], original=topology,
            utilization_threshold=0.0)
        fused_entries = [entry for entry in deployment["operators"]
                         if entry.get("fused_members")]
        assert fused_entries
        assert fused_entries[0]["execution"] == "loop-compiled"
        assert "execution_reason" in fused_entries[0]

    def test_deployment_plan_impure_is_meta_actor(self):
        topology, plan = chain_topology(mid_class=fx.JITTER_PATH)
        result = apply_fusion(topology, ["mid", "ident"])
        deployment = deployment_plan(
            result.fused, fusion_plans=[plan], original=topology,
            utilization_threshold=0.0)
        fused_entries = [entry for entry in deployment["operators"]
                         if entry.get("fused_members")]
        assert fused_entries
        assert fused_entries[0]["execution"] == "meta-actor"

    def test_ss2py_embeds_loop_source_for_pure_chain(self):
        topology, plan = chain_topology()
        result = apply_fusion(topology, ["mid", "ident"])
        code = generate_code(result.fused, original=topology,
                             fusion_plans=[plan],
                             config=CodegenConfig(fusion_mode="auto"))
        assert "Loop-compiled form of" in code
        assert "fusion_mode='auto'" in code

    def test_ss2py_documents_meta_fallback_for_impure(self):
        topology, plan = chain_topology(mid_class=fx.PRINTING_PATH)
        result = apply_fusion(topology, ["mid", "ident"])
        code = generate_code(result.fused, original=topology,
                             fusion_plans=[plan],
                             config=CodegenConfig(fusion_mode="auto"))
        assert "stays on the meta-operator" in code
        assert "Loop-compiled form of" not in code
