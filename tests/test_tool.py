"""Tests for the SpinStreams tool facade (the GUI workflow)."""

import math

import pytest

from repro.core.graph import TopologyError
from repro.tool import SpinStreams
from repro.topology.xmlio import topology_to_xml
from tests.conftest import make_fig11, make_pipeline


@pytest.fixture
def tool():
    return SpinStreams(make_fig11(1.5, 2.7, 2.2))  # Table 2 variant


class TestVersions:
    def test_initial_version_registered(self, tool):
        assert tool.current == "initial"
        assert tool.version().name == "initial"
        assert len(tool.topology()) == 6

    def test_unknown_version_rejected(self, tool):
        with pytest.raises(TopologyError, match="unknown version"):
            tool.topology("nope")

    def test_from_xml(self):
        xml = topology_to_xml(make_fig11())
        tool = SpinStreams.from_xml(xml)
        assert len(tool.topology()) == 6

    def test_history_lists_versions(self, tool):
        tool.fuse(["op3", "op4", "op5"], fused_name="F")
        entries = tool.history()
        assert len(entries) == 2
        assert any("fusion of" in entry for entry in entries)


class TestAnalyses:
    def test_analyze_initial(self, tool):
        result = tool.analyze()
        assert math.isclose(result.throughput, 1000.0)

    def test_report_text(self, tool):
        text = tool.report()
        assert "predicted throughput" in text

    def test_render_dot(self, tool):
        assert tool.render().startswith("digraph")

    def test_simulate_initial(self, tool):
        from repro.sim.network import SimulationConfig
        measured = tool.simulate(config=SimulationConfig(items=20_000))
        assert measured.throughput == pytest.approx(1000.0, rel=0.03)


class TestFissionWorkflow:
    def test_registers_fission_version(self):
        tool = SpinStreams(make_pipeline(1.0, 3.0))
        result = tool.eliminate_bottlenecks()
        assert tool.current == "fission-1"
        assert result.replications["op1"] == 3
        assert tool.topology().operator("op1").replication == 3

    def test_bound_recorded_in_note(self):
        tool = SpinStreams(make_pipeline(0.5, 4.0))
        tool.eliminate_bottlenecks(max_replicas=6)
        assert "bound=6" in tool.version().note

    def test_successive_optimizations_numbered(self):
        tool = SpinStreams(make_pipeline(1.0, 3.0))
        tool.eliminate_bottlenecks()
        tool.eliminate_bottlenecks(name="initial")
        assert "fission-2" in tool.versions


class TestFusionWorkflow:
    def test_candidates_ranked(self, tool):
        candidates = tool.fusion_candidates()
        assert candidates
        assert all(c.mean_utilization <= 0.75 for c in candidates)

    def test_fuse_registers_version_even_when_harmful(self, tool):
        result = tool.fuse(["op3", "op4", "op5"], fused_name="F")
        assert result.impairs_performance
        assert tool.current == "fusion-1"
        assert "impairs performance" in tool.version().note
        assert "F" in tool.topology()

    def test_fuse_feasible_note(self):
        tool = SpinStreams(make_fig11())  # Table 1 variant
        tool.fuse(["op3", "op4", "op5"], fused_name="F")
        assert "feasible" in tool.version().note

    def test_fusion_plans_tracked_per_version(self, tool):
        tool.fuse(["op3", "op4", "op5"], fused_name="F")
        assert [p.fused_name for p in tool.version().fusion_plans] == ["F"]
        assert tool.versions["initial"].fusion_plans == []


class TestOutput:
    def test_to_xml_round_trips(self, tool):
        from repro.topology.xmlio import parse_topology
        parsed = parse_topology(tool.to_xml())
        assert parsed.names == tool.topology().names

    def test_generate_code_for_initial_requires_classes(self, tool):
        with pytest.raises(TopologyError, match="no operator_class"):
            tool.generate_code()

    def test_generate_code_for_executable_topology(self):
        from repro.core.graph import Edge, OperatorSpec, Topology
        topology = Topology(
            [OperatorSpec("src", 4e-3,
                          operator_class="repro.operators.source_sink."
                                         "GeneratorSource"),
             OperatorSpec("sink", 1e-3, output_selectivity=0.0,
                          operator_class="repro.operators.source_sink."
                                         "CountingSink")],
            [Edge("src", "sink")],
        )
        tool = SpinStreams(topology)
        code = tool.generate_code()
        compile(code, "<generated>", "exec")


class TestExtensions:
    def test_auto_fuse_registers_version(self):
        tool = SpinStreams(make_fig11())
        result = tool.auto_fuse()
        assert tool.current == "autofuse-1"
        assert result.operators_removed >= 2
        assert tool.version().fusion_plans

    def test_estimate_latency(self, tool):
        estimate = tool.estimate_latency(source_rate=500.0)
        assert estimate.end_to_end > 0.0

    def test_estimate_memory(self, tool):
        estimate = tool.estimate_memory(source_rate=500.0)
        assert estimate.total_items >= 0.0
        assert set(estimate.operators) == set(tool.topology().names)

    def test_deployment_plan_formats(self, tool):
        import json
        plan = json.loads(tool.deployment_plan(format="json"))
        assert plan["topology"] == "fig11"
        assert "setParallelism" in tool.deployment_plan(format="flink")
        assert "TopologyBuilder" in tool.deployment_plan(format="storm")

    def test_deployment_unknown_format(self, tool):
        with pytest.raises(TopologyError, match="format"):
            tool.deployment_plan(format="yaml")

    def test_deployment_plan_carries_fusion_annotations(self):
        tool = SpinStreams(make_fig11())
        tool.auto_fuse()
        import json
        plan = json.loads(tool.deployment_plan())
        assert any("fused_members" in entry for entry in plan["operators"])
