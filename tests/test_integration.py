"""End-to-end integration tests: the complete SpinStreams workflow.

These drive the shipped XML fixtures in ``examples/topologies/``
through the whole pipeline a user follows: import, analyze, optimize,
fuse, validate on a measurement backend, and generate runnable code —
asserting the pieces compose, not just that each works alone.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.core.steady_state import analyze
from repro.sim.network import SimulationConfig, simulate
from repro.tool import SpinStreams
from repro.topology.xmlio import parse_topology

FIXTURES = os.path.join(os.path.dirname(__file__), os.pardir,
                        "examples", "topologies")


def fixture(name):
    return os.path.join(FIXTURES, name)


class TestFixtures:
    def test_all_fixture_files_parse_and_analyze(self):
        for filename in sorted(os.listdir(FIXTURES)):
            topology = parse_topology(fixture(filename))
            result = analyze(topology)
            assert result.throughput > 0.0, filename

    def test_fig11_fixture_matches_paper_example(self):
        topology = parse_topology(fixture("fig11.xml"))
        result = analyze(topology)
        assert result.throughput == pytest.approx(1000.0)


class TestFullWorkflow:
    def test_import_optimize_fuse_generate(self, tmp_path):
        tool = SpinStreams.from_xml(fixture("testbed_sample.xml"))

        # 1. The imported topology has bottlenecks (testbed property).
        initial = tool.analyze()
        assert initial.bottlenecks

        # 2. Fission removes the removable ones and helps throughput.
        fission = tool.eliminate_bottlenecks()
        assert fission.throughput >= initial.throughput

        # 3. Automatic fusion compacts without losing throughput.
        fused = tool.auto_fuse()
        assert fused.throughput == pytest.approx(fission.throughput,
                                                 rel=1e-6)

        # 4. The simulator confirms the final version's prediction.
        measured = tool.simulate(config=SimulationConfig(items=100_000))
        final = tool.analyze()
        assert measured.throughput_error(final) < 0.08

        # 5. The deployment plan serializes the whole outcome.
        plan = json.loads(tool.deployment_plan())
        assert plan["predicted_throughput"] == pytest.approx(
            final.throughput)

    def test_cli_pipeline_on_fixture(self, tmp_path, capsys):
        optimized = str(tmp_path / "optimized.xml")
        assert main(["optimize", fixture("testbed_sample.xml"),
                     "-o", optimized]) == 0
        capsys.readouterr()
        assert main(["analyze", optimized]) == 0
        out = capsys.readouterr().out
        assert "predicted throughput" in out

    def test_generated_code_from_fixture_runs(self, tmp_path):
        script = str(tmp_path / "app.py")
        assert main(["generate", fixture("runnable_pipeline.xml"),
                     "-o", script]) == 0
        completed = subprocess.run(
            [sys.executable, script, "--duration", "0.8"],
            capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        assert "measured throughput" in completed.stdout

    def test_profile_cli_reprofiles_fixture(self, tmp_path, capsys):
        output = str(tmp_path / "profiled.xml")
        assert main(["profile", fixture("runnable_pipeline.xml"),
                     "--pad", "--duration", "1.0",
                     "--source-rate", "150", "-o", output]) == 0
        profiled = parse_topology(output)
        # Padded to declared times: the re-profiled service time of the
        # filter should be close to its declared 2 ms.
        assert profiled.operator("filter").service_time == pytest.approx(
            2e-3, rel=0.4)

    def test_model_and_simulator_agree_on_every_fixture(self):
        for filename in sorted(os.listdir(FIXTURES)):
            topology = parse_topology(fixture(filename))
            predicted = analyze(topology)
            measured = simulate(topology,
                                SimulationConfig(items=120_000, seed=9))
            assert measured.throughput_error(predicted) < 0.08, filename
