"""Tests for the workload generators."""

import random
import statistics

import pytest

from repro.operators.base import Record
from repro.workloads.generators import (
    market_quotes,
    sensor_readings,
    spatial_points,
    uniform_records,
    zipf_keyed_records,
)


def draw(factory, count=2000, seed=7):
    rng = random.Random(seed)
    return [factory(i, rng) for i in range(count)]


class TestUniform:
    def test_record_shape(self):
        records = draw(uniform_records())
        assert all(isinstance(r, Record) for r in records[:10])
        assert {"sequence", "key", "value"} <= set(records[0])

    def test_values_in_range(self):
        records = draw(uniform_records(value_range=10.0))
        assert all(0.0 <= r["value"] <= 10.0 for r in records)

    def test_keys_spread_evenly(self):
        records = draw(uniform_records(num_keys=8), count=8000)
        counts = {}
        for r in records:
            counts[r["key"]] = counts.get(r["key"], 0) + 1
        assert len(counts) == 8
        assert max(counts.values()) < 2.0 * min(counts.values())


class TestZipf:
    def test_skewed_popularity(self):
        records = draw(zipf_keyed_records(num_keys=64, alpha=1.3),
                       count=20_000)
        counts = {}
        for r in records:
            counts[r["key"]] = counts.get(r["key"], 0) + 1
        top = max(counts.values())
        assert top > len(records) * 0.1  # the hot key dominates

    def test_hot_key_is_k0(self):
        records = draw(zipf_keyed_records(num_keys=32, alpha=1.5),
                       count=20_000)
        counts = {}
        for r in records:
            counts[r["key"]] = counts.get(r["key"], 0) + 1
        assert max(counts, key=counts.get) == "k0"

    def test_invalid_num_keys(self):
        with pytest.raises(ValueError, match="num_keys"):
            zipf_keyed_records(num_keys=0)


class TestSensors:
    def test_round_robin_sensors(self):
        records = draw(sensor_readings(num_sensors=4), count=8)
        assert [r["sensor"] for r in records] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_temperatures_plausible(self):
        records = draw(sensor_readings(), count=5000)
        values = [r["value"] for r in records]
        assert 10.0 < statistics.fmean(values) < 30.0
        assert max(values) <= 30.0
        assert min(values) >= 10.0

    def test_battery_decays(self):
        factory = sensor_readings()
        rng = random.Random(1)
        early = factory(0, rng)["battery"]
        late = factory(10_000, rng)["battery"]
        assert late < early


class TestMarket:
    def test_prices_positive_random_walk(self):
        records = draw(market_quotes(), count=5000)
        assert all(r["value"] > 0.0 for r in records)

    def test_symbols_from_universe(self):
        symbols = ("AAA", "BBB")
        records = draw(market_quotes(symbols=symbols), count=1000)
        assert {r["symbol"] for r in records} == set(symbols)

    def test_key_equals_symbol(self):
        records = draw(market_quotes(), count=100)
        assert all(r["key"] == r["symbol"] for r in records)


class TestSpatial:
    def test_dimension_fields(self):
        records = draw(spatial_points(dimensions=3), count=10)
        assert {"x", "y", "z"} <= set(records[0])

    def test_coordinates_unit_square(self):
        records = draw(spatial_points(), count=2000)
        assert all(0.0 <= r["x"] <= 1.0 and 0.0 <= r["y"] <= 1.0
                   for r in records)
