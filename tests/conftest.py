"""Shared fixtures: canonical topologies used across the test suite."""

from __future__ import annotations

import pytest

from repro.core.graph import Edge, KeyDistribution, OperatorSpec, StateKind, Topology


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--conformance-seeds", type=int, default=6,
        help="seeds swept by the conformance tests (tier-1 default is a "
             "fast budget; nightly CI raises it)",
    )
    parser.addoption(
        "--process-seeds", type=int, default=2,
        help="seeds swept by the multi-process backend conformance tests "
             "(each forks shard workers and runs wall-clock seconds; "
             "tier-1 keeps a 2-seed smoke, nightly CI raises it)",
    )
    parser.addoption(
        "--adaptive-seeds", type=int, default=2,
        help="seeds swept by the online-adaptation conformance tests "
             "(each drives a live reconfiguration over wall-clock "
             "seconds; tier-1 keeps a 2-seed smoke, nightly CI runs "
             "the full 20-seed property suite)",
    )


@pytest.fixture(scope="session")
def conformance_seeds(request: pytest.FixtureRequest) -> int:
    return request.config.getoption("--conformance-seeds")


@pytest.fixture(scope="session")
def process_seeds(request: pytest.FixtureRequest) -> int:
    return request.config.getoption("--process-seeds")


@pytest.fixture(scope="session")
def adaptive_seeds(request: pytest.FixtureRequest) -> int:
    return request.config.getoption("--adaptive-seeds")


def make_pipeline(*service_times_ms: float, name: str = "pipeline") -> Topology:
    """A linear chain src -> op1 -> ... with the given service times (ms)."""
    specs = [
        OperatorSpec(f"op{i}", ms * 1e-3)
        for i, ms in enumerate(service_times_ms)
    ]
    edges = [
        Edge(f"op{i}", f"op{i + 1}")
        for i in range(len(service_times_ms) - 1)
    ]
    return Topology(specs, edges, name=name)


def make_fig11(t3_ms: float = 0.7, t4_ms: float = 2.0,
               t5_ms: float = 1.5) -> Topology:
    """The paper's Figure 11 six-operator example (Tables 1 and 2).

    Service times of operators 1, 2 and 6 are fixed at 1.0, 1.2 and
    0.2 ms; the fused members 3, 4 and 5 are parameterized so the same
    builder produces both the feasible (Table 1) and the harmful
    (Table 2) variants.
    """
    operators = [
        OperatorSpec("op1", 1.0e-3),
        OperatorSpec("op2", 1.2e-3),
        OperatorSpec("op3", t3_ms * 1e-3),
        OperatorSpec("op4", t4_ms * 1e-3),
        OperatorSpec("op5", t5_ms * 1e-3),
        OperatorSpec("op6", 0.2e-3),
    ]
    edges = [
        Edge("op1", "op2", 0.7),
        Edge("op1", "op3", 0.3),
        Edge("op3", "op4", 0.35),
        Edge("op3", "op5", 0.65),
        Edge("op4", "op5", 0.5),
        Edge("op4", "op6", 0.5),
        Edge("op2", "op6", 1.0),
        Edge("op5", "op6", 1.0),
    ]
    return Topology(operators, edges, name="fig11")


def make_diamond(src_ms: float = 1.0, left_ms: float = 2.0,
                 right_ms: float = 3.0, sink_ms: float = 0.5,
                 p_left: float = 0.5) -> Topology:
    """A diamond: src fans out to two branches merging into one sink."""
    operators = [
        OperatorSpec("src", src_ms * 1e-3),
        OperatorSpec("left", left_ms * 1e-3),
        OperatorSpec("right", right_ms * 1e-3),
        OperatorSpec("sink", sink_ms * 1e-3),
    ]
    edges = [
        Edge("src", "left", p_left),
        Edge("src", "right", 1.0 - p_left),
        Edge("left", "sink"),
        Edge("right", "sink"),
    ]
    return Topology(operators, edges, name="diamond")


@pytest.fixture
def pipeline3() -> Topology:
    """src (1ms) -> mid (2ms) -> sink (0.5ms): mid is the bottleneck."""
    return make_pipeline(1.0, 2.0, 0.5, name="pipeline3")


@pytest.fixture
def fig11_table1() -> Topology:
    return make_fig11(0.7, 2.0, 1.5)


@pytest.fixture
def fig11_table2() -> Topology:
    return make_fig11(1.5, 2.7, 2.2)


@pytest.fixture
def diamond() -> Topology:
    return make_diamond()


@pytest.fixture
def partitioned_spec() -> OperatorSpec:
    return OperatorSpec(
        "keyed",
        2.0e-3,
        state=StateKind.PARTITIONED,
        keys=KeyDistribution.zipf(100, 1.0),
    )
