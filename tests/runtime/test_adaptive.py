"""Unit tests of the online-adaptation building blocks.

The end-to-end adaptation oracles live under ``tests/conformance/``;
these tests pin the individual mechanisms: live replica resizes and
in-band migrations lose zero tuples, the online estimators are
deterministic and confidence-gated, ``plan_reconfiguration`` is a pure
function of its inputs, and the elastic wiring rejects configurations
it cannot honor.
"""

import json
import time

import pytest

from repro.core.graph import (
    CheckpointConfig,
    Edge,
    OperatorSpec,
    Topology,
    TopologyError,
)
from repro.operators.basic import Identity
from repro.operators.source_sink import CollectingSink, GeneratorSource
from repro.profiling.online import EstimatorConfig, OnlineEstimator, VertexEstimate
from repro.runtime.adaptive import (
    AdaptiveConfig,
    AdaptiveController,
    plan_reconfiguration,
    wait_for_adaptation,
)
from repro.runtime.synthetic import PaddedOperator
from repro.runtime.system import ActorSystem, RuntimeConfig
from repro.testing import ConformanceConfig, choose_shift, topology_for_seed


def elastic_pipeline():
    return Topology(
        [OperatorSpec("src", 0.5e-3),
         OperatorSpec("work", 1.0e-3),
         OperatorSpec("sink", 0.1e-3, output_selectivity=0.0)],
        [Edge("src", "work"), Edge("work", "sink")],
        name="elastic-pipeline",
    )


def elastic_factories(sink):
    return {
        "src": lambda: GeneratorSource(seed=5),
        "work": lambda: PaddedOperator(Identity(), 1.0e-3),
        "sink": lambda: sink,
    }


def drain(system, timeout=15.0):
    """Wait for source exhaustion, then system-wide quiescence."""
    deadline = time.monotonic() + timeout
    if system.source_actor is not None:
        system.source_actor.join(timeout=timeout)
    previous = -1
    while time.monotonic() < deadline:
        current = system._progress()
        if current == previous:
            return
        previous = current
        time.sleep(0.05)


class TestLiveScaling:
    def test_scale_up_then_down_loses_nothing(self):
        sink = CollectingSink()
        system = ActorSystem.build(
            elastic_pipeline(), elastic_factories(sink),
            config=RuntimeConfig(elastic=True, source_rate=2000.0,
                                 max_items=400, seed=5, watchdog=False),
        )
        system.start()
        try:
            time.sleep(0.05)
            assert system.scale_vertex("work", 3) == 2
            time.sleep(0.05)
            assert system.scale_vertex("work", 1) == -2
            drain(system)
        finally:
            leaked = system.stop()
        assert leaked == []
        assert sink.count == 400
        assert system.replication_of("work") == 1
        assert system.reconfigurations == 2
        assert sum(s.dropped for s in system.snapshot().values()) == 0

    def test_scale_requires_elastic_build(self):
        system = ActorSystem.build(
            elastic_pipeline(), elastic_factories(CollectingSink()),
            config=RuntimeConfig(max_items=10),
        )
        with pytest.raises(TopologyError, match="live-scalable"):
            system.scale_vertex("work", 2)

    def test_scale_rejects_zero_replicas(self):
        system = ActorSystem.build(
            elastic_pipeline(), elastic_factories(CollectingSink()),
            config=RuntimeConfig(elastic=True, max_items=10),
        )
        with pytest.raises(ValueError):
            system.scale_vertex("work", 0)

    def test_elastic_mode_rejects_checkpointing(self):
        with pytest.raises(TopologyError, match="elastic"):
            ActorSystem.build(
                elastic_pipeline(), elastic_factories(CollectingSink()),
                config=RuntimeConfig(elastic=True,
                                     checkpoint=CheckpointConfig()),
            )

    def test_set_source_rate_mid_run(self):
        system = ActorSystem.build(
            elastic_pipeline(), elastic_factories(CollectingSink()),
            config=RuntimeConfig(elastic=True, source_rate=100.0,
                                 max_items=50, watchdog=False),
        )
        system.start()
        try:
            system.set_source_rate(5000.0)
            assert system.source_actor.rate == 5000.0
            drain(system)
        finally:
            system.stop()


class TestLiveMigration:
    def test_migrate_stateful_sink_keeps_every_tuple(self):
        sink = CollectingSink()
        system = ActorSystem.build(
            elastic_pipeline(), elastic_factories(sink),
            config=RuntimeConfig(elastic=True, source_rate=2000.0,
                                 max_items=300, seed=5, watchdog=False),
        )
        system.start()
        try:
            time.sleep(0.03)
            ticket = system.migrate_vertex("sink", timeout=10.0)
            assert ticket.ok, ticket.errors
            drain(system)
        finally:
            system.stop()
        # The collected items straddle the migration: state moved intact.
        assert sink.count == 300
        assert system.reconfigurations == 1

    def test_migrating_the_source_is_rejected(self):
        system = ActorSystem.build(
            elastic_pipeline(), elastic_factories(CollectingSink()),
            config=RuntimeConfig(elastic=True, max_items=10),
        )
        with pytest.raises(TopologyError, match="source"):
            system.migrate_vertex("src")


class TestOnlineEstimator:
    CONFIG = EstimatorConfig(window_ticks=3, min_items=10)

    def test_identical_tick_sequences_agree_bit_for_bit(self):
        ticks = [(12, 24, 0.06), (8, 16, 0.04), (20, 40, 0.10)]
        a = OnlineEstimator("v", self.CONFIG, seed=9)
        b = OnlineEstimator("v", self.CONFIG, seed=9)
        for processed, emitted, busy in ticks:
            a.observe(processed, emitted, busy)
            b.observe(processed, emitted, busy)
        assert a.estimate() == b.estimate()
        assert a.estimate().service_time == pytest.approx(0.005)
        assert a.estimate().gain == pytest.approx(2.0)

    def test_confidence_gates_on_min_items(self):
        estimator = OnlineEstimator("v", self.CONFIG)
        estimator.observe(3, 3, 0.01)
        assert not estimator.estimate().confident
        estimator.observe(20, 20, 0.05)
        assert estimator.estimate().confident

    def test_reset_clears_the_window(self):
        estimator = OnlineEstimator("v", self.CONFIG)
        estimator.observe(50, 50, 0.1)
        assert estimator.estimate().confident
        estimator.reset()
        assert not estimator.estimate().confident


class TestPlanReconfiguration:
    TOPOLOGY = Topology(
        [OperatorSpec("src", 4e-3),
         OperatorSpec("work", 1e-3),
         OperatorSpec("sink", 0.1e-3, output_selectivity=0.0)],
        [Edge("src", "work"), Edge("work", "sink")],
        name="replan-pipeline",
    )

    def drifted(self):
        return {"work": VertexEstimate(vertex="work", service_time=8e-3,
                                       gain=1.0, samples=100,
                                       confident=True)}

    def test_pure_function_replays_identically(self):
        config = AdaptiveConfig()
        first = plan_reconfiguration(
            self.TOPOLOGY, {"src": 1, "work": 1, "sink": 1},
            self.drifted(), 250.0, ("work", "sink"), config)
        second = plan_reconfiguration(
            self.TOPOLOGY, {"src": 1, "work": 1, "sink": 1},
            self.drifted(), 250.0, ("work", "sink"), config)
        assert first[1] == second[1]
        assert first[0] is not None
        assert [(a.vertex, a.before, a.after) for a in first[0].actions] == \
            [(a.vertex, a.before, a.after) for a in second[0].actions]

    def test_drifted_bottleneck_scales_up(self):
        diff, reason = plan_reconfiguration(
            self.TOPOLOGY, {"src": 1, "work": 1, "sink": 1},
            self.drifted(), 250.0, ("work", "sink"), AdaptiveConfig())
        assert diff is not None, reason
        resized = {action.vertex: action.after for action in diff.actions}
        assert resized.get("work", 1) > 1

    def test_no_confident_drift_stands_pat(self):
        diff, reason = plan_reconfiguration(
            self.TOPOLOGY, {"src": 1, "work": 1, "sink": 1},
            {}, 250.0, ("work", "sink"), AdaptiveConfig())
        assert diff is None
        assert "no confident" in reason


class TestController:
    def test_decision_log_is_json_ready(self):
        system = ActorSystem.build(
            elastic_pipeline(), elastic_factories(CollectingSink()),
            config=RuntimeConfig(elastic=True, max_items=10),
        )
        controller = AdaptiveController(system, elastic_pipeline())
        decision = controller.tick()
        assert not decision.fired
        encoded = json.dumps(controller.decision_log())
        assert "no confident" in encoded

    def test_wait_for_adaptation_times_out_quietly(self):
        system = ActorSystem.build(
            elastic_pipeline(), elastic_factories(CollectingSink()),
            config=RuntimeConfig(elastic=True, max_items=10),
        )
        controller = AdaptiveController(system, elastic_pipeline())
        assert not wait_for_adaptation(controller, timeout=0.05)


class TestChooseShift:
    def test_same_seed_same_shift(self):
        config = ConformanceConfig()
        topology = topology_for_seed(
            100, config, generator=config.runtime_generator_config())
        rate = topology.operator(topology.source).service_rate
        assert choose_shift(topology, rate, 100) == \
            choose_shift(topology, rate, 100)

    def test_shift_creates_a_real_bottleneck(self):
        config = ConformanceConfig()
        topology = topology_for_seed(
            101, config, generator=config.runtime_generator_config())
        rate = topology.operator(topology.source).service_rate
        vertex, factor = choose_shift(topology, rate, 101)
        assert vertex != topology.source
        assert factor >= 3.0
