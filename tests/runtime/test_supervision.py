"""Supervision, fault injection and watchdog behaviour of the runtime.

Wall-clock tests are kept short and assert on event logs and counters
(deterministic via logical item indices) rather than on exact rates.
"""

import threading
import time

import pytest

from repro.core.graph import Edge, OperatorSpec, Topology
from repro.faults import CrashFault, FaultPlan, PoisonFault
from repro.operators.base import Operator, Record
from repro.operators.basic import Identity
from repro.operators.source_sink import CountingSink, GeneratorSource
from repro.runtime.actors import OperatorActor, Router, Target
from repro.runtime.mailbox import BoundedMailbox
from repro.runtime.supervision import (
    ActorContext,
    BlockedActor,
    Directive,
    OperatorCrash,
    RestartTracker,
    StallWatchdog,
    SupervisionPolicy,
    SupervisorStrategy,
    attach_leak,
    find_blocked_cycle,
)
from repro.runtime.synthetic import PaddedOperator
from repro.runtime.system import RuntimeConfig, run_topology


def pipeline_topology():
    return Topology(
        [OperatorSpec("src", 5e-3),
         OperatorSpec("work", 1e-3),
         OperatorSpec("sink", 0.1e-3, output_selectivity=0.0)],
        [Edge("src", "work"), Edge("work", "sink")],
        name="supervised-pipeline",
    )


class Hooked(Identity):
    """Identity whose lifecycle calls are observable across restarts."""

    instances = 0

    def __init__(self, log):
        self.log = log
        type(self).instances += 1

    def on_start(self):
        self.log.append("start")

    def on_stop(self):
        self.log.append("stop")


def run_with_plan(plan, supervisor=None, duration=1.0, log=None,
                  source_rate=200.0, **config_kwargs):
    log = [] if log is None else log
    topology = pipeline_topology()
    factories = {
        "src": lambda: GeneratorSource(seed=3),
        "work": lambda: Hooked(log),
        "sink": CountingSink,
    }
    config = RuntimeConfig(
        source_rate=source_rate, seed=3, fault_plan=plan,
        supervisor=supervisor, **config_kwargs,
    )
    result = run_topology(topology, factories, duration=duration,
                          warmup=0.0, config=config)
    return result, log


class TestPolicy:
    def test_decide_maps_exception_kinds(self):
        policy = SupervisionPolicy()
        assert policy.decide(OperatorCrash("x")) is Directive.RESTART
        assert policy.decide(ValueError("x")) is Directive.RESUME

    def test_backoff_grows_and_caps(self):
        policy = SupervisionPolicy(backoff_base=0.1, backoff_factor=2.0,
                                   backoff_max=0.3)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(5) == pytest.approx(0.3)

    def test_restart_tracker_window(self):
        tracker = RestartTracker(SupervisionPolicy(max_restarts=2,
                                                   window=1.0))
        assert not tracker.record(0.0)
        assert not tracker.record(0.1)
        assert tracker.record(0.2)       # third restart inside the window
        assert not tracker.record(5.0)   # old restarts aged out

    def test_strategy_per_vertex_override(self):
        strict = SupervisionPolicy(on_crash=Directive.STOP)
        strategy = SupervisorStrategy(policies={"work": strict})
        assert strategy.policy_for("work") is strict
        assert strategy.policy_for("other").on_crash is Directive.RESTART


class TestBlockedCycle:
    def test_two_cycle_found_and_normalized(self):
        assert find_blocked_cycle({"b": "a", "a": "b"}) == ("a", "b")

    def test_chain_without_cycle(self):
        assert find_blocked_cycle({"a": "b", "b": "c"}) == ()

    def test_tail_into_cycle(self):
        assert find_blocked_cycle({"t": "a", "a": "b", "b": "a"}) == ("a", "b")


class TestRestart:
    def test_crash_restarts_with_fresh_operator(self):
        plan = FaultPlan(seed=1, crashes=(CrashFault("work", 10),))
        before = Hooked.instances
        result, log = run_with_plan(plan, duration=1.0)
        assert result.supervision.count("restart") == 1
        assert Hooked.instances - before == 2   # initial + restart
        assert log.count("start") == 2          # fresh on_start ran
        assert result.measurements.total_restarts() == 1
        assert result.failure is None
        assert result.leaked_actors == ()
        # The pipeline kept flowing after the restart.
        assert result.vertices["sink"].processing_rate > 20.0

    def test_poison_resumes_and_dead_letters(self):
        plan = FaultPlan(seed=1, poisons=(PoisonFault("work", 5),
                                          PoisonFault("work", 15)))
        result, _ = run_with_plan(plan, duration=1.0)
        assert result.supervision.count("resume") == 2
        assert result.supervision.count("restart") == 0
        assert result.dead_letters.counts().get("work") == 2
        reasons = {letter.reason for letter in result.dead_letters.letters}
        assert "supervision-resume" in reasons

    def test_event_log_is_replay_deterministic(self):
        plan = FaultPlan(seed=1, crashes=(CrashFault("work", 10),),
                         poisons=(PoisonFault("work", 30),))
        first, _ = run_with_plan(plan, duration=1.0)
        second, _ = run_with_plan(plan, duration=1.0)
        strip = lambda sig: [(v, d, i) for _, v, d, i in sig]
        assert strip(first.supervision.signature()) == \
            strip(second.supervision.signature())


class TestStopAndEscalate:
    def test_restart_budget_exhaustion_stops_operator(self):
        plan = FaultPlan(seed=1, crashes=(CrashFault("work", 5),
                                          CrashFault("work", 10),
                                          CrashFault("work", 15)))
        supervisor = SupervisorStrategy(default=SupervisionPolicy(
            on_crash=Directive.RESTART, max_restarts=1, window=60.0,
            backoff_base=0.01, backoff_max=0.01))
        result, _ = run_with_plan(plan, supervisor=supervisor, duration=1.5)
        directives = [e.directive for e in result.supervision.events]
        assert directives.count("restart") == 1
        assert directives.count("stop") == 1
        # The stopped actor's mailbox diverts to dead letters, so the
        # upstream source keeps running instead of blocking forever.
        assert result.dead_letters.counts().get("work", 0) > 0
        assert result.failure is None
        assert result.leaked_actors == ()

    def test_stop_policy_stops_on_first_crash(self):
        plan = FaultPlan(seed=1, crashes=(CrashFault("work", 5),))
        supervisor = SupervisorStrategy(default=SupervisionPolicy(
            on_crash=Directive.STOP))
        result, log = run_with_plan(plan, supervisor=supervisor,
                                    duration=1.0)
        assert result.supervision.count("stop") == 1
        assert log.count("stop") >= 1  # operator teardown hook ran

    def test_escalate_aborts_the_run(self):
        plan = FaultPlan(seed=1, crashes=(CrashFault("work", 5),))
        supervisor = SupervisorStrategy(default=SupervisionPolicy(
            on_crash=Directive.ESCALATE))
        started = time.monotonic()
        result, _ = run_with_plan(plan, supervisor=supervisor, duration=5.0)
        assert result.failure is not None
        assert "work" in result.failure
        # The failure aborted the run well before the 5s horizon.
        assert time.monotonic() - started < 4.0


class TestDroppedMessages:
    def test_put_timeouts_are_counted_not_silent(self):
        topology = Topology(
            [OperatorSpec("src", 2e-3),
             OperatorSpec("slow", 50e-3),
             OperatorSpec("sink", 0.1e-3, output_selectivity=0.0)],
            [Edge("src", "slow"), Edge("slow", "sink")],
            name="dropper",
        )
        factories = {
            "src": lambda: GeneratorSource(seed=3),
            "slow": lambda: PaddedOperator(Identity(), 50e-3),
            "sink": CountingSink,
        }
        result = run_topology(
            topology, factories, duration=1.0, warmup=0.0,
            config=RuntimeConfig(source_rate=500.0, mailbox_capacity=1,
                                 put_timeout=0.02, watchdog=False),
        )
        assert result.dropped_messages > 0
        assert result.measurements.total_dropped() == result.dropped_messages
        reasons = {letter.reason for letter in result.dead_letters.letters}
        assert "mailbox-timeout" in reasons

    def test_clean_run_drops_nothing(self):
        result, _ = run_with_plan(None, duration=0.5)
        assert result.dropped_messages == 0


class TestWatchdog:
    def test_stalled_system_reported_not_hung(self):
        # Stop 'work' without diverting its mailbox: the source blocks
        # forever on the full queue (put_timeout=None) and only the
        # watchdog can classify and abort the run.
        plan = FaultPlan(seed=1, crashes=(CrashFault("work", 5),))
        supervisor = SupervisorStrategy(default=SupervisionPolicy(
            on_crash=Directive.STOP, divert_on_stop=False))
        started = time.monotonic()
        result, _ = run_with_plan(
            plan, supervisor=supervisor, duration=8.0,
            source_rate=400.0, put_timeout=None, mailbox_capacity=2,
            watchdog_interval=0.05, watchdog_stall_timeout=0.4,
        )
        elapsed = time.monotonic() - started
        assert result.watchdog is not None
        assert result.watchdog.verdict in ("stall", "deadlock")
        assert any(b.blocked_on == "work" for b in result.watchdog.blocked)
        assert result.failure is not None
        assert elapsed < 7.0  # aborted, did not sleep out the horizon

    def test_watchdog_classifies_blocked_cycle_as_deadlock(self):
        blocked = [BlockedActor("actor-a", "a", "b"),
                   BlockedActor("actor-b", "b", "a")]
        fired = []
        dog = StallWatchdog(progress=lambda: 0, blocked=lambda: blocked,
                            on_stall=fired.append,
                            interval=0.02, stall_timeout=0.1)
        dog.start()
        dog.join(timeout=5.0)
        assert fired and fired[0].verdict == "deadlock"
        assert fired[0].cycle == ("a", "b")

    def test_progress_keeps_watchdog_quiet(self):
        counter = {"n": 0}

        def progress():
            counter["n"] += 1
            return counter["n"]

        dog = StallWatchdog(progress=progress, blocked=lambda: [],
                            on_stall=lambda report: pytest.fail("fired"),
                            interval=0.02, stall_timeout=0.1)
        dog.start()
        time.sleep(0.3)
        dog.stop()
        dog.join(timeout=5.0)
        assert dog.report is None

    def test_attach_leak_builds_thread_leak_report(self):
        assert attach_leak(None, []) is None
        report = attach_leak(None, ["actor-x"])
        assert report.verdict == "thread-leak"
        assert report.leaked == ("actor-x",)
        merged = attach_leak(report, ["actor-y"])
        assert merged.leaked == ("actor-x",)  # existing verdict kept


class Duplicator(Operator):
    """Emits the *same* payload object twice (fan-out sharing hazard)."""

    output_selectivity = 2.0

    def operator_function(self, item):
        return [item, item]


class TestCopyOnRoute:
    def build_actor(self):
        router = Router("dup", seed=1)
        left = Target("left", BoundedMailbox(16))
        right = Target("right", BoundedMailbox(16))
        router.add(0.5, left)
        router.add(0.5, right)
        actor = OperatorActor(
            name="dup", vertex="dup", operator=Duplicator(), router=router,
            mailbox=BoundedMailbox(16), stop_event=threading.Event(),
            context=ActorContext(),
        )
        return actor, left, right

    def collect(self, *targets):
        payloads = []
        for target in targets:
            while len(target.mailbox):
                payload, _ = target.mailbox.get()
                payloads.append(payload)
        return payloads

    def test_repeated_payload_is_copied(self):
        actor, left, right = self.build_actor()
        actor.handle((Record({"value": 1.0}), "src"))
        payloads = self.collect(left, right)
        assert len(payloads) == 2
        assert payloads[0] == payloads[1]
        assert payloads[0] is not payloads[1]

    def test_downstream_mutation_does_not_leak_across_branches(self):
        actor, left, right = self.build_actor()
        actor.handle((Record({"value": 1.0}), "src"))
        first, second = self.collect(left, right)
        first["tag"] = "left-owned"
        assert "tag" not in second

    def test_diamond_end_to_end_no_shared_mutation(self):
        """Diamond regression: left's origin stamp must not reach right."""

        class Stamper(Operator):
            def __init__(self, tag):
                self.tag = tag

            def operator_function(self, item):
                assert "stamp" not in item, "shared payload mutated upstream"
                item["stamp"] = self.tag
                return [item]

        seen = []

        class Probe(Operator):
            output_selectivity = 0.0

            def operator_function(self, item):
                seen.append(dict(item))
                return []

        topology = Topology(
            [OperatorSpec("src", 2e-3),
             OperatorSpec("dup", 1e-3, output_selectivity=2.0),
             OperatorSpec("left", 1e-3),
             OperatorSpec("right", 1e-3),
             OperatorSpec("sink", 0.1e-3, output_selectivity=0.0)],
            [Edge("src", "dup"), Edge("dup", "left", 0.5),
             Edge("dup", "right", 0.5), Edge("left", "sink"),
             Edge("right", "sink")],
            name="diamond-regression",
        )
        factories = {
            "src": lambda: GeneratorSource(seed=3),
            "dup": Duplicator,
            "left": lambda: Stamper("left"),
            "right": lambda: Stamper("right"),
            "sink": Probe,
        }
        result = run_topology(
            topology, factories, duration=0.8, warmup=0.0,
            config=RuntimeConfig(source_rate=100.0, seed=3),
        )
        assert result.failure is None
        # No operator raised: the in-operator shared-mutation assert
        # would surface here as resume events.
        assert result.supervision.count() == 0
        stamps = {item.get("stamp") for item in seen}
        assert stamps <= {"left", "right"}
        assert len(seen) > 20
