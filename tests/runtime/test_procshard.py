"""Multi-process sharded backend: losslessness, hygiene, crash cleanup.

The bit-equality and rate-conformance gates live under
``tests/conformance``; this module covers the process-lifecycle
contract: graceful topological shutdown delivers every tuple, teardown
never leaks worker processes or wedged actors (the multi-process analog
of the thread-leak gate on ``ActorSystem.stop``), and a crashed worker
is detected, reported and reaped — no zombies, no orphaned pipes.
"""

from __future__ import annotations

import os

import pytest

from repro.core.graph import (
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)
from repro.operators.base import Operator
from repro.operators.source_sink import CollectingSink, GeneratorSource
from repro.runtime.procshard import (
    ProcShardConfig,
    ProcShardSystem,
    run_sharded,
)


def chain_topology(replication: int = 1,
                   keys: KeyDistribution | None = None) -> Topology:
    state = StateKind.PARTITIONED if keys is not None else StateKind.STATELESS
    specs = [
        OperatorSpec(name="source", service_time=2e-4,
                     operator_class=(
                         "repro.operators.source_sink.GeneratorSource"),
                     operator_args={"seed": 7}),
        OperatorSpec(name="stage", service_time=2e-4,
                     replication=replication, state=state, keys=keys,
                     operator_class="repro.runtime.synthetic.GainOperator",
                     operator_args={"gain": 1.0}),
        OperatorSpec(name="sink", service_time=1e-4,
                     operator_class=(
                         "repro.operators.source_sink.CollectingSink"),
                     operator_args={"capacity": 100_000}),
    ]
    edges = [Edge("source", "stage"), Edge("stage", "sink")]
    return Topology(specs, edges, name="procshard-test")


def factories_for(topology: Topology):
    from repro.testing.differential import topology_factories

    return topology_factories(topology)


class ExitingOperator(Operator):
    """Kills its whole worker process after ``fuse`` items (crash test)."""

    def __init__(self, fuse: int) -> None:
        self.fuse = fuse
        self.seen = 0

    def operator_function(self, item):
        self.seen += 1
        if self.seen >= self.fuse:
            os._exit(17)
        return [item]


class TestLosslessShutdown:
    def test_exhaustion_delivers_every_item(self):
        topology = chain_topology()
        config = ProcShardConfig(shards=2, max_items=500, batch_size=4,
                                 channel_batch_size=16, mailbox_capacity=32)
        system = ProcShardSystem.build(
            topology, factories_for(topology), config=config,
            placement={"source": (0,), "stage": (1,), "sink": (0,)})
        result = system.run_to_exhaustion()
        assert result.failure is None
        assert result.sink_counts == {"sink": 500}
        assert result.dropped_messages == 0

    def test_fission_across_shards_is_lossless(self):
        topology = chain_topology(replication=3)
        config = ProcShardConfig(shards=2, max_items=400, batch_size=2,
                                 channel_batch_size=8)
        system = ProcShardSystem.build(
            topology, factories_for(topology), config=config,
            placement={"source": (0,), "stage": (0, 1, 1), "sink": (0,)})
        result = system.run_to_exhaustion()
        assert result.failure is None
        assert result.sink_counts == {"sink": 400}

    def test_partitioned_stage_across_shards(self):
        keys = KeyDistribution({f"k{i}": 1 / 64 for i in range(64)})
        topology = chain_topology(replication=2, keys=keys)
        config = ProcShardConfig(shards=2, max_items=300)
        system = ProcShardSystem.build(
            topology, factories_for(topology), config=config,
            placement={"source": (0,), "stage": (0, 1), "sink": (0,)})
        result = system.run_to_exhaustion()
        assert result.failure is None
        assert result.sink_counts == {"sink": 300}

    def test_exhaustion_requires_max_items(self):
        topology = chain_topology()
        system = ProcShardSystem.build(topology, factories_for(topology),
                                       config=ProcShardConfig(shards=1))
        with pytest.raises(TopologyError, match="max_items"):
            system.run_to_exhaustion()


class TestProcessHygiene:
    def test_no_worker_survives_teardown(self):
        topology = chain_topology()
        config = ProcShardConfig(shards=3, max_items=200)
        system = ProcShardSystem.build(
            topology, factories_for(topology), config=config,
            placement={"source": (0,), "stage": (1,), "sink": (2,)})
        result = system.run_to_exhaustion()
        assert result.failure is None
        assert result.leaked_workers == ()
        assert result.leaked_actors == ()
        for process in system.processes:
            assert not process.is_alive()
            # join() after exit reaps the child, so no zombie remains.
            assert process.exitcode is not None

    def test_wall_clock_run_reaps_workers(self):
        topology = chain_topology()
        config = ProcShardConfig(shards=2, source_rate=300.0)
        result = run_sharded(topology, factories_for(topology),
                             duration=0.8, warmup=0.2, config=config)
        assert result.failure is None
        assert result.leaked_workers == ()
        assert result.dropped_messages == 0

    def test_crashed_worker_is_detected_and_reaped(self):
        topology = chain_topology()
        factories = {
            "source": lambda: GeneratorSource(seed=1),
            "stage": lambda: ExitingOperator(fuse=50),
            "sink": lambda: CollectingSink(capacity=100_000),
        }
        config = ProcShardConfig(shards=2, max_items=400,
                                 join_timeout=2.0, drain_timeout=8.0)
        system = ProcShardSystem.build(
            topology, factories, config=config,
            placement={"source": (0,), "stage": (1,), "sink": (0,)})
        result = system.run_to_exhaustion()
        # The run must fail loudly: the dead shard never reports, and
        # its channels EOF without the EOS marker.
        assert result.failure is not None
        assert result.crashed_channels or "no report" in result.failure
        # ... but cleanly: every worker is terminated and reaped.
        for process in system.processes:
            assert not process.is_alive()

    def test_double_start_rejected(self):
        topology = chain_topology()
        system = ProcShardSystem.build(topology, factories_for(topology),
                                       config=ProcShardConfig(
                                           shards=1, max_items=50))
        result = system.run_to_exhaustion()
        assert result.failure is None
        with pytest.raises(RuntimeError, match="already started"):
            system.start()


class TestPlacementValidation:
    def test_missing_operator_rejected(self):
        topology = chain_topology()
        with pytest.raises(TopologyError, match="placement"):
            ProcShardSystem.build(
                topology, factories_for(topology),
                config=ProcShardConfig(shards=2),
                placement={"source": (0,), "sink": (0,)})

    def test_wrong_replica_count_rejected(self):
        topology = chain_topology(replication=3)
        with pytest.raises(TopologyError, match="3 shards"):
            ProcShardSystem.build(
                topology, factories_for(topology),
                config=ProcShardConfig(shards=2),
                placement={"source": (0,), "stage": (0, 1),
                           "sink": (0,)})

    def test_out_of_range_shard_rejected(self):
        topology = chain_topology()
        with pytest.raises(TopologyError, match="outside"):
            ProcShardSystem.build(
                topology, factories_for(topology),
                config=ProcShardConfig(shards=2),
                placement={"source": (0,), "stage": (5,), "sink": (0,)})

    def test_config_validation(self):
        with pytest.raises(TopologyError, match="shards"):
            ProcShardConfig(shards=0)
        with pytest.raises(TopologyError, match="channel capacity"):
            ProcShardConfig(channel_capacity=0)
        with pytest.raises(TopologyError, match="channel batch"):
            ProcShardConfig(channel_batch_size=0)
        with pytest.raises(TopologyError, match="flush timeout"):
            ProcShardConfig(channel_flush_timeout=0.0)
