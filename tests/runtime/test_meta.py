"""Unit tests for the meta-operator actor (paper Algorithm 4)."""

import threading

import pytest

from repro.core.fusion import plan_fusion
from repro.operators.base import Operator, Record, WrappedItem
from repro.operators.basic import Filter, Identity
from repro.runtime.actors import Router, Target
from repro.runtime.mailbox import BoundedMailbox
from repro.runtime.meta import MetaOperatorActor
from tests.conftest import make_fig11, make_pipeline


class Tagger(Operator):
    """Appends its own name to the item's trail (records the path)."""

    def __init__(self, tag):
        self.tag = tag

    def operator_function(self, item):
        trail = list(item.get("trail", []))
        trail.append(self.tag)
        return [item.copy_with(trail=trail)]


def build_meta(topology, members, member_ops, external_targets, seed=1):
    plan = plan_fusion(topology, members, fused_name="F")
    router = Router("F")
    targets = {}
    for name in external_targets:
        target = Target(name, BoundedMailbox(8192, put_timeout=0.05))
        router.add(1.0 / len(external_targets), target)
        targets[name] = target
    actor = MetaOperatorActor(
        name="F", plan=plan, members=member_ops, router=router,
        mailbox=BoundedMailbox(64), stop_event=threading.Event(), seed=seed,
    )
    return actor, targets


class TestSequentialComposition:
    def test_pipeline_members_applied_in_order(self):
        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, targets = build_meta(
            topology, ["op1", "op2"],
            {"op1": Tagger("op1"), "op2": Tagger("op2")},
            ["op3"],
        )
        actor.handle((Record({}), "op0"))
        payload, origin = targets["op3"].mailbox.get()
        assert payload["trail"] == ["op1", "op2"]
        assert origin == "F"

    def test_counters_track_one_activation(self):
        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, _ = build_meta(
            topology, ["op1", "op2"],
            {"op1": Tagger("op1"), "op2": Tagger("op2")},
            ["op3"],
        )
        actor.handle((Record({}), "op0"))
        assert actor.counters.received == 1
        assert actor.counters.processed == 1
        assert actor.counters.emitted == 1

    def test_filter_inside_fusion_consumes_item(self):
        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, targets = build_meta(
            topology, ["op1", "op2"],
            {"op1": Filter(threshold=0.5), "op2": Tagger("op2")},
            ["op3"],
        )
        actor.handle((Record({"value": 0.1}), "op0"))
        assert len(targets["op3"].mailbox) == 0
        actor.handle((Record({"value": 0.9}), "op0"))
        assert len(targets["op3"].mailbox) == 1

    def test_missing_member_operator_rejected(self):
        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="missing member"):
            build_meta(topology, ["op1", "op2"], {"op1": Tagger("op1")},
                       ["op3"])


class TestBranchingSubgraph:
    def test_fig11_paths_exit_to_op6(self, fig11_table1):
        actor, targets = build_meta(
            fig11_table1, ["op3", "op4", "op5"],
            {"op3": Tagger("op3"), "op4": Tagger("op4"),
             "op5": Tagger("op5")},
            ["op6"], seed=3,
        )
        for _ in range(300):
            actor.handle((Record({}), "op1"))
        trails = []
        while len(targets["op6"].mailbox):
            payload, _ = targets["op6"].mailbox.get()
            trails.append(tuple(payload["trail"]))
        assert len(trails) == 300
        observed = set(trails)
        # All paths start at the front-end op3.
        assert all(t[0] == "op3" for t in observed)
        # The three possible routes through the sub-graph all occur.
        assert ("op3", "op5") in observed
        assert ("op3", "op4", "op5") in observed or \
               ("op3", "op4") in observed

    def test_path_probabilities_roughly_respected(self, fig11_table1):
        actor, targets = build_meta(
            fig11_table1, ["op3", "op4", "op5"],
            {"op3": Tagger("op3"), "op4": Tagger("op4"),
             "op5": Tagger("op5")},
            ["op6"], seed=7,
        )
        n = 2000
        for _ in range(n):
            actor.handle((Record({}), "op1"))
        via_op4 = 0
        while len(targets["op6"].mailbox):
            payload, _ = targets["op6"].mailbox.get()
            if "op4" in payload["trail"]:
                via_op4 += 1
        assert abs(via_op4 / n - 0.35) < 0.04


class TestPinnedDestinations:
    def test_member_can_pin_internal_destination(self):
        class PinToOp2(Operator):
            def operator_function(self, item):
                return [WrappedItem(item, destination="op2")]

        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, targets = build_meta(
            topology, ["op1", "op2"],
            {"op1": PinToOp2(), "op2": Tagger("op2")},
            ["op3"],
        )
        actor.handle((Record({}), "op0"))
        payload, _ = targets["op3"].mailbox.get()
        assert payload["trail"] == ["op2"]


class TestLifecycle:
    def test_member_hooks_called(self):
        events = []

        class Hooked(Identity):
            def __init__(self, tag):
                self.tag = tag

            def on_start(self):
                events.append(("start", self.tag))

            def on_stop(self):
                events.append(("stop", self.tag))

        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, _ = build_meta(
            topology, ["op1", "op2"],
            {"op1": Hooked("op1"), "op2": Hooked("op2")},
            ["op3"],
        )
        actor.on_start()
        actor.on_stop()
        assert ("start", "op1") in events and ("stop", "op2") in events


class TestSelectivityInsideFusion:
    def test_windowed_member_decimates(self):
        """Algorithm 4 with a selectivity > 1 member (paper Section 4.2).

        A fused count-window aggregate emits once per slide: the meta
        operator forwards only those activations downstream.
        """
        from repro.operators.aggregates import WindowedSum

        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, targets = build_meta(
            topology, ["op1", "op2"],
            {"op1": WindowedSum(length=10, slide=5, field="value"),
             "op2": Tagger("op2")},
            ["op3"],
        )
        for i in range(20):
            actor.handle((Record({"value": float(i)}), "op0"))
        # 20 inputs / slide 5 = 4 windows emitted through op2 to op3.
        assert len(targets["op3"].mailbox) == 4
        payload, _ = targets["op3"].mailbox.get()
        assert payload["trail"] == ["op2"]
        assert payload["aggregate"] == sum(range(5))  # first firing

    def test_flatmap_member_amplifies(self):
        from repro.operators.basic import FlatMap

        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, targets = build_meta(
            topology, ["op1", "op2"],
            {"op1": FlatMap(fanout=3), "op2": Tagger("op2")},
            ["op3"],
        )
        actor.handle((Record({"value": 1.0}), "op0"))
        # One input, three fragments, each through op2.
        assert len(targets["op3"].mailbox) == 3
