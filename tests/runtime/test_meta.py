"""Unit tests for the meta-operator actor (paper Algorithm 4)."""

import threading

import pytest

from repro.core.fusion import plan_fusion
from repro.operators.base import Operator, Record, WrappedItem
from repro.operators.basic import Filter, Identity
from repro.runtime.actors import Router, Target
from repro.runtime.mailbox import BoundedMailbox
from repro.runtime.meta import MetaOperatorActor
from repro.runtime.supervision import (
    ActorContext,
    ActorStopped,
    Directive,
    OperatorCrash,
    SupervisionPolicy,
    SupervisorStrategy,
)
from tests.conftest import make_fig11, make_pipeline


class Tagger(Operator):
    """Appends its own name to the item's trail (records the path)."""

    def __init__(self, tag):
        self.tag = tag

    def operator_function(self, item):
        trail = list(item.get("trail", []))
        trail.append(self.tag)
        return [item.copy_with(trail=trail)]


def build_meta(topology, members, member_ops, external_targets, seed=1,
               member_factories=None, strategy=None, context=None):
    plan = plan_fusion(topology, members, fused_name="F")
    router = Router("F")
    targets = {}
    for name in external_targets:
        target = Target(name, BoundedMailbox(8192, put_timeout=0.05))
        router.add(1.0 / len(external_targets), target)
        targets[name] = target
    actor = MetaOperatorActor(
        name="F", plan=plan, members=member_ops, router=router,
        mailbox=BoundedMailbox(64), stop_event=threading.Event(), seed=seed,
        member_factories=member_factories, strategy=strategy, context=context,
    )
    return actor, targets


class TestSequentialComposition:
    def test_pipeline_members_applied_in_order(self):
        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, targets = build_meta(
            topology, ["op1", "op2"],
            {"op1": Tagger("op1"), "op2": Tagger("op2")},
            ["op3"],
        )
        actor.handle((Record({}), "op0"))
        payload, origin = targets["op3"].mailbox.get()
        assert payload["trail"] == ["op1", "op2"]
        assert origin == "F"

    def test_counters_track_one_activation(self):
        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, _ = build_meta(
            topology, ["op1", "op2"],
            {"op1": Tagger("op1"), "op2": Tagger("op2")},
            ["op3"],
        )
        actor.handle((Record({}), "op0"))
        assert actor.counters.received == 1
        assert actor.counters.processed == 1
        assert actor.counters.emitted == 1

    def test_filter_inside_fusion_consumes_item(self):
        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, targets = build_meta(
            topology, ["op1", "op2"],
            {"op1": Filter(threshold=0.5), "op2": Tagger("op2")},
            ["op3"],
        )
        actor.handle((Record({"value": 0.1}), "op0"))
        assert len(targets["op3"].mailbox) == 0
        actor.handle((Record({"value": 0.9}), "op0"))
        assert len(targets["op3"].mailbox) == 1

    def test_missing_member_operator_rejected(self):
        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="missing member"):
            build_meta(topology, ["op1", "op2"], {"op1": Tagger("op1")},
                       ["op3"])


class TestBranchingSubgraph:
    def test_fig11_paths_exit_to_op6(self, fig11_table1):
        actor, targets = build_meta(
            fig11_table1, ["op3", "op4", "op5"],
            {"op3": Tagger("op3"), "op4": Tagger("op4"),
             "op5": Tagger("op5")},
            ["op6"], seed=3,
        )
        for _ in range(300):
            actor.handle((Record({}), "op1"))
        trails = []
        while len(targets["op6"].mailbox):
            payload, _ = targets["op6"].mailbox.get()
            trails.append(tuple(payload["trail"]))
        assert len(trails) == 300
        observed = set(trails)
        # All paths start at the front-end op3.
        assert all(t[0] == "op3" for t in observed)
        # The three possible routes through the sub-graph all occur.
        assert ("op3", "op5") in observed
        assert ("op3", "op4", "op5") in observed or \
               ("op3", "op4") in observed

    def test_path_probabilities_roughly_respected(self, fig11_table1):
        actor, targets = build_meta(
            fig11_table1, ["op3", "op4", "op5"],
            {"op3": Tagger("op3"), "op4": Tagger("op4"),
             "op5": Tagger("op5")},
            ["op6"], seed=7,
        )
        n = 2000
        for _ in range(n):
            actor.handle((Record({}), "op1"))
        via_op4 = 0
        while len(targets["op6"].mailbox):
            payload, _ = targets["op6"].mailbox.get()
            if "op4" in payload["trail"]:
                via_op4 += 1
        assert abs(via_op4 / n - 0.35) < 0.04


class TestPinnedDestinations:
    def test_member_can_pin_internal_destination(self):
        class PinToOp2(Operator):
            def operator_function(self, item):
                return [WrappedItem(item, destination="op2")]

        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, targets = build_meta(
            topology, ["op1", "op2"],
            {"op1": PinToOp2(), "op2": Tagger("op2")},
            ["op3"],
        )
        actor.handle((Record({}), "op0"))
        payload, _ = targets["op3"].mailbox.get()
        assert payload["trail"] == ["op2"]


class TestLifecycle:
    def test_member_hooks_called(self):
        events = []

        class Hooked(Identity):
            def __init__(self, tag):
                self.tag = tag

            def on_start(self):
                events.append(("start", self.tag))

            def on_stop(self):
                events.append(("stop", self.tag))

        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, _ = build_meta(
            topology, ["op1", "op2"],
            {"op1": Hooked("op1"), "op2": Hooked("op2")},
            ["op3"],
        )
        actor.on_start()
        actor.on_stop()
        assert ("start", "op1") in events and ("stop", "op2") in events


class Crasher(Operator):
    """Tagger whose configured invocation indices raise OperatorCrash."""

    def __init__(self, tag, crash_at=()):
        self.tag = tag
        self.calls = 0
        self.crash_at = set(crash_at)

    def operator_function(self, item):
        index = self.calls
        self.calls += 1
        if index in self.crash_at:
            raise OperatorCrash(f"injected crash at {self.tag} call {index}")
        trail = list(item.get("trail", []))
        trail.append(self.tag)
        return [item.copy_with(trail=trail)]


def fast_restart(**overrides):
    policy = SupervisionPolicy(backoff_base=0.0, backoff_max=0.0, **overrides)
    return SupervisorStrategy(default=policy)


class TestMemberSupervision:
    """A fused member's failures follow its standalone supervision
    policy without corrupting the routing of the other members."""

    def build(self, crash_at, strategy=None, factories=None, context=None):
        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        context = context or ActorContext()
        actor, targets = build_meta(
            topology, ["op1", "op2"],
            {"op1": Tagger("op1"), "op2": Crasher("op2", crash_at)},
            ["op3"],
            member_factories=(factories if factories is not None
                              else {"op2": lambda: Crasher("op2")}),
            strategy=strategy or fast_restart(),
            context=context,
        )
        return actor, targets, context

    def test_member_restart_preserves_downstream_routing(self):
        actor, targets, context = self.build(crash_at=[1])
        for _ in range(4):
            actor.handle((Record({}), "op0"))
        # Item 1 crashed op2; items 0, 2 and 3 flowed through.
        assert len(targets["op3"].mailbox) == 3
        while len(targets["op3"].mailbox):
            payload, origin = targets["op3"].mailbox.get()
            assert payload["trail"] == ["op1", "op2"]
            assert origin == "F"
        events = context.supervision.events
        assert [e.directive for e in events] == ["restart"]
        assert events[0].vertex == "op2"
        assert actor.counters.restarts == 1
        assert actor.counters.failed == 1
        assert context.dead_letters.counts() == {"op2": 1}

    def test_restart_budget_exhaustion_stops_member(self):
        strategy = fast_restart(max_restarts=1, window=60.0)
        actor, targets, context = self.build(crash_at=[1, 2],
                                             strategy=strategy,
                                             factories={"op2": lambda:
                                                        Crasher("op2", [0])})
        for _ in range(5):
            actor.handle((Record({}), "op0"))
        directives = [e.directive for e in context.supervision.events]
        assert directives == ["restart", "stop"]
        # op1 still serves; items headed to the stopped op2 dead-letter.
        dead = context.dead_letters.counts()
        assert dead["op2"] >= 3  # the two crashed items + later arrivals
        assert len(targets["op3"].mailbox) == 1  # only item 0 got through

    def test_stopped_member_does_not_corrupt_sibling_routing(self, fig11_table1):
        context = ActorContext()
        strategy = SupervisorStrategy(default=SupervisionPolicy(
            on_crash=Directive.STOP))
        actor, targets = build_meta(
            fig11_table1, ["op3", "op4", "op5"],
            {"op3": Tagger("op3"), "op4": Crasher("op4", [0]),
             "op5": Tagger("op5")},
            ["op6"], seed=3, strategy=strategy, context=context,
        )
        n = 400
        for _ in range(n):
            actor.handle((Record({}), "op1"))
        assert context.supervision.count("stop") == 1
        delivered = []
        while len(targets["op6"].mailbox):
            payload, _ = targets["op6"].mailbox.get()
            delivered.append(tuple(payload["trail"]))
        # The op3 -> op5 path keeps flowing after op4 stopped...
        assert ("op3", "op5") in set(delivered)
        # ...and nothing that would have passed through op4 leaks out.
        assert all("op4" not in trail for trail in delivered)
        assert context.dead_letters.counts()["op4"] > 0

    def test_front_end_stop_diverts_meta_mailbox(self):
        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        context = ActorContext()
        strategy = SupervisorStrategy(default=SupervisionPolicy(
            on_crash=Directive.STOP))
        actor, _ = build_meta(
            topology, ["op1", "op2"],
            {"op1": Crasher("op1", [0]), "op2": Tagger("op2")},
            ["op3"], strategy=strategy, context=context,
        )
        with pytest.raises(ActorStopped):
            actor.handle((Record({}), "op0"))
        assert actor.mailbox.diverted
        # Later deliveries land in dead letters instead of blocking.
        actor.mailbox.put((Record({}), "op0"))
        assert context.dead_letters.counts()["op1"] >= 2

    def test_escalate_reaches_the_system(self):
        escalations = []
        context = ActorContext(escalate=lambda vertex, reason:
                               escalations.append((vertex, reason)))
        strategy = SupervisorStrategy(default=SupervisionPolicy(
            on_crash=Directive.ESCALATE))
        actor, _, _ = self.build(crash_at=[0], strategy=strategy,
                                 context=context)
        with pytest.raises(ActorStopped):
            actor.handle((Record({}), "op0"))
        assert escalations and escalations[0][0] == "op2"

    def test_member_without_factory_degrades_restart_to_resume(self):
        actor, targets, context = self.build(crash_at=[0], factories={})
        actor.handle((Record({}), "op0"))
        actor.handle((Record({}), "op0"))
        assert [e.directive for e in context.supervision.events] == ["resume"]
        assert len(targets["op3"].mailbox) == 1


class TestSelectivityInsideFusion:
    def test_windowed_member_decimates(self):
        """Algorithm 4 with a selectivity > 1 member (paper Section 4.2).

        A fused count-window aggregate emits once per slide: the meta
        operator forwards only those activations downstream.
        """
        from repro.operators.aggregates import WindowedSum

        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, targets = build_meta(
            topology, ["op1", "op2"],
            {"op1": WindowedSum(length=10, slide=5, field="value"),
             "op2": Tagger("op2")},
            ["op3"],
        )
        for i in range(20):
            actor.handle((Record({"value": float(i)}), "op0"))
        # 20 inputs / slide 5 = 4 windows emitted through op2 to op3.
        assert len(targets["op3"].mailbox) == 4
        payload, _ = targets["op3"].mailbox.get()
        assert payload["trail"] == ["op2"]
        assert payload["aggregate"] == sum(range(5))  # first firing

    def test_flatmap_member_amplifies(self):
        from repro.operators.basic import FlatMap

        topology = make_pipeline(1.0, 1.0, 1.0, 1.0)
        actor, targets = build_meta(
            topology, ["op1", "op2"],
            {"op1": FlatMap(fanout=3), "op2": Tagger("op2")},
            ["op3"],
        )
        actor.handle((Record({"value": 1.0}), "op0"))
        # One input, three fragments, each through op2.
        assert len(targets["op3"].mailbox) == 3
