"""Batched mailboxes: envelope, weighted accounting and edge cases.

The contract under test: batching changes *when* tuples cross an edge
(packed into :class:`repro.runtime.mailbox.Batch` envelopes), never
*whether* or *in what order* — and the mailbox counters keep measuring
tuples, not messages, so throughput and loss accounting stay exact.
"""

import threading
import time

import pytest

from repro.core.graph import BatchConfig, Edge, OperatorSpec, Topology, TopologyError
from repro.runtime.actors import BatchingTarget
from repro.runtime.mailbox import Batch, BoundedMailbox
from repro.runtime.system import ActorSystem, RuntimeConfig
from repro.testing.differential import run_capture, topology_factories
from repro.topology.xmlio import parse_topology, topology_to_xml


class TestBatchEnvelope:
    def test_len_counts_tuples(self):
        assert len(Batch((1, 2, 3))) == 3

    def test_repr(self):
        assert repr(Batch((1, 2))) == "Batch(2 items)"


class TestBatchConfig:
    def test_defaults(self):
        config = BatchConfig()
        assert config.size == 1
        assert config.flush_timeout > 0

    def test_size_must_be_positive(self):
        with pytest.raises(TopologyError):
            BatchConfig(size=0)

    def test_flush_timeout_must_be_positive(self):
        with pytest.raises(TopologyError):
            BatchConfig(size=2, flush_timeout=0.0)


class TestBatchConfigXml:
    def test_edge_batch_round_trips(self):
        topology = Topology(
            [OperatorSpec(name="a", service_time=0.001),
             OperatorSpec(name="b", service_time=0.001)],
            [Edge("a", "b", batch=BatchConfig(size=8, flush_timeout=0.25))],
        )
        parsed = parse_topology(topology_to_xml(topology))
        edge = parsed.edges[0]
        assert edge.batch is not None
        assert edge.batch.size == 8
        assert edge.batch.flush_timeout == pytest.approx(0.25)

    def test_unbatched_edge_stays_unbatched(self):
        topology = Topology(
            [OperatorSpec(name="a", service_time=0.001),
             OperatorSpec(name="b", service_time=0.001)],
            [Edge("a", "b")],
        )
        assert parse_topology(topology_to_xml(topology)).edges[0].batch is None


class TestWeightedMailboxCounters:
    def test_offered_advances_by_tuple_count(self):
        mailbox = BoundedMailbox(capacity=4)
        mailbox.put(Batch((1, 2, 3)), weight=3)
        mailbox.put("single")
        assert mailbox.offered == 4
        assert mailbox.enqueued == 2  # messages, not tuples

    def test_timed_out_batch_counts_every_tuple_dropped(self):
        mailbox = BoundedMailbox(capacity=1, put_timeout=0.0)
        assert mailbox.put("filler")
        assert mailbox.put(Batch((1, 2, 3, 4, 5)), weight=5) is False
        assert mailbox.dropped == 5

    def test_shed_window_counts_every_tuple(self):
        mailbox = BoundedMailbox(capacity=4)
        mailbox.set_drop_windows([(0, 1)])
        assert mailbox.put(Batch((1, 2, 3)), weight=3)  # shed, not enqueued
        assert mailbox.shed == 3
        assert len(mailbox) == 0

    def test_weight_must_be_positive(self):
        mailbox = BoundedMailbox(capacity=4)
        with pytest.raises(ValueError):
            mailbox.put("x", weight=0)


class TestBatchingTarget:
    def _target(self, capacity=8, size=3, flush_timeout=10.0, on_drop=None,
                put_timeout=5.0):
        mailbox = BoundedMailbox(capacity=capacity, put_timeout=put_timeout)
        target = BatchingTarget("t", mailbox, size=size,
                                flush_timeout=flush_timeout, on_drop=on_drop)
        return mailbox, target

    def test_buffers_until_size_then_flushes_one_message(self):
        mailbox, target = self._target(size=3)
        target.deliver("a", "src")
        target.deliver("b", "src")
        assert len(mailbox) == 0 and target.pending == 2
        target.deliver("c", "src")
        assert target.pending == 0
        message, origin = mailbox.get(timeout=0.1)
        assert isinstance(message, Batch)
        assert message.items == ("a", "b", "c")
        assert origin == "src"

    def test_overdue_partial_batch_flushes(self):
        mailbox, target = self._target(size=100, flush_timeout=0.01)
        target.deliver("a", "src")
        assert not target.overdue()
        time.sleep(0.02)
        assert target.overdue()
        target.flush()
        message, _ = mailbox.get(timeout=0.1)
        assert message.items == ("a",)
        assert target.seconds_until_overdue() is None

    def test_dropped_batch_reports_items(self):
        dropped = []
        mailbox, target = self._target(capacity=1, size=2, put_timeout=0.0,
                                       on_drop=lambda items: dropped.extend(items))
        mailbox.put("filler")
        target.deliver("a", "src")
        target.deliver("b", "src")  # flush fails: mailbox full, timeout 0
        assert dropped == ["a", "b"]
        assert mailbox.dropped == 2

    def test_weighted_put_from_flush(self):
        mailbox, target = self._target(size=4)
        for item in "abcd":
            target.deliver(item, "src")
        assert mailbox.offered == 4
        assert mailbox.enqueued == 1


def _chain_topology(items=10_000):
    specs = [
        OperatorSpec(name="source", service_time=0.0002,
                     operator_class=(
                         "repro.operators.source_sink.GeneratorSource"),
                     operator_args={"seed": 11}),
        OperatorSpec(name="ident", service_time=0.0002,
                     operator_class="repro.operators.basic.Identity"),
        OperatorSpec(name="sink", service_time=0.0001,
                     operator_class=(
                         "repro.operators.source_sink.CollectingSink"),
                     operator_args={"capacity": items}),
    ]
    return Topology(specs, [Edge("source", "ident"), Edge("ident", "sink")],
                    name="batch-chain")


def _sink_counts(outputs):
    return {name: len(items) for name, items in outputs.items()}


class TestRuntimeBatchingEdgeCases:
    def test_final_partial_batch_flushes_on_source_exhaustion(self):
        # 10 items into batches of 8 leaves a 2-item remainder; with a
        # 30s flush deadline only the shutdown force-flush can deliver
        # it, so a full sink proves the exhaustion path flushes.
        topology = _chain_topology()
        outputs = run_capture(
            topology,
            RuntimeConfig(mailbox_capacity=16, max_items=10, seed=1,
                          watchdog=False, batch_size=8,
                          batch_flush_timeout=30.0),
        )
        assert _sink_counts(outputs) == {"sink": 10}

    def test_flush_timeout_drains_idle_paced_source(self):
        # Inter-arrival (20ms at 50 items/s) far exceeds the 5ms flush
        # deadline, so no batch of 16 ever fills: every tuple must reach
        # the sink through timeout flushes alone.
        topology = _chain_topology()
        outputs = run_capture(
            topology,
            RuntimeConfig(mailbox_capacity=16, max_items=12, seed=1,
                          watchdog=False, source_rate=50.0, batch_size=16,
                          batch_flush_timeout=0.005),
        )
        assert _sink_counts(outputs) == {"sink": 12}

    def test_batch_size_one_installs_no_batching_targets(self):
        topology = _chain_topology()
        system = ActorSystem.build(
            topology, topology_factories(topology),
            config=RuntimeConfig(mailbox_capacity=16, max_items=1,
                                 watchdog=False, batch_size=1),
        )
        try:
            assert all(not actor.batch_targets for actor in system.actors)
        finally:
            system.stop()

    def test_per_edge_batch_config_overrides_runtime_default(self):
        topology = _chain_topology()
        batched_edge = Edge("source", "ident",
                            batch=BatchConfig(size=4, flush_timeout=0.05))
        topology = Topology(list(topology.operators),
                            [batched_edge, Edge("ident", "sink")],
                            name=topology.name)
        system = ActorSystem.build(
            topology, topology_factories(topology),
            config=RuntimeConfig(mailbox_capacity=16, max_items=1,
                                 watchdog=False, batch_size=1),
        )
        try:
            source_targets = system.source_actor.batch_targets
            assert [t.size for t in source_targets] == [4]
            downstream = [actor for actor in system.actors
                          if actor.vertex == "ident"]
            assert all(not actor.batch_targets for actor in downstream)
        finally:
            system.stop()
