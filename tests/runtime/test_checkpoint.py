"""Aligned-barrier checkpointing and rollback recovery.

Unit coverage of :mod:`repro.runtime.checkpoint` (store, aligner,
control envelopes) plus end-to-end drives of small checkpointed
systems: barriers flow and epochs complete, a crashed run rolled back
by :func:`run_recoverable` reproduces the fault-free output bit-for-
bit, restarts exhausting their budget follow ``on_exhausted``, and a
crash *inside* ``restore_state`` falls back to an older epoch (or a
cold start) instead of looping forever.
"""

import threading

import pytest

from repro.core.graph import CheckpointConfig, Edge, OperatorSpec, Topology, TopologyError
from repro.faults.plan import CrashFault, FaultPlan
from repro.operators.aggregates import WindowedSum
from repro.operators.base import Operator
from repro.operators.source_sink import CollectingSink, GeneratorSource, IterableSource
from repro.runtime.checkpoint import (
    Barrier,
    BarrierAligner,
    CheckpointError,
    CheckpointSession,
    CheckpointStore,
    run_recoverable,
)
from repro.runtime.mailbox import BoundedMailbox
from repro.runtime.supervision import (
    DeadLetterSink,
    Directive,
    SupervisionPolicy,
    SupervisorStrategy,
)
from repro.runtime.system import ActorSystem, RuntimeConfig
from repro.testing.differential import canonical


def chain(*, checkpoint=None, name="ckpt-chain"):
    specs = [
        OperatorSpec("source", 0.0001,
                     operator_class="repro.operators.source_sink."
                                    "GeneratorSource",
                     operator_args={"seed": 7}),
        OperatorSpec("win", 0.0001, output_selectivity=0.25,
                     operator_class="repro.operators.aggregates.WindowedSum",
                     operator_args={"length": 4, "slide": 4}),
        OperatorSpec("sink", 0.0001,
                     operator_class="repro.operators.source_sink."
                                    "CollectingSink",
                     operator_args={"capacity": 100_000}),
    ]
    edges = [Edge("source", "win"), Edge("win", "sink")]
    return Topology(specs, edges, name=name, checkpoint=checkpoint)


def chain_factories():
    return {
        "source": lambda: GeneratorSource(seed=7),
        "win": lambda: WindowedSum(length=4, slide=4),
        "sink": lambda: CollectingSink(capacity=100_000),
    }


def run_plain(topology, runtime):
    system = ActorSystem.build(topology, chain_factories(), config=runtime)
    system.start()
    try:
        assert system.source_actor is not None
        system.source_actor.join(timeout=20.0)
        previous = -1
        while True:
            current = system._progress()
            if current == previous:
                break
            previous = current
            threading.Event().wait(0.2)
    finally:
        system.stop()
    return system


def sink_items(system):
    for actor in system.actors:
        operator = getattr(actor, "operator", None)
        while hasattr(operator, "inner"):
            operator = operator.inner
        if isinstance(operator, CollectingSink):
            return [canonical(item) for item in operator.items]
    raise AssertionError("no collecting sink found")


class TestCheckpointConfig:
    def test_defaults(self):
        config = CheckpointConfig()
        assert config.interval_items == 100
        assert config.retained == 2
        assert config.snapshot_overhead == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"interval_items": 0},
        {"retained": 0},
        {"snapshot_overhead": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(TopologyError):
            CheckpointConfig(**kwargs)

    def test_topology_carries_and_derives(self):
        config = CheckpointConfig(interval_items=10)
        topology = chain(checkpoint=config)
        assert topology.checkpoint is config
        assert topology.with_checkpoint(None).checkpoint is None
        replicated = topology.with_replications({"win": 1})
        assert replicated.checkpoint is config


class TestCheckpointStore:
    def test_epoch_completes_when_all_actors_recorded(self):
        store = CheckpointStore()
        store.set_expected(["a", "b"])
        store.record(1, "a", {"x": 1}, offset=100)
        assert store.latest_complete() is None
        store.record(1, "b", {"y": 2})
        snap = store.latest_complete()
        assert snap is not None
        assert snap.epoch == 1
        assert snap.states == {"a": {"x": 1}, "b": {"y": 2}}
        assert snap.source_offset == 100
        assert store.completed == 1 and store.recorded == 2

    def test_retention_prunes_oldest(self):
        store = CheckpointStore(retained=2)
        store.set_expected(["a"])
        for epoch in (1, 2, 3):
            store.record(epoch, "a", epoch)
        assert store.complete_epochs() == (2, 3)
        assert store.latest_complete().epoch == 3

    def test_discard_above_drops_partials_and_completes(self):
        store = CheckpointStore(retained=5)
        store.set_expected(["a", "b"])
        store.record(1, "a", 1)
        store.record(1, "b", 1)
        store.record(2, "a", 2)
        store.record(2, "b", 2)
        store.record(3, "a", 3)  # partial
        store.discard_above(1)
        assert store.complete_epochs() == (1,)
        # the discarded partial is really gone: one record does not
        # complete the epoch, a full replayed set does
        store.record(3, "b", 3)
        assert store.complete_epochs() == (1,)
        store.record(3, "a", 3)
        assert store.complete_epochs() == (1, 3)

    def test_discard_epoch_falls_back_to_older(self):
        store = CheckpointStore(retained=5)
        store.set_expected(["a"])
        store.record(1, "a", 1)
        store.record(2, "a", 2)
        store.discard_epoch(2)
        assert store.latest_complete().epoch == 1

    def test_retained_validation(self):
        with pytest.raises(CheckpointError):
            CheckpointStore(retained=0)


class TestBarrierAligner:
    def test_single_channel_never_defers(self):
        aligner = BarrierAligner(["up"])
        assert aligner.observe(1, "up") is True
        assert not aligner.aligning
        assert not aligner.deferring("up")

    def test_unknown_origin_passes_through(self):
        aligner = BarrierAligner(["a", "b"])
        assert aligner.observe(1, "elsewhere") is True

    def test_two_channels_align_and_defer(self):
        aligner = BarrierAligner(["a", "b"])
        assert aligner.observe(1, "a") is False
        assert aligner.aligning
        assert aligner.deferring("a") and not aligner.deferring("b")
        aligner.defer(("post-barrier", "a"))
        assert aligner.observe(1, "b") is True
        assert not aligner.aligning
        assert aligner.drain() == [("post-barrier", "a")]
        assert aligner.deferred_total == 1
        assert aligner.drain() == []


class TestControlEnvelopes:
    def test_control_put_skips_offered_index(self):
        mailbox = BoundedMailbox(capacity=4)
        mailbox.put(("data", "src"))
        offered = mailbox.offered
        mailbox.put((Barrier(1), "src"), control=True)
        assert mailbox.offered == offered  # barriers are not arrivals
        assert len(mailbox) == 2

    def test_control_put_bypasses_drop_windows(self):
        mailbox = BoundedMailbox(capacity=8)
        mailbox.set_drop_windows([(0, 1000)])
        mailbox.put(("data", "src"))
        assert len(mailbox) == 0 and mailbox.shed == 1
        mailbox.put((Barrier(1), "src"), control=True)
        assert len(mailbox) == 1  # barriers are never shed


class TestBarrierFlow:
    def test_epochs_complete_and_output_matches_unchkpointed(self):
        runtime = RuntimeConfig(max_items=120, seed=3, watchdog=False)
        plain = run_plain(chain(), runtime)
        session = CheckpointSession(CheckpointConfig(interval_items=25))
        checked = ActorSystem.build(
            chain(), chain_factories(), config=runtime, checkpoint=session)
        checked.start()
        try:
            checked.source_actor.join(timeout=20.0)
            previous = -1
            while True:
                current = checked._progress()
                if current == previous:
                    break
                previous = current
                threading.Event().wait(0.2)
        finally:
            checked.stop()
        # 120 items / interval 25 -> barriers at 25, 50, 75, 100
        assert session.store.completed >= 3
        snap = session.store.latest_complete()
        assert set(snap.states) == {"source", "win", "sink"}
        assert snap.source_offset is not None
        assert sum(actor.snapshots_taken for actor in checked.actors) > 0
        # checkpointing is transparent: same bits out
        assert sink_items(checked) == sink_items(plain)

    def test_topology_checkpoint_enables_by_default(self):
        runtime = RuntimeConfig(max_items=60, seed=3, watchdog=False)
        topology = chain(checkpoint=CheckpointConfig(interval_items=20))
        system = run_plain(topology, runtime)
        assert system.checkpoint_session is not None
        assert system.checkpoint_session.store.completed >= 1


class TestRecovery:
    def test_crash_recover_replay_is_bit_equal(self):
        runtime = RuntimeConfig(max_items=120, seed=3, watchdog=False)
        plain = run_plain(chain(), runtime)
        plan = FaultPlan(seed=3, crashes=(CrashFault("sink", 12),))
        faulty = RuntimeConfig(max_items=120, seed=3, watchdog=False,
                               fault_plan=plan)
        result = run_recoverable(
            chain(), chain_factories(), runtime=faulty,
            checkpoint=CheckpointConfig(interval_items=25))
        assert result.outcome == "completed", result.recoveries
        assert result.attempts == 1
        assert result.recoveries[0].vertex == "sink"
        assert sink_items(result.system) == sink_items(plain)

    def test_crash_before_first_epoch_cold_restarts(self):
        runtime = RuntimeConfig(max_items=80, seed=3, watchdog=False)
        plain = run_plain(chain(), runtime)
        plan = FaultPlan(seed=3, crashes=(CrashFault("sink", 0),))
        faulty = RuntimeConfig(max_items=80, seed=3, watchdog=False,
                               fault_plan=plan)
        result = run_recoverable(
            chain(), chain_factories(), runtime=faulty,
            checkpoint=CheckpointConfig(interval_items=1000))
        assert result.outcome == "completed"
        assert result.attempts == 1
        assert result.recoveries[0].restored_epoch is None
        assert sink_items(result.system) == sink_items(plain)

    def test_requires_a_checkpoint_config(self):
        with pytest.raises(CheckpointError):
            run_recoverable(chain(), chain_factories())

    def test_fired_crashes_do_not_refire_on_replay(self):
        # Two crashes -> exactly two rollbacks: the persistent item
        # clocks must keep injected faults from re-firing on replay.
        plan = FaultPlan(seed=3, crashes=(
            CrashFault("sink", 5), CrashFault("sink", 20)))
        faulty = RuntimeConfig(max_items=120, seed=3, watchdog=False,
                               fault_plan=plan)
        result = run_recoverable(
            chain(), chain_factories(), runtime=faulty,
            checkpoint=CheckpointConfig(interval_items=25))
        assert result.outcome == "completed"
        assert result.attempts == 2


class _BrokenRestore(WindowedSum):
    """Snapshots fine; every restore attempt crashes."""

    def restore_state(self, snapshot):
        raise RuntimeError("restore exploded")


class TestRestoreCrash:
    def test_restore_crash_falls_back_then_cold_starts(self):
        factories = chain_factories()
        factories["win"] = lambda: _BrokenRestore(length=4, slide=4)
        plan = FaultPlan(seed=3, crashes=(CrashFault("sink", 12),))
        faulty = RuntimeConfig(max_items=120, seed=3, watchdog=False,
                               fault_plan=plan)
        result = run_recoverable(
            chain(), factories, runtime=faulty,
            checkpoint=CheckpointConfig(interval_items=25, retained=2))
        # crash -> restore fails on the latest epoch, then on the older
        # retained one, then the cold start replays to completion.
        assert result.outcome == "completed"
        reasons = [event.reason for event in result.recoveries]
        assert any(reason.startswith("restore-failed") for reason in reasons)
        assert result.recoveries[-1].restored_epoch is None

    def test_persistently_failing_restore_exhausts_budget(self):
        factories = chain_factories()
        factories["win"] = lambda: _BrokenRestore(length=4, slide=4)
        plan = FaultPlan(seed=3, crashes=(CrashFault("sink", 12),))
        faulty = RuntimeConfig(max_items=120, seed=3, watchdog=False,
                               fault_plan=plan)
        with pytest.raises(CheckpointError, match="budget exhausted"):
            run_recoverable(
                chain(), factories, runtime=faulty, max_recoveries=1,
                checkpoint=CheckpointConfig(interval_items=25, retained=3))


class TestExhaustionDirective:
    def test_exhausted_directive_degrades_restart_to_stop(self):
        policy = SupervisionPolicy(on_exhausted=Directive.RESTART)
        assert policy.exhausted_directive() is Directive.STOP
        policy = SupervisionPolicy(on_exhausted=Directive.ESCALATE)
        assert policy.exhausted_directive() is Directive.ESCALATE

    def test_budget_exhaustion_escalates_when_configured(self):
        # max_restarts=1 with three injected crashes: the second restart
        # attempt exhausts the budget and on_exhausted=ESCALATE aborts
        # the whole system instead of quietly stopping the vertex.
        plan = FaultPlan(seed=3, crashes=tuple(
            CrashFault("win", index) for index in (2, 4, 6)))
        policy = SupervisionPolicy(max_restarts=1, window=60.0,
                                   backoff_base=0.0, backoff_max=0.0,
                                   on_exhausted=Directive.ESCALATE)
        runtime = RuntimeConfig(
            max_items=200, seed=3, watchdog=False, fault_plan=plan,
            supervisor=SupervisorStrategy(default=policy))
        system = ActorSystem.build(chain(), chain_factories(),
                                   config=runtime)
        system.start()
        try:
            assert system.failure.wait(timeout=20.0)
        finally:
            system.stop()
        assert "win" in (system.failure_reason or "")
        assert system.context.supervision.count("escalate") >= 1

    def test_budget_exhaustion_stops_by_default(self):
        plan = FaultPlan(seed=3, crashes=tuple(
            CrashFault("win", index) for index in (2, 4, 6)))
        policy = SupervisionPolicy(max_restarts=1, window=60.0,
                                   backoff_base=0.0, backoff_max=0.0)
        runtime = RuntimeConfig(
            max_items=60, seed=3, watchdog=False, fault_plan=plan,
            supervisor=SupervisorStrategy(default=policy))
        system = run_plain(chain(), runtime)
        assert not system.failure.is_set()
        assert system.context.supervision.count("stop") >= 1


class TestDeadLetterBound:
    def test_evicted_counter_past_cap(self):
        sink = DeadLetterSink(retain=2)
        for index in range(5):
            sink.record("v", {"i": index})
        assert sink.total == 5
        assert len(sink.letters) == 2
        assert sink.evicted == 3

    def test_zero_retention(self):
        sink = DeadLetterSink(retain=0)
        sink.record("v", {"i": 1})
        assert sink.total == 1 and sink.letters == () and sink.evicted == 1

    def test_negative_retention_rejected(self):
        with pytest.raises(ValueError):
            DeadLetterSink(retain=-1)

    def test_runtime_config_cap_reaches_context(self):
        runtime = RuntimeConfig(dead_letter_retain=7)
        system = ActorSystem.build(chain(), chain_factories(),
                                   config=runtime)
        try:
            assert system.context.dead_letters.retain == 7
        finally:
            system.stop()


class TestSourceReplay:
    def test_iterable_source_snapshot_roundtrip(self):
        source = IterableSource([{"v": i} for i in range(5)])
        source.operator_function(None)
        source.operator_function(None)
        snap = source.snapshot_state()
        source.operator_function(None)
        source.restore_state(snap)
        assert source.operator_function(None) == [{"v": 2}]

    def test_generator_source_replays_after_restore(self):
        source = GeneratorSource(seed=11)
        first = [source.operator_function(None)[0] for _ in range(3)]
        snap = source.snapshot_state()
        [source.operator_function(None) for _ in range(3)]
        source.restore_state(snap)
        replay = [source.operator_function(None)[0] for _ in range(3)]
        strip = lambda item: {k: v for k, v in item.items() if k != "_born"}
        assert [strip(i) for i in first] != [strip(i) for i in replay]
        # restoring to the *same* point replays identically
        source.restore_state(snap)
        again = [source.operator_function(None)[0] for _ in range(3)]
        assert [strip(i) for i in replay] == [strip(i) for i in again]


class TestOperatorHooks:
    def _drain(self, operator, values):
        outputs = []
        for value in values:
            outputs.extend(operator.operator_function({"value": value}))
        return [canonical(item) for item in outputs]

    def test_default_hooks_roundtrip_behaviour(self):
        # Snapshot mid-window, keep feeding, restore, feed the same
        # tail again: the rolled-back operator must emit the same bits.
        win = WindowedSum(length=4, slide=4)
        self._drain(win, [1.0, 2.0])
        snap = win.snapshot_state()
        first = self._drain(win, [3.0, 4.0, 5.0])
        win.restore_state(snap)
        replay = self._drain(win, [3.0, 4.0, 5.0])
        assert first == replay and first  # the window really fired

    def test_snapshot_is_deep(self):
        # Mutating the live operator after the snapshot must not bleed
        # into a fresh instance restored from that snapshot: the
        # restored copy behaves exactly like an operator that stopped
        # at snapshot time.
        win = WindowedSum(length=4, slide=4)
        self._drain(win, [1.0, 2.0])
        snap = win.snapshot_state()
        self._drain(win, [100.0, 200.0, 300.0])
        fresh = WindowedSum(length=4, slide=4)
        fresh.restore_state(snap)
        original = WindowedSum(length=4, slide=4)
        self._drain(original, [1.0, 2.0])
        assert self._drain(fresh, [3.0, 4.0, 5.0]) == \
            self._drain(original, [3.0, 4.0, 5.0])
