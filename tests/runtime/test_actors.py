"""Unit tests for actors, exercised synchronously via handle()."""

import threading

import pytest

from repro.operators.base import Record, WrappedItem
from repro.operators.basic import Filter, FlatMap, Identity
from repro.operators.source_sink import CountingSink
from repro.runtime.actors import (
    CollectorActor,
    EmitterActor,
    OperatorActor,
    Router,
    Target,
)
from repro.runtime.mailbox import BoundedMailbox
from repro.runtime.synthetic import PaddedOperator


def make_target(name, capacity=16):
    return Target(name, BoundedMailbox(capacity, put_timeout=0.2))


def stop_event():
    return threading.Event()


class TestRouter:
    def test_single_entry_always_resolved(self):
        router = Router("src")
        target = make_target("next")
        router.add(1.0, target)
        assert router.resolve("item") is target

    def test_probabilistic_split_roughly_matches(self):
        router = Router("src", seed=11)
        a, b = make_target("a"), make_target("b")
        router.add(0.2, a)
        router.add(0.8, b)
        hits = sum(1 for _ in range(5000) if router.resolve("x") is a)
        assert abs(hits / 5000 - 0.2) < 0.03

    def test_pinned_destination_bypasses_probabilities(self):
        router = Router("src", seed=1)
        a, b = make_target("a"), make_target("b")
        router.add(0.999, a)
        router.add(0.001, b)
        wrapped = WrappedItem("payload", destination="b")
        assert all(router.resolve(wrapped) is b for _ in range(20))

    def test_unknown_pinned_destination_raises(self):
        router = Router("src")
        router.add(1.0, make_target("a"))
        with pytest.raises(KeyError, match="unknown destination"):
            router.resolve(WrappedItem("x", destination="ghost"))

    def test_no_entries_resolves_none(self):
        assert Router("sink").resolve("item") is None

    def test_counts_recorded(self):
        router = Router("src", seed=2)
        a = make_target("a")
        router.add(1.0, a)
        for _ in range(5):
            router.resolve("x")
        assert router.counts == {"a": 5}


class TestOperatorActor:
    def _actor(self, operator, router=None, **kwargs):
        router = router or Router("op")
        return OperatorActor(
            name="op", vertex="op", operator=operator, router=router,
            mailbox=BoundedMailbox(16), stop_event=stop_event(), **kwargs
        ), router

    def test_processes_and_forwards(self):
        actor, router = self._actor(Identity())
        target = make_target("next")
        router.add(1.0, target)
        actor.handle((Record({"value": 1.0}), "src"))
        assert actor.counters.processed == 1
        assert actor.counters.emitted == 1
        assert len(target.mailbox) == 1

    def test_origin_stamped_into_record(self):
        actor, router = self._actor(Identity())
        target = make_target("next")
        router.add(1.0, target)
        actor.handle((Record({"value": 1.0}), "upstream"))
        payload, origin = target.mailbox.get()
        assert payload["origin"] == "upstream"
        assert origin == "op"

    def test_filter_drop_emits_nothing(self):
        actor, router = self._actor(Filter(threshold=0.5))
        target = make_target("next")
        router.add(1.0, target)
        actor.handle((Record({"value": 0.1}), "src"))
        assert actor.counters.processed == 1
        assert actor.counters.emitted == 0
        assert len(target.mailbox) == 0

    def test_flatmap_emits_fanout(self):
        actor, router = self._actor(FlatMap(fanout=3))
        target = make_target("next")
        router.add(1.0, target)
        actor.handle((Record({"value": 1.0}), "src"))
        assert actor.counters.emitted == 3

    def test_sink_counts_departures_without_targets(self):
        actor, _ = self._actor(Identity())
        actor.handle((Record({}), "src"))
        assert actor.counters.emitted == 1  # result left the topology

    def test_busy_time_accumulates(self):
        actor, _ = self._actor(PaddedOperator(Identity(), 0.01))
        actor.handle((Record({}), "src"))
        assert actor.counters.busy_time >= 0.009

    def test_keep_wrapped_preserves_envelopes(self):
        class Pinning(Identity):
            def operator_function(self, item):
                return [WrappedItem(item, destination="special")]

        router = Router("op")
        target = make_target("special")
        router.add(1.0, target)
        actor, _ = self._actor(Pinning(), router=router, keep_wrapped=True)
        actor.handle((Record({}), "src"))
        payload, _ = target.mailbox.get()
        assert isinstance(payload, WrappedItem)


class TestEmitterActor:
    def _emitter(self, replicas, **kwargs):
        return EmitterActor(
            name="op.emitter", vertex="op", replicas=replicas,
            mailbox=BoundedMailbox(16), stop_event=stop_event(), **kwargs
        )

    def test_round_robin_distribution(self):
        replicas = [make_target(f"op#{i}") for i in range(3)]
        emitter = self._emitter(replicas)
        for i in range(6):
            emitter.handle((i, "src"))
        assert all(len(r.mailbox) == 2 for r in replicas)

    def test_key_assignment_routing(self):
        replicas = [make_target("op#0"), make_target("op#1")]
        emitter = self._emitter(
            replicas,
            key_of=lambda item: item["key"],
            key_assignment={"a": 0, "b": 1},
        )
        emitter.handle((Record({"key": "a"}), "src"))
        emitter.handle((Record({"key": "a"}), "src"))
        emitter.handle((Record({"key": "b"}), "src"))
        assert len(replicas[0].mailbox) == 2
        assert len(replicas[1].mailbox) == 1

    def test_unknown_key_hash_fallback(self):
        replicas = [make_target("op#0"), make_target("op#1")]
        emitter = self._emitter(
            replicas, key_of=lambda item: item["key"], key_assignment={},
        )
        emitter.handle((Record({"key": "zzz"}), "src"))
        assert len(replicas[0].mailbox) + len(replicas[1].mailbox) == 1

    def test_needs_replicas(self):
        with pytest.raises(ValueError, match="replica"):
            self._emitter([])


class TestCollectorActor:
    def test_forwards_with_vertex_origin(self):
        router = Router("op")
        downstream = make_target("next")
        router.add(1.0, downstream)
        collector = CollectorActor(
            name="op.collector", vertex="op", router=router,
            mailbox=BoundedMailbox(16), stop_event=stop_event(),
        )
        collector.handle((Record({"value": 1.0}), "op#2"))
        payload, origin = downstream.mailbox.get()
        assert origin == "op"

    def test_resolves_pinned_wrapper(self):
        router = Router("op")
        a, b = make_target("a"), make_target("b")
        router.add(0.999, a)
        router.add(0.001, b)
        collector = CollectorActor(
            name="op.collector", vertex="op", router=router,
            mailbox=BoundedMailbox(16), stop_event=stop_event(),
        )
        collector.handle((WrappedItem(Record({}), destination="b"), "op#0"))
        assert len(b.mailbox) == 1
        payload, _ = b.mailbox.get()
        assert not isinstance(payload, WrappedItem)  # unwrapped on exit

    def test_counts_terminal_payloads(self):
        collector = CollectorActor(
            name="op.collector", vertex="op", router=Router("op"),
            mailbox=BoundedMailbox(16), stop_event=stop_event(),
        )
        collector.handle((Record({}), "op#0"))
        assert collector.counters.emitted == 1


class TestSupervision:
    def test_raising_operator_is_resumed(self):
        class Flaky(Identity):
            def __init__(self):
                self.calls = 0

            def operator_function(self, item):
                self.calls += 1
                if self.calls % 3 == 0:
                    raise RuntimeError("boom")
                return [item]

        router = Router("op")
        target = make_target("next")
        router.add(1.0, target)
        actor = OperatorActor(
            name="op", vertex="op", operator=Flaky(), router=router,
            mailbox=BoundedMailbox(16), stop_event=stop_event(),
        )
        for i in range(9):
            actor.handle((Record({"value": float(i)}), "src"))
        # Every third item poisons the operator: 3 failures, 6 forwarded.
        assert actor.counters.failed == 3
        assert actor.counters.emitted == 6
        assert actor.counters.received == 9

    def test_failures_do_not_count_as_processed(self):
        class AlwaysFails(Identity):
            def operator_function(self, item):
                raise ValueError("nope")

        actor = OperatorActor(
            name="op", vertex="op", operator=AlwaysFails(),
            router=Router("op"), mailbox=BoundedMailbox(16),
            stop_event=stop_event(),
        )
        actor.handle((Record({}), "src"))
        assert actor.counters.processed == 0
        assert actor.counters.failed == 1

    def test_failure_injection_end_to_end(self):
        """A flaky middle stage must not stall the whole pipeline."""
        import threading
        from repro.core.graph import Edge, OperatorSpec, Topology
        from repro.operators.source_sink import CountingSink, GeneratorSource
        from repro.runtime.system import RuntimeConfig, run_topology

        class Flaky(Identity):
            def operator_function(self, item):
                if item.get("sequence", 0) % 5 == 0:
                    raise RuntimeError("injected fault")
                return [item]

        topology = Topology(
            [OperatorSpec("src", 5e-3),
             OperatorSpec("flaky", 1e-3, output_selectivity=0.8),
             OperatorSpec("sink", 0.1e-3, output_selectivity=0.0)],
            [Edge("src", "flaky"), Edge("flaky", "sink")],
        )
        sink = CountingSink()
        result = run_topology(
            topology,
            {"src": lambda: GeneratorSource(seed=3),
             "flaky": Flaky,
             "sink": lambda: sink},
            duration=1.0,
            config=RuntimeConfig(source_rate=200.0),
        )
        # ~80% of items survive the injected 1-in-5 fault rate.
        assert sink.count > 50
        flaky_rates = result.vertices["flaky"]
        assert flaky_rates.departure_rate == pytest.approx(
            result.vertices["src"].departure_rate * 0.8, rel=0.15)
