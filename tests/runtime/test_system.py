"""Integration tests: full actor systems on threads.

These run wall-clock time, so durations are kept short; rate assertions
use generous tolerances to stay robust on loaded CI machines.
"""

import pytest

from repro.core.fission import eliminate_bottlenecks
from repro.core.fusion import apply_fusion
from repro.core.graph import Edge, KeyDistribution, OperatorSpec, StateKind, Topology
from repro.core.steady_state import analyze
from repro.operators.base import Record
from repro.operators.basic import Filter, Identity
from repro.operators.source_sink import CollectingSink, CountingSink, GeneratorSource
from repro.runtime.synthetic import PaddedOperator
from repro.runtime.system import ActorSystem, RuntimeConfig, run_topology
from tests.conftest import make_pipeline


def pipeline_topology(work_ms):
    return Topology(
        [OperatorSpec("src", 2e-3),
         OperatorSpec("work", work_ms * 1e-3),
         OperatorSpec("sink", 0.1e-3, output_selectivity=0.0)],
        [Edge("src", "work"), Edge("work", "sink")],
        name="rt-pipeline",
    )


def pipeline_factories(work_ms, sink=None):
    return {
        "src": lambda: GeneratorSource(seed=7),
        "work": lambda: PaddedOperator(Identity(), work_ms * 1e-3),
        "sink": (lambda: sink) if sink is not None else CountingSink,
    }


class TestPipeline:
    def test_unloaded_pipeline_matches_source_rate(self):
        topology = pipeline_topology(1.0)
        result = run_topology(
            topology, pipeline_factories(1.0), duration=1.5,
            config=RuntimeConfig(source_rate=300.0),
        )
        assert result.throughput == pytest.approx(300.0, rel=0.05)

    def test_backpressure_throttles_source(self):
        topology = pipeline_topology(8.0)
        predicted = analyze(topology, source_rate=500.0)
        result = run_topology(
            topology, pipeline_factories(8.0), duration=2.0,
            config=RuntimeConfig(source_rate=500.0, mailbox_capacity=16),
        )
        assert predicted.throughput == pytest.approx(125.0)
        assert result.throughput_error(predicted) < 0.12

    def test_sink_receives_records(self):
        sink = CollectingSink()
        topology = pipeline_topology(1.0)
        run_topology(
            topology, pipeline_factories(1.0, sink=sink), duration=1.0,
            config=RuntimeConfig(source_rate=200.0),
        )
        assert sink.count > 50
        assert isinstance(sink.items[0], Record)

    def test_max_items_bounds_generation(self):
        sink = CountingSink()
        topology = pipeline_topology(1.0)
        run_topology(
            topology, pipeline_factories(1.0, sink=sink), duration=1.0,
            config=RuntimeConfig(source_rate=1000.0, max_items=100),
        )
        assert sink.count <= 100


class TestFission:
    def test_replicated_operator_reaches_source_rate(self):
        # work at 8ms caps a 4ms source at 125/s; 2 replicas fix it.
        topology = pipeline_topology(8.0)
        optimized = eliminate_bottlenecks(topology,
                                          source_rate=250.0).optimized
        assert optimized.operator("work").replication == 2
        result = run_topology(
            optimized, pipeline_factories(8.0), duration=2.0,
            config=RuntimeConfig(source_rate=250.0),
        )
        assert result.throughput == pytest.approx(250.0, rel=0.08)

    def test_partitioned_replication_with_keyed_routing(self):
        keys = KeyDistribution.uniform(64)

        class KeyedIdentity(Identity):
            state = StateKind.PARTITIONED

            def key_of(self, item):
                return item.get("key")

        topology = Topology(
            [OperatorSpec("src", 4e-3),
             OperatorSpec("keyed", 8e-3, state=StateKind.PARTITIONED,
                          keys=keys, replication=2),
             OperatorSpec("sink", 0.1e-3, output_selectivity=0.0)],
            [Edge("src", "keyed"), Edge("keyed", "sink")],
        )
        factories = {
            "src": lambda: GeneratorSource(seed=3),
            "keyed": lambda: PaddedOperator(KeyedIdentity(), 8e-3),
            "sink": CountingSink,
        }
        result = run_topology(topology, factories, duration=2.0,
                              config=RuntimeConfig(source_rate=200.0))
        assert result.throughput == pytest.approx(200.0, rel=0.1)


class TestFusionRuntime:
    def test_fused_pipeline_tail_executes_members(self):
        topology = Topology(
            [OperatorSpec("src", 4e-3),
             OperatorSpec("a", 1e-3),
             OperatorSpec("b", 1e-3),
             OperatorSpec("sink", 0.1e-3, output_selectivity=0.0)],
            [Edge("src", "a"), Edge("a", "b"), Edge("b", "sink")],
        )
        fusion = apply_fusion(topology, ["a", "b"], fused_name="F")
        sink = CountingSink()
        factories = {
            "src": lambda: GeneratorSource(seed=1),
            "a": lambda: PaddedOperator(Identity(), 1e-3),
            "b": lambda: PaddedOperator(Identity(), 1e-3),
            "sink": lambda: sink,
        }
        result = run_topology(
            fusion.fused, factories, duration=1.5,
            config=RuntimeConfig(source_rate=200.0),
            fusion_plans=[fusion.plan],
        )
        assert sink.count > 100
        assert result.throughput == pytest.approx(200.0, rel=0.1)


class TestLifecycle:
    def test_double_start_rejected(self):
        topology = pipeline_topology(1.0)
        system = ActorSystem.build(topology, pipeline_factories(1.0),
                                   config=RuntimeConfig(source_rate=100.0))
        system.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                system.start()
        finally:
            system.stop()

    def test_stop_joins_all_actors(self):
        topology = pipeline_topology(1.0)
        system = ActorSystem.build(topology, pipeline_factories(1.0),
                                   config=RuntimeConfig(source_rate=100.0))
        system.start()
        system.stop()
        assert all(not actor.is_alive() for actor in system.actors)

    def test_run_validates_duration(self):
        topology = pipeline_topology(1.0)
        system = ActorSystem.build(topology, pipeline_factories(1.0))
        with pytest.raises(ValueError, match="duration"):
            system.run(0.0)

    def test_missing_factory_falls_back_to_operator_class(self):
        topology = Topology(
            [OperatorSpec("src", 4e-3,
                          operator_class="repro.operators.source_sink."
                                         "GeneratorSource"),
             OperatorSpec("sink", 0.1e-3, output_selectivity=0.0,
                          operator_class="repro.operators.source_sink."
                                         "CountingSink")],
            [Edge("src", "sink")],
        )
        result = run_topology(topology, {}, duration=0.8,
                              config=RuntimeConfig(source_rate=100.0))
        assert result.throughput > 50.0

    def test_unresolvable_operator_rejected(self):
        topology = pipeline_topology(1.0)
        from repro.core.graph import TopologyError
        with pytest.raises(TopologyError, match="no factory"):
            ActorSystem.build(topology, {})


class TestRuntimeLatency:
    def test_mean_latency_matches_model(self):
        from repro.core.latency import estimate_latency
        topology = pipeline_topology(3.0)
        result = run_topology(
            topology, pipeline_factories(3.0), duration=1.5,
            config=RuntimeConfig(source_rate=150.0),
        )
        estimate = estimate_latency(topology, source_rate=150.0,
                                    assumption="deterministic")
        measured = result.mean_latency()
        assert measured is not None
        assert measured == pytest.approx(estimate.end_to_end, rel=0.25)

    def test_latency_none_without_sink_samples(self):
        topology = pipeline_topology(1.0)
        system = ActorSystem.build(topology, pipeline_factories(1.0),
                                   config=RuntimeConfig(source_rate=100.0))
        # Without running, no samples exist.
        measurements = system.run(duration=0.3, warmup=0.29)
        # Even a tiny window should catch some items at 100/s, but the
        # API contract matters: either None or a positive float.
        latency = measurements.mean_latency()
        assert latency is None or latency > 0.0
