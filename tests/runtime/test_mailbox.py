"""Unit tests for the bounded BAS mailbox."""

import threading
import time

import pytest

from repro.runtime.mailbox import BoundedMailbox, MailboxClosed


class TestBasics:
    def test_fifo_order(self):
        mailbox = BoundedMailbox(4)
        for i in range(3):
            assert mailbox.put(i, timeout=0.1)
        assert [mailbox.get() for _ in range(3)] == [0, 1, 2]

    def test_len_tracks_queue(self):
        mailbox = BoundedMailbox(4)
        mailbox.put("a", timeout=0.1)
        assert len(mailbox) == 1
        mailbox.get()
        assert len(mailbox) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedMailbox(0)

    def test_counters(self):
        mailbox = BoundedMailbox(2, put_timeout=0.01)
        mailbox.put("a"), mailbox.put("b")
        assert not mailbox.put("c")  # dropped after timeout
        assert mailbox.enqueued == 2
        assert mailbox.dropped == 1
        assert mailbox.high_watermark == 2


class TestBlocking:
    def test_put_timeout_drops(self):
        mailbox = BoundedMailbox(1, put_timeout=0.05)
        assert mailbox.put("a")
        started = time.monotonic()
        assert not mailbox.put("b")
        assert time.monotonic() - started >= 0.04

    def test_put_unblocks_when_slot_frees(self):
        mailbox = BoundedMailbox(1)
        mailbox.put("a", timeout=0.1)
        results = []

        def sender():
            results.append(mailbox.put("b", timeout=2.0))

        thread = threading.Thread(target=sender)
        thread.start()
        time.sleep(0.05)
        assert mailbox.get() == "a"
        thread.join(timeout=1.0)
        assert results == [True]
        assert mailbox.get() == "b"

    def test_get_timeout_raises(self):
        mailbox = BoundedMailbox(1)
        with pytest.raises(TimeoutError):
            mailbox.get(timeout=0.05)

    def test_get_unblocks_on_put(self):
        mailbox = BoundedMailbox(1)
        results = []

        def receiver():
            results.append(mailbox.get(timeout=2.0))

        thread = threading.Thread(target=receiver)
        thread.start()
        time.sleep(0.05)
        mailbox.put("x", timeout=0.5)
        thread.join(timeout=1.0)
        assert results == ["x"]

    def test_explicit_timeout_overrides_default(self):
        mailbox = BoundedMailbox(1, put_timeout=10.0)
        mailbox.put("a")
        started = time.monotonic()
        assert not mailbox.put("b", timeout=0.05)
        assert time.monotonic() - started < 1.0


class TestClose:
    def test_get_after_close_and_drain_raises(self):
        mailbox = BoundedMailbox(2)
        mailbox.put("a", timeout=0.1)
        mailbox.close()
        assert mailbox.get() == "a"  # drain allowed
        with pytest.raises(MailboxClosed):
            mailbox.get()

    def test_put_into_closed_raises(self):
        mailbox = BoundedMailbox(2)
        mailbox.close()
        with pytest.raises(MailboxClosed):
            mailbox.put("a", timeout=0.1)

    def test_close_wakes_blocked_sender(self):
        mailbox = BoundedMailbox(1)
        mailbox.put("a", timeout=0.1)
        errors = []

        def sender():
            try:
                mailbox.put("b", timeout=5.0)
            except MailboxClosed as exc:
                errors.append(exc)

        thread = threading.Thread(target=sender)
        thread.start()
        time.sleep(0.05)
        mailbox.close()
        thread.join(timeout=1.0)
        assert len(errors) == 1

    def test_close_wakes_blocked_receiver(self):
        mailbox = BoundedMailbox(1)
        errors = []

        def receiver():
            try:
                mailbox.get(timeout=5.0)
            except MailboxClosed as exc:
                errors.append(exc)

        thread = threading.Thread(target=receiver)
        thread.start()
        time.sleep(0.05)
        mailbox.close()
        thread.join(timeout=1.0)
        assert len(errors) == 1

    def test_closed_property(self):
        mailbox = BoundedMailbox(1)
        assert not mailbox.closed
        mailbox.close()
        assert mailbox.closed
