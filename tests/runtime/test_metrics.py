"""Unit tests for runtime metrics: counters under concurrent updates,
snapshot arithmetic, and per-vertex aggregation."""

import threading

import pytest

from repro.runtime.metrics import (
    ActorCounters,
    ActorRates,
    CounterSnapshot,
    RuntimeMeasurements,
    rates_between,
)


class TestConcurrentCounters:
    def test_concurrent_increments_are_not_lost(self):
        # The documented contract: single bytecode-level int increments
        # stay consistent under the GIL when one thread owns a counter.
        # Here every thread owns its own ActorCounters, as actors do.
        counters = [ActorCounters() for _ in range(4)]
        per_thread = 25_000

        def work(c: ActorCounters) -> None:
            for _ in range(per_thread):
                c.received += 1
                c.processed += 1
                c.emitted += 2
                c.busy_time += 1e-6

        threads = [threading.Thread(target=work, args=(c,)) for c in counters]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for c in counters:
            assert c.received == per_thread
            assert c.processed == per_thread
            assert c.emitted == 2 * per_thread
            assert c.busy_time == pytest.approx(per_thread * 1e-6, rel=1e-6)

    def test_snapshot_while_writer_runs(self):
        # A reader snapshotting mid-flight sees a consistent-enough view:
        # monotonically growing values, never negative rates.
        counters = ActorCounters()
        stop = threading.Event()

        def writer() -> None:
            while not stop.is_set():
                counters.received += 1
                counters.processed += 1
                counters.emitted += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            previous = counters.snapshot()
            for _ in range(200):
                current = counters.snapshot()
                assert current.received >= previous.received
                assert current.processed >= previous.processed
                assert current.emitted >= previous.emitted
                previous = current
        finally:
            stop.set()
            thread.join()

    def test_snapshot_is_immutable_copy(self):
        counters = ActorCounters()
        counters.processed = 7
        snap = counters.snapshot()
        counters.processed = 99
        assert snap.processed == 7
        with pytest.raises(AttributeError):
            snap.processed = 1


class TestMeanServiceTime:
    def test_none_without_items(self):
        assert ActorCounters().mean_service_time() is None

    def test_busy_time_over_processed(self):
        counters = ActorCounters()
        counters.processed = 10
        counters.busy_time = 0.02
        assert counters.mean_service_time() == pytest.approx(2e-3)


class TestRatesBetween:
    def test_rates_from_two_snapshots(self):
        before = CounterSnapshot(received=100, processed=90, emitted=80,
                                 busy_time=1.0, blocked_time=0.25)
        after = CounterSnapshot(received=300, processed=290, emitted=280,
                                busy_time=2.0, blocked_time=0.75,
                                latency_sum=4.0, latency_count=100)
        rates = rates_between("a0", "op", before, after, duration=2.0)
        assert rates.arrival_rate == pytest.approx(100.0)
        assert rates.processing_rate == pytest.approx(100.0)
        assert rates.departure_rate == pytest.approx(100.0)
        assert rates.utilization == pytest.approx(0.5)
        assert rates.blocked_fraction == pytest.approx(0.25)
        assert rates.mean_latency == pytest.approx(0.04)
        assert rates.latency_samples == 100

    def test_no_latency_samples_means_none(self):
        rates = rates_between("a0", "op", CounterSnapshot(),
                              CounterSnapshot(processed=5), duration=1.0)
        assert rates.mean_latency is None

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            rates_between("a0", "op", CounterSnapshot(), CounterSnapshot(),
                          duration=0.0)


class TestVertexAggregation:
    def test_replicas_sum_rates_and_max_utilization(self):
        actors = {
            "op.0": ActorRates(name="op.0", vertex="op", arrival_rate=100.0,
                               processing_rate=100.0, departure_rate=90.0,
                               utilization=0.8, blocked_fraction=0.1,
                               mean_latency=0.010, latency_samples=50),
            "op.1": ActorRates(name="op.1", vertex="op", arrival_rate=50.0,
                               processing_rate=50.0, departure_rate=45.0,
                               utilization=0.4, blocked_fraction=0.3,
                               mean_latency=0.020, latency_samples=150),
            "sink": ActorRates(name="sink", vertex="sink", arrival_rate=135.0,
                               processing_rate=135.0, departure_rate=0.0,
                               utilization=0.2, blocked_fraction=0.0),
        }
        vertices = RuntimeMeasurements(duration=2.0,
                                       actors=actors).vertex_rates()
        assert set(vertices) == {"op", "sink"}
        op = vertices["op"]
        assert op.arrival_rate == pytest.approx(150.0)
        assert op.departure_rate == pytest.approx(135.0)
        assert op.utilization == pytest.approx(0.8)  # binding replica
        assert op.blocked_fraction == pytest.approx(0.3)
        # Latency is the sample-weighted mean across replicas.
        assert op.mean_latency == pytest.approx(
            (0.010 * 50 + 0.020 * 150) / 200)
        assert op.latency_samples == 200

    def test_vertex_without_latency_samples(self):
        actors = {
            "a": ActorRates(name="a", vertex="v", arrival_rate=1.0,
                            processing_rate=1.0, departure_rate=1.0,
                            utilization=0.5, blocked_fraction=0.0),
        }
        vertex = RuntimeMeasurements(duration=1.0,
                                     actors=actors).vertex_rates()["v"]
        assert vertex.mean_latency is None
        assert vertex.latency_samples == 0
