"""Differential bit-equality: batching and loop fusion are transparent.

Property tests over seeded random chain testbeds
(:mod:`repro.testing.differential`): for every seed, the loop-compiled
execution of a fused chain must produce byte-identical sink outputs to
the meta-actor execution, and batched mailboxes must produce
byte-identical outputs to unbatched ones.  Twenty seeds gate tier-1 —
fourteen fault-free plus six under deterministic poison-fault chaos
plans (chaos targeting non-member vertices, where loop compilation
stays eligible).
"""

import pytest

from repro.codegen.fuseloop import loop_eligibility
from repro.core.fusion import plan_fusion
from repro.testing import (
    DifferentialConfig,
    canonical,
    chain_testbed,
    chaos_fault_plan,
    check_batching_seed,
    check_loop_chaos_seed,
    check_loop_seed,
)

FAST = DifferentialConfig(items=200)

PLAIN_SEEDS = list(range(1, 15))
CHAOS_SEEDS = list(range(15, 21))


class TestLoopDifferential:
    @pytest.mark.parametrize("seed", PLAIN_SEEDS)
    def test_loop_compiled_chain_bit_equal(self, seed):
        report = check_loop_seed(seed, FAST)
        assert report.ok, report.summary + f"; shrunk={report.shrunk_members}"

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_loop_compiled_chain_bit_equal_under_chaos(self, seed):
        report = check_loop_chaos_seed(seed, FAST)
        assert report.ok, report.summary + f"; shrunk={report.shrunk_members}"

    @pytest.mark.parametrize("seed", PLAIN_SEEDS[:5])
    def test_testbed_chains_are_loop_eligible(self, seed):
        # The differential only proves something if the loop side really
        # loop-compiles; the testbed catalog must pass the SS2xx gate.
        topology, members = chain_testbed(seed, FAST)
        plan = plan_fusion(topology, list(members))
        verdict = loop_eligibility(plan, topology)
        assert verdict.eligible, verdict.reasons
        assert verdict.chain is not None

    def test_chaos_plans_avoid_fused_members(self):
        for seed in CHAOS_SEEDS:
            topology, members = chain_testbed(seed, FAST)
            plan = chaos_fault_plan(topology, members, seed)
            assert not set(plan.vertices()) & set(members)


class TestBatchingDifferential:
    @pytest.mark.parametrize("seed", list(range(1, 9)))
    def test_batched_run_bit_equal(self, seed):
        report = check_batching_seed(seed, FAST)
        assert report.ok, report.summary

    def test_batch_size_one_is_unbatched(self):
        # Degenerate batching must be *exactly* the unbatched runtime.
        report = check_batching_seed(3, FAST, batch_size=1)
        assert report.ok, report.summary

    def test_loop_and_batching_compose(self):
        # Both optimizations at once still agree with the plain run.
        from repro.core.fusion import apply_fusion
        from repro.runtime.system import RuntimeConfig
        from repro.testing.differential import run_capture, topology_factories

        topology, members = chain_testbed(4, FAST)
        fused = apply_fusion(topology, list(members))
        factories = topology_factories(topology)

        def capture(**overrides):
            runtime = RuntimeConfig(
                mailbox_capacity=FAST.mailbox_capacity,
                max_items=FAST.items, seed=4, watchdog=False, **overrides)
            return run_capture(fused.fused, runtime,
                               fusion_plans=(fused.plan,),
                               factories=factories, config=FAST)

        plain = capture()
        both = capture(fusion_mode="loop", batch_size=8,
                       batch_flush_timeout=0.02)
        assert plain == both
        assert plain  # at least one sink captured


class TestCanonical:
    def test_strips_born_stamp(self):
        assert canonical({"value": 1, "_born": 123.4}) == \
            canonical({"value": 1, "_born": 999.9})

    def test_orders_keys(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_distinguishes_values(self):
        assert canonical({"value": 1.0}) != canonical({"value": 1.0000001})
