"""Wall-clock conformance: model vs. the threaded actor runtime.

These run real sleep-padded actors for a few seconds each, so tier-1
keeps the seed count minimal; the CLI sweep (``spinstreams conformance
--runtime-seeds N``) and nightly CI cover more.
"""

import pytest

from repro.runtime.synthetic import GainOperator
from repro.testing import ConformanceConfig, check_runtime_seed


class TestGainOperator:
    def test_unit_gain_is_identity(self):
        op = GainOperator(1.0)
        assert [op.operator_function(i) for i in range(3)] == [[0], [1], [2]]

    def test_fractional_gain_is_deterministic(self):
        op = GainOperator(0.5)
        outputs = [len(op.operator_function(i)) for i in range(10)]
        assert sum(outputs) == 5
        assert outputs == [0, 1] * 5

    def test_expanding_gain(self):
        op = GainOperator(2.5)
        total = sum(len(op.operator_function(i)) for i in range(10))
        assert total == 25

    def test_credit_error_bounded_by_one_item(self):
        op = GainOperator(0.7)
        for n in range(1, 50):
            emitted = len(op.operator_function(n))
            assert emitted in (0, 1)
        # After 49 items the realized count is within one of 0.7 * 49.
        op2 = GainOperator(0.7)
        total = sum(len(op2.operator_function(i)) for i in range(49))
        assert abs(total - 0.7 * 49) < 1.0

    def test_negative_gain_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GainOperator(-0.1)

    def test_gain_property_mirrors_selectivity(self):
        assert GainOperator(0.25).gain == pytest.approx(0.25)


class TestRuntimeConformance:
    # Batching is a transparent transport optimization: the same
    # steady-state tolerances must hold unbatched and batched, so the
    # batched configuration is gated tier-1 alongside the classic one.
    @pytest.mark.parametrize("seed,batch_size", [
        (100, 1), (101, 1), (100, 4), (101, 4),
    ])
    def test_runtime_matches_model(self, seed, batch_size):
        config = ConformanceConfig(runtime_duration=2.0,
                                   runtime_batch_size=batch_size)
        report = check_runtime_seed(seed, config)
        assert report.ok, report.summary()
        assert report.backend == "runtime"
        assert report.max_departure_error < 0.10

    def test_runtime_topologies_are_wall_clock_sized(self):
        generator = ConformanceConfig().runtime_generator_config()
        assert generator.max_vertices <= 6
        assert generator.min_service_time >= 4e-3
        assert generator.max_in_degree == 1
