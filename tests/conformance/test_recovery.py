"""Effectively-once recovery: crash + rollback + replay is bit-equal.

The decisive oracle of the checkpointing layer
(:mod:`repro.runtime.checkpoint`): for every seeded deterministic
chain, a run with injected sink crashes — rolled back to the last
complete epoch and replayed from the recorded source offset by
:func:`run_recoverable` — must produce sink output **bit-equal** to
the fault-free run.  Twenty seeds gate tier-1, rotating through both
fused execution modes (meta-actor and loop-compiled) and both
unbatched and batched mailboxes so every combination is covered five
times; failures shrink to a minimal diverging member chain before
being reported.
"""

import pytest

from repro.testing import (
    DifferentialConfig,
    check_recovery_seed,
    recovery_fault_plan,
    recovery_testbed,
)

FAST = DifferentialConfig(items=200)

SEEDS = list(range(1, 21))


def _cell(seed):
    """Rotate seeds through (mode, batch) so all four combos gate."""
    mode = ("meta", "loop")[seed % 2]
    batch = (1, 8)[(seed // 2) % 2]
    return mode, batch


class TestRecoveryDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_and_recover_bit_equal(self, seed):
        mode, batch = _cell(seed)
        report = check_recovery_seed(seed, FAST, fusion_mode=mode,
                                     batch_size=batch)
        assert report.ok, \
            report.summary + f"; shrunk={report.shrunk_members}"

    def test_rollbacks_actually_happen(self):
        # The oracle only proves effectively-once if crashes fire and
        # recoveries run; a fault plan outliving the sink's item budget
        # would pass vacuously.  Across the first four seeds (one per
        # mode/batch cell) at least one real rollback must occur each.
        for seed in (1, 2, 3, 4):
            mode, batch = _cell(seed)
            report = check_recovery_seed(seed, FAST, fusion_mode=mode,
                                         batch_size=batch)
            assert report.ok, report.summary
            assert report.recovery_attempts >= 1, \
                f"seed {seed}: no rollback exercised"

    def test_testbed_keeps_sink_standalone(self):
        # Fusing the crash target would fault-wrap a member and force
        # the loop differential back to meta-vs-meta.
        for seed in SEEDS:
            _, members = recovery_testbed(seed, FAST)
            assert "sink" not in members
            assert len(members) >= 2

    def test_fault_plans_only_crash_the_sink(self):
        # Crash-only plans, never aimed at the source: a crashed source
        # legitimately skips the in-flight item and changes the stream.
        for seed in SEEDS:
            topology, _ = recovery_testbed(seed, FAST)
            plan = recovery_fault_plan(topology, seed)
            assert set(plan.vertices()) == {"sink"}
            assert not plan.poisons and not plan.slowdowns
            assert not plan.hiccups and not plan.drops
            assert len(plan.crashes) == 2
