"""Process-backend conformance: the fourth execution model agrees.

Two gates ride tier-1 here.  The rate gate (``check_process_seed``)
runs seeded wall-clock topologies across real shard worker processes
and holds them to the same steady-state tolerances as the threaded
runtime — plus process hygiene: zero drops, no wedged actors, no
surviving workers, no shard failure.  The bit-equality gate
(``check_sharded_seed``) places a seeded chain round-robin so every
edge crosses a process boundary and proves the sharded sink output
byte-identical, in order, to the threaded run.

Each process seed forks workers and sleeps wall-clock seconds, so
tier-1 keeps a 2-seed smoke (``--process-seeds``); nightly CI raises
the knob for the deep four-way sweep.
"""

import pytest

from repro.testing import (
    ConformanceConfig,
    DifferentialConfig,
    check_process_seed,
    check_runtime_seed,
    check_seed,
    check_sharded_seed,
)

PROCESS_CONFIG = ConformanceConfig(runtime_duration=3.0)
FAST = DifferentialConfig(items=200)


class TestProcessConformance:
    def test_process_backend_matches_model(self, process_seeds):
        for seed in range(100, 100 + process_seeds):
            report = check_process_seed(seed, PROCESS_CONFIG)
            assert report.ok, report.summary()
            assert report.backend == "process"
            assert report.max_departure_error < 0.10

    def test_four_backends_agree_on_one_seed(self):
        # Analytical model vs DES vs threaded vs process, same seed.
        # check_seed compares the first two; the runtime checks compare
        # each wall-clock backend against the model, so transitively
        # all four agree within the runtime tolerances.
        seed = 100
        analytical = check_seed(seed, PROCESS_CONFIG)
        assert analytical.ok, analytical.summary()
        threaded = check_runtime_seed(seed, PROCESS_CONFIG)
        assert threaded.ok, threaded.summary()
        process = check_process_seed(seed, PROCESS_CONFIG)
        assert process.ok, process.summary()


class TestShardedBitEquality:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sharded_sink_bit_equal_to_threaded(self, seed):
        report = check_sharded_seed(seed, FAST)
        assert report.ok, report.summary
        assert report.mode_b == "process"

    def test_three_shards_bit_equal(self):
        # Same contract with one more process boundary in the chain.
        report = check_sharded_seed(4, FAST, shards=3)
        assert report.ok, report.summary
