"""Model-vs-simulator conformance sweeps over randomized testbeds.

Tier-1 runs a fast budget (``--conformance-seeds``, default 6); the
nightly CI job raises the budget to catch rarer topology shapes.
"""

import math

import pytest

from repro.testing import (
    ConformanceConfig,
    check_optimizer_seed,
    check_seed,
    run_sweep,
    topology_for_seed,
)


class TestSeedDeterminism:
    def test_same_seed_same_topology(self):
        first = topology_for_seed(123)
        second = topology_for_seed(123)
        assert first.names == second.names
        assert first.edges == second.edges
        for name in first.names:
            assert first.operator(name) == second.operator(name)

    def test_different_seeds_differ(self):
        first = topology_for_seed(123)
        second = topology_for_seed(124)
        differs = (
            first.names != second.names
            or first.edges != second.edges
            or any(first.operator(n) != second.operator(n)
                   for n in first.names if n in second)
        )
        assert differs

    def test_same_seed_same_report(self):
        first = check_seed(100)
        second = check_seed(100)
        assert first.discrepancies == second.discrepancies
        assert first.departure_errors == second.departure_errors
        assert first.window == second.window


class TestTreeSweep:
    def test_sweep_is_green(self, conformance_seeds):
        outcome = run_sweep(conformance_seeds)
        assert outcome.ok, outcome.summary()
        # Tree profile: the fluid model holds at the 2% level, and in
        # practice well under it.
        assert outcome.max_departure_error < 0.02

    def test_sweep_includes_optimizer_reports(self):
        outcome = run_sweep(2)
        backends = [report.backend for report in outcome.reports]
        assert backends.count("simulator") == 2
        assert backends.count("optimizer+simulator") == 2

    def test_optimizer_disabled(self):
        outcome = run_sweep(2, ConformanceConfig(optimizer=False))
        assert all(r.backend == "simulator" for r in outcome.reports)

    def test_reports_carry_seed_and_window(self):
        report = check_seed(100)
        assert report.seed == 100
        assert report.topology_name == "conformance-100"
        assert report.window > 0.0
        assert report.departure_errors  # at least one operator judged


class TestDagSweep:
    def test_dag_profile_is_green_at_loose_tolerance(self, conformance_seeds):
        config = ConformanceConfig(profile="dag")
        seeds = max(2, conformance_seeds // 2)
        outcome = run_sweep(seeds, config)
        assert outcome.ok, outcome.summary()

    def test_dag_profile_loosens_tolerances(self):
        config = ConformanceConfig(profile="dag")
        assert config.resolved_tolerances().departure_rel == 0.10
        assert ConformanceConfig().resolved_tolerances().departure_rel == 0.02

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            ConformanceConfig(profile="torus").generator_config()


class TestParallelSweep:
    """``run_sweep(workers=N)`` must be bit-identical to the serial path.

    Every check derives all randomness from its seed, so process
    placement cannot influence results; the reports are frozen
    dataclasses compared with exact ``==`` (floats included).
    """

    CONFIG = ConformanceConfig(items=8_000)

    def test_parallel_reports_equal_serial(self):
        serial = run_sweep(3, self.CONFIG)
        parallel = run_sweep(3, self.CONFIG, workers=2)
        assert parallel.reports == serial.reports

    def test_parallel_with_chaos_preserves_report_order(self):
        serial = run_sweep(2, self.CONFIG, chaos_seeds=2)
        parallel = run_sweep(2, self.CONFIG, chaos_seeds=2, workers=2)
        assert parallel.reports == serial.reports
        backends = [report.backend for report in parallel.reports]
        assert backends == [report.backend for report in serial.reports]

    def test_parallel_aggregates_worker_counters(self):
        from repro import instrumentation

        before = instrumentation.snapshot()
        run_sweep(2, self.CONFIG, workers=2)
        delta = instrumentation.ENGINE.since(before.engine)
        assert delta.events > 0
        assert instrumentation.SOLVER.since(before.solver).solve_requests > 0

    def test_custom_analyze_fn_falls_back_to_serial(self):
        from repro.core.steady_state import analyze

        outcome = run_sweep(2, self.CONFIG, workers=4, analyze_fn=analyze)
        assert outcome.ok, outcome.summary()


class TestOptimizerConformance:
    def test_optimized_topology_matches_simulator(self):
        report = check_optimizer_seed(100)
        assert report.ok, report.summary()
        assert report.backend == "optimizer+simulator"
        assert report.topology_name.endswith("-optimized")

    def test_optimizer_throughput_error_is_relative(self):
        # The optimizer check gates throughput only; its departure
        # errors map carries just the source entry.
        report = check_optimizer_seed(101)
        assert report.ok, report.summary()
        for error in report.departure_errors.values():
            assert math.isfinite(error)
