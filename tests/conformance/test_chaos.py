"""Degraded-mode conformance: derated model vs. faulty backends.

Each seed deterministically produces a topology *and* a fault plan;
the simulator (and, for the smoke test, the threaded runtime) runs it
under the matching supervision strategy and the measured throughput
must track the derated steady-state prediction.

The ``chaos`` marker gates the heavier sweeps: tier-1 CI runs a fast
smoke (``-m chaos`` with the default seed budget), the nightly job
raises ``--conformance-seeds``.
"""

import pytest

from repro.testing import (
    ConformanceConfig,
    check_chaos_seed,
    check_chaos_runtime_seed,
    run_sweep,
    shrink_chaos_failure,
)


class TestChaosSeedCheck:
    def test_single_seed_is_green(self):
        report = check_chaos_seed(100)
        assert report.ok, report.summary()
        assert report.backend == "chaos+simulator"

    def test_same_seed_same_report(self):
        """Fault-plan seed replay: the whole check is deterministic."""
        first = check_chaos_seed(103)
        second = check_chaos_seed(103)
        assert first.discrepancies == second.discrepancies
        assert first.departure_errors == second.departure_errors
        assert first.window == second.window

    def test_chaos_tolerances_are_looser_than_fault_free(self):
        config = ConformanceConfig()
        assert config.chaos_tolerances.departure_rel > \
            config.resolved_tolerances().departure_rel

    def test_shrinker_skips_passing_seed(self):
        assert shrink_chaos_failure(100) is None


@pytest.mark.chaos
class TestChaosSweep:
    def test_chaos_sweep_is_green(self, conformance_seeds):
        outcome = run_sweep(0, chaos_seeds=conformance_seeds)
        assert outcome.ok, outcome.summary()
        backends = [report.backend for report in outcome.reports]
        assert backends.count("chaos+simulator") == conformance_seeds

    def test_throughput_degrades_but_tracks_model(self, conformance_seeds):
        """Faults bite (plans are non-trivial) yet stay within tolerance."""
        outcome = run_sweep(0, chaos_seeds=conformance_seeds)
        for report in outcome.reports:
            assert report.ok, report.summary()


@pytest.mark.chaos
class TestChaosRuntimeSmoke:
    def test_runtime_survives_fault_plan(self):
        config = ConformanceConfig(runtime_duration=2.0)
        report = check_chaos_runtime_seed(100, config)
        assert report.ok, report.summary()
        assert report.backend == "chaos+runtime"
