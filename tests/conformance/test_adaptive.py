"""Online-adaptation conformance: live reconfigurations proven per seed.

Four gates over :mod:`repro.testing.adaptive`:

* **Adaptation oracle** — a seeded mid-run service-time shift; the
  controller must fire, settle, and the post-reconfiguration steady
  state must match the freshly re-solved analytical model of the
  shifted topology under the replicas actually deployed.  Each seed
  drives a live system over wall-clock seconds, so tier-1 keeps a
  2-seed smoke (``--adaptive-seeds``); nightly CI runs the full
  20-seed property suite.
* **Stationary negative control** — ten seeds with no shift; a single
  reconfiguration is thrashing and fails the seed.
* **Chaos interaction** — crashes and slowdowns injected while the
  controller reconfigures; supervision restarts and controller
  rescales must not escalate each other (liveness + bounded dead
  letters, not model agreement).
* **Migration bit-equality** — runs interleaved with in-band
  drain-and-migrate tickets (standalone and fused-meta members) must
  produce byte-identical sink output to the undisturbed run: zero
  tuple loss under live state movement.
"""

import pytest

from repro.testing import (
    DifferentialConfig,
    check_adaptive_chaos_seed,
    check_adaptive_seed,
    check_migration_seed,
    check_stationary_seed,
)

BASE_SEED = 100
FAST = DifferentialConfig(items=200)


class TestAdaptationOracle:
    def test_controller_adapts_to_phase_shift(self, adaptive_seeds):
        for seed in range(BASE_SEED, BASE_SEED + adaptive_seeds):
            report = check_adaptive_seed(seed)
            assert report.ok, report.summary()
            assert report.backend == "adaptive+runtime"


class TestStationaryControl:
    @pytest.mark.parametrize("seed", list(range(BASE_SEED, BASE_SEED + 10)))
    def test_no_spurious_reconfiguration(self, seed):
        report = check_stationary_seed(seed)
        assert report.ok, report.summary()
        assert report.backend == "adaptive+stationary"


class TestChaosInteraction:
    @pytest.mark.parametrize("seed", [BASE_SEED, BASE_SEED + 3])
    def test_faults_during_reconfiguration(self, seed):
        report = check_adaptive_chaos_seed(seed)
        assert report.ok, report.summary()
        assert report.backend == "adaptive+chaos"


class TestMigrationBitEquality:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_migrated_run_bit_equal(self, seed):
        report = check_migration_seed(seed, FAST)
        assert report.ok, report.summary
        assert report.mode_b == "migrated"

    @pytest.mark.parametrize("seed", [1, 2])
    def test_fused_member_migration_bit_equal(self, seed):
        report = check_migration_seed(seed, FAST, fused=True)
        assert report.ok, report.summary
        assert report.mode_b == "migrated+fused"
