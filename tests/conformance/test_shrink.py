"""Topology shrinking, and the harness's self-test: a deliberately
broken model must be caught and minimized to a small reproducer."""

from dataclasses import replace

import pytest

from repro.core.graph import Topology
from repro.core.steady_state import analyze
from repro.testing import (
    ConformanceConfig,
    check_seed,
    remove_edge,
    remove_vertex,
    shrink,
    topology_for_seed,
)
from tests.conftest import make_diamond, make_fig11


class TestRemoveVertex:
    def test_removal_renormalizes_siblings(self):
        topology = make_diamond(p_left=0.3)
        reduced = remove_vertex(topology, "left")
        assert reduced.names == ["src", "right", "sink"]
        assert reduced.edge("src", "right").probability == pytest.approx(1.0)

    def test_source_cannot_be_removed(self):
        topology = make_diamond()
        assert remove_vertex(topology, "src") is None

    def test_unknown_vertex(self):
        assert remove_vertex(make_diamond(), "nope") is None

    def test_orphaned_vertices_dropped(self):
        # fig11: removing op3 orphans nothing (op4/op5 stay reachable
        # through it only) — actually op4 and op5 are reachable only via
        # op3, so they must go with it.
        topology = make_fig11()
        reduced = remove_vertex(topology, "op3")
        assert reduced.names == ["op1", "op2", "op6"]
        assert reduced.edge("op1", "op2").probability == pytest.approx(1.0)


class TestRemoveEdge:
    def test_removal_renormalizes_and_drops_unreachable(self):
        topology = make_diamond(p_left=0.5)
        reduced = remove_edge(topology, "src", "left")
        assert reduced.names == ["src", "right", "sink"]
        assert reduced.edge("src", "right").probability == pytest.approx(1.0)

    def test_missing_edge(self):
        assert remove_edge(make_diamond(), "left", "right") is None

    def test_load_bearing_edge(self):
        # A two-operator pipeline cannot lose its only edge.
        topology = make_diamond()
        reduced = remove_edge(topology, "left", "sink")
        # "left" becomes a sink; nothing is orphaned.
        assert reduced is not None
        assert "left" in reduced.sinks


class TestShrink:
    def test_predicate_false_initially_returns_unchanged(self):
        topology = make_fig11()
        result = shrink(topology, lambda t: False)
        assert result.reduced is topology
        assert result.steps == ()
        assert result.removed_operators == 0

    def test_shrinks_to_fixpoint_of_predicate(self):
        topology = make_fig11()
        result = shrink(topology, lambda t: len(t) >= 3)
        assert len(result.reduced) == 3
        assert result.removed_operators == 3
        assert len(result.steps) >= 1

    def test_crashing_predicate_counts_as_not_reproducing(self):
        topology = make_fig11()

        def fragile(candidate):
            if len(candidate) < len(topology):
                raise RuntimeError("boom")
            return True

        result = shrink(topology, fragile)
        assert result.reduced is topology or len(result.reduced) == len(topology)

    def test_steps_describe_each_deletion(self):
        result = shrink(make_fig11(), lambda t: len(t) >= 4)
        for step in result.steps:
            assert "removed" in step


def flatten_selectivities(topology: Topology) -> Topology:
    """The injected model bug: drop the s_out/s_in gain correction."""
    specs = [replace(spec, input_selectivity=1.0, output_selectivity=1.0)
             for spec in topology.operators]
    return Topology(specs, list(topology.edges), name=topology.name)


def broken_analyze(topology: Topology):
    return analyze(flatten_selectivities(topology))


class TestInjectedModelBug:
    """The acceptance self-test: a model that ignores selectivities must
    be caught by the harness and shrunk to a tiny reproducer."""

    SEED = 106  # a 9-operator testbed with several non-unit gains

    def test_broken_model_is_caught(self):
        report = check_seed(self.SEED, analyze_fn=broken_analyze)
        assert not report.ok
        assert report.worst is not None
        # The report names a concrete diverging operator with rates.
        assert report.worst.operator in topology_for_seed(self.SEED)
        assert report.worst.error > ConformanceConfig().resolved_tolerances().departure_rel

    def test_correct_model_passes_same_seed(self):
        assert check_seed(self.SEED).ok

    def test_bug_shrinks_to_small_reproducer(self):
        config = ConformanceConfig()
        topology = topology_for_seed(self.SEED, config)

        def still_fails(candidate):
            return not check_seed(self.SEED, config,
                                  analyze_fn=broken_analyze,
                                  topology=candidate).ok

        result = shrink(topology, still_fails)
        assert len(result.reduced) <= 4
        assert result.removed_operators >= 5
        # The kernel still reproduces: broken model fails on it, the
        # real model does not.
        assert still_fails(result.reduced)
        assert check_seed(self.SEED, config, topology=result.reduced).ok
        # Something with a non-unit gain survived — the kernel contains
        # the operator the dropped correction actually matters for.
        assert any(spec.output_selectivity != 1.0
                   or spec.input_selectivity != 1.0
                   for spec in result.reduced.operators)
