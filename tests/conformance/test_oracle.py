"""Unit tests for the conformance oracle and its discrepancy taxonomy."""

from types import SimpleNamespace

import pytest

from repro.core.steady_state import analyze
from repro.testing import Discrepancy, Oracle, Tolerances
from tests.conftest import make_pipeline


def measurement(departure_rate, utilization):
    return SimpleNamespace(departure_rate=departure_rate,
                           utilization=utilization)


def exact_measurements(predicted):
    """Measurements that echo the prediction back verbatim."""
    return {
        name: measurement(rates.departure_rate, rates.utilization)
        for name, rates in predicted.rates.items()
    }


@pytest.fixture
def predicted():
    # src (1ms) -> mid (2ms) -> sink (0.5ms): mid saturates at rho=2
    # offered, so the model throttles the source to 500 items/sec.
    return analyze(make_pipeline(1.0, 2.0, 0.5))


WINDOW = 30.0  # seconds; every operator clears the 500-item count floor


class TestAgreement:
    def test_exact_agreement_is_ok(self, predicted):
        report = Oracle().compare(predicted, exact_measurements(predicted),
                                  WINDOW)
        assert report.ok
        assert report.discrepancies == ()
        assert report.max_departure_error == 0.0
        assert report.worst is None
        assert "OK" in report.summary()

    def test_within_tolerance_is_ok(self, predicted):
        measured = exact_measurements(predicted)
        rate = predicted.rates["op2"].departure_rate
        measured["op2"] = measurement(rate * 1.01, predicted.rates["op2"].utilization)
        report = Oracle().compare(predicted, measured, WINDOW)
        assert report.ok
        assert report.departure_errors["op2"] == pytest.approx(0.01)


class TestDepartureChecks:
    def test_departure_deviation_names_the_operator(self, predicted):
        measured = exact_measurements(predicted)
        rate = predicted.rates["op2"].departure_rate
        measured["op2"] = measurement(rate * 1.10, predicted.rates["op2"].utilization)
        report = Oracle().compare(predicted, measured, WINDOW)
        assert not report.ok
        worst = report.worst
        assert worst.kind == "departure-rate"
        assert worst.operator == "op2"
        assert worst.error == pytest.approx(0.10)
        assert "op2" in worst.describe()

    def test_source_deviation_reported_as_throughput(self, predicted):
        measured = exact_measurements(predicted)
        source = predicted.topology.source
        rate = predicted.rates[source].departure_rate
        measured[source] = measurement(rate * 0.9, 1.0)
        report = Oracle().compare(predicted, measured, WINDOW)
        kinds = {d.kind for d in report.discrepancies}
        assert kinds == {"throughput"}

    def test_below_count_floor_skips_relative_check(self, predicted):
        # At a 0.5s window the sink sees ~250 predicted items — below
        # the 500-item floor, so a 20% relative deviation is not judged.
        measured = exact_measurements(predicted)
        rate = predicted.rates["op2"].departure_rate
        measured["op2"] = measurement(rate * 1.2, predicted.rates["op2"].utilization)
        report = Oracle().compare(predicted, measured, 0.5,
                                  check_throughput=False,
                                  check_utilization=False,
                                  check_bottlenecks=False)
        assert report.ok
        assert "op2" not in report.departure_errors

    def test_below_count_floor_still_bounds_extra_items(self, predicted):
        # ... but a backend emitting a floor's worth of *extra* items on
        # a supposedly quiet edge is flagged absolutely.
        measured = exact_measurements(predicted)
        rate = predicted.rates["op2"].departure_rate
        measured["op2"] = measurement(rate + 1500.0, predicted.rates["op2"].utilization)
        report = Oracle().compare(predicted, measured, 0.5,
                                  check_throughput=False,
                                  check_utilization=False,
                                  check_bottlenecks=False)
        assert [d.kind for d in report.discrepancies] == ["departure-count"]


class TestBottleneckChecks:
    def test_missing_bottleneck(self, predicted):
        assert predicted.rates["op1"].is_saturated
        measured = exact_measurements(predicted)
        measured["op1"] = measurement(predicted.rates["op1"].departure_rate, 0.6)
        report = Oracle().compare(predicted, measured, WINDOW)
        kinds = {d.kind for d in report.discrepancies}
        assert "bottleneck-missing" in kinds

    def test_spurious_bottleneck(self, predicted):
        assert predicted.rates["op2"].utilization < 0.90
        measured = exact_measurements(predicted)
        measured["op2"] = measurement(predicted.rates["op2"].departure_rate, 0.99)
        report = Oracle().compare(predicted, measured, WINDOW)
        kinds = {d.kind for d in report.discrepancies}
        assert "bottleneck-spurious" in kinds

    def test_gray_band_is_unclassified(self, predicted):
        # Measured utilization between spurious_floor and saturated_floor
        # on a non-saturated operator: deliberately not judged (but the
        # utilization gap check still applies, so disable it here).
        measured = exact_measurements(predicted)
        measured["op2"] = measurement(predicted.rates["op2"].departure_rate, 0.96)
        report = Oracle().compare(predicted, measured, WINDOW,
                                  check_utilization=False)
        assert report.ok


class TestUtilizationCheck:
    def test_utilization_gap_flagged(self, predicted):
        measured = exact_measurements(predicted)
        rates = predicted.rates["op2"]
        measured["op2"] = measurement(rates.departure_rate,
                                      rates.utilization + 0.2)
        report = Oracle().compare(predicted, measured, WINDOW,
                                  check_bottlenecks=False)
        assert [d.kind for d in report.discrepancies] == ["utilization"]
        assert report.worst.error == pytest.approx(0.2)


class TestValidation:
    def test_window_must_be_positive(self, predicted):
        with pytest.raises(ValueError, match="window"):
            Oracle().compare(predicted, exact_measurements(predicted), 0.0)

    def test_loosened_updates_both_rate_tolerances(self):
        loose = Tolerances().loosened(0.10)
        assert loose.departure_rel == 0.10
        assert loose.throughput_rel == 0.10
        assert loose.utilization_abs == Tolerances().utilization_abs

    def test_discrepancy_error_is_relative_for_rates(self):
        d = Discrepancy(kind="departure-rate", operator="x",
                        expected=100.0, actual=110.0, tolerance=0.02)
        assert d.error == pytest.approx(0.10)

    def test_discrepancy_error_is_absolute_for_utilization(self):
        d = Discrepancy(kind="utilization", operator="x",
                        expected=0.5, actual=0.7, tolerance=0.05)
        assert d.error == pytest.approx(0.2)
