"""Unit tests for the stateless operators and the base abstractions."""

import math

import pytest

from repro.core.graph import StateKind
from repro.operators.base import (
    Operator,
    Record,
    WrappedItem,
    destination_of,
    instantiate_operator,
    load_operator_class,
    unwrap,
)
from repro.operators.basic import (
    ArithmeticMap,
    FieldMap,
    Filter,
    FlatMap,
    Identity,
    Projection,
    Tokenizer,
    spin_work,
)


class TestRecord:
    def test_behaves_like_dict(self):
        record = Record({"a": 1})
        record["b"] = 2
        assert record["a"] == 1 and record["b"] == 2

    def test_copy_with_does_not_mutate_original(self):
        record = Record({"a": 1})
        derived = record.copy_with(a=2, b=3)
        assert record == {"a": 1}
        assert derived == {"a": 2, "b": 3}
        assert isinstance(derived, Record)


class TestWrappedItem:
    def test_unwrap_transparent_for_plain_items(self):
        assert unwrap(42) == 42

    def test_unwrap_extracts_payload(self):
        assert unwrap(WrappedItem(payload="x", destination="op2")) == "x"

    def test_destination_of(self):
        assert destination_of(WrappedItem("x", "op2")) == "op2"
        assert destination_of("x") is None
        assert destination_of(WrappedItem("x")) is None


class TestLoading:
    def test_load_operator_class(self):
        cls = load_operator_class("repro.operators.basic.Identity")
        assert cls is Identity

    def test_instantiate_with_args(self):
        operator = instantiate_operator("repro.operators.basic.FlatMap",
                                        {"fanout": 3})
        assert isinstance(operator, FlatMap)
        assert operator.fanout == 3

    def test_bad_path_rejected(self):
        with pytest.raises(ImportError):
            load_operator_class("notdotted")

    def test_missing_attribute_rejected(self):
        with pytest.raises(ImportError, match="no attribute"):
            load_operator_class("repro.operators.basic.Ghost")

    def test_non_operator_rejected(self):
        with pytest.raises(ImportError, match="not an Operator"):
            load_operator_class("repro.operators.base.Record")


class TestIdentity:
    def test_passthrough(self):
        record = Record({"value": 1.0})
        assert Identity().operator_function(record) == [record]

    def test_metadata(self):
        op = Identity()
        assert op.state is StateKind.STATELESS
        assert op.gain == 1.0


class TestFieldMap:
    def test_default_function_applied(self):
        out = FieldMap("value").operator_function(Record({"value": 2.0}))
        assert out[0]["value"] == 5.0  # 2 * 2 + 1

    def test_custom_function(self):
        op = FieldMap("value", fn=lambda v: v * 10)
        assert op.operator_function(Record({"value": 3.0}))[0]["value"] == 30.0

    def test_missing_field_defaults_to_zero(self):
        out = FieldMap("value").operator_function(Record({}))
        assert out[0]["value"] == 1.0

    def test_original_not_mutated(self):
        record = Record({"value": 2.0})
        FieldMap("value").operator_function(record)
        assert record["value"] == 2.0


class TestArithmeticMap:
    def test_touches_all_fields(self):
        op = ArithmeticMap(fields=("a", "b"))
        out = op.operator_function(Record({"a": 4.0, "b": 9.0}))[0]
        assert math.isclose(out["a"], math.sqrt(4.0) + math.sin(4.0))
        assert math.isclose(out["b"], math.sqrt(9.0) + math.sin(9.0))

    def test_requires_fields(self):
        with pytest.raises(ValueError, match="at least one field"):
            ArithmeticMap(fields=())


class TestFilter:
    def test_threshold_semantics(self):
        op = Filter(threshold=0.5)
        assert op.operator_function(Record({"value": 0.7})) != []
        assert op.operator_function(Record({"value": 0.3})) == []

    def test_output_selectivity_documents_pass_rate(self):
        assert Filter(pass_rate=0.25).output_selectivity == 0.25

    def test_custom_predicate(self):
        op = Filter(predicate=lambda item: item.get("keep", False))
        assert op.operator_function(Record({"keep": True})) != []
        assert op.operator_function(Record({"keep": False})) == []

    def test_empirical_pass_rate_close_to_declared(self):
        import random
        rng = random.Random(5)
        op = Filter(threshold=0.4, pass_rate=0.6)
        passed = sum(
            1 for _ in range(5000)
            if op.operator_function(Record({"value": rng.random()}))
        )
        assert abs(passed / 5000 - 0.6) < 0.03


class TestFlatMap:
    def test_emits_fanout_items(self):
        out = FlatMap(fanout=3).operator_function(Record({"value": 1.0}))
        assert len(out) == 3
        assert [item["fragment"] for item in out] == [0, 1, 2]

    def test_gain_equals_fanout(self):
        assert FlatMap(fanout=4).gain == 4.0

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError, match="fanout"):
            FlatMap(fanout=0)


class TestProjection:
    def test_keeps_only_selected_fields(self):
        op = Projection(fields=("a", "c"))
        out = op.operator_function(Record({"a": 1, "b": 2, "c": 3}))[0]
        assert out == {"a": 1, "c": 3}

    def test_missing_fields_skipped(self):
        out = Projection(fields=("a", "z")).operator_function(Record({"a": 1}))
        assert out[0] == {"a": 1}

    def test_requires_fields(self):
        with pytest.raises(ValueError):
            Projection(fields=())


class TestTokenizer:
    def test_one_item_per_token(self):
        out = Tokenizer().operator_function(Record({"text": "a b c"}))
        assert [item["token"] for item in out] == ["a", "b", "c"]

    def test_empty_text_emits_nothing(self):
        assert Tokenizer().operator_function(Record({"text": ""})) == []


class TestSpinWork:
    def test_returns_accumulator(self):
        assert spin_work(100) > 0.0

    def test_zero_iterations_cheap(self):
        assert spin_work(0) == 0.0


class TestDescribe:
    def test_mentions_class_state_and_selectivity(self):
        text = FlatMap(fanout=2).describe()
        assert "FlatMap" in text
        assert "stateless" in text
        assert "1/2" in text
