"""Unit tests for count-based sliding windows."""

import pytest

from repro.operators.window import CountSlidingWindow


class TestFiring:
    def test_fires_every_slide(self):
        window = CountSlidingWindow(length=5, slide=2)
        fires = [window.push(i) for i in range(6)]
        assert [f is not None for f in fires] == [
            False, True, False, True, False, True
        ]

    def test_slide_one_fires_always(self):
        window = CountSlidingWindow(length=3, slide=1)
        assert all(window.push(i) is not None for i in range(5))

    def test_window_content_is_last_length_items(self):
        window = CountSlidingWindow(length=3, slide=3)
        window.push(1), window.push(2)
        fired = window.push(3)
        assert fired == [1, 2, 3]
        window.push(4), window.push(5)
        assert window.push(6) == [4, 5, 6]

    def test_partial_window_fires_before_full(self):
        window = CountSlidingWindow(length=100, slide=2)
        assert window.push(1) is None
        assert window.push(2) == [1, 2]

    def test_eviction_bounded_by_length(self):
        window = CountSlidingWindow(length=2, slide=1)
        for i in range(10):
            fired = window.push(i)
        assert fired == [8, 9]
        assert len(window) == 2


class TestApi:
    def test_content_without_firing(self):
        window = CountSlidingWindow(length=4, slide=4)
        window.push("a")
        assert window.content() == ["a"]

    def test_full_property(self):
        window = CountSlidingWindow(length=2, slide=1)
        assert not window.full
        window.push(1), window.push(2)
        assert window.full

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            CountSlidingWindow(length=0, slide=1)

    def test_invalid_slide_rejected(self):
        with pytest.raises(ValueError, match="slide"):
            CountSlidingWindow(length=5, slide=0)
