"""Tests for event-time and rate-control operators."""

import pytest

from repro.operators.base import Record
from repro.operators.temporal import Debounce, EventTimeTumblingWindow, Sampler


def feed_times(operator, pairs):
    """Push (time, value) pairs through an operator, collecting output."""
    outputs = []
    for timestamp, value in pairs:
        outputs.extend(operator.operator_function(
            Record({"sequence": timestamp, "value": value})))
    return outputs


class TestEventTimeWindow:
    def test_bucket_emitted_on_rollover(self):
        window = EventTimeTumblingWindow(width=10.0)
        outputs = feed_times(window, [(1, 2.0), (5, 4.0), (12, 9.0)])
        assert len(outputs) == 1
        assert outputs[0]["window_start"] == 0.0
        assert outputs[0]["window_end"] == 10.0
        assert outputs[0]["aggregate"] == pytest.approx(3.0)
        assert outputs[0]["count"] == 2

    def test_multiple_buckets(self):
        window = EventTimeTumblingWindow(width=5.0)
        outputs = feed_times(window, [(0, 1.0), (6, 2.0), (11, 3.0),
                                      (16, 4.0)])
        assert [o["window_start"] for o in outputs] == [0.0, 5.0, 10.0]

    def test_gap_skips_empty_buckets(self):
        window = EventTimeTumblingWindow(width=1.0)
        outputs = feed_times(window, [(0, 1.0), (100, 2.0)])
        # Only the populated bucket is emitted, not the 99 empty ones.
        assert len(outputs) == 1

    def test_late_records_dropped_and_counted(self):
        window = EventTimeTumblingWindow(width=10.0)
        feed_times(window, [(5, 1.0), (15, 2.0)])   # bucket 0 emitted
        outputs = feed_times(window, [(3, 9.0)])    # late for bucket 0
        assert outputs == []
        assert window.late_records == 1

    def test_custom_aggregator(self):
        window = EventTimeTumblingWindow(width=10.0, aggregator=max)
        outputs = feed_times(window, [(1, 3.0), (2, 8.0), (12, 0.0)])
        assert outputs[0]["aggregate"] == 8.0

    def test_invalid_width(self):
        with pytest.raises(ValueError, match="width"):
            EventTimeTumblingWindow(width=0.0)

    def test_final_partial_bucket_discarded_on_stop(self):
        window = EventTimeTumblingWindow(width=10.0)
        feed_times(window, [(1, 1.0)])
        window.on_stop()
        outputs = feed_times(window, [(25, 2.0)])
        assert outputs == []  # the flushed bucket had been discarded


class TestDebounce:
    def test_first_record_always_passes(self):
        debounce = Debounce(delta=1.0)
        assert debounce.operator_function(
            Record({"key": "a", "value": 5.0})) != []

    def test_small_changes_suppressed(self):
        debounce = Debounce(delta=1.0)
        debounce.operator_function(Record({"key": "a", "value": 5.0}))
        assert debounce.operator_function(
            Record({"key": "a", "value": 5.5})) == []

    def test_large_change_passes_and_rebases(self):
        debounce = Debounce(delta=1.0)
        debounce.operator_function(Record({"key": "a", "value": 5.0}))
        assert debounce.operator_function(
            Record({"key": "a", "value": 7.0})) != []
        # The reference moved to 7.0: 6.5 is now within delta.
        assert debounce.operator_function(
            Record({"key": "a", "value": 6.5})) == []

    def test_keys_tracked_independently(self):
        debounce = Debounce(delta=1.0)
        debounce.operator_function(Record({"key": "a", "value": 5.0}))
        assert debounce.operator_function(
            Record({"key": "b", "value": 5.0})) != []

    def test_drift_below_delta_never_forwards(self):
        # A slow drift that never exceeds delta from the last forwarded
        # value in one step is suppressed until the cumulative change
        # exceeds the threshold.
        debounce = Debounce(delta=1.0)
        debounce.operator_function(Record({"key": "a", "value": 0.0}))
        passed = sum(
            1 for step in range(1, 11)
            if debounce.operator_function(
                Record({"key": "a", "value": step * 0.3})) != []
        )
        # 0.3/step drift crosses the 1.0 threshold every ~4 steps.
        assert 1 <= passed <= 3

    def test_invalid_delta(self):
        with pytest.raises(ValueError, match="delta"):
            Debounce(delta=-0.1)

    def test_partitioned_state_kind(self):
        from repro.core.graph import StateKind
        assert Debounce().state is StateKind.PARTITIONED


class TestSampler:
    def test_keeps_every_nth(self):
        sampler = Sampler(every=3)
        kept = [i for i in range(9)
                if sampler.operator_function(i) != []]
        assert kept == [2, 5, 8]

    def test_selectivity_documents_rate(self):
        assert Sampler(every=4).output_selectivity == 0.25

    def test_every_one_passes_all(self):
        sampler = Sampler(every=1)
        assert all(sampler.operator_function(i) == [i] for i in range(5))

    def test_invalid_every(self):
        with pytest.raises(ValueError, match="every"):
            Sampler(every=0)
