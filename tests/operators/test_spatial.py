"""Unit tests for skyline and top-k operators."""

import pytest

from repro.core.graph import StateKind
from repro.operators.base import Record
from repro.operators.spatial import SkylineQuery, TopK, dominates, skyline


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_incomparable_points(self):
        assert not dominates((1.0, 3.0), (3.0, 1.0))
        assert not dominates((3.0, 1.0), (1.0, 3.0))

    def test_partial_tie_dominates(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))


class TestSkylineFunction:
    def test_single_point(self):
        assert skyline([(1.0, 1.0)]) == [(1.0, 1.0)]

    def test_dominated_points_removed(self):
        points = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0), (3.0, 3.0)]
        frontier = skyline(points)
        assert (3.0, 3.0) not in frontier
        assert set(frontier) == {(1.0, 4.0), (2.0, 2.0), (4.0, 1.0)}

    def test_later_point_can_evict_earlier(self):
        frontier = skyline([(5.0, 5.0), (1.0, 1.0)])
        assert frontier == [(1.0, 1.0)]

    def test_empty(self):
        assert skyline([]) == []


class TestSkylineQuery:
    def test_emits_frontier_every_slide(self):
        op = SkylineQuery(dimensions=("x", "y"), length=4, slide=4)
        records = [Record({"x": x, "y": y}) for x, y in
                   [(1.0, 4.0), (2.0, 2.0), (3.0, 3.0), (4.0, 1.0)]]
        outputs = []
        for record in records:
            outputs.extend(op.operator_function(record))
        assert len(outputs) == 1
        assert outputs[0]["size"] == 3

    def test_stateful(self):
        assert SkylineQuery().state is StateKind.STATEFUL

    def test_requires_dimensions(self):
        with pytest.raises(ValueError, match="dimension"):
            SkylineQuery(dimensions=())

    def test_input_selectivity_is_slide(self):
        assert SkylineQuery(slide=10).input_selectivity == 10.0


class TestTopK:
    def test_returns_k_largest(self):
        op = TopK(k=2, length=5, slide=5)
        outputs = []
        for value in [3.0, 9.0, 1.0, 7.0, 5.0]:
            outputs.extend(op.operator_function(Record({"value": value})))
        assert outputs[0]["topk"] == [9.0, 7.0]

    def test_window_smaller_than_k(self):
        op = TopK(k=10, length=3, slide=3)
        outputs = []
        for value in [1.0, 2.0, 3.0]:
            outputs.extend(op.operator_function(Record({"value": value})))
        assert outputs[0]["topk"] == [3.0, 2.0, 1.0]

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError, match="k must be"):
            TopK(k=0)

    def test_sliding_updates_result(self):
        op = TopK(k=1, length=2, slide=2)
        first = op.operator_function(Record({"value": 5.0}))
        out1 = op.operator_function(Record({"value": 9.0}))
        op.operator_function(Record({"value": 1.0}))
        out2 = op.operator_function(Record({"value": 2.0}))
        assert first == []
        assert out1[0]["topk"] == [9.0]
        assert out2[0]["topk"] == [2.0]
