"""Unit tests for sources and sinks."""

import pytest

from repro.operators.base import Record
from repro.operators.source_sink import (
    CollectingSink,
    CountingSink,
    GeneratorSource,
    IterableSource,
)


class TestGeneratorSource:
    def test_default_factory_produces_records(self):
        source = GeneratorSource(seed=3)
        out = source.operator_function(0)
        assert len(out) == 1
        assert {"sequence", "value", "key"} <= set(out[0])

    def test_reproducible_under_seed(self):
        a = [GeneratorSource(seed=5).operator_function(i)[0]["value"]
             for i in range(10)]
        b = [GeneratorSource(seed=5).operator_function(i)[0]["value"]
             for i in range(10)]
        assert a == b

    def test_custom_factory(self):
        source = GeneratorSource(factory=lambda seq, rng: Record({"n": seq}))
        assert source.operator_function(7)[0] == {"n": 7}

    def test_sequence_passthrough(self):
        out = GeneratorSource(seed=1).operator_function(42)
        assert out[0]["sequence"] == 42


class TestIterableSource:
    def test_replays_items_in_order(self):
        source = IterableSource([1, 2, 3])
        values = [source.operator_function(None) for _ in range(4)]
        assert values == [[1], [2], [3], []]

    def test_exhausted_flag(self):
        source = IterableSource([1])
        source.operator_function(None)
        assert not source.exhausted
        source.operator_function(None)
        assert source.exhausted


class TestSinks:
    def test_counting_sink(self):
        sink = CountingSink()
        for i in range(5):
            assert sink.operator_function(i) == []
        assert sink.count == 5
        assert sink.output_selectivity == 0.0

    def test_collecting_sink_retains_items(self):
        sink = CollectingSink(capacity=3)
        for i in range(5):
            sink.operator_function(i)
        assert sink.items == [0, 1, 2]
        assert sink.count == 5

    def test_collecting_sink_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            CollectingSink(capacity=0)
