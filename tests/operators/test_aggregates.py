"""Unit tests for the windowed aggregation operators."""

import math

import pytest

from repro.core.graph import StateKind
from repro.operators.aggregates import (
    STATISTICS,
    KeyedWindowedAggregate,
    WeightedMovingAverage,
    WindowedMax,
    WindowedMean,
    WindowedMin,
    WindowedQuantiles,
    WindowedStdDev,
    WindowedSum,
)
from repro.operators.base import Record


def feed(operator, values, field="value"):
    """Push values through an operator, returning all emitted records."""
    outputs = []
    for value in values:
        outputs.extend(operator.operator_function(Record({field: value})))
    return outputs


class TestWindowedAggregates:
    def test_sum_over_window(self):
        op = WindowedSum(length=3, slide=3)
        outputs = feed(op, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert [o["aggregate"] for o in outputs] == [6.0, 15.0]

    def test_max_and_min(self):
        assert feed(WindowedMax(length=4, slide=4),
                    [3.0, 9.0, 1.0, 5.0])[0]["aggregate"] == 9.0
        assert feed(WindowedMin(length=4, slide=4),
                    [3.0, 9.0, 1.0, 5.0])[0]["aggregate"] == 1.0

    def test_mean(self):
        out = feed(WindowedMean(length=4, slide=4), [1.0, 2.0, 3.0, 4.0])
        assert math.isclose(out[0]["aggregate"], 2.5)

    def test_weighted_moving_average_weights_recent(self):
        out = feed(WeightedMovingAverage(length=3, slide=3), [1.0, 1.0, 10.0])
        # Weights 1,2,3: (1 + 2 + 30) / 6 = 5.5 > plain mean 4.0.
        assert math.isclose(out[0]["aggregate"], 5.5)

    def test_stddev(self):
        out = feed(WindowedStdDev(length=4, slide=4), [2.0, 2.0, 2.0, 2.0])
        assert math.isclose(out[0]["aggregate"], 0.0)
        out = feed(WindowedStdDev(length=2, slide=2), [0.0, 2.0])
        assert math.isclose(out[0]["aggregate"], 1.0)

    def test_quantiles(self):
        op = WindowedQuantiles(length=100, slide=100, quantiles=(0.5, 0.9))
        out = feed(op, [float(i) for i in range(100)])
        result = out[0]["aggregate"]
        assert result["q0.5"] == 50.0
        assert result["q0.9"] == 90.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError, match="quantile"):
            WindowedQuantiles(quantiles=(1.5,))

    def test_slide_sets_input_selectivity(self):
        assert WindowedSum(length=100, slide=10).input_selectivity == 10.0

    def test_stateful_kind(self):
        assert WindowedSum().state is StateKind.STATEFUL

    def test_no_output_between_slides(self):
        op = WindowedSum(length=10, slide=5)
        assert op.operator_function(Record({"value": 1.0})) == []

    def test_output_record_metadata(self):
        out = feed(WindowedSum(length=2, slide=2), [1.0, 2.0])[0]
        assert out["kind"] == "WindowedSum"
        assert out["window_size"] == 2


class TestKeyedAggregate:
    def test_partitioned_kind(self):
        assert KeyedWindowedAggregate().state is StateKind.PARTITIONED

    def test_independent_windows_per_key(self):
        op = KeyedWindowedAggregate(length=2, slide=2, statistic="sum")
        outputs = []
        for key, value in [("a", 1.0), ("b", 10.0), ("a", 2.0), ("b", 20.0)]:
            outputs.extend(
                op.operator_function(Record({"key": key, "value": value}))
            )
        by_key = {o["key"]: o["aggregate"] for o in outputs}
        assert by_key == {"a": 3.0, "b": 30.0}

    def test_key_of_extracts_field(self):
        op = KeyedWindowedAggregate(key_field="symbol")
        assert op.key_of(Record({"symbol": "ACME"})) == "ACME"
        assert op.key_of(Record({})) is None

    def test_named_statistics(self):
        for name in STATISTICS:
            op = KeyedWindowedAggregate(length=3, slide=3, statistic=name)
            out = []
            for value in [1.0, 2.0, 6.0]:
                out.extend(op.operator_function(
                    Record({"key": "k", "value": value})))
            assert len(out) == 1

    def test_median_statistic(self):
        op = KeyedWindowedAggregate(length=3, slide=3, statistic="median")
        out = feed_keyed(op, [5.0, 1.0, 3.0])
        assert out[0]["aggregate"] == 3.0

    def test_unknown_statistic_rejected(self):
        with pytest.raises(ValueError, match="unknown statistic"):
            KeyedWindowedAggregate(statistic="mode")

    def test_custom_aggregator_wins(self):
        op = KeyedWindowedAggregate(length=2, slide=2,
                                    aggregator=lambda vs: len(vs))
        assert feed_keyed(op, [7.0, 8.0])[0]["aggregate"] == 2


def feed_keyed(operator, values, key="k"):
    outputs = []
    for value in values:
        outputs.extend(
            operator.operator_function(Record({"key": key, "value": value}))
        )
    return outputs
