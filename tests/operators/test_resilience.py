"""Retry-with-backoff wrapper for transient side-effect failures."""

import pytest

from repro.operators.base import Operator
from repro.operators.basic import Identity
from repro.operators.resilience import RetryingOperator, RetryPolicy
from repro.runtime.supervision import OperatorCrash, PoisonedTuple


class Flaky(Operator):
    """Fails the first ``failures`` invocations of each item, then works."""

    def __init__(self, failures=2, error=ConnectionError):
        self.failures = failures
        self.error = error
        self.calls = 0

    def operator_function(self, item):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error("endpoint briefly unavailable")
        return [item]


def wrap(inner, **policy_kwargs):
    sleeps = []
    policy = RetryPolicy(**policy_kwargs)
    operator = RetryingOperator(inner, policy, seed=5,
                                sleep=sleeps.append)
    return operator, sleeps


class TestRetryPolicy:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)

    def test_backoff_grows_then_caps(self):
        import random
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.3, jitter=0.0)
        rng = random.Random(1)
        assert policy.delay(1, rng) == pytest.approx(0.1)
        assert policy.delay(2, rng) == pytest.approx(0.2)
        assert policy.delay(3, rng) == pytest.approx(0.3)
        assert policy.delay(9, rng) == pytest.approx(0.3)

    def test_jitter_is_seeded_and_bounded(self):
        import random
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5)
        a = [policy.delay(1, random.Random(7)) for _ in range(3)]
        b = [policy.delay(1, random.Random(7)) for _ in range(3)]
        assert a == b  # reproducible
        assert all(0.1 <= d <= 0.1 * 1.5 for d in a)

    def test_injected_faults_are_never_transient(self):
        policy = RetryPolicy()
        assert not policy.is_transient(OperatorCrash("injected"))
        assert not policy.is_transient(PoisonedTuple("injected"))
        assert policy.is_transient(ConnectionError("blip"))


class TestRetryingOperator:
    def test_transient_failure_recovers(self):
        operator, sleeps = wrap(Flaky(failures=2), max_attempts=3,
                                backoff_base=0.01, jitter=0.0)
        assert operator.operator_function({"v": 1}) == [{"v": 1}]
        assert operator.retries == 2
        assert operator.recovered == 1
        assert operator.gave_up == 0
        assert sleeps == pytest.approx([0.01, 0.02])

    def test_budget_exhaustion_propagates_last_error(self):
        operator, sleeps = wrap(Flaky(failures=10), max_attempts=3,
                                jitter=0.0)
        with pytest.raises(ConnectionError):
            operator.operator_function({"v": 1})
        assert operator.retries == 2  # two re-attempts before giving up
        assert operator.gave_up == 1
        assert len(sleeps) == 2

    def test_injected_crash_passes_straight_through(self):
        operator, sleeps = wrap(Flaky(failures=5, error=OperatorCrash),
                                max_attempts=4)
        with pytest.raises(OperatorCrash):
            operator.operator_function({"v": 1})
        assert operator.retries == 0 and sleeps == []
        assert operator.gave_up == 0  # not a transient giving up

    def test_non_retryable_class_passes_through(self):
        operator, sleeps = wrap(Flaky(failures=5, error=KeyError),
                                max_attempts=4, retryable=(IOError,))
        with pytest.raises(KeyError):
            operator.operator_function({"v": 1})
        assert operator.retries == 0 and sleeps == []

    def test_metrics_surface_budget(self):
        operator, _ = wrap(Flaky(failures=1), max_attempts=3, jitter=0.0)
        operator.operator_function({"v": 1})
        assert operator.metrics() == {
            "retries": 1, "gave_up": 0, "recovered": 1, "max_attempts": 3}

    def test_metadata_mirrors_inner(self):
        inner = Identity()
        operator = RetryingOperator(inner)
        assert operator.state is inner.state
        assert operator.output_selectivity == inner.output_selectivity
        assert "Retrying" in operator.describe()

    def test_snapshot_delegates_and_keeps_counters(self):
        operator, _ = wrap(Flaky(failures=1), max_attempts=3, jitter=0.0)
        operator.operator_function({"v": 1})
        snap = operator.snapshot_state()
        operator.restore_state(snap)
        assert operator.retries == 1  # telemetry survives rollback
