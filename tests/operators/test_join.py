"""Unit tests for the windowed join operators."""

import pytest

from repro.core.graph import StateKind
from repro.operators.base import Record
from repro.operators.join import BandJoin, EquiJoin


def record(origin, value, key="k"):
    return Record({"origin": origin, "value": value, "key": key})


class TestBandJoin:
    def test_matching_within_band(self):
        join = BandJoin(left="l", right="r", band=0.5)
        assert join.operator_function(record("l", 1.0)) == []
        matches = join.operator_function(record("r", 1.3))
        assert len(matches) == 1
        assert matches[0]["distance"] == pytest.approx(0.3)

    def test_outside_band_no_match(self):
        join = BandJoin(left="l", right="r", band=0.5)
        join.operator_function(record("l", 1.0))
        assert join.operator_function(record("r", 2.0)) == []

    def test_boundary_inclusive(self):
        join = BandJoin(left="l", right="r", band=0.5)
        join.operator_function(record("l", 1.0))
        assert len(join.operator_function(record("r", 1.5))) == 1

    def test_multiple_matches(self):
        join = BandJoin(left="l", right="r", band=1.0)
        for value in (1.0, 1.5, 2.0):
            join.operator_function(record("l", value))
        assert len(join.operator_function(record("r", 1.5))) == 3

    def test_window_eviction(self):
        join = BandJoin(left="l", right="r", band=10.0, length=2)
        for value in (1.0, 2.0, 3.0):  # 1.0 evicted
            join.operator_function(record("l", value))
        assert len(join.operator_function(record("r", 2.0))) == 2

    def test_same_side_does_not_match_itself(self):
        join = BandJoin(left="l", right="r", band=10.0)
        join.operator_function(record("l", 1.0))
        assert join.operator_function(record("l", 1.0)) == []

    def test_unknown_origin_hashed_to_a_side(self):
        join = BandJoin(band=0.5)
        join.operator_function(record("mystery-a", 1.0))
        # Whatever side it landed on, feeding many distinct origins
        # eventually populates both windows and produces matches.
        total = sum(
            len(join.operator_function(record(f"origin-{i}", 1.0)))
            for i in range(8)
        )
        assert total > 0

    def test_stateful(self):
        assert BandJoin().state is StateKind.STATEFUL

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError, match="band"):
            BandJoin(band=-1.0)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            BandJoin(length=0)


class TestEquiJoin:
    def test_key_match(self):
        join = EquiJoin(left="l", right="r")
        join.operator_function(record("l", 1.0, key="a"))
        matches = join.operator_function(record("r", 2.0, key="a"))
        assert len(matches) == 1
        assert matches[0]["key"] == "a"

    def test_key_mismatch(self):
        join = EquiJoin(left="l", right="r")
        join.operator_function(record("l", 1.0, key="a"))
        assert join.operator_function(record("r", 2.0, key="b")) == []

    def test_left_right_assignment_in_output(self):
        join = EquiJoin(left="l", right="r")
        join.operator_function(record("l", 1.0, key="a"))
        match = join.operator_function(record("r", 2.0, key="a"))[0]
        assert match["left"]["value"] == 1.0
        assert match["right"]["value"] == 2.0

    def test_eviction_removes_index_entries(self):
        join = EquiJoin(left="l", right="r", length=1)
        join.operator_function(record("l", 1.0, key="a"))
        join.operator_function(record("l", 2.0, key="b"))  # evicts key a
        assert join.operator_function(record("r", 3.0, key="a")) == []
        assert len(join.operator_function(record("r", 4.0, key="b"))) == 1

    def test_multiple_matches_same_key(self):
        join = EquiJoin(left="l", right="r")
        join.operator_function(record("l", 1.0, key="a"))
        join.operator_function(record("l", 2.0, key="a"))
        assert len(join.operator_function(record("r", 3.0, key="a"))) == 2
