"""Tests for the reactive-elasticity baseline."""

import pytest

from repro.baselines.elasticity import (
    ElasticityConfig,
    ReactiveController,
    WorkloadPhase,
    run_elastic,
    run_static,
)
from repro.core.graph import Edge, OperatorSpec, StateKind, Topology, TopologyError
from repro.sim.network import SimulationConfig
from tests.conftest import make_pipeline

FAST_SIM = SimulationConfig(items=10_000, seed=3)


class TestValidation:
    def test_phase_validation(self):
        with pytest.raises(TopologyError, match="rate"):
            WorkloadPhase(rate=0.0, duration=1.0)
        with pytest.raises(TopologyError, match="duration"):
            WorkloadPhase(rate=10.0, duration=0.0)

    def test_config_watermarks(self):
        with pytest.raises(TopologyError, match="watermarks"):
            ElasticityConfig(high_watermark=0.3, low_watermark=0.5)

    def test_static_needs_phases(self):
        with pytest.raises(TopologyError, match="phase"):
            run_static(make_pipeline(1.0, 2.0), [])


class TestController:
    def _controller(self, topology=None, **kwargs):
        topology = topology or make_pipeline(1.0, 2.0, 3.0)
        return ReactiveController(topology, ElasticityConfig(**kwargs))

    def test_scales_up_on_high_utilization(self):
        controller = self._controller()
        changed = controller.decide({"op1": 0.95, "op2": 0.5})
        assert changed == ["op1"]
        assert controller.replicas["op1"] == 2

    def test_scales_down_on_low_utilization(self):
        controller = self._controller()
        controller.replicas["op1"] = 4
        changed = controller.decide({"op1": 0.2})
        assert changed == ["op1"]
        assert controller.replicas["op1"] == 3

    def test_never_below_one_replica(self):
        controller = self._controller()
        controller.decide({"op1": 0.0})
        assert controller.replicas["op1"] == 1

    def test_respects_max_replicas(self):
        controller = self._controller(max_replicas=2)
        controller.replicas["op1"] = 2
        assert controller.decide({"op1": 0.99}) == []

    def test_source_never_scaled(self):
        controller = self._controller()
        assert controller.decide({"op0": 0.99}) == []

    def test_stateful_operators_never_scaled(self):
        topology = Topology(
            [OperatorSpec("src", 1e-3),
             OperatorSpec("agg", 4e-3, state=StateKind.STATEFUL)],
            [Edge("src", "agg")],
        )
        controller = ReactiveController(topology, ElasticityConfig())
        assert controller.decide({"agg": 1.0}) == []

    def test_no_scale_down_when_load_would_not_fit(self):
        controller = self._controller()
        controller.replicas["op1"] = 2
        # utilization 0.4 * 2 replicas = 0.8 of one replica: above the
        # high watermark margin -> keep both replicas... 0.8 < 0.9 so it
        # scales down; use 0.48 -> 0.96 aggregate, must not scale down.
        assert controller.decide({"op1": 0.48}) == []
        assert controller.replicas["op1"] == 2


class TestScenarios:
    def test_static_wins_on_stable_workload(self):
        topology = make_pipeline(1.0, 4.0, 2.0)
        phases = [WorkloadPhase(rate=1000.0, duration=8.0)]
        static = run_static(topology, phases, sim_config=FAST_SIM)
        elastic = run_elastic(topology, phases, sim_config=FAST_SIM)
        assert static.items_processed > elastic.items_processed
        assert static.total_downtime == 0.0
        assert elastic.reconfigurations > 0

    def test_elastic_wins_after_workload_shift(self):
        topology = make_pipeline(1.0, 4.0, 2.0)
        phases = [WorkloadPhase(rate=300.0, duration=4.0),
                  WorkloadPhase(rate=1000.0, duration=10.0)]
        static = run_static(topology, phases, planning_rate=300.0,
                            sim_config=FAST_SIM)
        elastic = run_elastic(topology, phases, sim_config=FAST_SIM)
        assert elastic.items_processed > static.items_processed

    def test_elastic_converges_to_static_configuration(self):
        from repro.core.fission import eliminate_bottlenecks
        topology = make_pipeline(1.0, 4.0, 2.0)
        phases = [WorkloadPhase(rate=1000.0, duration=12.0)]
        elastic = run_elastic(topology, phases, sim_config=FAST_SIM)
        final = elastic.steps[-1].replicas
        optimal = eliminate_bottlenecks(
            topology, source_rate=1000.0).replications
        for name, degree in optimal.items():
            assert final[name] >= degree  # at least as parallel

    def test_downtime_accounted(self):
        topology = make_pipeline(1.0, 4.0)
        phases = [WorkloadPhase(rate=1000.0, duration=5.0)]
        config = ElasticityConfig(reconfiguration_downtime=0.5)
        elastic = run_elastic(topology, phases, config=config,
                              sim_config=FAST_SIM)
        assert elastic.total_downtime >= 0.5 * elastic.reconfigurations * 0.5

    def test_static_timeline_has_one_step_per_phase(self):
        topology = make_pipeline(1.0, 2.0)
        phases = [WorkloadPhase(rate=500.0, duration=3.0),
                  WorkloadPhase(rate=800.0, duration=2.0)]
        static = run_static(topology, phases, sim_config=FAST_SIM)
        assert len(static.steps) == 2
        assert static.steps[1].start_time == pytest.approx(3.0)

    def test_mean_throughput(self):
        topology = make_pipeline(1.0, 2.0)
        phases = [WorkloadPhase(rate=400.0, duration=5.0)]
        static = run_static(topology, phases, sim_config=FAST_SIM)
        assert static.mean_throughput(5.0) == pytest.approx(400.0, rel=0.05)
