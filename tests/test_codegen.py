"""Unit and integration tests for SS2Py code generation."""

import subprocess
import sys

import pytest

from repro.codegen.ss2py import CodegenConfig, generate_code, write_code
from repro.core.fusion import apply_fusion
from repro.core.graph import (
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)


def executable_topology():
    return Topology(
        [
            OperatorSpec("src", 4e-3,
                         operator_class="repro.operators.source_sink."
                                        "GeneratorSource"),
            OperatorSpec("flt", 2e-3, output_selectivity=0.6,
                         operator_class="repro.operators.basic.Filter",
                         operator_args={"threshold": 0.4, "pass_rate": 0.6}),
            OperatorSpec("agg", 3e-3, state=StateKind.PARTITIONED,
                         keys=KeyDistribution.zipf(16, 1.1),
                         input_selectivity=5.0,
                         operator_class="repro.operators.aggregates."
                                        "KeyedWindowedAggregate",
                         operator_args={"length": 100, "slide": 5}),
            OperatorSpec("sink", 0.2e-3, output_selectivity=0.0,
                         operator_class="repro.operators.source_sink."
                                        "CountingSink"),
        ],
        [Edge("src", "flt"), Edge("flt", "agg"), Edge("agg", "sink")],
        name="codegen-test",
    )


class TestGeneration:
    def test_code_compiles(self):
        code = generate_code(executable_topology())
        compile(code, "<generated>", "exec")

    def test_topology_literal_reconstructs(self):
        code = generate_code(executable_topology())
        namespace = {}
        exec(compile(code, "<generated>", "exec"), namespace)
        topology = namespace["TOPOLOGY"]
        assert topology.names == executable_topology().names
        assert topology.operator("agg").state is StateKind.PARTITIONED
        assert len(topology.operator("agg").keys) == 16

    def test_factories_built_for_every_vertex(self):
        code = generate_code(executable_topology())
        namespace = {}
        exec(compile(code, "<generated>", "exec"), namespace)
        factories = namespace["make_factories"]()
        assert set(factories) == {"src", "flt", "agg", "sink"}
        from repro.operators.basic import Filter
        from repro.runtime.synthetic import PaddedOperator
        operator = factories["flt"]()
        assert isinstance(operator, PaddedOperator)
        assert isinstance(operator.inner, Filter)

    def test_source_not_padded(self):
        code = generate_code(executable_topology())
        namespace = {}
        exec(compile(code, "<generated>", "exec"), namespace)
        from repro.operators.source_sink import GeneratorSource
        source = namespace["make_factories"]()["src"]()
        assert isinstance(source, GeneratorSource)

    def test_padding_can_be_disabled(self):
        code = generate_code(executable_topology(),
                             config=CodegenConfig(pad_service_times=False))
        assert "PaddedOperator(instantiate_operator" not in code

    def test_missing_operator_class_rejected(self):
        topology = Topology(
            [OperatorSpec("src", 1e-3,
                          operator_class="repro.operators.source_sink."
                                         "GeneratorSource"),
             OperatorSpec("anon", 1e-3)],
            [Edge("src", "anon")],
        )
        with pytest.raises(TopologyError, match="no operator_class"):
            generate_code(topology)

    def test_fused_topology_requires_original(self):
        topology = executable_topology()
        fusion = apply_fusion(topology, ["flt", "agg"], "F")
        with pytest.raises(TopologyError, match="original"):
            generate_code(fusion.fused, fusion_plans=[fusion.plan])

    def test_fused_code_compiles_and_reconstructs_plan(self):
        topology = executable_topology()
        fusion = apply_fusion(topology, ["flt", "agg"], "F")
        code = generate_code(fusion.fused, original=topology,
                             fusion_plans=[fusion.plan])
        namespace = {}
        exec(compile(code, "<generated>", "exec"), namespace)
        plans = namespace["FUSION_PLANS"]
        assert len(plans) == 1
        assert plans[0].members == ("agg", "flt")
        assert plans[0].front_end == "flt"
        factories = namespace["make_factories"]()
        assert {"flt", "agg"} <= set(factories)
        assert "F" not in factories


class TestExecution:
    def test_generated_program_runs_and_reports(self, tmp_path):
        path = tmp_path / "generated.py"
        write_code(str(path), executable_topology(),
                   config=CodegenConfig(duration=0.8))
        completed = subprocess.run(
            [sys.executable, str(path), "--duration", "0.8"],
            capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        assert "predicted throughput" in completed.stdout
        assert "measured throughput" in completed.stdout

    def test_generated_fused_program_runs(self, tmp_path):
        topology = executable_topology()
        fusion = apply_fusion(topology, ["flt", "agg"], "F")
        path = tmp_path / "generated_fused.py"
        write_code(str(path), fusion.fused, original=topology,
                   fusion_plans=[fusion.plan],
                   config=CodegenConfig(duration=0.8))
        completed = subprocess.run(
            [sys.executable, str(path), "--duration", "0.8"],
            capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        assert "measured throughput" in completed.stdout
