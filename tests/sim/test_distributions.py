"""Unit tests for service-time distributions."""

import math
import random
import statistics

import pytest

from repro.sim.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    LogNormal,
    Uniform,
    make_distribution,
)


def sample_mean(dist, n=20_000, seed=9):
    rng = random.Random(seed)
    return statistics.fmean(dist.sample(rng) for _ in range(n))


class TestFamilies:
    def test_deterministic_is_constant(self):
        dist = Deterministic(0.004)
        rng = random.Random(1)
        assert all(dist.sample(rng) == 0.004 for _ in range(10))

    def test_exponential_mean(self):
        assert sample_mean(Exponential(0.01)) == pytest.approx(0.01, rel=0.05)

    def test_uniform_mean_and_bounds(self):
        dist = Uniform(0.01, spread=0.5)
        rng = random.Random(2)
        samples = [dist.sample(rng) for _ in range(1000)]
        assert min(samples) >= 0.005
        assert max(samples) <= 0.015
        assert statistics.fmean(samples) == pytest.approx(0.01, rel=0.05)

    def test_lognormal_mean_and_cv(self):
        dist = LogNormal(0.01, cv=0.5)
        rng = random.Random(3)
        samples = [dist.sample(rng) for _ in range(50_000)]
        mean = statistics.fmean(samples)
        cv = statistics.pstdev(samples) / mean
        assert mean == pytest.approx(0.01, rel=0.05)
        assert cv == pytest.approx(0.5, rel=0.1)

    def test_erlang_mean_and_reduced_variance(self):
        dist = Erlang(0.01, k=4)
        rng = random.Random(4)
        samples = [dist.sample(rng) for _ in range(20_000)]
        mean = statistics.fmean(samples)
        cv = statistics.pstdev(samples) / mean
        assert mean == pytest.approx(0.01, rel=0.05)
        assert cv == pytest.approx(0.5, rel=0.15)  # 1/sqrt(4)

    def test_all_samples_positive(self):
        rng = random.Random(5)
        for dist in (Exponential(1e-4), LogNormal(1e-4), Erlang(1e-4),
                     Uniform(1e-4)):
            assert all(dist.sample(rng) > 0.0 for _ in range(100))


class TestValidation:
    def test_non_positive_mean_rejected(self):
        for cls in (Deterministic, Exponential, LogNormal, Erlang, Uniform):
            with pytest.raises(ValueError, match="mean"):
                cls(0.0)

    def test_uniform_spread_bounds(self):
        with pytest.raises(ValueError, match="spread"):
            Uniform(1.0, spread=1.0)

    def test_lognormal_cv_positive(self):
        with pytest.raises(ValueError, match="cv"):
            LogNormal(1.0, cv=0.0)

    def test_erlang_k_positive(self):
        with pytest.raises(ValueError, match="k"):
            Erlang(1.0, k=0)


class TestFactory:
    def test_all_families_constructible(self):
        for family in ("deterministic", "exponential", "uniform",
                       "lognormal", "erlang"):
            dist = make_distribution(family, 0.01)
            assert dist.mean == 0.01

    def test_cv_forwarded(self):
        dist = make_distribution("lognormal", 0.01, cv=0.8)
        assert dist.cv == 0.8

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            make_distribution("pareto", 0.01)

    def test_case_insensitive(self):
        assert isinstance(make_distribution(" Deterministic ", 1.0),
                          Deterministic)
