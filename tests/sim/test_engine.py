"""Unit tests for the discrete-event engine (BAS queueing networks)."""

import math

import pytest

from repro.sim.distributions import Deterministic
from repro.sim.engine import Engine, SimulationError, Station


def make_station(name, mean, capacity=8, servers=1, gain=1.0,
                 is_source=False):
    return Station(
        name=name,
        vertex=name,
        dist=Deterministic(mean),
        gain=gain,
        capacity=capacity,
        n_servers=servers,
        is_source=is_source,
    )


def wire(sender: Station, receiver: Station, probability: float = 1.0):
    sender.add_route(lambda rng, target=receiver: target, probability)


class TestValidation:
    def test_station_capacity_must_be_positive(self):
        with pytest.raises(SimulationError, match="capacity"):
            make_station("a", 1e-3, capacity=0)

    def test_station_needs_servers(self):
        with pytest.raises(SimulationError, match="server"):
            make_station("a", 1e-3, servers=0)

    def test_unknown_routing_mode(self):
        with pytest.raises(SimulationError, match="routing"):
            Engine([make_station("a", 1e-3, is_source=True)], routing="fancy")

    def test_run_needs_positive_horizon(self):
        engine = Engine([make_station("a", 1e-3, is_source=True)])
        with pytest.raises(SimulationError, match="until"):
            engine.run(until=0.0)

    def test_warmup_must_precede_horizon(self):
        engine = Engine([make_station("a", 1e-3, is_source=True)])
        with pytest.raises(SimulationError, match="warmup"):
            engine.run(until=1.0, warmup=1.0)


class TestSingleStage:
    def test_source_rate_matches_service_time(self):
        source = make_station("src", 1e-3, is_source=True)
        engine = Engine([source])
        measurements = engine.run(until=10.0, warmup=1.0)
        rate = measurements.stations["src"].consumption_rate
        assert rate == pytest.approx(1000.0, rel=0.01)

    def test_pipeline_passes_rate_through(self):
        source = make_station("src", 1e-3, is_source=True)
        work = make_station("work", 0.5e-3)
        wire(source, work)
        engine = Engine([source, work])
        m = engine.run(until=10.0, warmup=1.0)
        assert m.stations["work"].arrival_rate == pytest.approx(1000.0,
                                                                rel=0.01)
        assert m.stations["work"].utilization == pytest.approx(0.5, rel=0.05)


class TestBackpressure:
    def test_bottleneck_throttles_source(self):
        source = make_station("src", 1e-3, is_source=True)
        slow = make_station("slow", 4e-3)
        wire(source, slow)
        engine = Engine([source, slow])
        m = engine.run(until=20.0, warmup=4.0)
        assert m.stations["src"].consumption_rate == pytest.approx(250.0,
                                                                   rel=0.02)
        assert m.stations["slow"].utilization == pytest.approx(1.0, rel=0.02)

    def test_source_accumulates_blocked_time(self):
        source = make_station("src", 1e-3, is_source=True)
        slow = make_station("slow", 4e-3)
        wire(source, slow)
        engine = Engine([source, slow])
        m = engine.run(until=20.0, warmup=4.0)
        assert m.stations["src"].blocked_fraction > 0.5

    def test_backpressure_propagates_two_hops(self):
        source = make_station("src", 1e-3, is_source=True)
        mid = make_station("mid", 1e-3)
        slow = make_station("slow", 5e-3)
        wire(source, mid)
        wire(mid, slow)
        engine = Engine([source, mid, slow])
        m = engine.run(until=30.0, warmup=6.0)
        assert m.stations["src"].consumption_rate == pytest.approx(200.0,
                                                                   rel=0.02)
        assert m.stations["mid"].blocked_fraction > 0.5

    def test_multi_server_station_multiplies_capacity(self):
        source = make_station("src", 1e-3, is_source=True)
        par = make_station("par", 3e-3, servers=3)
        wire(source, par)
        engine = Engine([source, par])
        m = engine.run(until=20.0, warmup=4.0)
        assert m.stations["src"].consumption_rate == pytest.approx(1000.0,
                                                                   rel=0.02)

    def test_small_capacity_still_converges(self):
        source = make_station("src", 1e-3, is_source=True, capacity=1)
        slow = make_station("slow", 2e-3, capacity=1)
        wire(source, slow)
        engine = Engine([source, slow])
        m = engine.run(until=20.0, warmup=4.0)
        assert m.stations["src"].consumption_rate == pytest.approx(500.0,
                                                                   rel=0.03)


class TestSelectivity:
    def test_gain_above_one_amplifies(self):
        source = make_station("src", 1e-3, is_source=True, gain=3.0)
        sink = make_station("sink", 0.05e-3)
        wire(source, sink)
        engine = Engine([source, sink])
        m = engine.run(until=10.0, warmup=2.0)
        assert m.stations["sink"].arrival_rate == pytest.approx(3000.0,
                                                                rel=0.02)

    def test_fractional_gain_decimates(self):
        source = make_station("src", 1e-3, is_source=True)
        win = make_station("win", 1e-3, gain=0.1)
        sink = make_station("sink", 0.05e-3)
        wire(source, win)
        wire(win, sink)
        engine = Engine([source, win, sink])
        m = engine.run(until=20.0, warmup=4.0)
        assert m.stations["sink"].arrival_rate == pytest.approx(100.0,
                                                                rel=0.05)

    def test_sink_emissions_counted_without_routes(self):
        source = make_station("src", 1e-3, is_source=True)
        sink = make_station("sink", 0.1e-3)
        wire(source, sink)
        engine = Engine([source, sink])
        m = engine.run(until=10.0, warmup=2.0)
        assert m.stations["sink"].departure_rate == pytest.approx(1000.0,
                                                                  rel=0.02)


class TestRouting:
    def _fanout_network(self, routing, p=0.3):
        source = make_station("src", 1e-3, is_source=True)
        a = make_station("a", 0.1e-3)
        b = make_station("b", 0.1e-3)
        wire(source, a, p)
        wire(source, b, 1.0 - p)
        engine = Engine([source, a, b], seed=7, routing=routing)
        return engine, source

    @pytest.mark.parametrize("routing,tolerance", [
        ("stochastic", 0.05), ("proportional", 0.001),
    ])
    def test_split_matches_probabilities(self, routing, tolerance):
        engine, _ = self._fanout_network(routing)
        m = engine.run(until=20.0, warmup=2.0)
        ratio = (m.stations["a"].arrival_rate /
                 (m.stations["a"].arrival_rate + m.stations["b"].arrival_rate))
        assert abs(ratio - 0.3) < tolerance

    def test_edge_counts_recorded(self):
        engine, source = self._fanout_network("proportional")
        engine.run(until=5.0, warmup=0.5)
        assert len(source.edge_counts) == 2
        assert sum(source.edge_counts) > 0

    def test_proportional_routing_deterministic(self):
        first, _ = self._fanout_network("proportional")
        second, _ = self._fanout_network("proportional")
        m1 = first.run(until=5.0, warmup=1.0)
        m2 = second.run(until=5.0, warmup=1.0)
        assert (m1.stations["a"].arrival_rate
                == m2.stations["a"].arrival_rate)


class TestMeasurements:
    def test_vertex_rates_aggregate_substations(self):
        # 1.6 ms per sub-station: each runs at rho = 0.8, comfortably
        # below saturation (at exactly rho = 1 stochastic routing noise
        # would legitimately shave a few percent off the throughput).
        source = make_station("src", 1e-3, is_source=True)
        part_a = Station("keyed#0", "keyed", Deterministic(1.6e-3), 1.0, 8, 1)
        part_b = Station("keyed#1", "keyed", Deterministic(1.6e-3), 1.0, 8, 1)

        def resolver(rng):
            return part_a if rng.random() < 0.5 else part_b

        source.add_route(resolver, 1.0)
        engine = Engine([source, part_a, part_b], seed=3)
        m = engine.run(until=20.0, warmup=4.0)
        vertices = m.vertex_rates()
        assert set(vertices) == {"src", "keyed"}
        combined = vertices["keyed"].arrival_rate
        assert combined == pytest.approx(1000.0, rel=0.03)

    def test_warmup_excludes_transient(self):
        # With a full warmup snapshot the measured rate ignores the
        # initial burst into empty buffers.
        source = make_station("src", 1e-3, is_source=True)
        slow = make_station("slow", 4e-3, capacity=64)
        wire(source, slow)
        engine = Engine([source, slow])
        m = engine.run(until=40.0, warmup=20.0)
        assert m.stations["src"].consumption_rate == pytest.approx(250.0,
                                                                   rel=0.01)

    def test_duration_reported(self):
        source = make_station("src", 1e-3, is_source=True)
        engine = Engine([source])
        m = engine.run(until=3.0, warmup=1.0)
        assert math.isclose(m.duration, 2.0)


class TestLatencyTracking:
    def _pipeline(self, work_mean, capacity=64):
        source = make_station("src", 1e-3, is_source=True)
        work = make_station("work", work_mean, capacity=capacity)
        sink = make_station("sink", 0.05e-3, capacity=capacity)
        wire(source, work)
        wire(work, sink)
        return Engine([source, work, sink]), sink

    def test_unloaded_latency_is_service_sum(self):
        engine, sink = self._pipeline(0.4e-3)
        m = engine.run(until=10.0, warmup=2.0)
        latency = m.stations["sink"].mean_latency
        # work (0.4 ms) + sink (0.05 ms); queues are empty.
        assert latency == pytest.approx(0.45e-3, rel=0.05)

    def test_saturated_latency_includes_full_buffer(self):
        engine, sink = self._pipeline(4e-3, capacity=16)
        m = engine.run(until=40.0, warmup=20.0)
        latency = m.stations["sink"].mean_latency
        # 16 queued items at 4 ms each dominate: ~64 ms + service.
        assert latency == pytest.approx(16 * 4e-3, rel=0.15)

    def test_wait_measured_at_saturated_station(self):
        engine, _ = self._pipeline(4e-3, capacity=16)
        m = engine.run(until=40.0, warmup=20.0)
        assert m.stations["work"].mean_wait == pytest.approx(
            16 * 4e-3, rel=0.15)

    def test_latency_only_recorded_at_sinks(self):
        engine, _ = self._pipeline(0.4e-3)
        m = engine.run(until=5.0, warmup=1.0)
        assert m.stations["work"].mean_latency is None
        assert m.stations["sink"].latency_samples > 0

    def test_vertex_rates_aggregate_latency(self):
        engine, _ = self._pipeline(0.4e-3)
        m = engine.run(until=5.0, warmup=1.0)
        vertices = m.vertex_rates()
        assert vertices["sink"].mean_latency is not None
        assert vertices["work"].mean_latency is None
