"""Fault injection and supervision inside the discrete-event engine."""

import pytest

from repro.core.cycles import CyclicGraph
from repro.core.graph import Edge, OperatorSpec
from repro.faults import (
    CrashFault,
    FaultPlan,
    MailboxDropFault,
    PoisonFault,
    SlowdownFault,
    SourceHiccup,
    chaos_profile,
)
from repro.runtime.supervision import (
    Directive,
    SupervisionPolicy,
    SupervisorStrategy,
)
from repro.sim.cyclic import simulate_cyclic
from repro.sim.network import SimulationConfig, build_engine, simulate
from tests.conftest import make_pipeline


def sim_config(plan, supervisor=None, items=4_000, **kwargs):
    kwargs.setdefault("warmup_fraction", 0.0)
    return SimulationConfig(items=items, seed=2, fault_plan=plan,
                            supervisor=supervisor, **kwargs)


def strategy(**overrides):
    return SupervisorStrategy(default=SupervisionPolicy(**overrides))


class TestInjectedFaults:
    def test_poison_resumes_crash_restarts(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        plan = FaultPlan(seed=1, poisons=(PoisonFault("op1", 50),),
                         crashes=(CrashFault("op1", 100),))
        result = simulate(topology, sim_config(plan))
        assert result.total_failed() == 2
        assert result.total_restarts() == 1
        assert result.supervision.count("resume") == 1
        assert result.supervision.count("restart") == 1
        assert result.dead_letters == {"op1": 2}

    def test_failed_items_do_not_depart(self):
        # The victim must not be the bottleneck: a saturated station
        # backfills a poisoned slot from its queue and the loss never
        # reaches the sink.
        topology = make_pipeline(2.0, 1.0, 0.5)
        items = 4_000
        plan = FaultPlan(seed=1, poisons=tuple(
            PoisonFault("op1", i) for i in range(100, 110)))
        faulty = simulate(topology, sim_config(plan, items=items))
        clean = simulate(topology, sim_config(None, items=items))
        lost = (clean.vertices["op2"].departure_rate
                - faulty.vertices["op2"].departure_rate)
        window = faulty.measurements.duration
        assert lost * window == pytest.approx(10, abs=3)

    def test_replay_is_deterministic(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        profile = chaos_profile(topology, seed=9, items=4_000)
        config = sim_config(profile.plan, profile.strategy)
        first = simulate(topology, config)
        second = simulate(topology, config)
        # Virtual time: signatures match exactly, times included.
        assert first.supervision.signature() == \
            second.supervision.signature()
        assert first.supervision.signature()  # faults actually fired
        assert first.throughput == second.throughput

    def test_slowdown_window_slows_the_station(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        plan = FaultPlan(seed=1, slowdowns=(
            SlowdownFault("op1", 0, 2_000, 3.0),))
        faulty = simulate(topology, sim_config(plan))
        clean = simulate(topology, sim_config(None))
        assert faulty.throughput < clean.throughput * 0.8

    def test_source_hiccup_pauses_generation(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        plan = FaultPlan(seed=1, hiccups=(SourceHiccup("op0", 100, 2.0),))
        faulty = simulate(topology, sim_config(plan))
        clean = simulate(topology, sim_config(None))
        assert faulty.throughput < clean.throughput

    def test_drop_window_sheds_arrivals(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        plan = FaultPlan(seed=1, drops=(MailboxDropFault("op1", 0, 200),))
        result = simulate(topology, sim_config(plan))
        assert result.total_shed() == 200
        assert result.vertices["op1"].shed == 200

    def test_degradation_tracks_derated_model(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        profile = chaos_profile(topology, seed=4, items=20_000)
        config = sim_config(profile.plan, profile.strategy, items=20_000)
        engine, _ = build_engine(topology, config)
        measurements = engine.run(until=profile.horizon, warmup=0.0)
        measured = measurements.vertex_rates()[topology.source].departure_rate
        assert measured == pytest.approx(profile.derated.throughput, rel=0.15)


class TestStopAndEscalate:
    def test_budget_exhaustion_stops_the_station(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        plan = FaultPlan(seed=1, crashes=(CrashFault("op1", 100),
                                          CrashFault("op1", 200),
                                          CrashFault("op1", 300)))
        supervisor = strategy(on_crash=Directive.RESTART, max_restarts=1,
                              window=1e9, backoff_base=0.01,
                              backoff_max=0.01)
        result = simulate(topology, sim_config(plan, supervisor))
        directives = [e.directive for e in result.supervision.events]
        assert directives == ["restart", "stop"]
        # The diverted station sheds everything after the stop.
        assert result.dead_letters["op1"] > 100
        # Nothing reaches the sink once op1 is gone.
        assert result.vertices["op2"].departure_rate < \
            result.vertices["op0"].departure_rate * 0.5

    def test_stop_without_divert_yields_stall_verdict(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        plan = FaultPlan(seed=1, crashes=(CrashFault("op1", 50),))
        supervisor = strategy(on_crash=Directive.STOP,
                              divert_on_stop=False)
        result = simulate(topology, sim_config(
            plan, supervisor, on_deadlock="report"))
        report = result.deadlock
        assert report is not None
        assert report.verdict == "stall"
        assert report.cycle == ()
        assert any(b.blocked_on == "op1" for b in report.blocked)

    def test_escalate_halts_the_simulation(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        plan = FaultPlan(seed=1, crashes=(CrashFault("op1", 100),))
        supervisor = strategy(on_crash=Directive.ESCALATE)
        result = simulate(topology, sim_config(plan, supervisor))
        assert result.measurements.halted is not None
        assert "op1" in result.measurements.halted
        assert result.supervision.count("escalate") == 1
        # No deadlock verdict: the halt is deliberate, not a stall.
        assert result.deadlock is None


def retry_loop(work_ms=2.0, feedback=0.8):
    operators = [
        OperatorSpec("src", 1e-3),
        OperatorSpec("work", work_ms * 1e-3),
        OperatorSpec("check", 0.3e-3),
        OperatorSpec("sink", 0.05e-3, output_selectivity=0.0),
    ]
    edges = [
        Edge("src", "work"),
        Edge("work", "check"),
        Edge("check", "work", feedback),
        Edge("check", "sink", 1.0 - feedback),
    ]
    return CyclicGraph(operators, edges, name="retry")


class TestDeadlockReporting:
    def test_cyclic_deadlock_reported_instead_of_raised(self):
        result = simulate_cyclic(
            retry_loop(),
            SimulationConfig(items=50_000, seed=5, mailbox_capacity=1,
                             on_deadlock="report"),
        )
        report = result.measurements.deadlock
        assert report is not None
        assert report.verdict == "deadlock"
        assert "work" in report.cycle and "check" in report.cycle

    def test_cyclic_deadlock_still_raises_by_default(self):
        from repro.sim.engine import SimulationError
        with pytest.raises(SimulationError, match="deadlock"):
            simulate_cyclic(
                retry_loop(),
                SimulationConfig(items=50_000, seed=5, mailbox_capacity=1),
            )

    def test_acyclic_run_has_no_verdict(self):
        topology = make_pipeline(1.0, 2.0, 0.5)
        result = simulate(topology, sim_config(None, on_deadlock="report"))
        assert result.deadlock is None
        assert result.measurements.halted is None
