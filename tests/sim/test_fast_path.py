"""Fast event loop vs the reference loop: bit-identical behaviour.

``Engine(fast_path=True)`` inlines the dominant event shape; the
general completion handler remains the executable specification.  The
flag must never change behaviour, so these tests run the same network
through both loops and compare the complete observable state with
exact ``==`` — measurements (floats included), supervision signatures,
dead letters and the final RNG state.
"""

import pytest

from repro.faults import chaos_profile
from repro.instrumentation import ENGINE
from repro.sim.network import SimulationConfig, build_engine
from repro.topology.random_gen import generate_testbed
from tests.conftest import make_diamond, make_fig11


def run_both(topology, config, source_rate=None):
    outcomes = []
    for fast in (True, False):
        engine, rate = build_engine(topology, config,
                                    source_rate=source_rate)
        engine.fast_path = fast
        horizon = config.items / rate
        measurements = engine.run(until=horizon, warmup=horizon * 0.1)
        outcomes.append((engine, measurements))
    return outcomes


def assert_equivalent(topology, config, source_rate=None):
    (fast_engine, fast), (ref_engine, ref) = run_both(
        topology, config, source_rate=source_rate)
    assert fast == ref
    assert fast_engine.events_processed == ref_engine.events_processed
    assert fast_engine.rng.getstate() == ref_engine.rng.getstate()
    assert fast_engine.supervision.signature() == \
        ref_engine.supervision.signature()
    assert fast_engine.dead_letters.counts() == \
        ref_engine.dead_letters.counts()


class TestFastPathEquivalence:
    def test_fig11_stochastic_routing(self):
        assert_equivalent(make_fig11(), SimulationConfig(items=20_000,
                                                         seed=5))

    def test_fig11_proportional_routing(self):
        config = SimulationConfig(items=20_000, seed=5,
                                  routing="proportional")
        assert_equivalent(make_fig11(), config)

    def test_diamond_with_selectivity(self):
        assert_equivalent(make_diamond(), SimulationConfig(items=20_000,
                                                           seed=7))

    @pytest.mark.parametrize("seed", [0, 3])
    def test_testbed_backpressured(self, seed):
        topology = generate_testbed(4, seed=42)[seed]
        assert_equivalent(topology, SimulationConfig(items=10_000, seed=9))

    def test_load_shedding(self):
        config = SimulationConfig(items=20_000, seed=5,
                                  backpressure=False)
        assert_equivalent(make_fig11(), config)

    def test_chaos_run_matches_reference(self):
        topology = make_fig11()
        profile = chaos_profile(topology, seed=11, items=10_000)
        config = SimulationConfig(items=10_000, seed=11,
                                  fault_plan=profile.plan,
                                  supervisor=profile.strategy)
        assert_equivalent(topology, config)

    def test_fast_loop_actually_engages(self):
        before = ENGINE.snapshot()
        config = SimulationConfig(items=5_000, seed=5)
        engine, rate = build_engine(make_fig11(), config)
        engine.run(until=5_000 / rate, warmup=0.0)
        delta = ENGINE.since(before)
        assert delta.fast_events > 0
        assert delta.fast_events + delta.slow_events == delta.events
