"""Integration tests: abstract topologies on the discrete-event backend."""

import math

import pytest

from repro.core.fission import eliminate_bottlenecks
from repro.core.fusion import apply_fusion
from repro.core.graph import (
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)
from repro.core.steady_state import analyze
from repro.sim.network import (
    SimulationConfig,
    build_engine,
    measured_edge_probabilities,
    simulate,
)
from tests.conftest import make_fig11, make_pipeline


FAST = SimulationConfig(items=40_000, seed=3)


class TestPredictionAgreement:
    def test_clean_pipeline(self):
        topology = make_pipeline(1.0, 0.7, 0.4)
        predicted = analyze(topology)
        measured = simulate(topology, FAST)
        assert measured.throughput_error(predicted) < 0.01

    def test_bottlenecked_pipeline(self):
        topology = make_pipeline(1.0, 2.5, 0.4)
        predicted = analyze(topology)
        measured = simulate(topology, FAST)
        assert measured.throughput_error(predicted) < 0.01

    def test_fig11(self, fig11_table1):
        predicted = analyze(fig11_table1)
        measured = simulate(fig11_table1, FAST)
        assert measured.throughput_error(predicted) < 0.01

    def test_fused_fig11_table2(self, fig11_table2):
        fusion = apply_fusion(fig11_table2, ["op3", "op4", "op5"], "F")
        measured = simulate(fusion.fused, FAST)
        assert measured.throughput_error(fusion.analysis_after) < 0.02

    def test_per_operator_departures(self, fig11_table1):
        predicted = analyze(fig11_table1)
        measured = simulate(fig11_table1, SimulationConfig(items=100_000))
        errors = measured.departure_errors(predicted)
        assert set(errors) == set(fig11_table1.names)
        assert max(errors.values()) < 0.05

    def test_selectivity_topology(self):
        specs = [
            OperatorSpec("src", 1e-3),
            OperatorSpec("fm", 0.2e-3, output_selectivity=3.0),
            OperatorSpec("win", 0.2e-3, input_selectivity=10.0),
            OperatorSpec("sink", 0.05e-3, output_selectivity=0.0),
        ]
        edges = [Edge("src", "fm"), Edge("fm", "win"), Edge("win", "sink")]
        topology = Topology(specs, edges)
        predicted = analyze(topology)
        measured = simulate(topology, FAST)
        assert measured.throughput_error(predicted) < 0.01
        assert measured.departure_rate("win") == pytest.approx(
            predicted.departure_rate("win"), rel=0.05
        )


class TestReplication:
    def test_stateless_replicas_measured(self):
        topology = make_pipeline(1.0, 3.0)
        result = eliminate_bottlenecks(topology)
        measured = simulate(result.optimized, FAST)
        assert measured.throughput == pytest.approx(1000.0, rel=0.02)

    def test_partitioned_replicas_split_by_shares(self):
        keys = KeyDistribution.uniform(99)
        spec = OperatorSpec("keyed", 2.5e-3, state=StateKind.PARTITIONED,
                            keys=keys, replication=3)
        topology = Topology(
            [OperatorSpec("src", 1e-3), spec], [Edge("src", "keyed")]
        )
        measured = simulate(topology, FAST)
        # Three sub-stations, each ~1/3 of the load.
        substations = [
            m for m in measured.measurements.stations.values()
            if m.vertex == "keyed"
        ]
        assert len(substations) == 3
        total = sum(m.arrival_rate for m in substations)
        for m in substations:
            assert m.arrival_rate / total == pytest.approx(1 / 3, abs=0.02)

    def test_skewed_partitioned_replica_is_hotspot(self):
        keys = KeyDistribution({"hot": 0.6, "a": 0.2, "b": 0.2})
        spec = OperatorSpec("keyed", 1e-3, state=StateKind.PARTITIONED,
                            keys=keys, replication=2)
        topology = Topology(
            [OperatorSpec("src", 2e-3), spec], [Edge("src", "keyed")]
        )
        measured = simulate(topology, FAST)
        utils = [m.utilization
                 for m in measured.measurements.stations.values()
                 if m.vertex == "keyed"]
        # Shares are 0.6 / 0.4, so the hot replica works ~1.5x harder.
        assert max(utils) == pytest.approx(1.5 * min(utils), rel=0.1)


class TestConfiguration:
    def test_invalid_source_rate_rejected(self, pipeline3):
        with pytest.raises(TopologyError, match="source rate"):
            simulate(pipeline3, FAST, source_rate=-5.0)

    def test_explicit_source_rate(self, pipeline3):
        measured = simulate(pipeline3, FAST, source_rate=200.0)
        assert measured.throughput == pytest.approx(200.0, rel=0.02)

    def test_seed_reproducibility(self, fig11_table1):
        a = simulate(fig11_table1, SimulationConfig(items=20_000, seed=5))
        b = simulate(fig11_table1, SimulationConfig(items=20_000, seed=5))
        for name in fig11_table1.names:
            assert a.departure_rate(name) == b.departure_rate(name)

    def test_exponential_services_still_converge(self, fig11_table1):
        config = SimulationConfig(items=100_000, seed=5,
                                  service_family="exponential")
        predicted = analyze(fig11_table1)
        measured = simulate(fig11_table1, config)
        # Stochastic services blur the fluid model slightly; flow
        # conservation still holds within a few percent.
        assert measured.throughput_error(predicted) < 0.08

    def test_build_engine_returns_rate(self, pipeline3):
        engine, rate = build_engine(pipeline3, FAST)
        assert math.isclose(rate, 1000.0)
        assert len(engine.stations) == 3


class TestEdgeProbabilityMeasurement:
    def test_measured_probabilities_close_to_declared(self, fig11_table1):
        measured = simulate(fig11_table1, SimulationConfig(items=100_000))
        probabilities = measured_edge_probabilities(measured)
        for edge in fig11_table1.edges:
            declared = edge.probability
            empirical = probabilities[(edge.source, edge.target)]
            assert empirical == pytest.approx(declared, abs=0.02)

    def test_proportional_routing_is_exact(self, fig11_table1):
        config = SimulationConfig(items=50_000, routing="proportional")
        measured = simulate(fig11_table1, config)
        probabilities = measured_edge_probabilities(measured)
        for edge in fig11_table1.edges:
            assert probabilities[(edge.source, edge.target)] == pytest.approx(
                edge.probability, abs=0.002
            )
