"""Property-based tests (hypothesis) for the core invariants.

Random topologies come from the Algorithm 5 generator driven by a
hypothesis-chosen seed: every property therefore holds over the same
population the paper's evaluation samples from.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.fission import apply_replica_bound, eliminate_bottlenecks
from repro.core.fusion import FusionError, plan_fusion, validate_fusion
from repro.core.graph import KeyDistribution, StateKind
from repro.core.partitioning import (
    consistent_hash_partitioning,
    greedy_partitioning,
)
from repro.core.steady_state import RHO_TOLERANCE, analyze
from repro.operators.window import CountSlidingWindow
from repro.topology.random_gen import RandomTopologyGenerator, zipf_probabilities
from repro.topology.xmlio import parse_topology, topology_to_xml

SEEDS = st.integers(min_value=0, max_value=2_000)
RELAXED = settings(max_examples=40, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def random_topology(seed):
    return RandomTopologyGenerator(seed=seed).generate(name=f"prop-{seed}")


key_distributions = st.dictionaries(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    min_size=1, max_size=32,
).map(lambda freqs: KeyDistribution(
    {k: v / sum(freqs.values()) for k, v in freqs.items()}
))


class TestSteadyStateProperties:
    @given(seed=SEEDS)
    @RELAXED
    def test_all_utilizations_at_most_one(self, seed):
        topology = random_topology(seed)
        result = analyze(topology)
        for name in topology.names:
            assert result.utilization(name) <= 1.0 + 1e-6

    @given(seed=SEEDS)
    @RELAXED
    def test_flow_conservation_everywhere(self, seed):
        topology = random_topology(seed)
        result = analyze(topology)
        for name in topology.names:
            spec = topology.operator(name)
            rates = result.rates[name]
            expected = min(rates.arrival_rate, rates.capacity) * spec.gain
            assert math.isclose(rates.departure_rate, expected, rel_tol=1e-9)

    @given(seed=SEEDS)
    @RELAXED
    def test_throughput_never_exceeds_source_rate(self, seed):
        topology = random_topology(seed)
        source_rate = topology.operator(topology.source).service_rate
        result = analyze(topology)
        assert result.throughput <= source_rate * (1.0 + 1e-9)

    @given(seed=SEEDS)
    @RELAXED
    def test_corrections_strictly_decrease_source_rate(self, seed):
        topology = random_topology(seed)
        result = analyze(topology)
        rates = [c.source_rate_before for c in result.corrections]
        rates += [result.corrections[-1].source_rate_after] \
            if result.corrections else []
        assert all(a > b for a, b in zip(rates, rates[1:]))

    @given(seed=SEEDS, scale=st.floats(min_value=0.1, max_value=0.9))
    @RELAXED
    def test_throughput_monotone_in_source_rate(self, seed, scale):
        topology = random_topology(seed)
        full_rate = topology.operator(topology.source).service_rate
        slow = analyze(topology, source_rate=full_rate * scale)
        fast = analyze(topology, source_rate=full_rate)
        assert slow.throughput <= fast.throughput * (1.0 + 1e-9)

    @given(seed=SEEDS)
    @RELAXED
    def test_analysis_deterministic(self, seed):
        topology = random_topology(seed)
        a, b = analyze(topology), analyze(topology)
        for name in topology.names:
            assert a.departure_rate(name) == b.departure_rate(name)


class TestFissionProperties:
    @given(seed=SEEDS)
    @RELAXED
    def test_fission_never_decreases_throughput(self, seed):
        topology = random_topology(seed)
        before = analyze(topology)
        after = eliminate_bottlenecks(topology)
        assert after.throughput >= before.throughput * (1.0 - 1e-9)

    @given(seed=SEEDS)
    @RELAXED
    def test_stateful_operators_never_replicated(self, seed):
        topology = random_topology(seed)
        result = eliminate_bottlenecks(topology)
        for spec in result.optimized.operators:
            if spec.state is StateKind.STATEFUL:
                assert spec.replication == 1

    @given(seed=SEEDS)
    @RELAXED
    def test_optimized_topology_has_no_stateless_bottlenecks(self, seed):
        topology = random_topology(seed)
        result = eliminate_bottlenecks(topology)
        for name in result.residual_bottlenecks:
            assert result.optimized.operator(name).state is not \
                StateKind.STATELESS

    @given(seed=SEEDS, slack=st.integers(min_value=0, max_value=5))
    @RELAXED
    def test_replica_bound_respected(self, seed, slack):
        topology = random_topology(seed)
        bound = len(topology) + slack
        result = eliminate_bottlenecks(topology, max_replicas=bound)
        assert result.optimized.total_replicas() <= bound

    @given(seed=SEEDS)
    @RELAXED
    def test_apply_replica_bound_floor_of_one(self, seed):
        topology = random_topology(seed)
        optimized = eliminate_bottlenecks(topology).optimized
        bounded = apply_replica_bound(optimized, len(topology))
        assert all(spec.replication >= 1 for spec in bounded.operators)


class TestPartitioningProperties:
    @given(keys=key_distributions, replicas=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_greedy_plan_invariants(self, keys, replicas):
        plan = greedy_partitioning(keys, replicas)
        assert math.isclose(sum(plan.loads), 1.0, rel_tol=1e-6)
        assert set(plan.assignment) == set(keys.frequencies)
        assert plan.replicas <= replicas
        assert plan.p_max >= 1.0 / replicas - 1e-9
        assert plan.p_max >= keys.max_frequency() - 1e-9

    @given(keys=key_distributions, replicas=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_greedy_upper_bound(self, keys, replicas):
        # LPT guarantee: p_max <= 1/n + heaviest key frequency.
        plan = greedy_partitioning(keys, replicas)
        assert plan.p_max <= 1.0 / replicas + keys.max_frequency() + 1e-9

    @given(keys=key_distributions, replicas=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_consistent_hash_plan_invariants(self, keys, replicas):
        plan = consistent_hash_partitioning(keys, replicas)
        assert math.isclose(sum(plan.loads), 1.0, rel_tol=1e-6)
        assert set(plan.assignment) == set(keys.frequencies)


class TestGeneratorProperties:
    @given(count=st.integers(2, 10), alpha=st.floats(1.01, 3.0),
           seed=SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_zipf_probabilities_normalized(self, count, alpha, seed):
        import random as random_module
        probabilities = zipf_probabilities(
            count, alpha, random_module.Random(seed))
        assert math.isclose(sum(probabilities), 1.0, rel_tol=1e-9)
        assert all(p > 0 for p in probabilities)

    @given(seed=SEEDS)
    @RELAXED
    def test_xml_round_trip_preserves_analysis(self, seed):
        topology = random_topology(seed)
        parsed = parse_topology(topology_to_xml(topology))
        original = analyze(topology)
        restored = analyze(parsed)
        assert math.isclose(original.throughput, restored.throughput,
                            rel_tol=1e-9)


class TestFusionProperties:
    @given(seed=SEEDS)
    @RELAXED
    def test_validated_candidates_produce_consistent_plans(self, seed):
        topology = random_topology(seed)
        names = topology.names
        # Try consecutive pairs in topological order; fuse the valid ones.
        for a, b in zip(names[1:], names[2:]):
            try:
                front_end = validate_fusion(topology, [a, b])
            except FusionError:
                continue
            plan = plan_fusion(topology, [a, b])
            assert plan.front_end == front_end
            assert plan.service_time >= max(
                0.0, topology.operator(front_end).service_time - 1e-12
            )
            assert all(rate >= 0 for rate in plan.exit_rates.values())

    @given(seed=SEEDS)
    @RELAXED
    def test_fusion_never_improves_throughput(self, seed):
        from repro.core.fusion import apply_fusion
        topology = random_topology(seed)
        names = topology.names
        for a, b in zip(names[1:], names[2:]):
            try:
                result = apply_fusion(topology, [a, b])
            except FusionError:
                continue
            assert result.throughput_after <= \
                result.throughput_before * (1.0 + 1e-9)
            break  # one valid fusion per topology keeps the test fast


class TestWindowProperties:
    @given(length=st.integers(1, 50), slide=st.integers(1, 50),
           count=st.integers(0, 300))
    @settings(max_examples=80, deadline=None)
    def test_firing_count_and_content(self, length, slide, count):
        window = CountSlidingWindow(length=length, slide=slide)
        firings = 0
        for i in range(count):
            fired = window.push(i)
            if fired is not None:
                firings += 1
                assert len(fired) <= length
                # Content is exactly the most recent items.
                expected = list(range(max(0, i + 1 - length), i + 1))
                assert fired == expected
        assert firings == count // slide


class TestExtensionProperties:
    @given(seed=SEEDS)
    @RELAXED
    def test_cyclic_solver_matches_algorithm1_on_dags(self, seed):
        """On acyclic inputs the fixed-point solver IS Algorithm 1."""
        from repro.core.cycles import CyclicGraph, analyze_cyclic
        topology = random_topology(seed)
        graph = CyclicGraph(topology.operators, topology.edges)
        assert not graph.cycles_exist()
        cyclic = analyze_cyclic(graph)
        acyclic = analyze(topology)
        assert math.isclose(cyclic.throughput, acyclic.throughput,
                            rel_tol=1e-6)
        for name in topology.names:
            assert math.isclose(
                cyclic.departure_rate(name),
                acyclic.departure_rate(name),
                rel_tol=1e-6, abs_tol=1e-9,
            )

    @given(seed=SEEDS)
    @RELAXED
    def test_autofusion_preserves_throughput(self, seed):
        from repro.core.autofusion import auto_fuse
        topology = random_topology(seed)
        before = analyze(topology).throughput
        result = auto_fuse(topology)
        assert math.isclose(result.throughput, before, rel_tol=1e-9)
        assert len(result.fused) <= len(topology)

    @given(seed=SEEDS, scale=st.floats(min_value=0.2, max_value=0.95))
    @RELAXED
    def test_latency_monotone_in_load(self, seed, scale):
        from repro.core.latency import estimate_latency
        topology = random_topology(seed)
        full = topology.operator(topology.source).service_rate
        low = estimate_latency(topology, source_rate=full * scale * 0.5)
        high = estimate_latency(topology, source_rate=full * scale)
        assert high.end_to_end >= low.end_to_end - 1e-12

    @given(seed=SEEDS)
    @RELAXED
    def test_latency_at_least_service_floor(self, seed):
        """End-to-end latency can never undercut the cheapest path."""
        from repro.core.latency import estimate_latency
        topology = random_topology(seed)
        estimate = estimate_latency(topology, assumption="deterministic")
        cheapest = min(
            sum(topology.operator(v).service_time for v in path
                if v != topology.source)
            for sink in topology.sinks
            for path, _ in topology.paths_to(sink)
        )
        assert estimate.end_to_end >= cheapest - 1e-12

    @given(seed=SEEDS)
    @RELAXED
    def test_deployment_plan_is_json_serializable(self, seed):
        import json
        from repro.codegen.deployment import deployment_plan
        topology = random_topology(seed)
        plan = deployment_plan(topology)
        parsed = json.loads(json.dumps(plan))
        assert {e["name"] for e in parsed["operators"]} == set(topology.names)


class TestMemoryProperties:
    @given(seed=SEEDS)
    @RELAXED
    def test_queue_memory_bounded_by_buffers(self, seed):
        from repro.core.memory import estimate_memory
        topology = random_topology(seed)
        estimate = estimate_memory(topology, mailbox_capacity=64)
        for spec in topology.operators:
            op = estimate.operators[spec.name]
            assert op.queued_items >= 0.0
            assert op.queued_items <= 64 * spec.replication + 1e-9

    @given(seed=SEEDS)
    @RELAXED
    def test_state_memory_matches_window_arguments(self, seed):
        from repro.core.memory import estimate_memory
        from repro.core.graph import StateKind
        topology = random_topology(seed)
        estimate = estimate_memory(topology)
        for spec in topology.operators:
            op = estimate.operators[spec.name]
            length = (spec.operator_args or {}).get("length")
            if not isinstance(length, (int, float)) or length <= 0:
                assert op.state_items == 0.0
            elif spec.state is StateKind.PARTITIONED and spec.keys:
                assert op.state_items == length * len(spec.keys)
            else:
                assert op.state_items == length

    @given(seed=SEEDS)
    @RELAXED
    def test_memory_monotone_in_bytes_per_item(self, seed):
        from repro.core.memory import estimate_memory
        topology = random_topology(seed)
        small = estimate_memory(topology, bytes_per_item=64.0)
        large = estimate_memory(topology, bytes_per_item=256.0)
        assert large.total_bytes == small.total_bytes * 4.0
        assert large.total_items == small.total_items
