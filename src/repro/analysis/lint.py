"""The lint façade: every analysis pass over any topology-ish input.

:func:`lint_topology` accepts a validated :class:`Topology`, an
unvalidated :class:`TopologyDraft`, a path to a topology XML file, or
an XML string, and returns the merged :class:`LintReport` of the graph
verifier and (when the draft builds) the operator-code analyzer.  The
code pass needs real :class:`OperatorSpec` objects, so it only runs
once a strict build succeeds — a draft with structural errors gets the
graph findings alone, which is what a user needs to fix first anyway.

The deployment-safety pass (:mod:`repro.analysis.deploy`) is opt-in:
``backend`` selects the target backend's operator rules (SS301–SS305)
and ``plan=True`` adds the plan/config rules (SS310–SS315), checking
the solver-driven shard placement when ``backend="process"`` and
``shards`` is given.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.analysis.diagnostics import LintReport
from repro.analysis.graph import verify_graph
from repro.analysis.opcode import verify_code
from repro.core.graph import Topology, TopologyError
from repro.topology.xmlio import TopologyDraft, parse_draft

LintSource = Union[Topology, TopologyDraft, str, "os.PathLike[str]"]

BACKENDS = ("threaded", "process", "elastic")


def lint_topology(
    source: LintSource,
    check_code: bool = True,
    source_rate: Optional[float] = None,
    backend: Optional[str] = None,
    plan: bool = False,
    shards: Optional[int] = None,
) -> LintReport:
    """Run the static checks and return the merged report.

    ``check_code=False`` restricts the run to the graph pass (useful
    when operator classes are not importable in the linting
    environment).  ``source_rate`` feeds the cyclic fixed-point check,
    defaulting to the source's service rate.  ``backend`` additionally
    runs the deployment-safety operator rules for that target
    (``"threaded"``, ``"process"`` or ``"elastic"``); ``plan=True``
    adds the plan/config verifier, with ``shards`` sizing the process
    placement it checks.
    """
    if backend is not None and backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS}")

    if isinstance(source, Topology):
        report = verify_graph(source, source_rate=source_rate)
        if check_code:
            report = report.merge(verify_code(source))
        return _merge_deploy(report, source, backend=backend, plan=plan,
                             shards=shards, source_rate=source_rate)

    if isinstance(source, TopologyDraft):
        draft = source
    else:
        draft = parse_draft(source)

    report = verify_graph(draft, source_rate=source_rate)
    if (check_code or backend is not None or plan) and report.ok:
        try:
            topology = draft.build(strict=True)
        except TopologyError:
            return report
        if check_code:
            report = report.merge(verify_code(topology))
        report = _merge_deploy(report, topology, backend=backend,
                               plan=plan, shards=shards,
                               source_rate=source_rate)
    return report


def _merge_deploy(
    report: LintReport,
    topology: Topology,
    *,
    backend: Optional[str],
    plan: bool,
    shards: Optional[int],
    source_rate: Optional[float],
) -> LintReport:
    """Append the opt-in deployment-safety passes to a report."""
    if backend is None and not plan:
        return report
    from repro.analysis.deploy import verify_deploy, verify_plan

    if backend is not None:
        report = report.merge(verify_deploy(topology, backend=backend))
    if plan:
        report = report.merge(verify_plan(
            topology, backend=backend or "threaded", shards=shards,
            source_rate=source_rate))
    return report
