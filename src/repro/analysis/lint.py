"""The lint façade: both analysis passes over any topology-ish input.

:func:`lint_topology` accepts a validated :class:`Topology`, an
unvalidated :class:`TopologyDraft`, a path to a topology XML file, or
an XML string, and returns the merged :class:`LintReport` of the graph
verifier and (when the draft builds) the operator-code analyzer.  The
code pass needs real :class:`OperatorSpec` objects, so it only runs
once a strict build succeeds — a draft with structural errors gets the
graph findings alone, which is what a user needs to fix first anyway.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.analysis.diagnostics import LintReport
from repro.analysis.graph import verify_graph
from repro.analysis.opcode import verify_code
from repro.core.graph import Topology, TopologyError
from repro.topology.xmlio import TopologyDraft, parse_draft

LintSource = Union[Topology, TopologyDraft, str, "os.PathLike[str]"]


def lint_topology(
    source: LintSource,
    check_code: bool = True,
    source_rate: Optional[float] = None,
) -> LintReport:
    """Run the static checks and return the merged report.

    ``check_code=False`` restricts the run to the graph pass (useful
    when operator classes are not importable in the linting
    environment).  ``source_rate`` feeds the cyclic fixed-point check,
    defaulting to the source's service rate.
    """
    if isinstance(source, Topology):
        report = verify_graph(source, source_rate=source_rate)
        if check_code:
            report = report.merge(verify_code(source))
        return report

    if isinstance(source, TopologyDraft):
        draft = source
    else:
        draft = parse_draft(source)

    report = verify_graph(draft, source_rate=source_rate)
    if check_code and report.ok:
        try:
            topology = draft.build(strict=True)
        except TopologyError:
            return report
        report = report.merge(verify_code(topology))
    return report
