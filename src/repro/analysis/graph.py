"""Pass 1 — the graph verifier: structural checks before any solve.

Validates the things the paper's cost models assume (Section 3.1) and
reports violations as diagnostics instead of dying on the first one,
which is what :class:`repro.core.graph.Topology` does.  The verifier
therefore works on the *unvalidated* :class:`~repro.topology.xmlio.
TopologyDraft` layer — a validated :class:`Topology` is accepted too
(it trivially passes the structural rules; the cycle rules and the
declared-replication rule still apply).

Rules
-----
======  ========  ==========================================================
SS101   error     duplicate operator name
SS102   error     edge references an unknown operator (dangling endpoint)
SS103   error     duplicate edge between the same pair of operators
SS104   error     self-loop edge
SS105   error     no unique source (zero, or more than one, root vertex)
SS106   error     operator unreachable from the source
SS107   warning   no sink: every operator has out-edges (items never leave)
SS108   error     stochastic out-edge probability mass != 1
SS109   error     edge parameter out of range (probability outside (0, 1]
                  or NaN; buffer capacity < 1)
SS110   error     non-positive or NaN service time
SS111   error     invalid selectivity (input <= 0, output < 0, or NaN)
SS112   error     partitioned-stateful operator without a key distribution
SS113   error     invalid key distribution (non-positive frequency or
                  mass != 1)
SS114   error     static BAS deadlock: a cycle amplifies its own traffic
                  (gain x probability product >= 1) — bounded buffers
                  provably fill and no steady state exists
SS115   warning   a cycle member saturates in the steady-state fixed
                  point — the metastable BAS-deadlock regime the runtime
                  StallWatchdog detects only after deployment
SS116   warning   replication > 1 declared on a stateful operator
======  ========  ==========================================================

SS114/SS115 reuse the cyclic-analysis machinery of
:mod:`repro.core.cycles` and give the *pre-deployment* complement of
the runtime StallWatchdog: a deployment whose draft trips SS114 will
deadlock no matter how large its buffers are.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Union

from repro.analysis.diagnostics import (Diagnostic, LintReport, Severity,
                                        register_rules)
from repro.core.graph import StateKind, Topology, TopologyError
from repro.topology.xmlio import DraftEdge, DraftOperator, TopologyDraft

GRAPH_RULES = tuple(f"SS1{i:02d}" for i in range(1, 17))

register_rules("graph", {
    "SS101": (Severity.ERROR, "duplicate operator name"),
    "SS102": (Severity.ERROR, "edge references an unknown operator"),
    "SS103": (Severity.ERROR, "duplicate edge between the same operators"),
    "SS104": (Severity.ERROR, "self-loop edge"),
    "SS105": (Severity.ERROR, "no unique source vertex"),
    "SS106": (Severity.ERROR, "operator unreachable from the source"),
    "SS107": (Severity.WARNING, "no sink: items never leave the topology"),
    "SS108": (Severity.ERROR, "stochastic out-edge probability mass != 1"),
    "SS109": (Severity.ERROR, "edge parameter out of range"),
    "SS110": (Severity.ERROR, "non-positive or NaN service time"),
    "SS111": (Severity.ERROR, "invalid selectivity"),
    "SS112": (Severity.ERROR,
              "partitioned-stateful operator without a key distribution"),
    "SS113": (Severity.ERROR, "invalid key distribution"),
    "SS114": (Severity.ERROR,
              "static BAS deadlock: a cycle amplifies its own traffic"),
    "SS115": (Severity.WARNING,
              "cycle member saturates in the steady-state fixed point"),
    "SS116": (Severity.WARNING,
              "replication > 1 declared on a stateful operator"),
})


def draft_of(topology: Topology) -> TopologyDraft:
    """A draft view of a validated topology (for uniform verification)."""
    operators = [
        DraftOperator(
            name=spec.name,
            service_time=spec.service_time,
            state=spec.state,
            input_selectivity=spec.input_selectivity,
            output_selectivity=spec.output_selectivity,
            replication=spec.replication,
            key_frequencies=(dict(spec.keys.frequencies)
                             if spec.keys is not None else None),
            operator_class=spec.operator_class,
            operator_args=dict(spec.operator_args),
        )
        for spec in topology.operators
    ]
    edges = [DraftEdge(e.source, e.target, e.probability, e.capacity)
             for e in topology.edges]
    return TopologyDraft(name=topology.name, operators=operators,
                         edges=edges)


def verify_graph(
    topology: Union[Topology, TopologyDraft],
    source_rate: Optional[float] = None,
) -> LintReport:
    """Run the structural rules over a topology or draft.

    ``source_rate`` feeds the SS115 fixed-point check on cyclic drafts
    (defaults to the source's service rate, as everywhere else).
    """
    draft = (draft_of(topology) if isinstance(topology, Topology)
             else topology)
    location = draft.path
    findings: List[Diagnostic] = []

    def emit(rule: str, severity: Severity, message: str,
             subject: Optional[str] = None) -> None:
        findings.append(Diagnostic(rule=rule, severity=severity,
                                   message=message, subject=subject,
                                   location=location))

    # -- operator-local sanity (SS101, SS110, SS111, SS112, SS113, SS116)
    seen_names: Dict[str, int] = {}
    for op in draft.operators:
        seen_names[op.name] = seen_names.get(op.name, 0) + 1
    for name, count in seen_names.items():
        if count > 1:
            emit("SS101", Severity.ERROR,
                 f"operator name declared {count} times", name)

    for op in draft.operators:
        if math.isnan(op.service_time) or op.service_time <= 0.0:
            emit("SS110", Severity.ERROR,
                 f"service time must be positive, got {op.service_time}",
                 op.name)
        if math.isnan(op.input_selectivity) or op.input_selectivity <= 0.0:
            emit("SS111", Severity.ERROR,
                 f"input selectivity must be positive, got "
                 f"{op.input_selectivity}", op.name)
        if math.isnan(op.output_selectivity) or op.output_selectivity < 0.0:
            emit("SS111", Severity.ERROR,
                 f"output selectivity must be non-negative, got "
                 f"{op.output_selectivity}", op.name)
        if op.state is StateKind.PARTITIONED and op.key_frequencies is None:
            emit("SS112", Severity.ERROR,
                 "partitioned-stateful operator has no key distribution "
                 "(fission cannot partition its state)", op.name)
        if op.key_frequencies is not None:
            bad = {k: f for k, f in op.key_frequencies.items()
                   if math.isnan(f) or f <= 0.0}
            if bad:
                emit("SS113", Severity.ERROR,
                     f"non-positive key frequencies: "
                     f"{sorted(bad)[:5]}", op.name)
            else:
                total = math.fsum(op.key_frequencies.values())
                if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-6):
                    emit("SS113", Severity.ERROR,
                         f"key frequencies sum to {total}, expected 1",
                         op.name)
        if op.state is StateKind.STATEFUL and op.replication > 1:
            emit("SS116", Severity.WARNING,
                 f"replication {op.replication} declared on a stateful "
                 "operator; a monolithic state cannot be replicated "
                 "(paper Algorithm 2 would throttle the source instead)",
                 op.name)

    # -- edge-local sanity (SS102, SS103, SS104, SS109)
    known = set(seen_names)
    seen_pairs: Dict[tuple, int] = {}
    for edge in draft.edges:
        for endpoint in (edge.source, edge.target):
            if endpoint not in known:
                emit("SS102", Severity.ERROR,
                     f"edge references unknown operator {endpoint!r}",
                     edge.label)
        if edge.source == edge.target:
            emit("SS104", Severity.ERROR, "self-loop edge", edge.label)
        pair = (edge.source, edge.target)
        seen_pairs[pair] = seen_pairs.get(pair, 0) + 1
        if math.isnan(edge.probability) or not 0.0 < edge.probability <= 1.0:
            emit("SS109", Severity.ERROR,
                 f"routing probability must be in (0, 1], got "
                 f"{edge.probability}", edge.label)
        if edge.capacity is not None and edge.capacity < 1:
            emit("SS109", Severity.ERROR,
                 f"buffer capacity must be >= 1, got {edge.capacity}",
                 edge.label)
    for (src, dst), count in seen_pairs.items():
        if count > 1:
            emit("SS103", Severity.ERROR,
                 f"edge declared {count} times", f"{src}->{dst}")

    # -- probability mass per operator (SS108)
    totals = draft.out_mass()
    for name in sorted(totals):
        if name not in known:
            continue
        total = totals[name]
        if math.isnan(total):
            continue  # the offending edge already tripped SS109
        if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-6):
            emit("SS108", Severity.ERROR,
                 f"output edge probabilities sum to {total}, expected 1",
                 name)

    # -- global structure (SS105, SS106, SS107) — meaningful only when
    # the edge endpoints resolve.
    if known and not any(d.rule in ("SS101", "SS102") for d in findings):
        incoming = {name: 0 for name in known}
        outgoing = {name: 0 for name in known}
        adjacency: Dict[str, List[str]] = {name: [] for name in known}
        for edge in draft.edges:
            if edge.source == edge.target:
                continue
            incoming[edge.target] += 1
            outgoing[edge.source] += 1
            adjacency[edge.source].append(edge.target)
        roots = sorted(name for name, deg in incoming.items() if deg == 0)
        if len(roots) != 1:
            emit("SS105", Severity.ERROR,
                 f"topology must have exactly one source, found {roots}")
        if not any(deg == 0 for deg in outgoing.values()):
            emit("SS107", Severity.WARNING,
                 "no sink: every operator has output edges, so items "
                 "never leave the topology")
        if len(roots) == 1:
            reached = set()
            stack = [roots[0]]
            while stack:
                current = stack.pop()
                if current in reached:
                    continue
                reached.add(current)
                stack.extend(adjacency[current])
            for name in sorted(known - reached):
                emit("SS106", Severity.ERROR,
                     "operator not reachable from the source", name)

            # -- cycle rules (SS114, SS115): only on structurally sound,
            # numerically sane graphs (the checks need a solvable model).
            if not any(d.severity is Severity.ERROR for d in findings):
                findings.extend(_cycle_rules(draft, source_rate, location))

    return LintReport(diagnostics=tuple(findings),
                      subject_name=draft.name, passes=("graph",))


def _cycle_rules(draft: TopologyDraft, source_rate: Optional[float],
                 location: Optional[str]) -> List[Diagnostic]:
    """SS114/SS115: static BAS-deadlock risk of cyclic drafts."""
    from repro.core.cycles import CyclicGraph, analyze_cyclic

    try:
        graph = CyclicGraph([op.build() for op in draft.operators],
                            [e.build() for e in draft.edges],
                            name=draft.name)
    except TopologyError:
        return []
    if not graph.cycles_exist():
        return []

    findings: List[Diagnostic] = []
    on_cycles = ", ".join(sorted(graph.vertices_on_cycles()))
    amplification = graph.max_cycle_amplification()
    if amplification >= 1.0:
        findings.append(Diagnostic(
            rule="SS114", severity=Severity.ERROR,
            message=(f"cycle amplification {amplification:.3f} >= 1 "
                     f"through {{{on_cycles}}}: the feedback loop grows "
                     "its own traffic, bounded buffers provably fill and "
                     "a BAS deployment deadlocks"),
            subject=None, location=location,
        ))
        return findings
    try:
        result = analyze_cyclic(graph, source_rate=source_rate)
    except TopologyError:
        return findings
    saturated = result.saturated_in_cycle
    if saturated:
        findings.append(Diagnostic(
            rule="SS115", severity=Severity.WARNING,
            message=("steady-state fixed point saturates cycle member(s) "
                     f"{', '.join(saturated)}: the loop's buffers can all "
                     "fill simultaneously (metastable BAS deadlock); use "
                     "credit-based flow control or shedding on the "
                     "feedback edge"),
            subject=saturated[0], location=location,
        ))
    return findings
