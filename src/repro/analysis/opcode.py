"""Pass 2 — the operator-code analyzer: what the code *actually* does.

The fission algorithm (paper Algorithm 2) trusts the declared
:class:`~repro.core.graph.StateKind`: a ``STATELESS`` declaration makes
an operator replicable with shuffle routing.  If the implementation
secretly keeps state, replication silently computes wrong results —
each replica sees a fraction of the stream.  This pass loads each
spec's ``operator_class`` and infers the truth from the AST:

* **state inference** — writes to ``self.*`` reachable from
  ``operator_function`` (including through ``self``-method calls,
  mutating container methods like ``append``/``push``/``setdefault``,
  and local aliases of ``self`` attributes) imply state.  With an
  overridden ``key_of`` the state is assumed partitioned by that key;
  without one it is monolithic.  No reachable writes imply stateless.
* **fission-unsafe patterns** — mutable class-level attributes (shared
  across replicas: a static race), nondeterminism (module-level
  ``random``, wall-clock time, builtin ``hash``/``id``, set iteration)
  that breaks DES/runtime replay conformance, impure ``key_of``
  (routing must be a pure function of the item), and I/O side effects
  that break restart-under-supervision semantics.

Rules
-----
======  ========  ==========================================================
SS201   error     declared StateKind weaker than the code's inferred one
                  (replication would split live state)
SS202   info      declared StateKind stricter than inferred (a missed
                  fission opportunity, not a correctness problem)
SS203   error     mutable class-level attribute shared across replicas
SS204   warning   nondeterminism reachable from operator_function
SS205   warning   impure key_of (writes state or is nondeterministic)
SS206   warning   I/O side effects reachable from operator_function
SS207   error     operator class cannot be loaded or its source analyzed
======  ========  ==========================================================
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.diagnostics import (Diagnostic, LintReport, Severity,
                                        register_rules)
from repro.core.graph import StateKind, Topology
from repro.operators.base import KeyedOperator, Operator, load_operator_class

OPCODE_RULES = tuple(f"SS2{i:02d}" for i in range(1, 8))

register_rules("opcode", {
    "SS201": (Severity.ERROR,
              "declared StateKind weaker than the code's inferred one"),
    "SS202": (Severity.INFO,
              "declared StateKind stricter than inferred"),
    "SS203": (Severity.ERROR,
              "mutable class-level attribute shared across replicas"),
    "SS204": (Severity.WARNING,
              "nondeterminism reachable from operator_function"),
    "SS205": (Severity.WARNING, "impure key_of"),
    "SS206": (Severity.WARNING,
              "I/O side effects reachable from operator_function"),
    "SS207": (Severity.ERROR,
              "operator class cannot be loaded or analyzed"),
})

#: Method names whose call mutates the receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert",
    "add", "update", "setdefault", "push",
    "pop", "popleft", "popitem", "remove", "discard", "clear",
    "sort", "reverse", "rotate",
})

#: Constructors whose result at class scope is shared mutable state.
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "deque", "defaultdict", "Counter",
    "OrderedDict", "bytearray",
})

#: Dotted-call prefixes that are nondeterministic across runs/replicas.
_NONDET_PREFIXES = (
    "random.", "time.time", "time.monotonic", "time.perf_counter",
    "os.urandom", "uuid.", "secrets.",
)
#: Seeded construction is reproducible; don't flag it.
_NONDET_EXEMPT = frozenset({"random.Random"})
_NONDET_BUILTINS = frozenset({"hash", "id"})

#: Dotted-call prefixes with side effects outside the operator's state.
_IO_PREFIXES = (
    "os.system", "os.popen", "os.remove", "os.unlink", "os.makedirs",
    "os.rmdir", "os.rename", "subprocess.", "socket.", "requests.",
    "urllib.", "shutil.", "sys.stdout", "sys.stderr",
)
_IO_BUILTINS = frozenset({"open", "print", "input"})

#: StateKind ordered by strictness (how much fission it permits).
_RANK = {StateKind.STATELESS: 0, StateKind.PARTITIONED: 1,
         StateKind.STATEFUL: 2}


def state_rank(kind: StateKind) -> int:
    """Strictness of a state kind (stateless < partitioned < stateful)."""
    return _RANK[kind]


@dataclass(frozen=True)
class OperatorCodeFacts:
    """What the AST analysis established about one operator class."""

    class_path: str
    declared: StateKind
    inferred: StateKind
    #: Evidence of state writes reachable from operator_function.
    writes: Tuple[str, ...]
    #: Mutable class-level attributes (shared across replicas).
    mutable_class_attrs: Tuple[str, ...]
    #: Nondeterministic calls reachable from operator_function.
    nondeterministic: Tuple[str, ...]
    #: Evidence that key_of is impure (writes or nondeterminism).
    impure_key_of: Tuple[str, ...]
    #: I/O side effects reachable from operator_function.
    io_calls: Tuple[str, ...]
    #: Whether key_of is overridden somewhere below the Operator base.
    keyed: bool

    @property
    def mismatch(self) -> bool:
        """Code is provably more stateful than the class declares."""
        return _RANK[self.inferred] > _RANK[self.declared]

    @property
    def over_declared(self) -> bool:
        """Declaration is stricter than anything the code shows."""
        return _RANK[self.inferred] < _RANK[self.declared]

    @property
    def pure(self) -> bool:
        """Free of nondeterminism and I/O (fusion-safe in any order)."""
        return not (self.nondeterministic or self.io_calls)

    def evidence(self) -> str:
        return "; ".join(self.writes[:3]) or "no state writes found"


class _FunctionFacts:
    """Per-function findings of one visitor run."""

    def __init__(self) -> None:
        self.writes: List[str] = []
        self.nondet: List[str] = []
        self.io: List[str] = []
        self.self_calls: Set[str] = set()


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a plain name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FunctionVisitor(ast.NodeVisitor):
    """Scan one method body for writes, nondeterminism and I/O.

    ``aliases`` tracks local names bound from expressions that touch
    ``self`` attributes (directly or through other aliases), so
    mutations through ``window = self._windows[side]; window.append(x)``
    are still attributed to the operator's state.
    """

    def __init__(self, offset: int) -> None:
        self.offset = offset
        self.facts = _FunctionFacts()
        self.aliases: Set[str] = set()

    # -- helpers -------------------------------------------------------
    def _line(self, node: ast.AST) -> int:
        return getattr(node, "lineno", 0) + self.offset

    def _touches_state(self, node: ast.AST) -> bool:
        """Whether an expression reads a self attribute or an alias."""
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"):
                return True
            if isinstance(sub, ast.Name) and sub.id in self.aliases:
                return True
        return False

    def _target_state_name(self, target: ast.AST) -> Optional[str]:
        """The state description a store-target mutates, if any."""
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                return f"self.{target.attr}"
            if self._touches_state(target.value):
                return _dotted_name(target) or "aliased state"
        if isinstance(target, ast.Subscript):
            if self._touches_state(target.value):
                return (_dotted_name(target.value) or "aliased state") + "[...]"
        return None

    def _record_aliases(self, targets: List[ast.AST], value: ast.AST) -> None:
        if not self._touches_state(value):
            return
        for target in targets:
            elements = (target.elts if isinstance(target, (ast.Tuple, ast.List))
                        else [target])
            for element in elements:
                if isinstance(element, ast.Name):
                    self.aliases.add(element.id)

    # -- stores --------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            elements = (target.elts if isinstance(target, (ast.Tuple, ast.List))
                        else [target])
            for element in elements:
                name = self._target_state_name(element)
                if name is not None:
                    self.facts.writes.append(
                        f"assignment to {name} (line {self._line(node)})")
        self._record_aliases(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = self._target_state_name(node.target)
        if name is not None:
            self.facts.writes.append(
                f"assignment to {name} (line {self._line(node)})")
        if node.value is not None:
            self._record_aliases([node.target], node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name = self._target_state_name(node.target)
        if name is not None:
            self.facts.writes.append(
                f"augmented assignment to {name} (line {self._line(node)})")
        self._record_aliases([node.target], node.value)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            name = self._target_state_name(target)
            if name is not None:
                self.facts.writes.append(
                    f"deletion of {name} (line {self._line(node)})")
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        line = self._line(node)
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "next" and any(self._touches_state(a)
                                         for a in node.args):
                self.facts.writes.append(
                    f"next() on held iterator (line {line})")
            if func.id in _NONDET_BUILTINS:
                self.facts.nondet.append(
                    f"builtin {func.id}() (line {line})")
            if func.id in _IO_BUILTINS:
                self.facts.io.append(f"{func.id}() (line {line})")
        elif isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name) and func.value.id == "self"):
                self.facts.self_calls.add(func.attr)
            elif (func.attr in _MUTATING_METHODS
                  and self._touches_state(func.value)):
                receiver = _dotted_name(func.value) or "aliased state"
                self.facts.writes.append(
                    f"mutating call {receiver}.{func.attr}() (line {line})")
            dotted = _dotted_name(func)
            if dotted is not None and dotted not in _NONDET_EXEMPT:
                if dotted.startswith(_NONDET_PREFIXES):
                    self.facts.nondet.append(f"{dotted}() (line {line})")
                if dotted.startswith(_IO_PREFIXES):
                    self.facts.io.append(f"{dotted}() (line {line})")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        iterated = node.iter
        if isinstance(iterated, ast.Set) or (
                isinstance(iterated, ast.Call)
                and isinstance(iterated.func, ast.Name)
                and iterated.func.id == "set"):
            self.facts.nondet.append(
                "iteration over a set (order is hash-dependent) "
                f"(line {self._line(node)})")
        self._record_aliases([node.target], node.iter)
        self.generic_visit(node)


@dataclass(frozen=True)
class _ClassSources:
    """Parsed method table and class-attribute findings of one MRO."""

    methods: Dict[str, Tuple[ast.FunctionDef, str, int]]
    mutable_class_attrs: Tuple[str, ...]
    keyed: bool


def _class_sources(cls: type) -> _ClassSources:
    """Merge method definitions over the MRO below the Operator bases."""
    methods: Dict[str, Tuple[ast.FunctionDef, str, int]] = {}
    mutable: List[str] = []
    keyed = False
    # Base-first so derived definitions override inherited ones.
    for klass in reversed(cls.__mro__):
        if klass in (object, Operator) or klass.__module__ == "builtins":
            continue
        if not issubclass(klass, Operator):
            continue  # mixins outside the operator hierarchy
        try:
            lines, first = inspect.getsourcelines(klass)
        except (OSError, TypeError):
            raise OSError(
                f"source of {klass.__module__}.{klass.__qualname__} is not "
                "available for analysis")
        tree = ast.parse(textwrap.dedent("".join(lines)))
        class_node = tree.body[0]
        if not isinstance(class_node, ast.ClassDef):
            raise OSError(
                f"{klass.__module__}.{klass.__qualname__}: source does not "
                "start with a class definition")
        offset = first - 1
        for node in class_node.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[node.name] = (node, klass.__qualname__, offset)
                if node.name == "key_of":
                    keyed = True
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                value = node.value
                if value is None or not _is_mutable_literal(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        mutable.append(
                            f"{klass.__qualname__}.{target.id} "
                            f"(line {node.lineno + offset})")
    return _ClassSources(methods=methods,
                         mutable_class_attrs=tuple(mutable), keyed=keyed)


def _is_mutable_literal(value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = (value.func.id if isinstance(value.func, ast.Name)
                else value.func.attr if isinstance(value.func, ast.Attribute)
                else None)
        return name in _MUTABLE_FACTORIES
    return False


def _closure_facts(sources: _ClassSources, entry: str) -> _FunctionFacts:
    """Merged findings of ``entry`` and every self-method it reaches."""
    merged = _FunctionFacts()
    visited: Set[str] = set()
    frontier = [entry]
    while frontier:
        name = frontier.pop()
        if name in visited or name not in sources.methods:
            continue
        visited.add(name)
        node, _, offset = sources.methods[name]
        visitor = _FunctionVisitor(offset)
        visitor.visit(node)
        merged.writes.extend(visitor.facts.writes)
        merged.nondet.extend(visitor.facts.nondet)
        merged.io.extend(visitor.facts.io)
        frontier.extend(visitor.facts.self_calls - visited)
    return merged


@lru_cache(maxsize=None)
def analyze_operator_class(cls: type) -> OperatorCodeFacts:
    """Infer the true StateKind and safety facts of an operator class.

    Raises :class:`OSError` when the class source is unavailable (e.g.
    classes defined in a REPL); callers surface that as SS207.
    """
    if not (isinstance(cls, type) and issubclass(cls, Operator)):
        raise TypeError(f"{cls!r} is not an Operator subclass")
    sources = _class_sources(cls)
    facts = _closure_facts(sources, "operator_function")

    if facts.writes:
        inferred = (StateKind.PARTITIONED if sources.keyed
                    else StateKind.STATEFUL)
    else:
        inferred = StateKind.STATELESS

    impure_key_of: Tuple[str, ...] = ()
    if sources.keyed:
        key_facts = _closure_facts(sources, "key_of")
        impure_key_of = tuple(key_facts.writes + key_facts.nondet
                              + key_facts.io)

    return OperatorCodeFacts(
        class_path=f"{cls.__module__}.{cls.__qualname__}",
        declared=cls.state,
        inferred=inferred,
        writes=tuple(facts.writes),
        mutable_class_attrs=sources.mutable_class_attrs,
        nondeterministic=tuple(facts.nondet),
        impure_key_of=impure_key_of,
        io_calls=tuple(facts.io),
        keyed=sources.keyed,
    )


def analyze_class_path(class_path: str) -> OperatorCodeFacts:
    """Load an operator class by dotted path and analyze it."""
    return analyze_operator_class(load_operator_class(class_path))


def try_analyze(class_path: Optional[str]) -> Optional[OperatorCodeFacts]:
    """Best-effort analysis: ``None`` when loading or parsing fails."""
    if not class_path:
        return None
    try:
        return analyze_class_path(class_path)
    except (ImportError, OSError, SyntaxError, TypeError):
        return None


def verify_code(topology: Topology) -> LintReport:
    """Run the opcode rules over every spec that names a class."""
    findings: List[Diagnostic] = []
    for spec in topology.operators:
        if not spec.operator_class:
            continue
        try:
            facts = analyze_class_path(spec.operator_class)
        except (ImportError, OSError, SyntaxError, TypeError) as exc:
            findings.append(Diagnostic(
                rule="SS207", severity=Severity.ERROR,
                message=f"operator class cannot be analyzed: {exc}",
                subject=spec.name, location=spec.operator_class,
            ))
            continue
        location = facts.class_path

        declared = spec.state
        if _RANK[facts.inferred] > _RANK[declared]:
            findings.append(Diagnostic(
                rule="SS201", severity=Severity.ERROR,
                message=(f"declared {declared.value} but the code is "
                         f"{facts.inferred.value}: {facts.evidence()}; "
                         "replication would split live state"),
                subject=spec.name, location=location,
            ))
        elif _RANK[facts.inferred] < _RANK[declared]:
            findings.append(Diagnostic(
                rule="SS202", severity=Severity.INFO,
                message=(f"declared {declared.value} but no evidence of "
                         f"more than {facts.inferred.value} code; a "
                         "stricter declaration forfeits fission"),
                subject=spec.name, location=location,
            ))
        for attr in facts.mutable_class_attrs:
            findings.append(Diagnostic(
                rule="SS203", severity=Severity.ERROR,
                message=(f"mutable class-level attribute {attr} is shared "
                         "by every replica (a data race under fission)"),
                subject=spec.name, location=location,
            ))
        if facts.nondeterministic:
            findings.append(Diagnostic(
                rule="SS204", severity=Severity.WARNING,
                message=("nondeterminism breaks replay conformance: "
                         + "; ".join(facts.nondeterministic[:3])),
                subject=spec.name, location=location,
            ))
        if facts.impure_key_of:
            findings.append(Diagnostic(
                rule="SS205", severity=Severity.WARNING,
                message=("key_of must be a pure function of the item for "
                         "keyed routing to be stable: "
                         + "; ".join(facts.impure_key_of[:3])),
                subject=spec.name, location=location,
            ))
        if facts.io_calls:
            findings.append(Diagnostic(
                rule="SS206", severity=Severity.WARNING,
                message=("I/O side effects break restart-under-supervision "
                         "semantics: " + "; ".join(facts.io_calls[:3])),
                subject=spec.name, location=location,
            ))
    return LintReport(diagnostics=tuple(findings),
                      subject_name=topology.name, passes=("opcode",))


def impure_operators(topology: Topology) -> FrozenSet[str]:
    """Names whose code shows nondeterminism or I/O (fusion-unsafe).

    Fusing such an operator changes its scheduling and failure
    isolation, so automatic fusion keeps them standalone.  Operators
    without a class, or whose analysis fails, are not excluded — the
    absence of evidence is not evidence of impurity.
    """
    impure = set()
    for spec in topology.operators:
        facts = try_analyze(spec.operator_class)
        if facts is not None and not facts.pure:
            impure.add(spec.name)
    return frozenset(impure)
