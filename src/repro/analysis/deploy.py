"""Pass 3 — the deployment-safety analyzer: will the plan *run*?

Since the lint pass landed, the system has grown three execution
backends (threaded, process-sharded, elastic) plus aligned-barrier
checkpointing — and an optimized plan that is perfectly sound as a
queueing network can still be illegal on the backend it is deployed
to: an operator holding a lambda cannot cross a process boundary, a
source holding a one-shot generator cannot replay after recovery, an
elastic migration cannot split monolithic state.  This pass proves a
``(topology, deployment plan, RuntimeConfig)`` triple executable
*statically*, so deployment fails at lint time instead of as a crashed
shard worker.

Two layers share the SS3xx rule space:

* **operator rules (SS301–SS305)** — an interprocedural AST/object
  pass over each spec's ``operator_class`` (reusing the opcode
  machinery): pickle/fork safety of ``__init__`` state for the process
  backend, snapshot/restore soundness for checkpointing, source
  replayability, migration-partitionability for elasticity, and
  module-global races across replicas;
* **plan rules (SS310–SS315)** — a config/plan verifier: the
  elastic×checkpoint conflict, invalid or state-splitting shard
  placements, batch flush deadlines against the declared latency
  budget, adaptive cooldowns shorter than one control period, and the
  predicted checkpoint overhead ceiling.

Rules
-----
======  ========  ==========================================================
SS301   error     operator class is not process-safe: unimportable by
                  workers, or ``__init__`` state holds lambdas, locks,
                  file handles, sockets, threads or generators
SS302   error     default deepcopy snapshot would capture an
                  unsnapshotable resource (or only one of the two
                  snapshot hooks is overridden)
SS303   error     source holds a one-shot iterator without overriding
                  the snapshot hooks: recovery cannot replay the stream
SS304   error     partitioned state is not migration-partitionable
                  (missing ``key_of`` or monolithic writes)
SS305   error     module-global state written from operator_function
                  races across replicas and processes
SS310   error     elastic mode and checkpointing configured together
SS311   error     shard placement names unknown operators or shards, or
                  mismatches the replication degree
SS312   error     shard placement scatters a stateful operator
SS313   error     a batch flush deadline exceeds the latency budget
SS314   error     adaptive cooldown shorter than one control period
SS315   warning   predicted checkpoint overhead above the ceiling
======  ========  ==========================================================
"""

from __future__ import annotations

import ast
import collections
import inspect
import sys
import types
from dataclasses import dataclass
from functools import lru_cache
from typing import (Dict, FrozenSet, List, Mapping, Optional, Sequence,
                    Set, Tuple)

from repro.analysis.diagnostics import (Diagnostic, LintReport, Severity,
                                        register_rules)
from repro.analysis.opcode import (_class_sources, _ClassSources,
                                   _dotted_name, try_analyze)
from repro.core.graph import StateKind, Topology
from repro.operators.base import Operator, load_operator_class

DEPLOY_RULES = tuple(f"SS3{i:02d}" for i in range(1, 6))
PLAN_RULES = tuple(f"SS3{i}" for i in range(10, 16))

#: Predicted checkpoint overhead ratio above which SS315 fires.
OVERHEAD_CEILING = 0.15

register_rules("deploy", {
    "SS301": (Severity.ERROR,
              "operator class is not process-safe (unimportable or "
              "unpicklable __init__ state)"),
    "SS302": (Severity.ERROR,
              "default snapshot cannot deep-copy __init__ resources "
              "(override the snapshot hooks)"),
    "SS303": (Severity.ERROR,
              "source holds a one-shot iterator and cannot replay "
              "after recovery"),
    "SS304": (Severity.ERROR,
              "partitioned state is not migration-partitionable"),
    "SS305": (Severity.ERROR,
              "module-global state written from operator_function"),
})
register_rules("plan", {
    "SS310": (Severity.ERROR,
              "elastic mode and checkpointing are mutually exclusive"),
    "SS311": (Severity.ERROR,
              "shard placement references unknown operators or shards"),
    "SS312": (Severity.ERROR,
              "shard placement scatters a stateful operator"),
    "SS313": (Severity.ERROR,
              "batch flush deadline exceeds the declared latency budget"),
    "SS314": (Severity.ERROR,
              "adaptive cooldown is shorter than one control period"),
    "SS315": (Severity.WARNING,
              "predicted checkpoint overhead exceeds the ceiling"),
})

#: Modules whose objects held in operator state cannot be pickled or
#: deep-copied: OS-level resources die with the process that owns them.
_RESOURCE_MODULES = frozenset({
    "threading", "_thread", "socket", "subprocess", "multiprocessing",
})
_RESOURCE_PREFIXES = ("threading.", "socket.", "subprocess.",
                      "multiprocessing.")
_FILE_OPENERS = frozenset({"open", "io.open", "os.fdopen", "os.popen",
                           "socket.create_connection"})

#: Mutating methods whose call on a *direct* ``self`` attribute (not a
#: key-indexed alias) evidences monolithic, order-dependent state.
_SEQUENCE_MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "push",
    "sort", "reverse", "rotate", "clear",
})
#: Mutating methods that race when called on a shared module container.
_CONTAINER_MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "push",
    "add", "update", "setdefault", "pop", "popleft", "popitem",
    "remove", "discard", "clear", "sort", "reverse", "rotate",
})
_MUTABLE_CONTAINERS = (list, dict, set, bytearray, collections.deque,
                       collections.Counter, collections.OrderedDict)


@dataclass(frozen=True)
class DeployFacts:
    """What the deployment analysis established about one class."""

    class_path: str
    #: Whether workers can re-import the class by dotted name.
    importable: bool
    import_evidence: Tuple[str, ...]
    #: ``__init__`` state that cannot cross a pickle boundary.
    init_lambdas: Tuple[str, ...]
    init_resources: Tuple[str, ...]
    init_iterators: Tuple[str, ...]
    snapshot_overridden: bool
    restore_overridden: bool
    #: Writes from operator_function to plain (non-key-indexed) state.
    monolithic_writes: Tuple[str, ...]
    #: Module-global state written from operator_function.
    global_writes: Tuple[str, ...]
    keyed: bool

    @property
    def process_safe(self) -> bool:
        """State survives a pickle/fork boundary and workers can import."""
        return (self.importable and not self.init_lambdas
                and not self.init_resources and not self.init_iterators)

    @property
    def replayable(self) -> bool:
        """Either no one-shot iterators or explicit snapshot hooks."""
        return (not self.init_iterators
                or (self.snapshot_overridden and self.restore_overridden))

    def pickle_evidence(self) -> Tuple[str, ...]:
        return (self.import_evidence + self.init_lambdas
                + self.init_resources + self.init_iterators)


def _import_evidence(cls: type) -> Tuple[str, ...]:
    """Why shard workers could not re-import ``cls`` by dotted name."""
    if cls.__module__ in ("__main__", "builtins"):
        return (f"defined in module {cls.__module__!r} "
                "(workers cannot re-import it)",)
    if "<locals>" in cls.__qualname__:
        return ("defined inside a function body "
                "(not reachable by dotted name)",)
    module = sys.modules.get(cls.__module__)
    target: object = module
    for part in cls.__qualname__.split("."):
        target = getattr(target, part, None)
        if target is None:
            break
    if target is not cls:
        return (f"{cls.__module__}.{cls.__qualname__} does not round-trip "
                "through its module (pickle-by-reference would fail)",)
    return ()


def _resolve(name: str, cls: type) -> Optional[object]:
    """Look up a bare name in the modules of the class MRO."""
    for klass in cls.__mro__:
        module = sys.modules.get(klass.__module__)
        if module is not None and hasattr(module, name):
            return getattr(module, name)
    return None


def _is_lambda(obj: object) -> bool:
    return (isinstance(obj, types.FunctionType)
            and obj.__name__ == "<lambda>")


class _InitVisitor(ast.NodeVisitor):
    """Scan one ``__init__``-reachable method for unpicklable stores.

    Local names bound to suspicious values (lambdas, nested functions,
    resources, one-shot iterators) are tainted so an indirect
    ``predicate = lambda ...; self.predicate = predicate`` is still
    attributed to the instance state.  Parameter names are *unknown*
    runtime values and never flagged — defaults supplied by callers are
    the caller's responsibility.
    """

    def __init__(self, cls: type, node: ast.FunctionDef, offset: int) -> None:
        self.cls = cls
        self.offset = offset
        self.lambdas: List[str] = []
        self.resources: List[str] = []
        self.iterators: List[str] = []
        self.self_calls: Set[str] = set()
        #: Every locally-bound name (params included): shadowed module
        #: names must not be resolved against the module namespace.
        self.local_names: Set[str] = set()
        self.taints: Dict[str, Tuple[str, str]] = {}
        for arg_list in (node.args.posonlyargs, node.args.args,
                         node.args.kwonlyargs):
            for arg in arg_list:
                self.local_names.add(arg.arg)
        for vararg in (node.args.vararg, node.args.kwarg):
            if vararg is not None:
                self.local_names.add(vararg.arg)

    def _line(self, node: ast.AST) -> int:
        return getattr(node, "lineno", 0) + self.offset

    # -- value classification ------------------------------------------
    def _classify(self, value: ast.AST) -> List[Tuple[str, str]]:
        """``(kind, description)`` findings for one assigned expression."""
        findings: List[Tuple[str, str]] = []
        for sub in ast.walk(value):
            if isinstance(sub, ast.Lambda):
                findings.append(("lambda", "lambda expression"))
            elif isinstance(sub, ast.GeneratorExp):
                findings.append(("iterator", "generator expression"))
            elif isinstance(sub, ast.Name):
                findings.extend(self._classify_name(sub.id))
            elif isinstance(sub, ast.Call):
                findings.extend(self._classify_call(sub))
            elif isinstance(sub, ast.Subscript):
                findings.extend(self._classify_subscript(sub))
        return findings

    def _classify_name(self, name: str) -> List[Tuple[str, str]]:
        if name in self.taints:
            return [self.taints[name]]
        if name in self.local_names:
            return []
        resolved = _resolve(name, self.cls)
        if _is_lambda(resolved):
            return [("lambda", f"module-level lambda {name!r}")]
        return []

    def _classify_call(self, call: ast.Call) -> List[Tuple[str, str]]:
        func = call.func
        dotted = _dotted_name(func)
        if dotted in _FILE_OPENERS:
            return [("resource", f"{dotted}() file handle")]
        if dotted == "iter":
            return [("iterator", "iter() one-shot iterator")]
        if dotted is not None and dotted.startswith(_RESOURCE_PREFIXES):
            return [("resource", f"{dotted}() OS resource")]
        if isinstance(func, ast.Name) and func.id not in self.local_names:
            resolved = _resolve(func.id, self.cls)
            if resolved is not None:
                module = getattr(resolved, "__module__", "") or ""
                if module.split(".")[0] in _RESOURCE_MODULES:
                    return [("resource", f"{func.id}() OS resource "
                             f"(from {module})")]
                if inspect.isgeneratorfunction(resolved):
                    return [("iterator",
                             f"generator function {func.id}() result")]
        return []

    def _classify_subscript(self, sub: ast.Subscript) -> List[Tuple[str, str]]:
        if not isinstance(sub.value, ast.Name):
            return []
        name = sub.value.id
        if name in self.local_names:
            return []
        resolved = _resolve(name, self.cls)
        if isinstance(resolved, dict) and any(
                _is_lambda(v) for v in resolved.values()):
            return [("lambda", f"lambda drawn from module table {name!r}")]
        return []

    # -- stores --------------------------------------------------------
    def _record(self, kind: str, desc: str, attr: str, line: int) -> None:
        evidence = f"self.{attr} holds {desc} (line {line})"
        if kind == "lambda":
            self.lambdas.append(evidence)
        elif kind == "resource":
            self.resources.append(evidence)
        else:
            self.iterators.append(evidence)

    def _handle_store(self, target: ast.AST, value: ast.AST,
                      line: int) -> None:
        elements = (target.elts if isinstance(target, (ast.Tuple, ast.List))
                    else [target])
        findings = None
        for element in elements:
            if (isinstance(element, ast.Attribute)
                    and isinstance(element.value, ast.Name)
                    and element.value.id == "self"):
                if findings is None:
                    findings = self._classify(value)
                for kind, desc in findings:
                    self._record(kind, desc, element.attr, line)
            elif isinstance(element, ast.Name):
                self.local_names.add(element.id)
                if findings is None:
                    findings = self._classify(value)
                for kind, desc in findings:
                    self.taints[element.id] = (kind, desc)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_store(target, node.value, self._line(node))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_store(node.target, node.value, self._line(node))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_store(node.target, node.value, self._line(node))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A function defined inside __init__ is closure-bound and
        # unpicklable exactly like a lambda; don't descend into it.
        self.local_names.add(node.name)
        self.taints[node.name] = (
            "lambda", f"locally-defined function {node.name!r}")

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"):
            self.self_calls.add(func.attr)
        self.generic_visit(node)


class _RuntimeVisitor(ast.NodeVisitor):
    """Scan one hot-path method for monolithic and module-global writes.

    *Monolithic* evidence is deliberately narrow — plain ``self.attr``
    stores and order-dependent mutators called directly on a ``self``
    attribute.  Key-indexed stores (``self._windows[key] = ...``) and
    mutations through local aliases fetched per key are the idiomatic
    partitioned-state shapes and stay clean.
    """

    def __init__(self, cls: type, node: ast.FunctionDef, offset: int) -> None:
        self.cls = cls
        self.offset = offset
        self.monolithic: List[str] = []
        self.global_writes: List[str] = []
        self.self_calls: Set[str] = set()
        self.local_names: Set[str] = set()
        self.declared_globals: Set[str] = set()
        for arg_list in (node.args.posonlyargs, node.args.args,
                         node.args.kwonlyargs):
            for arg in arg_list:
                self.local_names.add(arg.arg)
        for vararg in (node.args.vararg, node.args.kwarg):
            if vararg is not None:
                self.local_names.add(vararg.arg)

    def _line(self, node: ast.AST) -> int:
        return getattr(node, "lineno", 0) + self.offset

    def _is_module_container(self, name: str) -> bool:
        if name in self.local_names:
            return False
        resolved = _resolve(name, self.cls)
        return isinstance(resolved, _MUTABLE_CONTAINERS)

    def _check_target(self, target: ast.AST, verb: str, line: int) -> None:
        elements = (target.elts if isinstance(target, (ast.Tuple, ast.List))
                    else [target])
        for element in elements:
            if (isinstance(element, ast.Attribute)
                    and isinstance(element.value, ast.Name)
                    and element.value.id == "self"):
                self.monolithic.append(
                    f"{verb} self.{element.attr} (line {line})")
            elif isinstance(element, ast.Name):
                if element.id in self.declared_globals:
                    self.global_writes.append(
                        f"{verb} global {element.id!r} (line {line})")
                else:
                    self.local_names.add(element.id)
            elif isinstance(element, ast.Subscript):
                base = element.value
                if (isinstance(base, ast.Name)
                        and self._is_module_container(base.id)):
                    self.global_writes.append(
                        f"{verb} module container {base.id!r} "
                        f"(line {line})")

    def visit_Global(self, node: ast.Global) -> None:
        self.declared_globals.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, "assignment to", self._line(node))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target, "assignment to", self._line(node))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, "augmented assignment to",
                           self._line(node))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        line = self._line(node)
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if receiver.id == "self":
                    self.self_calls.add(func.attr)
                elif (func.attr in _CONTAINER_MUTATORS
                      and self._is_module_container(receiver.id)):
                    self.global_writes.append(
                        f"mutating call {receiver.id}.{func.attr}() on a "
                        f"module container (line {line})")
            elif (func.attr in _SEQUENCE_MUTATORS
                  and isinstance(receiver, ast.Attribute)
                  and isinstance(receiver.value, ast.Name)
                  and receiver.value.id == "self"):
                self.monolithic.append(
                    f"order-dependent mutating call "
                    f"self.{receiver.attr}.{func.attr}() (line {line})")
        self.generic_visit(node)


def _scan_closure(cls: type, sources: _ClassSources, entry: str,
                  visitor_cls: type) -> List[ast.NodeVisitor]:
    """Run a visitor over ``entry`` and every self-method it reaches."""
    visitors: List[ast.NodeVisitor] = []
    visited: Set[str] = set()
    frontier = [entry]
    while frontier:
        name = frontier.pop()
        if name in visited or name not in sources.methods:
            continue
        visited.add(name)
        node, _, offset = sources.methods[name]
        visitor = visitor_cls(cls, node, offset)
        # Descend from the body, not the function node itself: the
        # FunctionDef handler is for *nested* (closure-bound) functions.
        visitor.generic_visit(node)
        visitors.append(visitor)
        frontier.extend(visitor.self_calls - visited)
    return visitors


@lru_cache(maxsize=None)
def analyze_deploy(cls: type) -> DeployFacts:
    """Deployment-safety facts of one operator class.

    Raises :class:`OSError` when the class source is unavailable;
    callers surface that as SS207 exactly like the opcode pass.
    """
    if not (isinstance(cls, type) and issubclass(cls, Operator)):
        raise TypeError(f"{cls!r} is not an Operator subclass")
    sources = _class_sources(cls)

    lambdas: List[str] = []
    resources: List[str] = []
    iterators: List[str] = []
    for visitor in _scan_closure(cls, sources, "__init__", _InitVisitor):
        lambdas.extend(visitor.lambdas)
        resources.extend(visitor.resources)
        iterators.extend(visitor.iterators)

    monolithic: List[str] = []
    global_writes: List[str] = []
    for visitor in _scan_closure(cls, sources, "operator_function",
                                 _RuntimeVisitor):
        monolithic.extend(visitor.monolithic)
        global_writes.extend(visitor.global_writes)

    import_evidence = _import_evidence(cls)
    return DeployFacts(
        class_path=f"{cls.__module__}.{cls.__qualname__}",
        importable=not import_evidence,
        import_evidence=import_evidence,
        init_lambdas=tuple(lambdas),
        init_resources=tuple(resources),
        init_iterators=tuple(iterators),
        snapshot_overridden=(cls.snapshot_state
                             is not Operator.snapshot_state),
        restore_overridden=(cls.restore_state
                            is not Operator.restore_state),
        monolithic_writes=tuple(monolithic),
        global_writes=tuple(global_writes),
        keyed=sources.keyed,
    )


def analyze_deploy_path(class_path: str) -> DeployFacts:
    """Load an operator class by dotted path and analyze it."""
    return analyze_deploy(load_operator_class(class_path))


def try_analyze_deploy(class_path: Optional[str]) -> Optional[DeployFacts]:
    """Best-effort analysis: ``None`` when loading or parsing fails."""
    if not class_path:
        return None
    try:
        return analyze_deploy_path(class_path)
    except (ImportError, OSError, SyntaxError, TypeError):
        return None


# ----------------------------------------------------------------------
# operator verification (SS301-SS305)
# ----------------------------------------------------------------------
def _operator_diagnostics(topology: Topology,
                          rules: FrozenSet[str]) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for spec in topology.operators:
        if not spec.operator_class:
            continue
        try:
            facts = analyze_deploy_path(spec.operator_class)
        except (ImportError, OSError, SyntaxError, TypeError) as exc:
            findings.append(Diagnostic(
                rule="SS207", severity=Severity.ERROR,
                message=f"operator class cannot be analyzed: {exc}",
                subject=spec.name, location=spec.operator_class,
            ))
            continue
        location = facts.class_path
        is_source = spec.name == topology.source
        hooks_complete = facts.snapshot_overridden and facts.restore_overridden

        if "SS301" in rules and not facts.process_safe:
            findings.append(Diagnostic(
                rule="SS301", severity=Severity.ERROR,
                message=("operator cannot cross a process boundary: "
                         + "; ".join(facts.pickle_evidence()[:3])),
                subject=spec.name, location=location,
            ))
        if "SS302" in rules:
            if facts.snapshot_overridden != facts.restore_overridden:
                missing = ("restore_state" if facts.snapshot_overridden
                           else "snapshot_state")
                findings.append(Diagnostic(
                    rule="SS302", severity=Severity.ERROR,
                    message=(f"overrides only one snapshot hook: {missing} "
                             "is missing, so recovery would restore "
                             "mismatched state"),
                    subject=spec.name, location=location,
                ))
            elif not hooks_complete:
                unsnapshotable = list(facts.init_resources)
                if not is_source:
                    unsnapshotable.extend(facts.init_iterators)
                if unsnapshotable:
                    findings.append(Diagnostic(
                        rule="SS302", severity=Severity.ERROR,
                        message=("default deepcopy snapshot cannot capture "
                                 "__init__ state: "
                                 + "; ".join(unsnapshotable[:3])),
                        subject=spec.name, location=location,
                    ))
        if ("SS303" in rules and is_source and facts.init_iterators
                and not hooks_complete):
            findings.append(Diagnostic(
                rule="SS303", severity=Severity.ERROR,
                message=("source holds a one-shot iterator and does not "
                         "override the snapshot hooks — recovery cannot "
                         "rewind the stream: "
                         + "; ".join(facts.init_iterators[:3])),
                subject=spec.name, location=location,
            ))
        if "SS304" in rules and spec.state is StateKind.PARTITIONED:
            if not facts.keyed:
                findings.append(Diagnostic(
                    rule="SS304", severity=Severity.ERROR,
                    message=("declared partitioned-stateful but the class "
                             "does not override key_of: migration cannot "
                             "split the state by key"),
                    subject=spec.name, location=location,
                ))
            elif facts.monolithic_writes:
                findings.append(Diagnostic(
                    rule="SS304", severity=Severity.ERROR,
                    message=("partitioned state has monolithic (non-keyed) "
                             "writes a migration would tear: "
                             + "; ".join(facts.monolithic_writes[:3])),
                    subject=spec.name, location=location,
                ))
        if "SS305" in rules and facts.global_writes:
            findings.append(Diagnostic(
                rule="SS305", severity=Severity.ERROR,
                message=("module-global state is written from "
                         "operator_function — replicas race and processes "
                         "diverge: " + "; ".join(facts.global_writes[:3])),
                subject=spec.name, location=location,
            ))
    return findings


def _active_rules(backend: str, elastic: bool,
                  checkpointed: bool) -> FrozenSet[str]:
    rules: Set[str] = set()
    if backend == "process":
        rules.update({"SS301", "SS305"})
    if elastic:
        rules.update({"SS304", "SS305"})
    if checkpointed:
        rules.update({"SS302", "SS303"})
    return frozenset(rules)


def verify_deploy(topology: Topology, backend: str = "process",
                  runtime: Optional[object] = None) -> LintReport:
    """Run the operator deployment rules for one target backend.

    ``backend`` is ``"threaded"``, ``"process"`` or ``"elastic"``;
    ``runtime`` is an optional :class:`~repro.runtime.system.RuntimeConfig`
    whose ``elastic``/``checkpoint`` fields widen the active rule set.
    The threaded backend without checkpointing has no deployment
    preconditions and returns an empty report.
    """
    elastic = backend == "elastic" or bool(getattr(runtime, "elastic", False))
    checkpointed = bool(getattr(runtime, "checkpoint", None)
                        or topology.checkpoint)
    rules = _active_rules(backend, elastic, checkpointed)
    findings = _operator_diagnostics(topology, rules) if rules else []
    return LintReport(diagnostics=tuple(findings),
                      subject_name=topology.name, passes=("deploy",))


def deploy_errors(topology: Topology,
                  rules: Sequence[str]) -> List[Diagnostic]:
    """Error findings for the given SS30x rules (the runtime gates).

    SS207 (class unanalyzable) is dropped: absence of evidence is not
    evidence of a deployment hazard, matching ``impure_operators``.
    """
    wanted = frozenset(rules)
    return [d for d in _operator_diagnostics(topology, wanted)
            if d.rule in wanted and d.severity is Severity.ERROR]


def process_unsafe_operators(topology: Topology) -> FrozenSet[str]:
    """Names whose class state cannot cross a process boundary (SS301).

    Operators without a class, or whose analysis fails, are not
    excluded — the absence of evidence is not evidence of a hazard.
    """
    unsafe = set()
    for spec in topology.operators:
        facts = try_analyze_deploy(spec.operator_class)
        if facts is not None and not facts.process_safe:
            unsafe.add(spec.name)
    return frozenset(unsafe)


# ----------------------------------------------------------------------
# plan verification (SS310-SS315)
# ----------------------------------------------------------------------
def _effectively_stateful(spec) -> bool:
    if spec.state is StateKind.STATEFUL:
        return True
    facts = try_analyze(spec.operator_class)
    return facts is not None and facts.inferred is StateKind.STATEFUL


def verify_plan(
    topology: Topology,
    *,
    backend: str = "threaded",
    placement: Optional[Mapping[str, Sequence[int]]] = None,
    shards: Optional[int] = None,
    runtime: Optional[object] = None,
    adaptive: Optional[object] = None,
    source_rate: Optional[float] = None,
    overhead_ceiling: float = OVERHEAD_CEILING,
) -> LintReport:
    """Run the plan/config rules over one deployment triple.

    ``placement`` maps operator names to per-replica shard indices (the
    shape of :attr:`ShardPlacement.by_vertex`); when omitted for the
    process backend with ``shards`` given, the solver-driven placement
    is computed and checked instead.  ``adaptive`` is an optional
    :class:`~repro.runtime.adaptive.AdaptiveConfig`.
    """
    findings: List[Diagnostic] = []
    elastic = backend == "elastic" or bool(getattr(runtime, "elastic", False))
    checkpoint = (getattr(runtime, "checkpoint", None)
                  or topology.checkpoint)

    if elastic and checkpoint is not None:
        findings.append(Diagnostic(
            rule="SS310", severity=Severity.ERROR,
            message=("elastic mode is incompatible with checkpointing: "
                     "the barrier channel set is fixed at wiring time"),
            subject=topology.name,
        ))

    if placement is None and backend == "process" and shards:
        from repro.codegen.deployment import shard_placement
        placement = shard_placement(topology, shards=shards).by_vertex

    if placement is not None:
        indices = [s for assignment in placement.values()
                   for s in assignment]
        shard_count = shards if shards else (max(indices) + 1 if indices
                                             else 1)
        for name in sorted(placement):
            assignment = tuple(placement[name])
            if name not in topology:
                findings.append(Diagnostic(
                    rule="SS311", severity=Severity.ERROR,
                    message="placement names an operator the topology "
                            "does not contain",
                    subject=name,
                ))
                continue
            spec = topology.operator(name)
            if len(assignment) != spec.replication:
                findings.append(Diagnostic(
                    rule="SS311", severity=Severity.ERROR,
                    message=(f"placement for {name!r} must name "
                             f"{spec.replication} shards, "
                             f"got {len(assignment)}"),
                    subject=name,
                ))
            elif any(not 0 <= s < shard_count for s in assignment):
                findings.append(Diagnostic(
                    rule="SS311", severity=Severity.ERROR,
                    message=(f"placement for {name!r} uses a shard outside "
                             f"[0, {shard_count})"),
                    subject=name,
                ))
            elif (len(set(assignment)) > 1
                    and _effectively_stateful(spec)):
                findings.append(Diagnostic(
                    rule="SS312", severity=Severity.ERROR,
                    message=("placement scatters a stateful operator over "
                             f"shards {sorted(set(assignment))}: monolithic "
                             "state cannot be split across processes"),
                    subject=name,
                ))
        for name in topology.names:
            if name not in placement:
                findings.append(Diagnostic(
                    rule="SS311", severity=Severity.ERROR,
                    message="operator has no shard assignment",
                    subject=name,
                ))

    budget = topology.latency_budget
    if budget is not None:
        for edge in topology.edges:
            if edge.batch is not None and edge.batch.flush_timeout > budget:
                findings.append(Diagnostic(
                    rule="SS313", severity=Severity.ERROR,
                    message=(f"batch flush deadline "
                             f"{edge.batch.flush_timeout:g}s exceeds the "
                             f"latency budget {budget:g}s: a quiet stream "
                             "would strand tuples past the deadline"),
                    subject=f"{edge.source}->{edge.target}",
                ))
        if (getattr(runtime, "batch_size", 1) > 1
                and getattr(runtime, "batch_flush_timeout", 0.0) > budget):
            findings.append(Diagnostic(
                rule="SS313", severity=Severity.ERROR,
                message=(f"global batch flush deadline "
                         f"{runtime.batch_flush_timeout:g}s exceeds the "
                         f"latency budget {budget:g}s"),
                subject=topology.name,
            ))

    if adaptive is not None and getattr(adaptive, "cooldown_ticks", 1) < 1:
        findings.append(Diagnostic(
            rule="SS314", severity=Severity.ERROR,
            message=("adaptive cooldown of 0 ticks re-plans faster than "
                     "one control period: reconfigurations oscillate "
                     "before their effect is measurable"),
            subject=topology.name,
        ))

    if checkpoint is not None and checkpoint.snapshot_overhead > 0.0:
        from repro.core.solver import predict_checkpoint
        from repro.core.graph import TopologyError
        try:
            prediction = predict_checkpoint(topology, checkpoint=checkpoint,
                                            source_rate=source_rate)
        except TopologyError:
            prediction = None
        if (prediction is not None
                and prediction.overhead_ratio > overhead_ceiling):
            findings.append(Diagnostic(
                rule="SS315", severity=Severity.WARNING,
                message=(f"predicted checkpoint overhead "
                         f"{prediction.overhead_ratio:.1%} exceeds the "
                         f"{overhead_ceiling:.0%} ceiling: lengthen the "
                         "interval or cheapen the snapshots"),
                subject=topology.name,
            ))

    return LintReport(diagnostics=tuple(findings),
                      subject_name=topology.name, passes=("plan",))
