"""The diagnostic framework shared by both static-analysis passes.

A :class:`Diagnostic` is one finding: a stable rule ID (``SS101`` ...),
a :class:`Severity`, a human-readable message, the subject it concerns
(an operator name or an ``a->b`` edge label) and an optional source
location (the XML file or the ``module.Class:line`` of operator code).
A :class:`LintReport` is an ordered collection of diagnostics with
text, JSON and SARIF renderings; its :attr:`~LintReport.exit_code` is
the ``spinstreams lint`` process exit status (``0`` clean or info-only,
``1`` warnings, ``2`` errors).

Each analysis pass registers its rules in the :data:`rule registry
<RULES>` at import time (:func:`register_rules`), so tooling — the
SARIF exporter, the documentation tests — can enumerate every rule
with its default severity and one-line summary without running a lint.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity; the integer value doubles as the exit code."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class RuleInfo:
    """Registry entry describing one lint rule."""

    rule: str
    severity: Severity
    summary: str
    #: Which pass owns the rule: ``"graph"``, ``"opcode"``, ``"deploy"``
    #: or ``"plan"``.
    owner: str


#: Every registered rule, keyed by ID.  Passes populate this at import.
RULES: Dict[str, RuleInfo] = {}


def register_rules(owner: str,
                   rules: Mapping[str, Tuple[Severity, str]]) -> None:
    """Register a pass's rules (ID -> default severity + summary)."""
    for rule, (severity, summary) in rules.items():
        RULES[rule] = RuleInfo(rule=rule, severity=severity,
                               summary=summary, owner=owner)


def rule_info(rule: str) -> Optional[RuleInfo]:
    """The registry entry of a rule ID, if registered."""
    return RULES.get(rule)


def all_rules() -> List[RuleInfo]:
    """Every registered rule, sorted by ID."""
    return [RULES[rule] for rule in sorted(RULES)]


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    rule: str
    severity: Severity
    message: str
    #: Operator name or ``source->target`` edge label, when applicable.
    subject: Optional[str] = None
    #: Where the finding points: an XML path or ``module.Class:line``.
    location: Optional[str] = None

    def render(self) -> str:
        subject = f" [{self.subject}]" if self.subject else ""
        location = f" ({self.location})" if self.location else ""
        return (f"{self.severity.label} {self.rule}{subject}: "
                f"{self.message}{location}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
        }

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class LintReport:
    """The ordered findings of one lint run over one topology."""

    diagnostics: Tuple[Diagnostic, ...] = ()
    #: Name of the linted topology (or file), for the report header.
    subject_name: str = ""
    #: Which passes ran, e.g. ``("graph", "opcode")``.
    passes: Tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        """No error-severity diagnostics (warnings and infos allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """No diagnostics at all."""
        return not self.diagnostics

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    @property
    def exit_code(self) -> int:
        """Process exit status: 0 clean/info, 1 warnings, 2 errors."""
        worst = self.max_severity
        if worst is None or worst is Severity.INFO:
            return 0
        return int(worst)

    def rules(self) -> List[str]:
        """The distinct rule IDs present, sorted."""
        return sorted({d.rule for d in self.diagnostics})

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def has(self, rule: str) -> bool:
        return any(d.rule == rule for d in self.diagnostics)

    def filter(self, min_severity: Severity) -> "LintReport":
        """A copy keeping only diagnostics at or above ``min_severity``."""
        kept = tuple(d for d in self.diagnostics
                     if d.severity >= min_severity)
        return LintReport(diagnostics=kept, subject_name=self.subject_name,
                          passes=self.passes)

    def merge(self, other: "LintReport") -> "LintReport":
        """This report with another's diagnostics and passes appended."""
        passes = self.passes + tuple(
            p for p in other.passes if p not in self.passes)
        return LintReport(
            diagnostics=self.diagnostics + other.diagnostics,
            subject_name=self.subject_name or other.subject_name,
            passes=passes,
        )

    def __add__(self, other: "LintReport") -> "LintReport":
        return self.merge(other)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def summary(self) -> str:
        """One line: subject, counts per severity."""
        name = self.subject_name or "topology"
        if not self.diagnostics:
            return f"{name}: clean"
        infos = len(self.diagnostics) - len(self.errors) - len(self.warnings)
        parts = []
        if self.errors:
            parts.append(f"{len(self.errors)} error(s)")
        if self.warnings:
            parts.append(f"{len(self.warnings)} warning(s)")
        if infos:
            parts.append(f"{infos} info(s)")
        return f"{name}: {', '.join(parts)}"

    def render(self) -> str:
        """Multi-line text report, most severe findings first."""
        lines = [self.summary()]
        ordered = sorted(self.diagnostics,
                         key=lambda d: (-int(d.severity), d.rule,
                                        d.subject or ""))
        lines.extend(f"  {d.render()}" for d in ordered)
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Machine-readable report (stable schema, used by CI)."""
        payload = {
            "subject": self.subject_name,
            "passes": list(self.passes),
            "ok": self.ok,
            "exit_code": self.exit_code,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": (len(self.diagnostics) - len(self.errors)
                         - len(self.warnings)),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        return json.dumps(payload, indent=indent)

    def to_sarif(self, indent: Optional[int] = 2) -> str:
        """The report as a SARIF 2.1.0 log (PR-annotation friendly).

        Rule metadata comes from the registry; diagnostics whose
        location names an XML file become physical locations so code
        hosts can anchor annotations, everything else stays in the
        result message.
        """
        level_of = {Severity.ERROR: "error", Severity.WARNING: "warning",
                    Severity.INFO: "note"}
        used = sorted({d.rule for d in self.diagnostics})
        rules = []
        for rule in used:
            info = rule_info(rule)
            entry: Dict[str, object] = {"id": rule}
            if info is not None:
                entry["shortDescription"] = {"text": info.summary}
                entry["defaultConfiguration"] = {
                    "level": level_of[info.severity]}
            rules.append(entry)
        index_of = {rule: i for i, rule in enumerate(used)}
        results = []
        for d in self.diagnostics:
            text = d.message
            if d.subject:
                text = f"[{d.subject}] {text}"
            result: Dict[str, object] = {
                "ruleId": d.rule,
                "ruleIndex": index_of[d.rule],
                "level": level_of[d.severity],
                "message": {"text": text},
            }
            if d.location and d.location.endswith(".xml"):
                result["locations"] = [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.location},
                    },
                }]
            elif d.location:
                result["locations"] = [{
                    "logicalLocations": [{"fullyQualifiedName": d.location}],
                }]
            results.append(result)
        payload = {
            "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "spinstreams",
                    "informationUri":
                        "https://github.com/spinstreams/reproduction",
                    "rules": rules,
                }},
                "results": results,
            }],
        }
        return json.dumps(payload, indent=indent)

    def header_lines(self) -> List[str]:
        """Comment-friendly lines for embedding in generated code."""
        if not self.diagnostics:
            return ["Static checks (spinstreams lint): clean"]
        lines = [f"Static checks (spinstreams lint): {self.summary()}"]
        ordered = sorted(self.diagnostics,
                         key=lambda d: (-int(d.severity), d.rule,
                                        d.subject or ""))
        lines.extend(f"  {d.render()}" for d in ordered)
        return lines


def report_from(diagnostics: Iterable[Diagnostic], subject_name: str = "",
                passes: Iterable[str] = ()) -> LintReport:
    """Build a report from an iterable of diagnostics."""
    return LintReport(diagnostics=tuple(diagnostics),
                      subject_name=subject_name, passes=tuple(passes))
