"""Static analysis: the pre-deployment verifier and operator-code linter.

SpinStreams is a *static* optimization tool, so mistakes in the input
should be caught before any solve or deployment.  This package provides
two cooperating passes behind one diagnostic framework:

* :mod:`repro.analysis.graph` — the **graph verifier**: structural and
  numeric sanity of a topology (reachability, probability mass,
  selectivities, key distributions) plus a *pre-deployment* verdict on
  BAS deadlock risk for cyclic drafts, complementing the runtime
  StallWatchdog;
* :mod:`repro.analysis.opcode` — the **operator-code analyzer**: an
  ``ast``-based classifier of each operator implementation that infers
  the true :class:`~repro.core.graph.StateKind` from the code and
  detects fission-unsafe patterns (shared mutable class attributes,
  nondeterminism, impure ``key_of``, I/O side effects).

Diagnostics carry stable rule IDs (``SS1xx`` for the graph pass,
``SS2xx`` for the code pass), a severity (``error``/``warning``/
``info``), the offending subject and a source location, and render to
text or machine-readable JSON.  EXPERIMENTS.md lists every rule with
its rationale.

The verdicts gate the optimization pipeline: bottleneck elimination
refuses to replicate operators whose code is provably more stateful
than declared, automatic fusion skips impure operators, SS2Py embeds
the lint report in generated programs, and ``spinstreams lint`` runs
both passes from the command line.
"""

from repro.analysis.diagnostics import Diagnostic, LintReport, Severity
from repro.analysis.graph import verify_graph
from repro.analysis.lint import lint_topology
from repro.analysis.opcode import (
    OperatorCodeFacts,
    analyze_class_path,
    analyze_operator_class,
    impure_operators,
    verify_code,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "OperatorCodeFacts",
    "Severity",
    "analyze_class_path",
    "analyze_operator_class",
    "impure_operators",
    "lint_topology",
    "verify_code",
    "verify_graph",
]
