"""Static analysis: the pre-deployment verifier and operator-code linter.

SpinStreams is a *static* optimization tool, so mistakes in the input
should be caught before any solve or deployment.  This package provides
three cooperating passes behind one diagnostic framework:

* :mod:`repro.analysis.graph` — the **graph verifier**: structural and
  numeric sanity of a topology (reachability, probability mass,
  selectivities, key distributions) plus a *pre-deployment* verdict on
  BAS deadlock risk for cyclic drafts, complementing the runtime
  StallWatchdog;
* :mod:`repro.analysis.opcode` — the **operator-code analyzer**: an
  ``ast``-based classifier of each operator implementation that infers
  the true :class:`~repro.core.graph.StateKind` from the code and
  detects fission-unsafe patterns (shared mutable class attributes,
  nondeterminism, impure ``key_of``, I/O side effects);
* :mod:`repro.analysis.deploy` — the **deployment-safety analyzer**:
  statically proves a ``(topology, deployment plan, RuntimeConfig)``
  triple executable on each target backend — pickle/fork safety for the
  process backend, snapshot/restore soundness for checkpointing,
  migration-partitionability for elasticity, replica races, and
  plan/config conflicts (elastic×checkpoint, shard placement, batch
  deadlines vs. latency budget, adaptive cooldowns, checkpoint
  overhead).

Diagnostics carry stable rule IDs (``SS1xx`` for the graph pass,
``SS2xx`` for the code pass, ``SS3xx`` for the deployment pass), a
severity (``error``/``warning``/``info``), the offending subject and a
source location, and render to text, machine-readable JSON or SARIF.
Every rule is listed in the :data:`~repro.analysis.diagnostics.RULES`
registry; EXPERIMENTS.md documents the rationale.

The verdicts gate the optimization pipeline: bottleneck elimination
refuses to replicate operators whose code is provably more stateful
than declared, automatic fusion skips impure operators, the runtime
backends refuse builds the deployment analyzer proves unsafe (with an
``unsafe=True`` escape hatch), and ``spinstreams lint`` runs every
pass from the command line.
"""

from repro.analysis.deploy import (
    DeployFacts,
    analyze_deploy,
    analyze_deploy_path,
    deploy_errors,
    process_unsafe_operators,
    verify_deploy,
    verify_plan,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    RuleInfo,
    Severity,
    all_rules,
    rule_info,
)
from repro.analysis.graph import verify_graph
from repro.analysis.lint import lint_topology
from repro.analysis.opcode import (
    OperatorCodeFacts,
    analyze_class_path,
    analyze_operator_class,
    impure_operators,
    verify_code,
)

__all__ = [
    "DeployFacts",
    "Diagnostic",
    "LintReport",
    "OperatorCodeFacts",
    "RuleInfo",
    "Severity",
    "all_rules",
    "analyze_class_path",
    "analyze_deploy",
    "analyze_deploy_path",
    "analyze_operator_class",
    "deploy_errors",
    "impure_operators",
    "lint_topology",
    "process_unsafe_operators",
    "rule_info",
    "verify_code",
    "verify_deploy",
    "verify_graph",
    "verify_plan",
]
