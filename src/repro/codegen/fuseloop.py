"""Fusion-to-loop code generation (Kiselyov-style stream fusion).

The meta-operator actor (:mod:`repro.runtime.meta`, Algorithm 4) already
removes the *mailbox hops* between fused members, but it still pays a
per-item dispatch: a deque of ``(member, item, origin)`` work units, a
routing-table lookup and an RNG-guarded pick per output.  *Stream
Fusion, to Completeness* (Kiselyov et al., PAPERS.md) shows a fused
chain should instead compile to one tight loop with the member functions
inlined as locals — no dispatch, no queue, no routing.

This module generates exactly that loop for *linear* fusion plans:

* :func:`chain_of` — the structural linear order of a plan's members
  (every member has at most one out-edge and the internal edges form a
  path from the front-end);
* :func:`loop_eligibility` / :func:`loop_eligibility_from_operators` —
  the safety gate: only chains whose every member the SS2xx operator
  code analyzer (:mod:`repro.analysis.opcode`) proves *pure* (no
  nondeterminism, no I/O) and honestly declared (no SS202 state
  mismatch) may be loop-compiled;
* :func:`generate_loop_source` / :func:`compile_loop` — the generated
  ``make_fused_loop`` source and its compiled form;
* :class:`LoopOperator` — an :class:`~repro.operators.base.Operator`
  wrapping the compiled loop so a plain ``OperatorActor`` can execute
  the fused vertex;
* :func:`choose_execution` — the planner policy picking loop-compiled
  vs actor-backed meta-operators from solver utilization numbers.

Equivalence argument (checked by the differential test layer in
:mod:`repro.testing.differential`): for a linear chain the meta-actor's
breadth-first deque and the generated nested loop feed every member the
*same per-member item subsequence* — both preserve the FIFO order of
each member's inputs — so member state evolves identically and the
externally emitted sequence is identical.  Members with several
out-edges are rejected because the meta-actor would consume RNG state
to route them, which a loop cannot replay without re-implementing the
sampler; non-linear plans are rejected because breadth-first and
depth-first interleavings of *different* members' external emissions can
diverge.  Stateful-but-pure members (e.g. collecting sinks) are safe
under these restrictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.opcode import OperatorCodeFacts, analyze_operator_class, try_analyze
from repro.core.fusion import FusionPlan
from repro.core.graph import Topology, TopologyError
from repro.core.steady_state import SteadyStateResult
from repro.operators.base import (
    Operator,
    StateKind,
    WrappedItem,
    destination_of,
    unwrap,
)

#: Fused vertices at or above this predicted utilization default to the
#: loop-compiled execution: per-item dispatch overhead is paid once per
#: tuple, so it matters exactly where tuples are hottest.
DEFAULT_UTILIZATION_THRESHOLD = 0.5


@dataclass(frozen=True)
class LoopEligibility:
    """Verdict of the loop-compilation safety gate for one fusion plan."""

    plan: FusionPlan
    eligible: bool
    #: Linear member order when the structure admits one, else ``()``.
    chain: Tuple[str, ...]
    #: Human-readable reasons the plan was rejected (empty if eligible).
    reasons: Tuple[str, ...]


def chain_of(plan: FusionPlan) -> Optional[Tuple[str, ...]]:
    """The linear member order of a plan, or ``None`` if not a chain.

    A plan is a chain when every member has at most one out-edge in the
    original topology and the internal edges form a single path visiting
    every member, starting at the front-end.  Only the last member may
    have an external (or no) out-edge.
    """
    out_edges: Dict[str, List[str]] = {member: [] for member in plan.members}
    for edge in plan.member_edges:
        out_edges[edge.source].append(edge.target)
    if any(len(targets) > 1 for targets in out_edges.values()):
        return None
    members = frozenset(plan.members)
    chain: List[str] = [plan.front_end]
    seen = {plan.front_end}
    current = plan.front_end
    while True:
        targets = out_edges[current]
        if not targets or targets[0] not in members:
            break
        current = targets[0]
        if current in seen:
            return None  # cycle — cannot happen in valid plans, be safe
        seen.add(current)
        chain.append(current)
    if len(chain) != len(plan.members):
        return None  # members off the path (a tree or diamond, not a chain)
    return tuple(chain)


def _gate(plan: FusionPlan,
          facts_of: Callable[[str], Tuple[Optional[OperatorCodeFacts], str]],
          ) -> LoopEligibility:
    """Shared eligibility logic over a per-member facts provider."""
    reasons: List[str] = []
    chain = chain_of(plan)
    if chain is None:
        reasons.append(
            "members do not form a linear chain with single out-edges "
            "(meta-actor routing would consume RNG state)")
    for member in plan.members:
        facts, label = facts_of(member)
        if facts is None:
            reasons.append(f"{member}: {label}")
            continue
        if not facts.pure:
            reasons.append(
                f"{member}: not pure ({facts.evidence or 'nondeterminism/IO'})")
        if facts.mismatch:
            reasons.append(
                f"{member}: declared state kind understates the code "
                f"({facts.evidence})")
    return LoopEligibility(
        plan=plan,
        eligible=not reasons,
        chain=chain or (),
        reasons=tuple(reasons),
    )


def loop_eligibility(plan: FusionPlan, topology: Topology) -> LoopEligibility:
    """Gate one plan against the *original* topology's operator classes.

    ``topology`` must be the pre-fusion topology (it carries the member
    specs); members without an ``operator_class`` or whose source the
    SS2xx analyzer cannot load are conservatively rejected.
    """

    def facts_of(member: str):
        if member not in topology:
            return None, "member spec missing from topology"
        class_path = topology.operator(member).operator_class
        if not class_path:
            return None, "no operator_class to analyze"
        facts = try_analyze(class_path)
        if facts is None:
            return None, f"operator class {class_path!r} cannot be analyzed"
        return facts, class_path

    return _gate(plan, facts_of)


def loop_eligibility_from_operators(
    plan: FusionPlan,
    members: Mapping[str, Operator],
) -> LoopEligibility:
    """Gate one plan by analyzing the *instantiated* member operators.

    Used by the runtime, which holds live operator instances instead of
    a pre-fusion topology; wrapper classes (e.g. fault-injecting
    decorators) naturally fail the purity analysis and force the
    meta-actor fallback.
    """

    def facts_of(member: str):
        operator = members.get(member)
        if operator is None:
            return None, "no operator instance"
        cls = type(operator)
        try:
            facts = analyze_operator_class(cls)
        except (OSError, TypeError, SyntaxError) as exc:
            return None, f"class {cls.__name__} cannot be analyzed: {exc}"
        return facts, cls.__name__

    return _gate(plan, facts_of)


# ----------------------------------------------------------------------
# code generation


def _identifier(name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "op_" + cleaned
    return cleaned


def generate_loop_source(plan: FusionPlan,
                         chain: Optional[Sequence[str]] = None) -> str:
    """Source of ``make_fused_loop(members)`` for one linear plan.

    The factory binds every member's ``operator_function`` to a local
    (one attribute lookup per member per *run*, not per item) and
    returns the fused loop: nested ``for`` loops following the chain,
    with the origin stamping the meta-actor performs replicated inline.
    Outputs pinned to a destination outside the chain short-circuit to
    the external list; everything the last member emits leaves the loop
    and is routed by the enclosing actor using the fused vertex's edges.
    """
    if chain is None:
        chain = chain_of(plan)
    if chain is None:
        raise TopologyError(
            f"fusion plan {plan.fused_name!r} is not a linear chain; "
            "loop compilation is only defined for chains"
        )
    if tuple(chain) and set(chain) != set(plan.members):
        raise TopologyError("chain must cover exactly the plan's members")

    names = [_identifier(member) for member in chain]
    lines: List[str] = []
    lines.append(f"def make_fused_loop(members):")
    lines.append(f'    """Compiled loop of fused chain '
                 f'{" -> ".join(chain)}."""')
    for member, name in zip(chain, names):
        lines.append(f"    _fn_{name} = members[{member!r}].operator_function")
    lines.append("")
    lines.append("    def fused_loop(item):")
    lines.append("        external = []")

    indent = "        "
    for index, (member, name) in enumerate(zip(chain, names)):
        last = index == len(chain) - 1
        source_var = "item" if index == 0 else f"item_{name}"
        lines.append(f"{indent}for out_{name} in _fn_{name}({source_var}):")
        indent += "    "
        if last:
            lines.append(f"{indent}external.append(out_{name})")
            continue
        next_member = chain[index + 1]
        next_name = names[index + 1]
        lines.append(f"{indent}dest_{name} = destination_of(out_{name})")
        lines.append(f"{indent}if dest_{name} is not None "
                     f"and dest_{name} != {next_member!r}:")
        lines.append(f"{indent}    external.append(out_{name})")
        lines.append(f"{indent}    continue")
        lines.append(f"{indent}item_{next_name} = unwrap(out_{name})")
        lines.append(f"{indent}if isinstance(item_{next_name}, dict):")
        lines.append(f"{indent}    item_{next_name}['origin'] = {member!r}")
    lines.append("        return external")
    lines.append("")
    lines.append("    return fused_loop")
    return "\n".join(lines) + "\n"


def compile_loop(plan: FusionPlan,
                 chain: Optional[Sequence[str]] = None,
                 ) -> Callable[[Mapping[str, Operator]],
                               Callable[[object], List[object]]]:
    """Compile the generated source; returns the ``make_fused_loop`` factory."""
    source = generate_loop_source(plan, chain)
    namespace: Dict[str, object] = {
        "destination_of": destination_of,
        "unwrap": unwrap,
        "WrappedItem": WrappedItem,
    }
    exec(compile(source, f"<fuseloop:{plan.fused_name}>", "exec"), namespace)
    return namespace["make_fused_loop"]  # type: ignore[return-value]


class LoopOperator(Operator):
    """The fused chain as one operator running the compiled loop.

    Executed by a plain ``OperatorActor``: one mailbox, zero internal
    hops, zero per-member dispatch.  Declared stateful so no later
    transformation replicates it — members may legitimately hold state
    (pure ≠ stateless; a collecting sink is pure and stateful).
    """

    state = StateKind.STATEFUL

    def __init__(self, plan: FusionPlan,
                 members: Mapping[str, Operator],
                 chain: Optional[Sequence[str]] = None) -> None:
        if chain is None:
            chain = chain_of(plan)
            if chain is None:
                raise TopologyError(
                    f"fusion plan {plan.fused_name!r} is not loop-compilable")
        missing = sorted(set(plan.members) - set(members))
        if missing:
            raise ValueError(f"missing member operators: {missing}")
        self.plan = plan
        self.chain = tuple(chain)
        self.members = dict(members)
        self.output_selectivity = plan.output_selectivity
        self._loop = compile_loop(plan, self.chain)(self.members)

    def operator_function(self, item: object) -> List[object]:
        return self._loop(item)

    def on_start(self) -> None:
        for member in self.chain:
            self.members[member].on_start()

    def on_stop(self) -> None:
        for member in self.chain:
            self.members[member].on_stop()

    def snapshot_state(self) -> object:
        """Member-wise snapshot (one blob per fused member)."""
        return {member: self.members[member].snapshot_state()
                for member in self.chain}

    def restore_state(self, snapshot: object) -> None:
        """Member-wise in-place restore.

        The member instances must be restored in place (not replaced):
        the compiled loop closure captured direct references to them,
        and the default ``Operator.restore_state`` would wipe this
        instance's ``_loop``/``members`` wiring wholesale.
        """
        for member, state in snapshot.items():  # type: ignore[union-attr]
            self.members[member].restore_state(state)

    def describe(self) -> str:
        return (f"LoopOperator({' -> '.join(self.chain)}, "
                f"sel={self.output_selectivity:g})")


# ----------------------------------------------------------------------
# execution planning


@dataclass(frozen=True)
class ExecutionChoice:
    """How one fused vertex should execute, and why."""

    fused_name: str
    #: ``"loop"`` (loop-compiled operator) or ``"meta"`` (meta-actor).
    execution: str
    utilization: Optional[float]
    eligibility: LoopEligibility

    @property
    def reason(self) -> str:
        if self.execution == "loop":
            return (f"eligible chain, utilization "
                    f"{self.utilization:.3f} >= threshold"
                    if self.utilization is not None
                    else "eligible chain")
        if not self.eligibility.eligible:
            return "; ".join(self.eligibility.reasons)
        return (f"utilization {self.utilization:.3f} below threshold; "
                "dispatch overhead negligible, meta-actor keeps member-"
                "level supervision")


def choose_execution(
    plan: FusionPlan,
    topology: Topology,
    analysis: Optional[SteadyStateResult] = None,
    utilization_threshold: float = DEFAULT_UTILIZATION_THRESHOLD,
    eligibility: Optional[LoopEligibility] = None,
) -> ExecutionChoice:
    """Pick loop-compiled vs meta-actor execution for one fused vertex.

    ``topology`` is the *original* (pre-fusion) topology; ``analysis``
    is a solve of the *fused* topology (its rates contain the fused
    vertex).  The policy: loop-compile when the SS2xx gate admits the
    chain **and** the fused vertex's predicted utilization reaches the
    threshold — per-item dispatch overhead scales with the tuple rate,
    so the payoff concentrates on hot vertices, while cold vertices keep
    the meta-actor's member-level supervision granularity.  Without an
    ``analysis`` the utilization test is skipped (eligibility decides).
    """
    if eligibility is None:
        eligibility = loop_eligibility(plan, topology)
    utilization: Optional[float] = None
    if analysis is not None and plan.fused_name in analysis.rates:
        utilization = analysis.rates[plan.fused_name].utilization
    hot = utilization is None or utilization >= utilization_threshold
    execution = "loop" if (eligibility.eligible and hot) else "meta"
    return ExecutionChoice(
        fused_name=plan.fused_name,
        execution=execution,
        utilization=utilization,
        eligibility=eligibility,
    )
