"""Deployment-plan export for external Stream Processing Systems.

The paper's future work targets generating code "for other agent-based
frameworks like CAF and SPSs like Apache Storm and Flink".  Full
code generation needs runnable operator implementations in those
frameworks; what transfers directly is the *optimization outcome*: the
parallelism of every operator, the fused groupings and the predicted
rates.  This module exports exactly that:

* :func:`deployment_plan` — a framework-neutral JSON document (the
  contract a deployment pipeline consumes);
* :func:`flink_sketch` — an illustrative Flink-style Java sketch whose
  ``setParallelism()`` calls carry the fission degrees (the API the
  paper itself names in Section 2);
* :func:`storm_sketch` — the same plan as a Storm ``TopologyBuilder``
  sketch with bolt parallelism hints and stream groupings.

The sketches are documentation artifacts (there is no JVM here to run
them); the JSON plan is machine-readable and round-trips through the
tests.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.core.fusion import FusionPlan
from repro.core.graph import StateKind, Topology
from repro.core.steady_state import SteadyStateResult, analyze


def deployment_plan(
    topology: Topology,
    analysis: Optional[SteadyStateResult] = None,
    fusion_plans: Sequence[FusionPlan] = (),
    original: Optional[Topology] = None,
    utilization_threshold: Optional[float] = None,
) -> Dict[str, Any]:
    """A framework-neutral deployment descriptor of an optimized topology.

    When ``original`` (the pre-fusion topology, carrying the member
    operator classes) is provided, every fused vertex also carries its
    chosen execution backend — ``"loop-compiled"`` for SS2xx-pure linear
    chains hot enough to pay for it, ``"meta-actor"`` otherwise — as
    decided by :func:`repro.codegen.fuseloop.choose_execution` from the
    solver's utilization numbers.
    """
    if analysis is None:
        analysis = analyze(topology)
    fused = {plan.fused_name: plan for plan in fusion_plans}
    choices: Dict[str, Any] = {}
    if original is not None and fused:
        from repro.codegen.fuseloop import (
            DEFAULT_UTILIZATION_THRESHOLD,
            choose_execution,
        )
        threshold = (utilization_threshold
                     if utilization_threshold is not None
                     else DEFAULT_UTILIZATION_THRESHOLD)
        choices = {
            name: choose_execution(plan, original, analysis=analysis,
                                   utilization_threshold=threshold)
            for name, plan in fused.items()
        }

    operators: List[Dict[str, Any]] = []
    for spec in topology.operators:
        rates = analysis.rates[spec.name]
        entry: Dict[str, Any] = {
            "name": spec.name,
            "parallelism": spec.replication,
            "state": spec.state.value,
            "service_time_ms": spec.service_time * 1e3,
            "predicted_utilization": round(rates.utilization, 6),
            "predicted_departure_rate": round(rates.departure_rate, 6),
        }
        if spec.operator_class:
            entry["implementation"] = spec.operator_class
        if spec.input_selectivity != 1.0:
            entry["input_selectivity"] = spec.input_selectivity
        if spec.output_selectivity != 1.0:
            entry["output_selectivity"] = spec.output_selectivity
        if spec.keys is not None:
            entry["partitioning"] = {
                "keys": len(spec.keys),
                "max_key_frequency": spec.keys.max_frequency(),
            }
        if spec.name in fused:
            plan = fused[spec.name]
            entry["fused_members"] = list(plan.members)
            entry["fused_front_end"] = plan.front_end
            choice = choices.get(spec.name)
            if choice is not None:
                entry["execution"] = ("loop-compiled"
                                      if choice.execution == "loop"
                                      else "meta-actor")
                entry["execution_reason"] = choice.reason
        operators.append(entry)

    plan: Dict[str, Any] = {
        "topology": topology.name,
        "source": topology.source,
        "sinks": topology.sinks,
        "predicted_throughput": analysis.throughput,
        "operators": operators,
        "edges": [
            {"from": e.source, "to": e.target, "probability": e.probability}
            for e in topology.edges
        ],
    }
    if topology.checkpoint is not None:
        from repro.core.solver import predict_checkpoint

        prediction = predict_checkpoint(topology,
                                        checkpoint=topology.checkpoint)
        plan["checkpointing"] = {
            "interval_items": topology.checkpoint.interval_items,
            "retained_epochs": topology.checkpoint.retained,
            "snapshot_overhead_ms":
                topology.checkpoint.snapshot_overhead * 1e3,
            "predicted_throughput": prediction.throughput,
            "predicted_overhead_ratio": round(
                prediction.overhead_ratio, 6),
            "predicted_mean_recovery_s": prediction.mean_recovery_time,
        }
    return plan


def deployment_json(topology: Topology,
                    analysis: Optional[SteadyStateResult] = None,
                    fusion_plans: Sequence[FusionPlan] = ()) -> str:
    """The deployment plan serialized as pretty JSON."""
    return json.dumps(
        deployment_plan(topology, analysis=analysis,
                        fusion_plans=fusion_plans),
        indent=2, sort_keys=False,
    ) + "\n"


def _java_identifier(name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "op_" + cleaned
    return cleaned


def flink_sketch(topology: Topology,
                 analysis: Optional[SteadyStateResult] = None) -> str:
    """An illustrative Flink DataStream sketch carrying the parallelism.

    Keyed routing becomes ``keyBy``; everything else uses the default
    forwarding.  The sketch documents the plan for a JVM engineer; it
    is not compiled here.
    """
    if analysis is None:
        analysis = analyze(topology)
    lines = [
        "// Generated by SpinStreams (reproduction): optimized parallelism",
        f"// topology: {topology.name} — predicted throughput "
        f"{analysis.throughput:,.0f} items/sec",
        "StreamExecutionEnvironment env = "
        "StreamExecutionEnvironment.getExecutionEnvironment();",
        "",
    ]
    source = topology.source
    for spec in topology.operators:
        var = _java_identifier(spec.name)
        if spec.name == source:
            lines.append(
                f"DataStream<Tuple> {var} = env"
                f".addSource(new {var.capitalize()}Source())"
                f".setParallelism({spec.replication});"
            )
            continue
        upstream_vars = [
            _java_identifier(e.source) for e in topology.in_edges(spec.name)
        ]
        stream = upstream_vars[0]
        for other in upstream_vars[1:]:
            stream = f"{stream}.union({other})"
        if spec.state is StateKind.PARTITIONED:
            stream += ".keyBy(item -> item.key)"
        lines.append(
            f"DataStream<Tuple> {var} = {stream}"
            f".process(new {var.capitalize()}Operator())"
            f".setParallelism({spec.replication});"
            + ("  // " + spec.state.value
               if spec.state is not StateKind.STATELESS else "")
        )
    lines.append("")
    lines.append("env.execute(" + json.dumps(topology.name) + ");")
    return "\n".join(lines) + "\n"


def storm_sketch(topology: Topology,
                 analysis: Optional[SteadyStateResult] = None) -> str:
    """An illustrative Storm ``TopologyBuilder`` sketch."""
    if analysis is None:
        analysis = analyze(topology)
    lines = [
        "// Generated by SpinStreams (reproduction): optimized parallelism",
        f"// topology: {topology.name} — predicted throughput "
        f"{analysis.throughput:,.0f} items/sec",
        "TopologyBuilder builder = new TopologyBuilder();",
    ]
    source = topology.source
    source_var = _java_identifier(source)
    source_spec = topology.operator(source)
    lines.append(
        f'builder.setSpout("{source}", new {source_var.capitalize()}Spout(), '
        f"{source_spec.replication});"
    )
    for spec in topology.operators:
        if spec.name == source:
            continue
        var = _java_identifier(spec.name)
        declaration = (
            f'builder.setBolt("{spec.name}", new '
            f"{var.capitalize()}Bolt(), {spec.replication})"
        )
        for edge in topology.in_edges(spec.name):
            if spec.state is StateKind.PARTITIONED:
                declaration += (
                    f'.fieldsGrouping("{edge.source}", new Fields("key"))'
                )
            else:
                declaration += f'.shuffleGrouping("{edge.source}")'
        lines.append(declaration + ";")
    return "\n".join(lines) + "\n"
