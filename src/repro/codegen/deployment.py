"""Deployment-plan export for external Stream Processing Systems.

The paper's future work targets generating code "for other agent-based
frameworks like CAF and SPSs like Apache Storm and Flink".  Full
code generation needs runnable operator implementations in those
frameworks; what transfers directly is the *optimization outcome*: the
parallelism of every operator, the fused groupings and the predicted
rates.  This module exports exactly that:

* :func:`deployment_plan` — a framework-neutral JSON document (the
  contract a deployment pipeline consumes);
* :func:`flink_sketch` — an illustrative Flink-style Java sketch whose
  ``setParallelism()`` calls carry the fission degrees (the API the
  paper itself names in Section 2);
* :func:`storm_sketch` — the same plan as a Storm ``TopologyBuilder``
  sketch with bolt parallelism hints and stream groupings.

The sketches are documentation artifacts (there is no JVM here to run
them); the JSON plan is machine-readable and round-trips through the
tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.fusion import FusionPlan
from repro.core.graph import StateKind, Topology
from repro.core.steady_state import SteadyStateResult, analyze


@dataclass(frozen=True)
class ShardPlacement:
    """Replica-to-shard assignment chosen by :func:`shard_placement`.

    ``by_vertex`` maps every vertex to one shard id per replica; the
    first entry is the vertex's *home* shard (single operators, and the
    emitter/collector of replicated ones, run there).  Shard 0 is the
    glue shard: source, sinks and cheap operators stay co-located on
    it, so with ``shards == 1`` the placement degenerates to the
    threaded layout.
    """

    shards: int
    by_vertex: Mapping[str, Tuple[int, ...]]
    reasons: Mapping[str, str]
    utilization_threshold: float

    def home(self, name: str) -> int:
        """The shard hosting the vertex's entry point."""
        return self.by_vertex[name][0]

    def backend_of(self, name: str) -> str:
        """``"process"`` if any replica leaves the glue shard."""
        return ("process" if any(s != 0 for s in self.by_vertex[name])
                else "thread")

    def members(self, shard: int) -> List[str]:
        """Replica labels (``op`` or ``op#i``) placed on ``shard``."""
        out: List[str] = []
        for name, shards in self.by_vertex.items():
            if len(shards) == 1:
                if shards[0] == shard:
                    out.append(name)
                continue
            out.extend(f"{name}#{i}" for i, s in enumerate(shards)
                       if s == shard)
        return out

    def as_mapping(self) -> Dict[str, Tuple[int, ...]]:
        """Plain dict form accepted by ``predict_sharding``."""
        return dict(self.by_vertex)


def shard_placement(
    topology: Topology,
    analysis: Optional[SteadyStateResult] = None,
    shards: int = 2,
    utilization_threshold: Optional[float] = None,
) -> ShardPlacement:
    """Choose thread-vs-process placement from solver utilizations.

    CPU-bound hot operators (predicted utilization at or above the
    threshold) get their own shard: single-replica hot operators are
    dedicated the least-loaded non-glue shard, and the replicas of
    fissioned hot operators are scattered round-robin across all
    shards so fission buys real cores.  Everything else — source,
    sinks, glue below the threshold — stays co-located on shard 0 with
    the driver, where an in-process hop costs nothing.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if analysis is None:
        analysis = analyze(topology)
    if utilization_threshold is None:
        from repro.codegen.fuseloop import DEFAULT_UTILIZATION_THRESHOLD
        utilization_threshold = DEFAULT_UTILIZATION_THRESHOLD
    from repro.analysis.deploy import process_unsafe_operators
    unpicklable = process_unsafe_operators(topology)

    loads = [0.0] * shards

    def busy_share(spec) -> float:
        rates = analysis.rates[spec.name]
        activations = rates.arrival_rate / spec.input_selectivity
        return (activations * spec.service_time / spec.replication
                if rates.arrival_rate > 0.0 else 0.0)

    def least_loaded(candidates: Sequence[int]) -> int:
        return min(candidates, key=lambda s: (loads[s], s))

    by_vertex: Dict[str, Tuple[int, ...]] = {}
    reasons: Dict[str, str] = {}
    for spec in topology.operators:
        rates = analysis.rates[spec.name]
        share = busy_share(spec)
        if spec.name in unpicklable:
            # State that cannot cross a pickle boundary stays with the
            # driver on the glue shard (rule SS301).
            by_vertex[spec.name] = (0,) * spec.replication
            loads[0] += share * spec.replication
            reasons[spec.name] = (
                "process-unsafe (SS301): pinned to glue shard 0")
            continue
        glue = (spec.name == topology.source
                or not topology.out_edges(spec.name)
                or rates.utilization < utilization_threshold
                or shards == 1)
        if glue:
            by_vertex[spec.name] = (0,) * spec.replication
            loads[0] += share * spec.replication
            reasons[spec.name] = (
                "glue shard" if shards > 1 else "single shard")
            continue
        if spec.replication == 1:
            shard = least_loaded(range(1, shards))
            by_vertex[spec.name] = (shard,)
            loads[shard] += share
            reasons[spec.name] = (
                f"hot (utilization {rates.utilization:.2f} >= "
                f"{utilization_threshold:.2f}): dedicated shard {shard}")
            continue
        assigned = []
        for _ in range(spec.replication):
            shard = least_loaded(range(shards))
            assigned.append(shard)
            loads[shard] += share
        # Home first: the emitter/collector live with the first replica.
        assigned.sort()
        by_vertex[spec.name] = tuple(assigned)
        reasons[spec.name] = (
            f"hot (utilization {rates.utilization:.2f}) x "
            f"{spec.replication} replicas scattered over "
            f"{len(set(assigned))} shards")
    return ShardPlacement(
        shards=shards,
        by_vertex=by_vertex,
        reasons=reasons,
        utilization_threshold=utilization_threshold,
    )


def deployment_plan(
    topology: Topology,
    analysis: Optional[SteadyStateResult] = None,
    fusion_plans: Sequence[FusionPlan] = (),
    original: Optional[Topology] = None,
    utilization_threshold: Optional[float] = None,
    shards: Optional[int] = None,
    unsafe: bool = False,
) -> Dict[str, Any]:
    """A framework-neutral deployment descriptor of an optimized topology.

    When ``original`` (the pre-fusion topology, carrying the member
    operator classes) is provided, every fused vertex also carries its
    chosen execution backend — ``"loop-compiled"`` for SS2xx-pure linear
    chains hot enough to pay for it, ``"meta-actor"`` otherwise — as
    decided by :func:`repro.codegen.fuseloop.choose_execution` from the
    solver's utilization numbers.

    When ``shards`` is given, the placement pass
    (:func:`shard_placement`) additionally decides thread-vs-process
    execution per operator and the plan carries a ``"shards"`` section
    priced by :func:`repro.core.solver.predict_sharding`.

    The SS3xx deployment-safety gate refuses plans the target backends
    would crash on — process-unsafe operators under ``shards``,
    snapshot-unsound operators under a checkpointed topology — with a
    :class:`TopologyError` naming the rule; ``unsafe=True`` overrides.
    """
    if not unsafe:
        from repro.analysis.deploy import deploy_errors

        rules: List[str] = []
        if shards is not None:
            rules += ["SS301", "SS305"]
        if topology.checkpoint is not None:
            rules += ["SS302", "SS303"]
        blocking = deploy_errors(topology, rules) if rules else []
        if blocking:
            from repro.core.graph import TopologyError

            raise TopologyError(
                "deployment-safety gate refused the plan "
                "(unsafe=True overrides): "
                + "; ".join(d.render() for d in blocking[:3])
            )
    if analysis is None:
        analysis = analyze(topology)
    placement: Optional[ShardPlacement] = None
    if shards is not None:
        placement = shard_placement(
            topology, analysis=analysis, shards=shards,
            utilization_threshold=utilization_threshold)
    fused = {plan.fused_name: plan for plan in fusion_plans}
    choices: Dict[str, Any] = {}
    if original is not None and fused:
        from repro.codegen.fuseloop import (
            DEFAULT_UTILIZATION_THRESHOLD,
            choose_execution,
        )
        threshold = (utilization_threshold
                     if utilization_threshold is not None
                     else DEFAULT_UTILIZATION_THRESHOLD)
        choices = {
            name: choose_execution(plan, original, analysis=analysis,
                                   utilization_threshold=threshold)
            for name, plan in fused.items()
        }

    operators: List[Dict[str, Any]] = []
    for spec in topology.operators:
        rates = analysis.rates[spec.name]
        entry: Dict[str, Any] = {
            "name": spec.name,
            "parallelism": spec.replication,
            "state": spec.state.value,
            "service_time_ms": spec.service_time * 1e3,
            "predicted_utilization": round(rates.utilization, 6),
            "predicted_departure_rate": round(rates.departure_rate, 6),
        }
        if spec.operator_class:
            entry["implementation"] = spec.operator_class
        if spec.input_selectivity != 1.0:
            entry["input_selectivity"] = spec.input_selectivity
        if spec.output_selectivity != 1.0:
            entry["output_selectivity"] = spec.output_selectivity
        if spec.keys is not None:
            entry["partitioning"] = {
                "keys": len(spec.keys),
                "max_key_frequency": spec.keys.max_frequency(),
            }
        if spec.name in fused:
            plan = fused[spec.name]
            entry["fused_members"] = list(plan.members)
            entry["fused_front_end"] = plan.front_end
            choice = choices.get(spec.name)
            if choice is not None:
                entry["execution"] = ("loop-compiled"
                                      if choice.execution == "loop"
                                      else "meta-actor")
                entry["execution_reason"] = choice.reason
        if placement is not None:
            entry["placement"] = {
                "backend": placement.backend_of(spec.name),
                "shards": list(placement.by_vertex[spec.name]),
                "reason": placement.reasons[spec.name],
            }
        operators.append(entry)

    plan: Dict[str, Any] = {
        "topology": topology.name,
        "source": topology.source,
        "sinks": topology.sinks,
        "predicted_throughput": analysis.throughput,
        "operators": operators,
        "edges": [
            {"from": e.source, "to": e.target, "probability": e.probability}
            for e in topology.edges
        ],
    }
    if topology.checkpoint is not None:
        from repro.core.solver import predict_checkpoint

        prediction = predict_checkpoint(topology,
                                        checkpoint=topology.checkpoint)
        plan["checkpointing"] = {
            "interval_items": topology.checkpoint.interval_items,
            "retained_epochs": topology.checkpoint.retained,
            "snapshot_overhead_ms":
                topology.checkpoint.snapshot_overhead * 1e3,
            "predicted_throughput": prediction.throughput,
            "predicted_overhead_ratio": round(
                prediction.overhead_ratio, 6),
            "predicted_mean_recovery_s": prediction.mean_recovery_time,
        }
    if placement is not None:
        from repro.core.solver import predict_sharding

        prediction = predict_sharding(topology, placement.as_mapping())
        plan["shards"] = {
            "count": placement.shards,
            "utilization_threshold": placement.utilization_threshold,
            "placement": [
                {"shard": shard, "members": placement.members(shard)}
                for shard in range(placement.shards)
            ],
            "crossing_edges": [
                {"from": src, "to": dst}
                for src, dst in prediction.crossing_edges
            ],
            "predicted_throughput": prediction.throughput,
            "predicted_single_process_throughput":
                prediction.single_process_throughput,
            "predicted_speedup": round(prediction.predicted_speedup, 6),
            "predicted_ipc_tax": round(prediction.ipc_tax, 6),
        }
    return plan


def deployment_json(topology: Topology,
                    analysis: Optional[SteadyStateResult] = None,
                    fusion_plans: Sequence[FusionPlan] = ()) -> str:
    """The deployment plan serialized as pretty JSON."""
    return json.dumps(
        deployment_plan(topology, analysis=analysis,
                        fusion_plans=fusion_plans),
        indent=2, sort_keys=False,
    ) + "\n"


def _java_identifier(name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "op_" + cleaned
    return cleaned


def flink_sketch(topology: Topology,
                 analysis: Optional[SteadyStateResult] = None) -> str:
    """An illustrative Flink DataStream sketch carrying the parallelism.

    Keyed routing becomes ``keyBy``; everything else uses the default
    forwarding.  The sketch documents the plan for a JVM engineer; it
    is not compiled here.
    """
    if analysis is None:
        analysis = analyze(topology)
    lines = [
        "// Generated by SpinStreams (reproduction): optimized parallelism",
        f"// topology: {topology.name} — predicted throughput "
        f"{analysis.throughput:,.0f} items/sec",
        "StreamExecutionEnvironment env = "
        "StreamExecutionEnvironment.getExecutionEnvironment();",
        "",
    ]
    source = topology.source
    for spec in topology.operators:
        var = _java_identifier(spec.name)
        if spec.name == source:
            lines.append(
                f"DataStream<Tuple> {var} = env"
                f".addSource(new {var.capitalize()}Source())"
                f".setParallelism({spec.replication});"
            )
            continue
        upstream_vars = [
            _java_identifier(e.source) for e in topology.in_edges(spec.name)
        ]
        stream = upstream_vars[0]
        for other in upstream_vars[1:]:
            stream = f"{stream}.union({other})"
        if spec.state is StateKind.PARTITIONED:
            stream += ".keyBy(item -> item.key)"
        lines.append(
            f"DataStream<Tuple> {var} = {stream}"
            f".process(new {var.capitalize()}Operator())"
            f".setParallelism({spec.replication});"
            + ("  // " + spec.state.value
               if spec.state is not StateKind.STATELESS else "")
        )
    lines.append("")
    lines.append("env.execute(" + json.dumps(topology.name) + ");")
    return "\n".join(lines) + "\n"


def storm_sketch(topology: Topology,
                 analysis: Optional[SteadyStateResult] = None) -> str:
    """An illustrative Storm ``TopologyBuilder`` sketch."""
    if analysis is None:
        analysis = analyze(topology)
    lines = [
        "// Generated by SpinStreams (reproduction): optimized parallelism",
        f"// topology: {topology.name} — predicted throughput "
        f"{analysis.throughput:,.0f} items/sec",
        "TopologyBuilder builder = new TopologyBuilder();",
    ]
    source = topology.source
    source_var = _java_identifier(source)
    source_spec = topology.operator(source)
    lines.append(
        f'builder.setSpout("{source}", new {source_var.capitalize()}Spout(), '
        f"{source_spec.replication});"
    )
    for spec in topology.operators:
        if spec.name == source:
            continue
        var = _java_identifier(spec.name)
        declaration = (
            f'builder.setBolt("{spec.name}", new '
            f"{var.capitalize()}Bolt(), {spec.replication})"
        )
        for edge in topology.in_edges(spec.name):
            if spec.state is StateKind.PARTITIONED:
                declaration += (
                    f'.fieldsGrouping("{edge.source}", new Fields("key"))'
                )
            else:
                declaration += f'.shuffleGrouping("{edge.source}")'
        lines.append(declaration + ";")
    return "\n".join(lines) + "\n"
