"""SS2Py code generation: abstract topologies to runnable programs."""

from repro.codegen.ss2py import CodegenConfig, generate_code, write_code

__all__ = ["CodegenConfig", "generate_code", "write_code"]
