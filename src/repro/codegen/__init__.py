"""SS2Py code generation: abstract topologies to runnable programs."""

from repro.codegen.fuseloop import (
    ExecutionChoice,
    LoopEligibility,
    LoopOperator,
    chain_of,
    choose_execution,
    compile_loop,
    generate_loop_source,
    loop_eligibility,
    loop_eligibility_from_operators,
)
from repro.codegen.ss2py import CodegenConfig, generate_code, write_code

__all__ = [
    "CodegenConfig",
    "ExecutionChoice",
    "LoopEligibility",
    "LoopOperator",
    "chain_of",
    "choose_execution",
    "compile_loop",
    "generate_code",
    "generate_loop_source",
    "loop_eligibility",
    "loop_eligibility_from_operators",
    "write_code",
]
