"""SS2Py code generation: from an optimized topology to runnable code.

The original tool generates Akka code from the abstract topology: one
actor per standard operator, emitter/replicas/collector ensembles for
parallelized operators, and a single actor running Algorithm 4 for each
fused sub-graph (Section 4.2).  SS2Py generates the equivalent program
against :mod:`repro.runtime`: a standalone Python script that rebuilds
the topology, instantiates every operator from its recorded class and
constructor arguments, wires the actor system and runs it, reporting
the measured throughput next to the model's prediction — the "console
opened by the SpinStreams GUI" feedback loop.
"""

from __future__ import annotations

import io

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.fusion import FusionPlan
from repro.core.graph import (
    Edge,
    KeyDistribution,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)


@dataclass(frozen=True)
class CodegenConfig:
    """Options of the generated program."""

    duration: float = 5.0
    warmup: Optional[float] = None
    mailbox_capacity: int = 64
    pad_service_times: bool = True
    seed: int = 1
    #: Embed the static-analysis report as a comment header, so the
    #: generated program carries its own pre-deployment verdict.
    include_lint: bool = True
    #: Fused-vertex execution backend passed to the generated
    #: ``RuntimeConfig``: ``"meta"``, ``"loop"`` or ``"auto"``.  With
    #: ``"auto"``/``"loop"`` the generated program also embeds the
    #: compiled-loop sources as documentation comments (the runtime
    #: recompiles them via :mod:`repro.codegen.fuseloop`).
    fusion_mode: str = "meta"
    #: Default mailbox batching of the generated run (tuples per
    #: message; 1 = unbatched) and its partial-batch flush deadline.
    batch_size: int = 1
    batch_flush_timeout: float = 0.05


def _literal(value: object) -> str:
    """A safe Python literal for the supported argument types."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return repr(value)
    if isinstance(value, dict):
        items = ", ".join(
            f"{_literal(k)}: {_literal(v)}" for k, v in value.items()
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        items = ", ".join(_literal(v) for v in value)
        if isinstance(value, tuple):
            return "(" + items + ("," if len(value) == 1 else "") + ")"
        return "[" + items + "]"
    raise TopologyError(f"cannot serialize value of type {type(value).__name__}")


def _keys_code(keys: Optional[KeyDistribution]) -> str:
    if keys is None:
        return "None"
    return f"KeyDistribution({_literal(dict(keys.frequencies))})"


def _spec_code(spec: OperatorSpec) -> str:
    parts = [
        f"name={spec.name!r}",
        f"service_time={spec.service_time!r}",
        f"state=StateKind.{spec.state.name}",
    ]
    if spec.input_selectivity != 1.0:
        parts.append(f"input_selectivity={spec.input_selectivity!r}")
    if spec.output_selectivity != 1.0:
        parts.append(f"output_selectivity={spec.output_selectivity!r}")
    if spec.replication != 1:
        parts.append(f"replication={spec.replication}")
    if spec.keys is not None:
        parts.append(f"keys={_keys_code(spec.keys)}")
    if spec.operator_class:
        parts.append(f"operator_class={spec.operator_class!r}")
    if spec.operator_args:
        parts.append(f"operator_args={_literal(dict(spec.operator_args))}")
    return "OperatorSpec(" + ", ".join(parts) + ")"


def _edge_code(edge: Edge) -> str:
    capacity = (f", capacity={edge.capacity!r}"
                if edge.capacity is not None else "")
    batch = ""
    if edge.batch is not None:
        batch = (f", batch=BatchConfig(size={edge.batch.size}, "
                 f"flush_timeout={edge.batch.flush_timeout!r})")
    return (f"Edge({edge.source!r}, {edge.target!r}, "
            f"{edge.probability!r}{capacity}{batch})")


def _lint_header(topology: Topology) -> List[str]:
    """Comment lines with the lint report; never fails codegen."""
    try:
        from repro.analysis.lint import lint_topology

        return lint_topology(topology).header_lines()
    except Exception as exc:  # pragma: no cover - defensive
        return [f"Static checks (spinstreams lint): unavailable ({exc})"]


def _plan_code(plan: FusionPlan) -> str:
    edges = ", ".join(_edge_code(e) for e in plan.member_edges)
    internal = ", ".join(_edge_code(e) for e in plan.internal_edges)
    exits = _literal(dict(plan.exit_rates))
    return (
        "FusionPlan("
        f"members={plan.members!r}, "
        f"front_end={plan.front_end!r}, "
        f"internal_edges=({internal}{',' if plan.internal_edges else ''}), "
        f"member_edges=({edges}{',' if plan.member_edges else ''}), "
        f"service_time={plan.service_time!r}, "
        f"exit_rates={exits}, "
        f"fused_name={plan.fused_name!r})"
    )


def _factory_code(name: str, spec: OperatorSpec, pad: bool,
                  is_source: bool) -> str:
    if not spec.operator_class:
        raise TopologyError(
            f"operator {name!r} has no operator_class; cannot generate code"
        )
    build = (f"instantiate_operator({spec.operator_class!r}, "
             f"{_literal(dict(spec.operator_args))})")
    if pad and not is_source:
        build = f"PaddedOperator({build}, {spec.service_time!r})"
    return f"        {name!r}: lambda: {build},"


def generate_code(
    topology: Topology,
    original: Optional[Topology] = None,
    fusion_plans: Sequence[FusionPlan] = (),
    config: Optional[CodegenConfig] = None,
) -> str:
    """Generate a standalone Python program executing ``topology``.

    ``original`` supplies the member specs of fused vertices (fused
    topologies no longer carry them); required whenever
    ``fusion_plans`` is non-empty.
    """
    config = config or CodegenConfig()
    plans = {plan.fused_name: plan for plan in fusion_plans}
    if plans and original is None:
        raise TopologyError(
            "generating code for a fused topology requires the original "
            "topology (member operator classes live there)"
        )

    source = topology.source
    out = io.StringIO()
    write = out.write
    write('#!/usr/bin/env python3\n')
    write(f'"""Generated by SpinStreams (SS2Py) from topology '
          f'{topology.name!r}.\n\nRun with --duration SECONDS to control '
          f'the measurement window.\n"""\n')
    if config.include_lint:
        for line in _lint_header(topology):
            write(f"# {line}\n" if line else "#\n")
    write("\nimport argparse\n\n")
    write("from repro.core.fusion import FusionPlan\n")
    write("from repro.core.graph import (\n"
          "    BatchConfig, Edge, KeyDistribution, OperatorSpec, StateKind,\n"
          "    Topology,\n"
          ")\n")
    write("from repro.core.steady_state import analyze\n")
    write("from repro.operators.base import instantiate_operator\n")
    write("from repro.runtime.synthetic import PaddedOperator\n")
    write("from repro.runtime.system import RuntimeConfig, run_topology\n\n\n")

    write("TOPOLOGY = Topology(\n    operators=[\n")
    for spec in topology.operators:
        write(f"        {_spec_code(spec)},\n")
    write("    ],\n    edges=[\n")
    for edge in topology.edges:
        write(f"        {_edge_code(edge)},\n")
    write(f"    ],\n    name={topology.name!r},\n)\n\n")

    write("FUSION_PLANS = [\n")
    for plan in plans.values():
        write(f"    {_plan_code(plan)},\n")
    write("]\n\n\n")

    if config.fusion_mode != "meta" and plans:
        # Document the loop each eligible chain compiles to; the runtime
        # regenerates and executes the same source via fuseloop.
        from repro.codegen.fuseloop import generate_loop_source, loop_eligibility

        assert original is not None
        for plan in plans.values():
            verdict = loop_eligibility(plan, original)
            if verdict.eligible:
                write(f"# Loop-compiled form of {plan.fused_name!r} "
                      "(fusion-to-loop codegen):\n")
                for line in generate_loop_source(plan, verdict.chain).splitlines():
                    write(f"# {line}\n" if line else "#\n")
            else:
                write(f"# {plan.fused_name!r} stays on the meta-operator: "
                      f"{'; '.join(verdict.reasons)}\n")
            write("\n")
        write("\n")

    write("def make_factories():\n")
    write('    """Fresh operator instances, one per replica."""\n')
    write("    return {\n")
    for spec in topology.operators:
        if spec.name in plans:
            continue  # fused vertices are built from their members
        write(_factory_code(spec.name, spec, config.pad_service_times,
                            spec.name == source) + "\n")
    for plan in plans.values():
        assert original is not None
        for member in plan.members:
            member_spec = original.operator(member)
            write(_factory_code(member, member_spec,
                                config.pad_service_times, False) + "\n")
    write("    }\n\n\n")

    source_rate = topology.operator(source).service_rate
    warmup = "None" if config.warmup is None else repr(config.warmup)
    write("def main():\n")
    write("    parser = argparse.ArgumentParser(description=__doc__)\n")
    write(f"    parser.add_argument('--duration', type=float, "
          f"default={config.duration!r})\n")
    write("    args = parser.parse_args()\n")
    write("    predicted = analyze(TOPOLOGY)\n")
    write("    result = run_topology(\n")
    write("        TOPOLOGY,\n")
    write("        make_factories(),\n")
    write("        duration=args.duration,\n")
    write(f"        warmup={warmup},\n")
    write("        config=RuntimeConfig(\n")
    write(f"            mailbox_capacity={config.mailbox_capacity},\n")
    write(f"            source_rate={source_rate!r},\n")
    write(f"            seed={config.seed},\n")
    if config.fusion_mode != "meta":
        write(f"            fusion_mode={config.fusion_mode!r},\n")
    if config.batch_size != 1:
        write(f"            batch_size={config.batch_size},\n")
        write(f"            batch_flush_timeout="
              f"{config.batch_flush_timeout!r},\n")
    write("        ),\n")
    write("        fusion_plans=FUSION_PLANS,\n")
    write("    )\n")
    write("    print(f'predicted throughput: "
          "{predicted.throughput:,.1f} items/sec')\n")
    write("    print(f'measured throughput:  "
          "{result.throughput:,.1f} items/sec')\n")
    write("    return result\n\n\n")
    write("if __name__ == '__main__':\n")
    write("    main()\n")
    return out.getvalue()


def write_code(path: str, topology: Topology,
               original: Optional[Topology] = None,
               fusion_plans: Sequence[FusionPlan] = (),
               config: Optional[CodegenConfig] = None) -> None:
    """Generate code and write it to ``path``."""
    code = generate_code(topology, original=original,
                         fusion_plans=fusion_plans, config=config)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(code)
