"""``spinstreams`` command-line interface.

The console counterpart of the paper's GUI workflow::

    spinstreams lint app.xml                     # static checks (SS1xx/SS2xx)
    spinstreams analyze app.xml                  # steady-state analysis
    spinstreams optimize app.xml --max-replicas 40
    spinstreams candidates app.xml               # ranked fusion candidates
    spinstreams fuse app.xml --ops op3,op4,op5
    spinstreams simulate app.xml --items 200000  # DES measurement
    spinstreams generate app.xml -o run_app.py   # SS2Py code generation
    spinstreams run app.xml --backend process --shards 4   # execute it
    spinstreams random --seed 7 -o random.xml    # Algorithm 5 testbed entry
    spinstreams conformance --seeds 25           # differential conformance
    spinstreams adapt --seeds 20 -o decisions.json   # online re-optimization
    spinstreams bench -o BENCH_8.json            # perf microbenchmarks
    spinstreams render app.xml -o app.dot        # Graphviz rendering
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.lint import lint_topology
from repro.codegen.deployment import deployment_json, flink_sketch, storm_sketch
from repro.codegen.ss2py import CodegenConfig, generate_code
from repro.core.autofusion import auto_fuse
from repro.core.fission import eliminate_bottlenecks
from repro.core.fusion import apply_fusion
from repro.core.graph import TopologyError
from repro.core.latency import estimate_latency
from repro.core.memory import estimate_memory, memory_report
from repro.core.report import analysis_report, fission_report, fusion_report
from repro.core.steady_state import analyze
from repro.core.candidates import enumerate_candidates
from repro.sim.network import SimulationConfig, simulate
from repro.topology.dot import topology_to_dot
from repro.topology.random_gen import RandomTopologyGenerator
from repro.topology.xmlio import parse_topology, topology_to_xml, write_topology


def _write_or_print(text: str, output: Optional[str]) -> None:
    if output is None:
        print(text, end="" if text.endswith("\n") else "\n")
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"written to {output}")


def _cmd_lint(args: argparse.Namespace) -> int:
    report = lint_topology(
        args.topology,
        check_code=not args.no_code,
        source_rate=args.source_rate,
        backend=args.backend,
        plan=args.plan,
        shards=args.shards,
    )
    if args.sarif:
        text = report.to_sarif()
    elif args.json:
        text = report.to_json()
    else:
        text = report.render()
    _write_or_print(text, args.output)
    return report.exit_code


def _cmd_analyze(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    result = analyze(topology, source_rate=args.source_rate)
    measured = None
    if args.measure:
        measured = simulate(
            topology, SimulationConfig(items=args.items),
            source_rate=args.source_rate,
        ).throughput
    print(analysis_report(result, measured_throughput=measured))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.instrumentation import SOLVER

    topology = parse_topology(args.topology)
    result = eliminate_bottlenecks(
        topology, source_rate=args.source_rate,
        max_replicas=args.max_replicas,
    )
    print(fission_report(result))
    print(SOLVER.summary())
    if args.output:
        write_topology(result.optimized, args.output)
        print(f"optimized topology written to {args.output}")
    return 0


def _cmd_candidates(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    candidates = enumerate_candidates(
        topology, max_size=args.max_size,
        max_utilization=args.max_utilization, limit=args.limit,
    )
    if not candidates:
        print("no fusion candidates found")
        return 0
    print(f"{len(candidates)} fusion candidates (best first):")
    for candidate in candidates:
        marker = "ok " if candidate.safe else "RISK"
        print(
            f"  [{marker}] {{{', '.join(candidate.members)}}} "
            f"front-end={candidate.front_end} "
            f"mean-rho={candidate.mean_utilization:.2f} "
            f"fused-rho={candidate.predicted_utilization:.2f}"
        )
    return 0


def _cmd_fuse(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    members = [name.strip() for name in args.ops.split(",") if name.strip()]
    result = apply_fusion(topology, members, fused_name=args.name,
                          source_rate=args.source_rate)
    print(fusion_report(result))
    if args.output:
        write_topology(result.fused, args.output)
        print(f"fused topology written to {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    predicted = analyze(topology, source_rate=args.source_rate)
    measured = simulate(
        topology,
        SimulationConfig(items=args.items, seed=args.seed,
                         mailbox_capacity=args.mailbox_capacity),
        source_rate=args.source_rate,
    )
    print(analysis_report(predicted, measured_throughput=measured.throughput))
    if args.per_operator:
        print("\nper-operator departure rates (predicted vs measured):")
        for name in topology.names:
            p = predicted.departure_rate(name)
            m = measured.departure_rate(name)
            error = abs(m - p) / p if p > 0 else float("nan")
            print(f"  {name}: {p:.1f} vs {m:.1f} ({error:.1%})")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    code = generate_code(
        topology, config=CodegenConfig(duration=args.duration),
    )
    _write_or_print(code, args.output)
    return 0


def _cmd_random(args: argparse.Namespace) -> int:
    generator = RandomTopologyGenerator(seed=args.seed)
    topology = generator.generate(name=f"random-{args.seed}")
    _write_or_print(topology_to_xml(topology), args.output)
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    estimate = estimate_latency(
        topology, source_rate=args.source_rate,
        mailbox_capacity=args.mailbox_capacity,
        assumption=args.assumption,
    )
    print(f"topology: {topology.name} (assumption: {estimate.assumption})")
    print(f"{'operator':<24} {'rho':>6} {'wait (ms)':>10} {'resid (ms)':>11}")
    for name in topology.names:
        op = estimate.operators[name]
        print(f"{name:<24} {op.utilization:>6.2f} "
              f"{op.waiting_time * 1e3:>10.3f} "
              f"{op.residence_time * 1e3:>11.3f}")
    print(f"\nend-to-end latency: {estimate.end_to_end * 1e3:.3f} ms")
    for sink, latency in estimate.sink_latencies.items():
        print(f"  to {sink}: {latency * 1e3:.3f} ms")
    return 0


def _cmd_autofuse(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    result = auto_fuse(
        topology, source_rate=args.source_rate, max_size=args.max_size,
        max_utilization=args.max_utilization, headroom=args.headroom,
    )
    print(f"topology: {topology.name}")
    print(f"operators: {len(topology)} -> {len(result.fused)} "
          f"({result.operators_removed} removed in {result.rounds} rounds)")
    for step in result.steps:
        print(f"  fused {', '.join(step.plan.members)} -> "
              f"{step.plan.fused_name}")
    print(f"predicted throughput preserved: "
          f"{result.throughput:,.0f} items/sec")
    if args.output:
        write_topology(result.fused, args.output)
        print(f"fused topology written to {args.output}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.operators.base import instantiate_operator
    from repro.profiling.profiler import profile_topology
    from repro.runtime.synthetic import PaddedOperator
    from repro.runtime.system import RuntimeConfig

    topology = parse_topology(args.topology)
    factories = {}
    for spec in topology.operators:
        if not spec.operator_class:
            print(f"error: operator {spec.name!r} has no class to run",
                  file=sys.stderr)
            return 2
        if args.pad and spec.name != topology.source:
            factories[spec.name] = (
                lambda s=spec: PaddedOperator(
                    instantiate_operator(s.operator_class, s.operator_args),
                    s.service_time,
                )
            )
        else:
            factories[spec.name] = (
                lambda s=spec: instantiate_operator(s.operator_class,
                                                    s.operator_args)
            )
    report = profile_topology(
        topology, factories, duration=args.duration,
        config=RuntimeConfig(source_rate=args.source_rate),
    )
    print(f"profiled {topology.name!r} for {report.duration:.2f}s:")
    for name in topology.names:
        profile = report.profiles.get(name)
        if profile is None:
            continue
        mean = profile.mean_service_time
        mean_text = f"{mean * 1e3:8.3f} ms" if mean else "    (idle)"
        print(f"  {name:<24} {profile.items_processed:>8} items "
              f"{mean_text}  gain {profile.gain:.2f}")
    profiled = report.profiled_topology()
    if args.output:
        write_topology(profiled, args.output)
        print(f"profiled topology written to {args.output}")
    return 0


def _run_factories(topology, pad: bool, seed: int):
    """Operator factories for ``spinstreams run``: the declared classes,
    optionally padded to their declared service times."""
    from repro.operators.base import instantiate_operator
    from repro.runtime.synthetic import PaddedOperator

    factories = {}
    for spec in topology.operators:
        if not spec.operator_class:
            raise TopologyError(
                f"operator {spec.name!r} has no class to run; "
                "fill <class> in the XML or use `spinstreams simulate`")
        if pad and spec.name != topology.source:
            factories[spec.name] = (
                lambda s=spec: PaddedOperator(
                    instantiate_operator(s.operator_class, s.operator_args),
                    s.service_time,
                )
            )
        else:
            factories[spec.name] = (
                lambda s=spec: instantiate_operator(s.operator_class,
                                                    s.operator_args)
            )
    return factories


def _cmd_run(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    factories = _run_factories(topology, args.pad, args.seed)

    if args.backend == "process":
        from repro.runtime.procshard import ProcShardConfig, run_sharded

        config = ProcShardConfig(shards=args.shards, seed=args.seed,
                                 source_rate=args.source_rate)
        result = run_sharded(topology, factories,
                             duration=args.duration, config=config)
        print(f"backend: process ({args.shards} shards)")
        for shard in range(args.shards):
            members = sorted(
                f"{name}#{i}" if len(shards_of) > 1 else name
                for name, shards_of in result.placement.items()
                for i, s in enumerate(shards_of) if s == shard)
            print(f"  shard {shard}: {', '.join(members) or '(empty)'}")
        failed = result.failure is not None
        leaked = result.leaked_workers or result.leaked_actors
    else:
        from repro.runtime.system import RuntimeConfig, run_topology

        result = run_topology(
            topology, factories, duration=args.duration,
            config=RuntimeConfig(seed=args.seed,
                                 source_rate=args.source_rate),
        )
        print("backend: threaded")
        failed = result.failure is not None
        leaked = result.leaked_actors

    print(f"ran {result.measurements.duration:.2f}s measured window:")
    print(f"{'operator':<24} {'arrive/s':>10} {'depart/s':>10}")
    for name in topology.names:
        rates = result.vertices.get(name)
        if rates is None:
            continue
        print(f"{name:<24} {rates.arrival_rate:>10,.1f} "
              f"{rates.departure_rate:>10,.1f}")
    dropped = result.measurements.total_dropped()
    if dropped:
        print(f"dropped messages: {dropped}")
    if leaked:
        print(f"leaked: {', '.join(leaked)}")
        failed = True
    if result.failure is not None:
        print(f"failure: {result.failure}")
    return 1 if failed else 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.testing import (
        ConformanceConfig,
        check_chaos_seed,
        check_optimizer_seed,
        check_process_seed,
        check_runtime_seed,
        check_seed,
        run_sweep,
        shrink,
        topology_for_seed,
    )

    config = ConformanceConfig(
        profile=args.profile,
        base_seed=args.base_seed,
        items=args.items,
        optimizer=not args.no_optimizer,
    )

    if args.seed is not None:
        # Single-seed replay: the debugging entry point for a failure
        # reported by a sweep (or by CI).
        reports = [check_seed(args.seed, config)]
        if config.optimizer:
            reports.append(check_optimizer_seed(args.seed, config))
        if args.runtime_seeds > 0:
            reports.append(check_runtime_seed(args.seed, config))
        if args.process_seeds > 0:
            reports.append(check_process_seed(args.seed, config))
        if args.chaos_seeds > 0:
            reports.append(check_chaos_seed(args.seed, config))
        for report in reports:
            print(report.summary())
        from repro import instrumentation
        print(instrumentation.summary())
        failed = [r for r in reports if not r.ok]
        if failed and not args.no_shrink and not reports[0].ok:
            _shrink_and_print(args.seed, config, check_seed, shrink,
                              topology_for_seed)
        return 1 if failed else 0

    outcome = run_sweep(args.seeds, config, runtime_seeds=args.runtime_seeds,
                        chaos_seeds=args.chaos_seeds,
                        process_seeds=args.process_seeds,
                        workers=args.workers)
    print(outcome.summary())
    from repro import instrumentation
    print(instrumentation.summary())
    if outcome.ok:
        return 0
    simulator_failures = [r for r in outcome.failures
                          if r.backend == "simulator" and r.seed is not None]
    if simulator_failures and not args.no_shrink:
        _shrink_and_print(simulator_failures[0].seed, config, check_seed,
                          shrink, topology_for_seed)
    return 1


def _shrink_and_print(seed, config, check_seed, shrink_fn,
                      topology_for_seed) -> None:
    """Minimize the failing topology of ``seed`` and print the kernel."""
    topology = topology_for_seed(seed, config)

    def still_fails(candidate):
        return not check_seed(seed, config, topology=candidate).ok

    result = shrink_fn(topology, still_fails)
    print(f"\nshrinking seed {seed}: {len(result.original)} -> "
          f"{len(result.reduced)} operators in {len(result.steps)} steps")
    for step in result.steps:
        print(f"  {step}")
    print("\nminimal failing topology:")
    print(result.reduced.describe())
    report = check_seed(seed, config, topology=result.reduced)
    print(report.summary())
    if result.lint is not None and not result.lint.clean:
        print("\nstatic checks of the reduced topology:")
        print(result.lint.render())


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.plan import FaultPlanConfig, chaos_profile
    from repro.sim.network import SimulationConfig, build_engine
    from repro.testing import ConformanceConfig, topology_for_seed

    if args.recover:
        return _chaos_recover(args)

    fault_config = FaultPlanConfig(
        crashes_per_operator=args.crashes,
        poisons_per_operator=args.poisons,
        slowdowns_per_operator=args.slowdowns,
        drop_windows_per_operator=args.drop_windows,
    )
    conf = ConformanceConfig(profile=args.profile)
    run_runtime = args.backend in ("runtime", "both")
    if args.topology is not None:
        topology = parse_topology(args.topology)
    elif run_runtime:
        # Wall-clock backends need slow (4-8ms) operators to measure.
        topology = topology_for_seed(
            args.seed, conf, generator=conf.runtime_generator_config())
    else:
        topology = topology_for_seed(args.seed, conf)

    base = analyze(topology)
    items = (max(int(base.throughput * args.duration), 50)
             if run_runtime else args.items)
    profile = chaos_profile(topology, args.seed, fault_config, items=items)

    print(f"topology: {topology.name} ({len(topology)} operators), "
          f"chaos seed {args.seed}, {items} items")
    print(profile.plan.describe())
    print(f"\npredicted: base {base.throughput:,.1f} items/s -> derated "
          f"{profile.derated.throughput:,.1f} items/s "
          f"(degradation {profile.predicted_degradation:.1%})")

    failed = False
    if args.backend in ("sim", "both"):
        failed |= _chaos_sim(args, topology, profile, base,
                             SimulationConfig, build_engine, items)
    if run_runtime:
        failed |= _chaos_runtime(args, topology, profile, base)
    return 1 if failed else 0


def _chaos_recover(args) -> int:
    """Effectively-once sweep: crash + restore must be bit-equal."""
    from repro.testing import check_recovery_seed
    from repro.testing.differential import DifferentialConfig

    config = DifferentialConfig(items=args.recover_items)
    first = args.seed
    seeds = range(first, first + args.recover_seeds)
    print(f"recovery sweep: seeds {first}..{first + args.recover_seeds - 1}, "
          f"{args.recover_items} items per run")
    failed = 0
    attempts = 0
    for seed in seeds:
        mode = ("meta", "loop")[seed % 2]
        batch = (1, 8)[(seed // 2) % 2]
        report = check_recovery_seed(seed, config, fusion_mode=mode,
                                     batch_size=batch)
        attempts += report.recovery_attempts
        status = "ok" if report.ok else "FAIL"
        print(f"  seed {seed:>3} [{mode}, batch={batch}] {status} "
              f"(rollbacks: {report.recovery_attempts})")
        if not report.ok:
            failed += 1
            print(report.summary())
    print(f"\n{len(list(seeds)) - failed}/{args.recover_seeds} seeds "
          f"bit-equal after crash+recover ({attempts} rollbacks total)")
    return 1 if failed else 0


def _chaos_supervision_lines(events, dead_letter_counts) -> None:
    """Print the supervision/dead-letter section shared by both backends."""
    by_directive: dict = {}
    for event in events:
        by_directive[event.directive] = by_directive.get(event.directive, 0) + 1
    summary = ", ".join(f"{d}={n}" for d, n in sorted(by_directive.items()))
    print(f"  supervision events: {len(events)} ({summary or 'none'})")
    for event in events[:10]:
        print(f"    {event.describe()}")
    if len(events) > 10:
        print(f"    ... {len(events) - 10} more")
    total_dead = sum(dead_letter_counts.values())
    detail = ", ".join(f"{v}={n}" for v, n in sorted(dead_letter_counts.items()))
    print(f"  dead letters: {total_dead}" + (f" ({detail})" if detail else ""))


def _chaos_sim(args, topology, profile, base,
               SimulationConfig, build_engine, items) -> bool:
    """Run (twice, for the replay check) on the simulator; True = failed."""

    def run_once():
        sim_config = SimulationConfig(
            mailbox_capacity=args.mailbox_capacity,
            service_family="deterministic", routing="proportional",
            items=items, seed=args.seed,
            fault_plan=profile.plan, supervisor=profile.strategy,
            on_deadlock="report",
        )
        engine, _ = build_engine(topology, sim_config)
        measurements = engine.run(until=profile.horizon, warmup=0.0)
        return engine, measurements

    engine, measurements = run_once()
    vertices = measurements.vertex_rates()
    measured = vertices[topology.source].departure_rate
    degradation = (1.0 - measured / base.throughput
                   if base.throughput > 0 else 0.0)
    error = (abs(measured - profile.derated.throughput)
             / profile.derated.throughput
             if profile.derated.throughput > 0 else 0.0)
    print(f"\nsimulator: measured {measured:,.1f} items/s "
          f"(degradation {degradation:.1%}, "
          f"error vs derated model {error:.1%})")
    _chaos_supervision_lines(engine.supervision.events,
                            engine.dead_letters.counts())
    failed = error > args.tolerance
    if measurements.deadlock is not None:
        print(f"  watchdog: {measurements.deadlock.describe()}")
        failed = True
    if measurements.halted is not None:
        print(f"  halted: {measurements.halted}")
        failed = True

    replay_engine, _ = run_once()
    deterministic = (replay_engine.supervision.signature()
                     == engine.supervision.signature())
    print(f"  replay deterministic: {'yes' if deterministic else 'NO'}")
    if not deterministic:
        failed = True
    if failed:
        print("  verdict: FAIL")
    return failed


def _chaos_runtime(args, topology, profile, base) -> bool:
    """Run once on the threaded actor runtime; True = failed."""
    from repro.operators.source_sink import GeneratorSource
    from repro.runtime.synthetic import GainOperator, PaddedOperator
    from repro.runtime.system import RuntimeConfig, run_topology
    from repro.testing.harness import sleep_overshoot

    overshoot = sleep_overshoot()
    factories = {}
    for spec in topology.operators:
        if spec.name == topology.source:
            factories[spec.name] = lambda s=args.seed: GeneratorSource(seed=s)
        else:
            padding = max(spec.service_time - overshoot, 1e-4)
            factories[spec.name] = lambda g=spec.gain, p=padding: (
                PaddedOperator(GainOperator(g), p))

    result = run_topology(
        topology, factories, duration=args.duration, warmup=0.0,
        config=RuntimeConfig(
            mailbox_capacity=16,
            source_rate=topology.operator(topology.source).service_rate,
            seed=args.seed,
            fault_plan=profile.plan, supervisor=profile.strategy,
        ),
    )
    measured = result.vertices[topology.source].departure_rate
    degradation = (1.0 - measured / base.throughput
                   if base.throughput > 0 else 0.0)
    error = (abs(measured - profile.derated.throughput)
             / profile.derated.throughput
             if profile.derated.throughput > 0 else 0.0)
    print(f"\nruntime: measured {measured:,.1f} items/s "
          f"(degradation {degradation:.1%}, "
          f"error vs derated model {error:.1%})")
    _chaos_supervision_lines(result.supervision.events,
                            result.dead_letters.counts())
    print(f"  dropped messages: {result.measurements.total_dropped()}")
    failed = False
    if result.watchdog is not None and result.watchdog.verdict:
        print(f"  watchdog: {result.watchdog.describe()}")
        failed = True
    if result.leaked_actors:
        print(f"  leaked threads: {', '.join(result.leaked_actors)}")
        failed = True
    if result.failure is not None:
        print(f"  failure: {result.failure}")
        failed = True
    # Wall-clock runs are noisy; gate at double the simulator tolerance.
    if error > 2 * args.tolerance:
        failed = True
    if failed:
        print("  verdict: FAIL")
    return failed


def _cmd_adapt(args: argparse.Namespace) -> int:
    import json

    from repro.testing import (
        check_adaptive_chaos_seed,
        check_adaptive_seed,
        check_migration_seed,
        check_stationary_seed,
    )

    if args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(range(args.base_seed, args.base_seed + args.seeds))
    if args.mode == "stationary":
        check = check_stationary_seed
    elif args.mode == "chaos":
        check = check_adaptive_chaos_seed
    elif args.mode == "migration":
        check = lambda seed: check_migration_seed(seed, fused=args.fused)  # noqa: E731
    else:
        check = check_adaptive_seed
    logs = [] if args.output else None
    failed = 0
    for seed in seeds:
        if args.mode == "shift" and logs is not None:
            report = check_adaptive_seed(seed, decision_sink=logs)
        else:
            report = check(seed)
        status = "ok" if report.ok else "FAIL"
        backend = getattr(report, "backend", None) or report.mode_b
        fires = ""
        if logs is not None and args.mode == "shift":
            fired = sum(1 for d in logs[-1]["decisions"] if d["fired"])
            fires = (f" shift={logs[-1]['shift_vertex']}"
                     f"x{logs[-1]['shift_factor']:g} fires={fired}")
        print(f"  seed {seed:>3} [{backend}] {status}{fires}")
        if not report.ok:
            failed += 1
            summary = report.summary
            print(summary() if callable(summary) else summary)
    if args.output and logs is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(logs, handle, indent=2)
        print(f"decision log written to {args.output}")
    print(f"{len(seeds) - failed}/{len(seeds)} seeds ok")
    return 1 if failed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import main as bench_main

    return bench_main(output=args.output, baseline_path=args.baseline,
                      quick=args.quick, batching_only=args.batching,
                      sharding_only=args.sharding)


def _cmd_memory(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    estimate = estimate_memory(
        topology, source_rate=args.source_rate,
        mailbox_capacity=args.mailbox_capacity,
        bytes_per_item=args.bytes_per_item,
    )
    print(memory_report(estimate))
    return 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    if args.format == "json":
        text = deployment_json(topology)
    elif args.format == "flink":
        text = flink_sketch(topology)
    else:
        text = storm_sketch(topology)
    _write_or_print(text, args.output)
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    analysis = analyze(topology, source_rate=args.source_rate)
    _write_or_print(topology_to_dot(topology, analysis), args.output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spinstreams",
        description="Static optimization of data stream processing topologies",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def topology_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("topology", help="XML topology description")
        p.add_argument("--source-rate", type=float, default=None,
                       help="source generation rate (items/sec)")

    p = sub.add_parser(
        "lint",
        help="static checks: graph verifier + operator-code analyzer "
             "+ deployment-safety pass")
    topology_arg(p)
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable JSON report")
    p.add_argument("--sarif", action="store_true",
                   help="emit a SARIF 2.1.0 log (PR annotations)")
    p.add_argument("--no-code", action="store_true",
                   help="skip the operator-code pass (classes not "
                        "importable here)")
    p.add_argument("--backend", choices=["threaded", "process", "elastic"],
                   default=None,
                   help="also run the SS3xx deployment-safety operator "
                        "rules for this target backend")
    p.add_argument("--plan", action="store_true",
                   help="also run the SS3xx plan/config verifier "
                        "(placement, latency budget, checkpoint overhead)")
    p.add_argument("--shards", type=int, default=None,
                   help="shard count for the process placement the plan "
                        "verifier checks")
    p.add_argument("-o", "--output", default=None,
                   help="write the report to a file instead of stdout")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("analyze", help="steady-state analysis (Algorithm 1)")
    topology_arg(p)
    p.add_argument("--measure", action="store_true",
                   help="also measure via the discrete-event simulator")
    p.add_argument("--items", type=int, default=200_000)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("optimize",
                       help="bottleneck elimination via fission (Algorithm 2)")
    topology_arg(p)
    p.add_argument("--max-replicas", type=int, default=None,
                   help="hold-off bound on the total number of replicas")
    p.add_argument("-o", "--output", default=None,
                   help="write the optimized topology XML here")
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser("candidates", help="ranked fusion candidates")
    topology_arg(p)
    p.add_argument("--max-size", type=int, default=4)
    p.add_argument("--max-utilization", type=float, default=0.75)
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(func=_cmd_candidates)

    p = sub.add_parser("fuse", help="fuse a sub-graph (Algorithm 3)")
    topology_arg(p)
    p.add_argument("--ops", required=True,
                   help="comma-separated operator names to fuse")
    p.add_argument("--name", default=None, help="name of the fused operator")
    p.add_argument("-o", "--output", default=None,
                   help="write the fused topology XML here")
    p.set_defaults(func=_cmd_fuse)

    p = sub.add_parser("simulate",
                       help="measure on the discrete-event backend")
    topology_arg(p)
    p.add_argument("--items", type=int, default=200_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--mailbox-capacity", type=int, default=64)
    p.add_argument("--per-operator", action="store_true")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("generate", help="generate SS2Py code")
    p.add_argument("topology", help="XML topology description")
    p.add_argument("--duration", type=float, default=5.0)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("random",
                       help="generate a random testbed topology (Algorithm 5)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=_cmd_random)

    p = sub.add_parser("latency",
                       help="static end-to-end latency estimate (extension)")
    topology_arg(p)
    p.add_argument("--assumption", default="markovian",
                   choices=("deterministic", "markovian", "md1"))
    p.add_argument("--mailbox-capacity", type=int, default=64)
    p.set_defaults(func=_cmd_latency)

    p = sub.add_parser("autofuse",
                       help="automatic fusion of under-utilized sub-graphs "
                            "(extension)")
    topology_arg(p)
    p.add_argument("--max-size", type=int, default=4)
    p.add_argument("--max-utilization", type=float, default=0.75)
    p.add_argument("--headroom", type=float, default=0.9)
    p.add_argument("-o", "--output", default=None,
                   help="write the compacted topology XML here")
    p.set_defaults(func=_cmd_autofuse)

    p = sub.add_parser("profile",
                       help="run the application on the actor runtime and "
                            "measure its operators")
    topology_arg(p)
    p.add_argument("--duration", type=float, default=2.0)
    p.add_argument("--pad", action="store_true",
                   help="pad operators to their declared service times "
                        "(emulate the declared application)")
    p.add_argument("-o", "--output", default=None,
                   help="write the re-profiled topology XML here")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("run",
                       help="execute the application on a wall-clock "
                            "backend (threaded actors or multi-process "
                            "shards)")
    topology_arg(p)
    p.add_argument("--backend", default="threaded",
                   choices=("threaded", "process"),
                   help="threaded: one actor thread per replica under "
                        "the GIL; process: shard worker processes with "
                        "solver-driven placement")
    p.add_argument("--shards", type=int, default=2,
                   help="worker processes for --backend process")
    p.add_argument("--duration", type=float, default=3.0,
                   help="wall-clock seconds to run")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--pad", action="store_true",
                   help="pad operators to their declared service times")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("conformance",
                       help="differential conformance sweep: model vs. "
                            "simulator vs. runtime on random testbeds")
    p.add_argument("--seeds", type=int, default=25,
                   help="number of consecutive seeds to sweep")
    p.add_argument("--seed", type=int, default=None,
                   help="replay a single seed instead of sweeping")
    p.add_argument("--base-seed", type=int, default=100,
                   help="first seed of the sweep")
    p.add_argument("--profile", default="tree", choices=("tree", "dag"),
                   help="testbed shape: trees check at 2%%, dags at 10%%")
    p.add_argument("--items", type=int, default=30_000,
                   help="simulated items per check")
    p.add_argument("--runtime-seeds", type=int, default=5,
                   help="how many seeds also run on the wall-clock "
                        "actor runtime (0 disables)")
    p.add_argument("--process-seeds", type=int, default=0,
                   help="how many seeds also run on the multi-process "
                        "sharded backend (0 disables; these fork real "
                        "worker processes)")
    p.add_argument("--no-optimizer", action="store_true",
                   help="skip the optimizer-pipeline checks")
    p.add_argument("--no-shrink", action="store_true",
                   help="do not minimize the first failing topology")
    p.add_argument("--chaos-seeds", type=int, default=0,
                   help="how many seeds also run the degraded-mode "
                        "(fault-injected) simulator check (0 disables)")
    p.add_argument("--workers", type=int, default=None,
                   help="fan the virtual-time checks over this many "
                        "processes (bit-identical to serial; default "
                        "serial)")
    p.set_defaults(func=_cmd_conformance)

    p = sub.add_parser("adapt",
                       help="online re-optimization conformance: seeded "
                            "phase shifts, stationary negative controls, "
                            "chaos interaction and zero-loss migrations")
    p.add_argument("--seeds", type=int, default=2,
                   help="number of consecutive seeds to sweep")
    p.add_argument("--seed", type=int, default=None,
                   help="replay a single seed instead of sweeping")
    p.add_argument("--base-seed", type=int, default=100,
                   help="first seed of the sweep")
    p.add_argument("--mode", default="shift",
                   choices=("shift", "stationary", "chaos", "migration"),
                   help="shift: mid-run service-time shift, controller "
                        "must fire and land on the re-solved model; "
                        "stationary: no shift, controller must stand "
                        "pat; chaos: crashes during reconfiguration; "
                        "migration: bit-equality under live state moves")
    p.add_argument("--fused", action="store_true",
                   help="migration mode: migrate fused meta-operator "
                        "members instead of standalone actors")
    p.add_argument("-o", "--output", default=None,
                   help="write the controller decision logs as JSON "
                        "(shift mode; the nightly CI artifact)")
    p.set_defaults(func=_cmd_adapt)

    p = sub.add_parser("bench",
                       help="run the solver/DES microbenchmarks and "
                            "write a BENCH_*.json baseline")
    p.add_argument("--quick", action="store_true",
                   help="reduced budgets (CI smoke job)")
    p.add_argument("--batching", action="store_true",
                   help="only the fusion/batching transport benchmarks "
                        "(loop-compiled vs dispatched, batched vs "
                        "unbatched mailboxes)")
    p.add_argument("--sharding", action="store_true",
                   help="only the threaded-vs-process benchmark on the "
                        "GIL-bound fissioned chain (records cpu_count; "
                        "honest on single-core hosts)")
    p.add_argument("-o", "--output", default=None,
                   help="write the results JSON here (e.g. BENCH_3.json)")
    p.add_argument("--baseline", default=None,
                   help="committed baseline JSON to gate against "
                        "(>30%% throughput regression fails)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("chaos",
                       help="fault-injection run: supervision events, dead "
                            "letters, watchdog verdicts and throughput "
                            "degradation vs. the derated model")
    p.add_argument("--seed", type=int, default=1,
                   help="fault-plan (and topology) seed; the same seed "
                        "replays the identical fault sequence")
    p.add_argument("--topology", default=None,
                   help="XML topology (default: the seed's random testbed)")
    p.add_argument("--backend", default="sim",
                   choices=("sim", "runtime", "both"))
    p.add_argument("--profile", default="tree", choices=("tree", "dag"))
    p.add_argument("--items", type=int, default=30_000,
                   help="simulated items (sim backend)")
    p.add_argument("--duration", type=float, default=3.0,
                   help="wall-clock seconds (runtime backend)")
    p.add_argument("--mailbox-capacity", type=int, default=64)
    p.add_argument("--crashes", type=float, default=1.0,
                   help="expected operator crashes per faulty operator")
    p.add_argument("--poisons", type=float, default=2.0,
                   help="expected poison tuples per faulty operator")
    p.add_argument("--slowdowns", type=float, default=0.5,
                   help="expected slowdown windows per faulty operator")
    p.add_argument("--drop-windows", type=float, default=0.0,
                   help="expected mailbox drop windows per faulty operator")
    p.add_argument("--tolerance", type=float, default=0.15,
                   help="max relative error vs. the derated model")
    p.add_argument("--recover", action="store_true",
                   help="effectively-once sweep: crash operators, roll "
                        "back to the last checkpoint and require output "
                        "bit-equal to a fault-free run")
    p.add_argument("--recover-seeds", type=int, default=4,
                   help="how many consecutive seeds the --recover sweep "
                        "covers (starting at --seed)")
    p.add_argument("--recover-items", type=int, default=300,
                   help="source items per --recover run (these runs are "
                        "wall-clock, so keep this modest)")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("memory",
                       help="static memory-footprint estimate (extension)")
    topology_arg(p)
    p.add_argument("--mailbox-capacity", type=int, default=64)
    p.add_argument("--bytes-per-item", type=float, default=128.0)
    p.set_defaults(func=_cmd_memory)

    p = sub.add_parser("deploy",
                       help="export the optimization as a deployment plan")
    p.add_argument("topology", help="XML topology description")
    p.add_argument("--format", default="json",
                   choices=("json", "flink", "storm"))
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=_cmd_deploy)

    p = sub.add_parser("render", help="Graphviz DOT rendering")
    topology_arg(p)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=_cmd_render)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except TopologyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
