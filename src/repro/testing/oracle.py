"""The conformance oracle: compare a prediction with a measurement.

The oracle takes the analytical :class:`~repro.core.steady_state.
SteadyStateResult` of a topology and per-vertex measurements from an
execution backend (the discrete-event simulator or the actor runtime —
anything exposing ``departure_rate`` and ``utilization`` per vertex) and
produces a :class:`ConformanceReport` listing every :class:`Discrepancy`
with the operator name, the expected and observed values and the
tolerance that was exceeded.

Three checks run per topology:

* **departure rates** — relative comparison per operator, but only for
  operators whose *predicted* item count over the measurement window
  clears ``Tolerances.min_items``.  Below that floor the measured rate
  is statistically meaningless (a handful of items on a low-probability
  ZipF edge), so only a loose absolute bound applies: the backend must
  not emit more than the floor's worth of extra items.
* **utilization** — absolute comparison for operators the model does
  not saturate (saturated operators are covered by the bottleneck
  check, where "how close to 1" depends on transient noise).
* **bottleneck identification** — a gray-band classification.  An
  operator the model pins at utilization one must be measured at least
  at ``saturated_floor`` ("bottleneck-missing" otherwise); an operator
  the model keeps under ``clear_ceiling`` must stay under
  ``spurious_floor`` ("bottleneck-spurious" otherwise).  The band in
  between is deliberately unclassified: a vertex predicted at rho=0.95
  legitimately measures on either side of any sharp threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.steady_state import SteadyStateResult


@dataclass(frozen=True)
class Tolerances:
    """Agreement thresholds of the conformance checks.

    The defaults encode the regime where the fluid queueing model is
    tight (random trees, deterministic service, proportional routing):
    2% relative on departure rates, matching the paper's Figure 7/8
    accuracy results.  DAG profiles with merges feeding saturated
    vertices loosen ``departure_rel`` to 0.10 — BAS FIFO wakeup shares
    capacity per-sender rather than per-offered-rate at contended
    merges, an irreducible fluid-model error the paper itself reports
    as the tail of its accuracy distribution.
    """

    departure_rel: float = 0.02
    throughput_rel: float = 0.02
    utilization_abs: float = 0.05
    #: Predicted item-count floor below which only the loose absolute
    #: departure bound applies.
    min_items: float = 500.0
    #: A model-saturated operator must measure at least this utilization.
    saturated_floor: float = 0.95
    #: Model utilizations below this are "clearly not a bottleneck" ...
    clear_ceiling: float = 0.90
    #: ... and must measure strictly under this.
    spurious_floor: float = 0.97

    def loosened(self, departure_rel: float) -> "Tolerances":
        """A copy with a different departure/throughput tolerance."""
        return replace(self, departure_rel=departure_rel,
                       throughput_rel=departure_rel)


@dataclass(frozen=True)
class Discrepancy:
    """One disagreement between the model and a measurement backend."""

    kind: str
    operator: str
    expected: float
    actual: float
    tolerance: float

    @property
    def error(self) -> float:
        """Relative error when the expectation is a rate, absolute gap
        when it is a utilization."""
        if self.kind in ("departure-rate", "throughput", "departure-count"):
            if self.expected > 0.0:
                return abs(self.actual - self.expected) / self.expected
            return abs(self.actual - self.expected)
        return abs(self.actual - self.expected)

    def describe(self) -> str:
        return (
            f"[{self.kind}] {self.operator}: expected {self.expected:.4g}, "
            f"measured {self.actual:.4g} "
            f"(error {self.error:.2%}, tolerance {self.tolerance:.4g})"
        )

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class ConformanceReport:
    """Outcome of comparing one topology across two execution models."""

    topology_name: str
    backend: str
    seed: Optional[int]
    discrepancies: Tuple[Discrepancy, ...]
    #: Per-operator relative departure errors (operators above the
    #: count floor only) — the Figure 8 measurement.
    departure_errors: Mapping[str, float] = field(default_factory=dict)
    window: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    @property
    def max_departure_error(self) -> float:
        if not self.departure_errors:
            return 0.0
        return max(self.departure_errors.values())

    @property
    def worst(self) -> Optional[Discrepancy]:
        if not self.discrepancies:
            return None
        return max(self.discrepancies, key=lambda d: d.error)

    def summary(self) -> str:
        seed = f" seed={self.seed}" if self.seed is not None else ""
        head = (
            f"{self.topology_name}{seed} vs {self.backend}: "
            f"max departure error {self.max_departure_error:.2%}"
        )
        if self.ok:
            return f"{head} — OK"
        lines = [f"{head} — {len(self.discrepancies)} discrepancies"]
        lines.extend(f"  {d.describe()}" for d in self.discrepancies)
        return "\n".join(lines)


class Oracle:
    """Compares steady-state predictions with backend measurements."""

    def __init__(self, tolerances: Optional[Tolerances] = None) -> None:
        self.tolerances = tolerances or Tolerances()

    def compare(
        self,
        predicted: SteadyStateResult,
        measured: Mapping[str, object],
        window: float,
        *,
        backend: str = "simulator",
        seed: Optional[int] = None,
        check_departures: bool = True,
        check_utilization: bool = True,
        check_bottlenecks: bool = True,
        check_throughput: bool = True,
    ) -> ConformanceReport:
        """Compare a prediction with per-vertex measurements.

        ``measured`` maps vertex names to objects with ``departure_rate``
        and ``utilization`` attributes (both the simulator's
        ``VertexMeasurement`` and the runtime's ``ActorRates`` qualify).
        ``window`` is the measurement duration in (virtual or wall-clock)
        seconds, used for the predicted item-count floor.
        """
        if window <= 0.0:
            raise ValueError(f"window must be positive, got {window}")
        tol = self.tolerances
        topology = predicted.topology
        source = topology.source
        discrepancies: List[Discrepancy] = []
        departure_errors: Dict[str, float] = {}

        for name in topology.names:
            rates = predicted.rates[name]
            vertex = measured[name]
            model_dep = rates.departure_rate
            sim_dep = float(vertex.departure_rate)
            sim_util = float(vertex.utilization)
            expected_count = model_dep * window

            if check_departures and name != source:
                if expected_count >= tol.min_items:
                    error = (abs(sim_dep - model_dep) / model_dep
                             if model_dep > 0.0 else abs(sim_dep))
                    departure_errors[name] = error
                    if error > tol.departure_rel:
                        discrepancies.append(Discrepancy(
                            kind="departure-rate", operator=name,
                            expected=model_dep, actual=sim_dep,
                            tolerance=tol.departure_rel,
                        ))
                else:
                    # Too few predicted items for a relative check; the
                    # backend must still stay within the floor's worth
                    # of extra items.
                    if sim_dep * window > expected_count + tol.min_items:
                        discrepancies.append(Discrepancy(
                            kind="departure-count", operator=name,
                            expected=expected_count,
                            actual=sim_dep * window,
                            tolerance=tol.min_items,
                        ))

            if name == source:
                if check_throughput:
                    error = (abs(sim_dep - model_dep) / model_dep
                             if model_dep > 0.0 else abs(sim_dep))
                    departure_errors[name] = error
                    if error > tol.throughput_rel:
                        discrepancies.append(Discrepancy(
                            kind="throughput", operator=name,
                            expected=model_dep, actual=sim_dep,
                            tolerance=tol.throughput_rel,
                        ))
                # The source's utilization is not comparable across
                # backends (pacing and blocked time are accounted
                # differently), so the remaining checks skip it.
                continue

            if check_bottlenecks:
                if rates.is_saturated and sim_util < tol.saturated_floor:
                    discrepancies.append(Discrepancy(
                        kind="bottleneck-missing", operator=name,
                        expected=rates.utilization, actual=sim_util,
                        tolerance=tol.saturated_floor,
                    ))
                    continue
                if (rates.utilization < tol.clear_ceiling
                        and sim_util >= tol.spurious_floor):
                    discrepancies.append(Discrepancy(
                        kind="bottleneck-spurious", operator=name,
                        expected=rates.utilization, actual=sim_util,
                        tolerance=tol.spurious_floor,
                    ))
                    continue

            if (check_utilization and not rates.is_saturated
                    and expected_count >= tol.min_items):
                gap = abs(sim_util - rates.utilization)
                if gap > tol.utilization_abs:
                    discrepancies.append(Discrepancy(
                        kind="utilization", operator=name,
                        expected=rates.utilization, actual=sim_util,
                        tolerance=tol.utilization_abs,
                    ))

        return ConformanceReport(
            topology_name=topology.name,
            backend=backend,
            seed=seed,
            discrepancies=tuple(discrepancies),
            departure_errors=departure_errors,
            window=window,
        )
