"""Differential conformance testing of the four execution models.

SpinStreams' optimizations are only as good as the agreement between the
analytical steady-state model (:mod:`repro.core.steady_state`), the
discrete-event simulator (:mod:`repro.sim`), the threaded actor
runtime (:mod:`repro.runtime`) and the multi-process sharded runtime
(:mod:`repro.runtime.procshard`).  This package cross-checks the four
of them on seeded random topologies (paper Algorithm 5):

* :mod:`repro.testing.oracle` — compares one prediction against one
  measurement and reports *which* operator diverged and by how much;
* :mod:`repro.testing.harness` — generates topologies per seed, runs
  them through the model/simulator/runtime and through the optimizer
  pipeline, and sweeps seed ranges;
* :mod:`repro.testing.shrink` — minimizes a failing topology by greedy
  vertex/edge removal while the discrepancy keeps reproducing;
* :mod:`repro.testing.differential` — bit-equality oracles proving the
  batching and fusion-to-loop optimizations transparent: seeded chain
  testbeds run under two configurations must produce byte-identical
  sink outputs.

The ``spinstreams conformance`` CLI subcommand and the tests under
``tests/conformance/`` are thin drivers over this package.
"""

from repro.testing.adaptive import (
    AdaptiveScenarioConfig,
    build_scenario,
    check_adaptive_chaos_seed,
    check_adaptive_seed,
    check_migration_seed,
    check_stationary_seed,
    choose_shift,
)
from repro.testing.differential import (
    DifferentialConfig,
    DifferentialReport,
    canonical,
    chain_testbed,
    chaos_fault_plan,
    check_batching_seed,
    check_loop_chaos_seed,
    check_loop_seed,
    check_recovery_seed,
    check_sharded_seed,
    recovery_fault_plan,
    recovery_testbed,
    run_capture,
    topology_factories,
)
from repro.testing.harness import (
    ConformanceConfig,
    SweepOutcome,
    check_chaos_runtime_seed,
    check_chaos_seed,
    check_optimizer_seed,
    check_process_seed,
    check_runtime_seed,
    check_seed,
    run_sweep,
    shrink_chaos_failure,
    topology_for_seed,
)
from repro.testing.oracle import (
    ConformanceReport,
    Discrepancy,
    Oracle,
    Tolerances,
)
from repro.testing.shrink import ShrinkResult, remove_edge, remove_vertex, shrink

__all__ = [
    "AdaptiveScenarioConfig",
    "ConformanceConfig",
    "ConformanceReport",
    "DifferentialConfig",
    "DifferentialReport",
    "Discrepancy",
    "Oracle",
    "ShrinkResult",
    "SweepOutcome",
    "Tolerances",
    "build_scenario",
    "canonical",
    "chain_testbed",
    "chaos_fault_plan",
    "check_adaptive_chaos_seed",
    "check_adaptive_seed",
    "check_batching_seed",
    "check_chaos_runtime_seed",
    "check_chaos_seed",
    "check_loop_chaos_seed",
    "check_loop_seed",
    "check_migration_seed",
    "check_optimizer_seed",
    "check_process_seed",
    "check_recovery_seed",
    "check_runtime_seed",
    "check_sharded_seed",
    "check_seed",
    "check_stationary_seed",
    "choose_shift",
    "recovery_fault_plan",
    "recovery_testbed",
    "remove_edge",
    "remove_vertex",
    "run_capture",
    "run_sweep",
    "shrink",
    "shrink_chaos_failure",
    "topology_factories",
    "topology_for_seed",
]
