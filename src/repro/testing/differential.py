"""Differential conformance: bit-equality across execution modes.

The batching and fusion-to-loop optimizations are *transparent* by
contract: they may change how fast tuples move, never which tuples
arrive or what they contain.  This module turns that contract into a
checkable oracle.  A seeded random *chain testbed* (source → pure
member chain → collecting sink) is executed twice under two different
runtime configurations — unbatched vs batched mailboxes, or meta-actor
vs loop-compiled fusion — and the canonicalized sink contents must be
**bit-equal**: same records, same values, same order.

Determinism argument: the testbeds are linear chains (every vertex has
in-degree and out-degree ≤ 1), so each vertex processes the unique
totally-ordered stream of its predecessor regardless of thread
scheduling; sources are seeded and run to ``max_items`` exhaustion
rather than a wall-clock window, so both executions see exactly the
same input sequence.  The only nondeterministic field is the ``_born``
wall-clock stamp, which :func:`canonical` strips.

On divergence, the failing case is minimized: batching divergences
shrink through :func:`repro.testing.shrink.shrink` (vertex/edge
deletion), and loop divergences reduce the fused chain member-by-member
— either way the report carries the smallest kernel that still
disagrees.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.fusion import FusionPlan, apply_fusion
from repro.core.graph import (
    BatchConfig,
    CheckpointConfig,
    Edge,
    OperatorSpec,
    Topology,
)
from repro.faults.plan import CrashFault, FaultPlan, PoisonFault
from repro.operators.base import instantiate_operator
from repro.operators.source_sink import CollectingSink
from repro.runtime.checkpoint import run_recoverable
from repro.runtime.system import ActorSystem, RuntimeConfig
from repro.testing.shrink import ShrinkResult, shrink

#: Pure, deterministic chain-member templates: (class path, args builder).
#: Every template must pass the SS2xx purity gate — the loop eligibility
#: of the testbeds depends on it (asserted by the property tests).
_MEMBER_TEMPLATES: Tuple = (
    ("repro.operators.basic.FieldMap",
     lambda rng: {"field": "value"}, 1.0),
    ("repro.operators.basic.ArithmeticMap",
     lambda rng: {"fields": ("value",)}, 1.0),
    ("repro.operators.basic.Identity",
     lambda rng: {}, 1.0),
    ("repro.operators.basic.Filter",
     lambda rng: {"field": "value",
                  "threshold": round(rng.uniform(0.2, 0.8), 3)}, 0.5),
    ("repro.operators.basic.FlatMap",
     lambda rng: {"fanout": rng.randint(2, 3)}, 2.0),
    ("repro.operators.aggregates.WindowedSum",
     lambda rng: {"length": rng.randint(4, 16), "slide": 4}, 0.25),
)


@dataclass(frozen=True)
class DifferentialConfig:
    """Knobs of a differential run."""

    #: Items the seeded source generates before exhausting.
    items: int = 300
    mailbox_capacity: int = 32
    #: Batched-side configuration of the batching differentials.
    batch_size: int = 4
    batch_flush_timeout: float = 0.02
    #: Member-chain length bounds of the random testbeds.
    min_members: int = 2
    max_members: int = 4
    #: Seconds of no progress before a run counts as drained, and the
    #: hard deadline on waiting for that quiescence.
    quiet_period: float = 0.25
    quiet_timeout: float = 20.0
    #: Minimize failing cases before reporting.
    shrink_failures: bool = True


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one seeded differential comparison."""

    seed: int
    mode_a: str
    mode_b: str
    ok: bool
    #: Human-readable divergences (empty when ok).
    divergences: Tuple[str, ...] = ()
    #: Minimal reproducing topology when a shrink succeeded.
    shrunk: Optional[ShrinkResult] = None
    #: Minimal diverging member chain (loop differentials only).
    shrunk_members: Optional[Tuple[str, ...]] = None
    #: Rollbacks the recovery side performed (recovery differentials).
    recovery_attempts: int = 0

    @property
    def summary(self) -> str:
        status = "ok" if self.ok else "DIVERGED"
        return (f"seed {self.seed}: {self.mode_a} vs {self.mode_b} "
                f"{status}" + ("" if self.ok
                               else f" ({'; '.join(self.divergences)})"))


def canonical(item: Any) -> str:
    """Stable digest of one sink record, ignoring wall-clock stamps.

    ``_born`` is the only legitimately run-dependent attribute (the
    source stamps emission wall-time for latency measurement); every
    other divergence is a real semantic difference.
    """
    if isinstance(item, dict):
        cleaned = sorted((k, repr(v)) for k, v in item.items()
                         if k != "_born")
        return "{" + ", ".join(f"{k}={v}" for k, v in cleaned) + "}"
    return repr(item)


def chain_testbed(seed: int,
                  config: Optional[DifferentialConfig] = None,
                  ) -> Tuple[Topology, Tuple[str, ...]]:
    """A seeded linear testbed: source → pure members → collecting sink.

    Returns the topology and the member names to fuse (the middle
    chain, optionally including the sink).  All specs carry
    ``operator_class``/``operator_args``, so operator factories can be
    rebuilt from the topology alone — which keeps the testbeds
    shrinkable.
    """
    config = config or DifferentialConfig()
    rng = random.Random(seed)
    count = rng.randint(config.min_members, config.max_members)
    specs = [OperatorSpec(
        name="source", service_time=0.0002,
        operator_class="repro.operators.source_sink.GeneratorSource",
        operator_args={"seed": 1 + seed % 10_000},
    )]
    members: List[str] = []
    for index in range(count):
        class_path, args_of, selectivity = _MEMBER_TEMPLATES[
            rng.randrange(len(_MEMBER_TEMPLATES))]
        name = f"op{index}"
        members.append(name)
        specs.append(OperatorSpec(
            name=name, service_time=0.0002,
            output_selectivity=selectivity,
            operator_class=class_path,
            operator_args=args_of(rng),
        ))
    specs.append(OperatorSpec(
        name="sink", service_time=0.0001,
        operator_class="repro.operators.source_sink.CollectingSink",
        operator_args={"capacity": 100_000},
    ))
    if rng.random() < 0.5:
        members.append("sink")  # exercise fused (loop-held) sinks too
    names = [spec.name for spec in specs]
    edges = [Edge(a, b) for a, b in zip(names, names[1:])]
    return Topology(specs, edges, name=f"chain-{seed}"), tuple(members)


def topology_factories(topology: Topology):
    """Operator factories rebuilt purely from the topology's specs."""
    return {
        spec.name: (lambda path=spec.operator_class,
                    args=spec.operator_args: instantiate_operator(path, args))
        for spec in topology.operators
        if spec.operator_class
    }


def run_capture(
    topology: Topology,
    runtime: RuntimeConfig,
    fusion_plans: Sequence[FusionPlan] = (),
    factories: Optional[Mapping[str, Any]] = None,
    config: Optional[DifferentialConfig] = None,
    expect_execution: Optional[str] = None,
) -> Dict[str, List[str]]:
    """Run a topology to source exhaustion; canonical outputs per sink.

    The system runs unpaced until the source emits ``max_items`` and
    the pipeline drains (no progress for ``quiet_period``), so captures
    are complete rather than windowed.  ``expect_execution`` asserts
    how fused vertices actually executed (``"loop"``/``"meta"``).
    """
    config = config or DifferentialConfig()
    if factories is None:
        factories = topology_factories(topology)
    system = ActorSystem.build(topology, factories, config=runtime,
                               fusion_plans=fusion_plans)
    if expect_execution is not None:
        wrong = {name: mode
                 for name, mode in system.fusion_executions.items()
                 if mode != expect_execution}
        if wrong:
            system.stop()
            raise AssertionError(
                f"expected every fused vertex to execute as "
                f"{expect_execution!r}, got {wrong}")
    system.start()
    try:
        deadline = time.monotonic() + config.quiet_timeout
        if system.source_actor is not None:
            system.source_actor.join(
                timeout=max(0.0, deadline - time.monotonic()))
        previous = -1
        while time.monotonic() < deadline:
            current = system._progress()
            if current == previous:
                break
            previous = current
            time.sleep(config.quiet_period)
    finally:
        system.stop()
    return _collect_sinks(system)


def _collect_sinks(system: ActorSystem) -> Dict[str, List[str]]:
    """Canonicalized contents of every collecting sink in a system.

    Sinks may live as standalone actors, as members of a meta-operator
    actor, or inside a loop-compiled operator; all three are scanned.
    """
    outputs: Dict[str, List[str]] = {}

    def record(name: str, operator: Any) -> None:
        while hasattr(operator, "inner"):  # FaultyOperator wrappers
            operator = operator.inner
        if isinstance(operator, CollectingSink):
            outputs[name] = [canonical(item) for item in operator.items]

    for actor in system.actors:
        operator = getattr(actor, "operator", None)
        if operator is not None:
            record(actor.vertex, operator)
            members = getattr(operator, "members", None)  # LoopOperator
            if members:
                for name, member in members.items():
                    record(name, member)
        members = getattr(actor, "members", None)  # MetaOperatorActor
        if isinstance(members, dict):
            for name, member in members.items():
                record(name, member)
    return outputs


def _compare(seed: int, mode_a: str, mode_b: str,
             a: Mapping[str, List[str]], b: Mapping[str, List[str]],
             ) -> List[str]:
    divergences: List[str] = []
    for name in sorted(set(a) | set(b)):
        left = a.get(name)
        right = b.get(name)
        if left is None or right is None:
            divergences.append(
                f"sink {name!r} missing on one side "
                f"({mode_a}: {left is not None}, {mode_b}: {right is not None})")
            continue
        if len(left) != len(right):
            divergences.append(
                f"sink {name!r}: {len(left)} vs {len(right)} items")
            continue
        for index, (x, y) in enumerate(zip(left, right)):
            if x != y:
                divergences.append(
                    f"sink {name!r} item {index}: {x} != {y}")
                break
    return divergences


def _runtime(config: DifferentialConfig, seed: int, **overrides: Any,
             ) -> RuntimeConfig:
    return RuntimeConfig(
        mailbox_capacity=config.mailbox_capacity,
        max_items=config.items,
        seed=seed,
        watchdog=False,
        **overrides,
    )


# ----------------------------------------------------------------------
# seeded differential checks


def check_loop_seed(seed: int,
                    config: Optional[DifferentialConfig] = None,
                    fault_plan: Optional[FaultPlan] = None,
                    ) -> DifferentialReport:
    """Meta-actor vs loop-compiled execution of one seeded chain."""
    config = config or DifferentialConfig()
    topology, members = chain_testbed(seed, config)
    return _loop_differential(seed, topology, members, config, fault_plan)


def _loop_differential(seed: int, topology: Topology,
                       members: Sequence[str],
                       config: DifferentialConfig,
                       fault_plan: Optional[FaultPlan],
                       ) -> DifferentialReport:
    result = apply_fusion(topology, list(members))
    plans = (result.plan,)

    def capture(mode: str) -> Dict[str, List[str]]:
        runtime = _runtime(config, seed, fusion_mode=mode,
                           fault_plan=fault_plan)
        return run_capture(result.fused, runtime, fusion_plans=plans,
                           factories=topology_factories(topology),
                           config=config,
                           expect_execution=mode if fault_plan is None
                           else None)

    divergences = _compare(seed, "meta", "loop",
                           capture("meta"), capture("loop"))
    shrunk_members: Optional[Tuple[str, ...]] = None
    if divergences and config.shrink_failures and len(members) > 1:
        shrunk_members = _shrink_chain(seed, topology, members, config,
                                       fault_plan)
    return DifferentialReport(
        seed=seed, mode_a="meta", mode_b="loop",
        ok=not divergences, divergences=tuple(divergences),
        shrunk_members=shrunk_members,
    )


def _shrink_chain(seed: int, topology: Topology, members: Sequence[str],
                  config: DifferentialConfig,
                  fault_plan: Optional[FaultPlan],
                  ) -> Tuple[str, ...]:
    """Greedily drop chain members while the divergence persists."""
    quiet = DifferentialConfig(
        items=config.items, mailbox_capacity=config.mailbox_capacity,
        batch_size=config.batch_size,
        batch_flush_timeout=config.batch_flush_timeout,
        quiet_period=config.quiet_period,
        quiet_timeout=config.quiet_timeout,
        shrink_failures=False,
    )

    def diverges(kept: Sequence[str]) -> bool:
        if len(kept) < 1:
            return False
        try:
            report = _loop_differential(seed, topology, kept, quiet,
                                        fault_plan)
        except Exception:
            return False  # an invalid sub-chain is not a reproduction
        return not report.ok

    current = list(members)
    progress = True
    while progress and len(current) > 1:
        progress = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1:]
            if diverges(candidate):
                current = candidate
                progress = True
                break
    return tuple(current)


def chaos_fault_plan(topology: Topology, members: Sequence[str],
                     seed: int, poisons: int = 2) -> FaultPlan:
    """A deterministic poison-only fault plan avoiding fused members.

    Poison faults are the chaos class that stays deterministic across
    execution modes: supervision resumes the vertex and the poisoned
    item index is counted in *operator invocations*, which batching and
    loop compilation both preserve.  Fused members are excluded — the
    runtime (correctly) refuses to loop-compile fault-wrapped members,
    which would turn the differential into meta-vs-meta.
    """
    rng = random.Random(seed * 7919 + 17)
    member_set = set(members)
    candidates = [name for name in topology.names
                  if name not in member_set]
    faults = []
    for _ in range(poisons):
        if not candidates:
            break
        vertex = candidates[rng.randrange(len(candidates))]
        faults.append(PoisonFault(vertex=vertex,
                                  item_index=rng.randrange(10, 60)))
    return FaultPlan(seed=seed, poisons=tuple(faults))


def check_loop_chaos_seed(seed: int,
                          config: Optional[DifferentialConfig] = None,
                          ) -> DifferentialReport:
    """Meta vs loop under a deterministic poison fault plan."""
    config = config or DifferentialConfig()
    topology, members = chain_testbed(seed, config)
    plan = chaos_fault_plan(topology, members, seed)
    return _loop_differential(seed, topology, members, config, plan)


def check_sharded_seed(seed: int,
                       config: Optional[DifferentialConfig] = None,
                       shards: int = 2,
                       ) -> DifferentialReport:
    """Threaded vs multi-process execution of one seeded chain.

    The sharded backend is transparent by the same contract as batching
    and loop fusion: same tuples, same values, same order.  Operators
    are deliberately placed round-robin across shards (instead of the
    utilization-driven default, which would co-locate a cheap chain on
    one shard) so *every* edge of the testbed crosses a process
    boundary — channels, Batch envelopes, the EOS cascade, key routing
    all sit on the compared path.  The chain is linear and every
    channel is SPSC, so order must survive; any reordering, loss or
    duplication is a real defect, reported verbatim alongside shard
    hygiene (worker leaks, crashed channels, drain failures).
    """
    from repro.runtime.procshard import ProcShardConfig, ProcShardSystem

    config = config or DifferentialConfig()
    topology, _members = chain_testbed(seed, config)
    factories = topology_factories(topology)

    threaded = run_capture(topology, _runtime(config, seed),
                           factories=factories, config=config)

    placement = {spec.name: (index % shards,)
                 for index, spec in enumerate(topology.operators)}
    proc_config = ProcShardConfig(
        shards=shards,
        mailbox_capacity=config.mailbox_capacity,
        channel_capacity=config.mailbox_capacity,
        max_items=config.items,
        seed=seed,
        batch_size=config.batch_size,
        batch_flush_timeout=config.batch_flush_timeout,
        drain_timeout=config.quiet_timeout,
    )
    system = ProcShardSystem.build(topology, factories, config=proc_config,
                                   placement=placement)
    result = system.run_to_exhaustion()
    sharded = {name: [canonical(item) for item in items]
               for name, items in result.sink_items.items()}

    divergences = _compare(seed, "threaded", "process", threaded, sharded)
    if result.failure:
        divergences.append(f"shard failure: {result.failure}")
    if result.leaked_workers:
        divergences.append(
            f"leaked workers: {', '.join(result.leaked_workers)}")
    if result.leaked_actors:
        divergences.append(
            f"leaked actors: {', '.join(result.leaked_actors)}")
    if result.crashed_channels:
        divergences.append(
            f"crashed channels: {result.crashed_channels}")
    if result.dropped_messages:
        divergences.append(
            f"{result.dropped_messages} dropped messages")
    return DifferentialReport(
        seed=seed, mode_a="threaded", mode_b="process",
        ok=not divergences, divergences=tuple(divergences),
    )


def check_batching_seed(seed: int,
                        config: Optional[DifferentialConfig] = None,
                        batch_size: Optional[int] = None,
                        ) -> DifferentialReport:
    """Unbatched vs batched mailboxes on one seeded (unfused) chain."""
    config = config or DifferentialConfig()
    if batch_size is None:
        batch_size = config.batch_size
    topology, _ = chain_testbed(seed, config)

    def diverges(candidate: Topology) -> bool:
        try:
            return bool(_batching_divergences(seed, candidate, config,
                                              batch_size))
        except Exception:
            return False

    divergences = _batching_divergences(seed, topology, config, batch_size)
    shrunk: Optional[ShrinkResult] = None
    if divergences and config.shrink_failures:
        shrunk = shrink(topology, diverges)
    return DifferentialReport(
        seed=seed, mode_a="unbatched", mode_b=f"batch={batch_size}",
        ok=not divergences, divergences=tuple(divergences), shrunk=shrunk,
    )


def _batching_divergences(seed: int, topology: Topology,
                          config: DifferentialConfig,
                          batch_size: int) -> List[str]:
    base = run_capture(topology, _runtime(config, seed), config=config)
    batched = run_capture(
        topology,
        _runtime(config, seed, batch_size=batch_size,
                 batch_flush_timeout=config.batch_flush_timeout),
        config=config,
    )
    return _compare(seed, "unbatched", f"batch={batch_size}", base, batched)


# ----------------------------------------------------------------------
# effectively-once recovery differentials


def recovery_testbed(seed: int,
                     config: Optional[DifferentialConfig] = None,
                     ) -> Tuple[Topology, Tuple[str, ...]]:
    """A chain testbed whose sink stays a standalone actor.

    The recovery differentials crash the sink, and a fault-wrapped
    member is (correctly) refused by the loop compiler — fusing the
    sink would silently turn the loop-mode differential into meta vs
    meta.  Keeping the sink standalone also makes the crash site the
    actor with the most accumulated state to lose.
    """
    topology, members = chain_testbed(seed, config)
    return topology, tuple(name for name in members if name != "sink")


def recovery_fault_plan(topology: Topology, seed: int,
                        crashes: int = 2,
                        vertex: str = "sink") -> FaultPlan:
    """A deterministic crash-only plan aimed at one vertex (the sink).

    Crashes are the fault class recovery exists for: supervision's
    Restart directive becomes a rollback to the last complete epoch.
    Sources are never targeted — a crashed source resumes by *skipping*
    the item, which legitimately changes the stream.  Indices are drawn
    low so they land within the sink's item budget even on chains whose
    compound selectivity is far below one.
    """
    rng = random.Random(seed * 6271 + 29)
    indices: set = set()
    while len(indices) < crashes:
        indices.add(rng.randrange(4, 40))
    return FaultPlan(seed=seed, crashes=tuple(
        CrashFault(vertex=vertex, item_index=index)
        for index in sorted(indices)))


def check_recovery_seed(seed: int,
                        config: Optional[DifferentialConfig] = None,
                        fusion_mode: str = "meta",
                        batch_size: int = 1,
                        checkpoint: Optional[CheckpointConfig] = None,
                        ) -> DifferentialReport:
    """Fault-free vs crash-and-recover execution of one seeded chain.

    The decisive effectively-once oracle: a run with injected sink
    crashes, rolled back by :func:`repro.runtime.checkpoint.
    run_recoverable` to the last complete epoch and replayed from the
    recorded source offset, must produce sink output **bit-equal** to
    the fault-free run — under both fused execution modes and both
    unbatched and batched mailboxes.
    """
    config = config or DifferentialConfig()
    if checkpoint is None:
        checkpoint = CheckpointConfig(interval_items=40)
    topology, members = recovery_testbed(seed, config)
    divergences, attempts = _recovery_divergences(
        seed, topology, members, config, fusion_mode, batch_size,
        checkpoint)
    shrunk_members: Optional[Tuple[str, ...]] = None
    if divergences and config.shrink_failures and len(members) > 1:
        shrunk_members = _shrink_recovery_chain(
            seed, topology, members, config, fusion_mode, batch_size,
            checkpoint)
    return DifferentialReport(
        seed=seed, mode_a=fusion_mode,
        mode_b=f"{fusion_mode}+recovery(batch={batch_size})",
        ok=not divergences, divergences=tuple(divergences),
        shrunk_members=shrunk_members,
        recovery_attempts=attempts,
    )


def _recovery_divergences(seed: int, topology: Topology,
                          members: Sequence[str],
                          config: DifferentialConfig,
                          fusion_mode: str, batch_size: int,
                          checkpoint: CheckpointConfig,
                          ) -> Tuple[List[str], int]:
    result = apply_fusion(topology, list(members))
    plans = (result.plan,)
    factories = topology_factories(topology)
    overrides: Dict[str, Any] = {"fusion_mode": fusion_mode}
    if batch_size > 1:
        overrides.update(batch_size=batch_size,
                         batch_flush_timeout=config.batch_flush_timeout)
    baseline = run_capture(
        result.fused, _runtime(config, seed, **overrides),
        fusion_plans=plans, factories=factories, config=config,
        expect_execution=fusion_mode)
    plan = recovery_fault_plan(topology, seed)
    outcome = run_recoverable(
        result.fused, factories,
        runtime=_runtime(config, seed, fault_plan=plan, **overrides),
        fusion_plans=plans, checkpoint=checkpoint,
        quiet_period=config.quiet_period,
        quiet_timeout=config.quiet_timeout)
    label = f"{fusion_mode}+recovery(batch={batch_size})"
    if outcome.outcome != "completed":
        return ([f"recovery run ended {outcome.outcome!r} after "
                 f"{outcome.attempts} rollback(s)"], outcome.attempts)
    recovered = _collect_sinks(outcome.system)
    divergences = _compare(seed, fusion_mode, label, baseline, recovered)
    return divergences, outcome.attempts


def _shrink_recovery_chain(seed: int, topology: Topology,
                           members: Sequence[str],
                           config: DifferentialConfig,
                           fusion_mode: str, batch_size: int,
                           checkpoint: CheckpointConfig,
                           ) -> Tuple[str, ...]:
    """Greedily drop chain members while the recovery divergence holds."""

    def diverges(kept: Sequence[str]) -> bool:
        if len(kept) < 1:
            return False
        try:
            divergences, _ = _recovery_divergences(
                seed, topology, kept, config, fusion_mode, batch_size,
                checkpoint)
        except Exception:
            return False  # an invalid sub-chain is not a reproduction
        return bool(divergences)

    current = list(members)
    progress = True
    while progress and len(current) > 1:
        progress = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1:]
            if diverges(candidate):
                current = candidate
                progress = True
                break
    return tuple(current)
