"""Greedy topology shrinking: minimize a failing conformance case.

Given a topology and a predicate ("does the discrepancy still
reproduce?"), :func:`shrink` repeatedly tries to delete one vertex or
one edge, keeping each deletion that preserves the failure.  The result
is a local minimum: no single remaining deletion reproduces the
discrepancy, which in practice collapses twenty-operator testbed
graphs to the two-to-four-operator kernel that actually disagrees.

Deletions keep the topology well-formed: removing a vertex drops its
edges, routing probabilities of the affected predecessors are
renormalized, and vertices no longer reachable from the source are
dropped transitively (the structural invariants of
:class:`~repro.core.graph.Topology` are re-validated on construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.core.graph import Edge, Topology, TopologyError

if TYPE_CHECKING:  # avoids a hard dependency on the analysis package
    from repro.analysis.diagnostics import LintReport

Predicate = Callable[[Topology], bool]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of a shrink run."""

    original: Topology
    reduced: Topology
    steps: Tuple[str, ...]
    #: Static-analysis report of the reduced topology: a shrunk
    #: reproduction that also trips a lint rule usually *is* that rule's
    #: bug, so the report ships with the kernel.
    lint: Optional["LintReport"] = None

    @property
    def removed_operators(self) -> int:
        return len(self.original) - len(self.reduced)


def _rebuild(topology: Topology, keep_specs: List, edges: List[Edge],
             name: str) -> Optional[Topology]:
    """Build a valid sub-topology from kept specs and candidate edges.

    Renormalizes routing probabilities per vertex and drops vertices
    that lost reachability from the source; returns ``None`` when no
    valid topology remains (e.g. the source itself lost all operators).
    """
    kept = {spec.name for spec in keep_specs}
    edges = [e for e in edges if e.source in kept and e.target in kept]

    # Drop vertices unreachable from the (original) source.
    source = topology.source
    if source not in kept:
        return None
    adjacency = {}
    for edge in edges:
        adjacency.setdefault(edge.source, []).append(edge.target)
    reached = set()
    stack = [source]
    while stack:
        current = stack.pop()
        if current in reached:
            continue
        reached.add(current)
        stack.extend(adjacency.get(current, ()))
    keep_specs = [s for s in keep_specs if s.name in reached]
    edges = [e for e in edges if e.source in reached and e.target in reached]
    if len(keep_specs) < 2:
        return None

    # Renormalize the out-probabilities of every remaining vertex.
    totals = {}
    for edge in edges:
        totals[edge.source] = totals.get(edge.source, 0.0) + edge.probability
    normalized = [
        Edge(e.source, e.target, e.probability / totals[e.source],
             capacity=e.capacity)
        for e in edges
    ]
    try:
        return Topology(keep_specs, normalized, name=name,
                        checkpoint=topology.checkpoint,
                    latency_budget=topology.latency_budget)
    except TopologyError:
        return None


def _shrunk_name(name: str) -> str:
    return name if name.endswith("-shrunk") else f"{name}-shrunk"


def remove_vertex(topology: Topology, name: str) -> Optional[Topology]:
    """The topology without ``name`` (and without anything it orphans).

    Returns ``None`` when the removal is impossible (the source, or a
    removal that leaves no valid topology).
    """
    if name == topology.source or name not in topology:
        return None
    specs = [s for s in topology.operators if s.name != name]
    return _rebuild(topology, specs, topology.edges,
                    name=_shrunk_name(topology.name))


def remove_edge(topology: Topology, source: str,
                target: str) -> Optional[Topology]:
    """The topology without the ``source -> target`` edge.

    Siblings of the removed edge are renormalized; vertices that lose
    reachability are dropped.  Returns ``None`` when the edge does not
    exist or nothing valid remains.
    """
    edges = [e for e in topology.edges
             if not (e.source == source and e.target == target)]
    if len(edges) == len(topology.edges):
        return None
    return _rebuild(topology, list(topology.operators), edges,
                    name=_shrunk_name(topology.name))


def _holds(predicate: Predicate, topology: Topology) -> bool:
    """Run the predicate defensively: an analysis crash on a candidate
    counts as "does not reproduce" so shrinking never aborts."""
    try:
        return bool(predicate(topology))
    except Exception:
        return False


def shrink(topology: Topology, predicate: Predicate,
           max_steps: int = 1000) -> ShrinkResult:
    """Greedily minimize ``topology`` while ``predicate`` stays true.

    ``predicate`` must be true for the input topology (otherwise there
    is nothing to preserve and the input is returned unchanged).  Each
    round first tries vertex removals (big steps), then edge removals
    (fine-grained), restarting after every accepted deletion; the loop
    ends at a fixpoint where no single deletion keeps the failure.
    """
    if not _holds(predicate, topology):
        return ShrinkResult(original=topology, reduced=topology, steps=(),
                            lint=_lint_of(topology))

    current = topology
    steps: List[str] = []
    improved = True
    while improved and len(steps) < max_steps:
        improved = False
        for name in list(current.names):
            candidate = remove_vertex(current, name)
            if candidate is not None and _holds(predicate, candidate):
                steps.append(f"removed operator {name!r} "
                             f"({len(current)} -> {len(candidate)} operators)")
                current = candidate
                improved = True
                break
        if improved:
            continue
        for edge in current.edges:
            candidate = remove_edge(current, edge.source, edge.target)
            if (candidate is not None and len(candidate) == len(current)
                    and _holds(predicate, candidate)):
                steps.append(f"removed edge {edge.source!r}->{edge.target!r}")
                current = candidate
                improved = True
                break
    return ShrinkResult(original=topology, reduced=current,
                        steps=tuple(steps), lint=_lint_of(current))


def _lint_of(topology: Topology) -> Optional["LintReport"]:
    """Best-effort lint report of a reproduction kernel."""
    try:
        from repro.analysis.lint import lint_topology

        return lint_topology(topology)
    except Exception:
        return None
