"""Differential conformance harness: seed -> topology -> three backends.

One seed deterministically produces one random topology (paper
Algorithm 5 via :mod:`repro.topology.random_gen`), which then runs
through up to three execution models:

* the analytical steady-state solver (the *prediction*);
* the discrete-event simulator (virtual time, exact semantics);
* the threaded actor runtime (wall-clock, sleep-padded operators).

and through the optimizer pipeline (fission then automatic fusion),
whose transformed topology must keep matching the simulator.

Two measurement details matter for tight tolerances and were tuned
empirically:

* **Horizon scaling** — ``simulate()`` sets the virtual horizon to
  ``items / raw_source_rate``.  On heavily throttled topologies that
  window is far too short: a slow operator's queue takes tens of
  virtual seconds to fill, and the pre-backpressure transient counts as
  extra throughput.  The harness instead sets the horizon to
  ``items / predicted_throughput`` with a 40% warmup, so every run
  observes a genuine steady state regardless of throttling depth.
* **Profiles** — the ``tree`` profile (in-degree <= 1) is checked at 2%
  per-operator tolerance: with a single input per vertex, head-of-line
  blocking keeps fan-out flows exactly proportional and the fluid model
  is tight.  The ``dag`` profile allows merges, where BAS FIFO wakeup
  shares a saturated vertex's capacity per-sender instead of
  per-offered-rate; that irreducible fluid-model error (the tail of the
  paper's own Figure 7) gets a 10% tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Mapping, Optional, Tuple

from repro.core.autofusion import auto_fuse
from repro.core.fission import eliminate_bottlenecks
from repro.core.graph import Topology
from repro.core.solver import analyze_cached
from repro.core.steady_state import SteadyStateResult
from repro import instrumentation
from repro.faults.plan import ChaosProfile, FaultPlanConfig, chaos_profile
from repro.sim.network import SimulationConfig, build_engine
from repro.testing.oracle import (
    ConformanceReport,
    Discrepancy,
    Oracle,
    Tolerances,
)
from repro.topology.random_gen import GeneratorConfig, RandomTopologyGenerator

AnalyzeFn = Callable[[Topology], SteadyStateResult]

#: Stateless catalog templates used by the wall-clock runtime check:
#: their gains are realized deterministically by
#: :class:`repro.runtime.synthetic.GainOperator`, so short runs measure
#: the configured selectivities exactly instead of sampling them.
RUNTIME_TEMPLATES: Tuple[str, ...] = (
    "identity", "field_map", "arithmetic_map", "projection",
    "filter_low", "filter_high", "flatmap",
)


@dataclass(frozen=True)
class ConformanceConfig:
    """Knobs of a conformance run (defaults = tier-1 budget)."""

    profile: str = "tree"
    base_seed: int = 100
    #: Items per simulated horizon; the horizon itself is scaled by the
    #: predicted throughput (see module docstring).
    items: int = 30_000
    warmup_fraction: float = 0.4
    mailbox_capacity: int = 64
    #: Deterministic service + deficit-round-robin key routing: the
    #: regime the fluid model describes; stochastic variants are what
    #: the accuracy *experiments* explore, not what conformance gates.
    service_family: str = "deterministic"
    routing: str = "proportional"
    tolerances: Optional[Tolerances] = None
    #: Also check the optimizer pipeline (fission + autofusion) per seed.
    optimizer: bool = True
    optimizer_throughput_rel: float = 0.05
    #: Wall-clock seconds per runtime check (warmup is a quarter of it).
    runtime_duration: float = 3.0
    #: Small mailboxes keep the queue-fill transient well inside the
    #: warmup: on a deeply throttled topology a 64-slot mailbox in
    #: front of a slow operator parks over a second of flow before
    #: backpressure reaches the source.
    runtime_mailbox_capacity: int = 16
    #: Mailbox batching of the runtime checks (tuples per message; 1 =
    #: unbatched).  Batching is a transparent transport optimization, so
    #: the same steady-state tolerances must hold at any batch size —
    #: parametrizing conformance over this gates batched runs tier-1.
    runtime_batch_size: int = 1
    runtime_batch_flush_timeout: float = 0.02
    runtime_tolerances: Tolerances = field(default_factory=lambda: Tolerances(
        departure_rel=0.10, throughput_rel=0.10, min_items=200.0))
    #: Fault sampling rates of the degraded-mode (chaos) checks.
    chaos_faults: FaultPlanConfig = field(default_factory=FaultPlanConfig)
    #: Degraded-mode agreement threshold.  The derated model works with
    #: time-averaged availability, but a slowdown *window* can turn a
    #: non-bottleneck vertex into a transient bottleneck whose queueing
    #: loss the average misses — that approximation error is why chaos
    #: runs are gated at 15% rather than the fault-free 2%.
    chaos_tolerances: Tolerances = field(default_factory=lambda: Tolerances(
        departure_rel=0.15, throughput_rel=0.15, min_items=500.0))
    #: Wall-clock chaos check: a few hundred items and a handful of
    #: faults per run make the measurement inherently noisy.
    chaos_runtime_tolerances: Tolerances = field(
        default_factory=lambda: Tolerances(
            departure_rel=0.25, throughput_rel=0.20, min_items=100.0))
    #: Worker processes of the multi-process (sharded) runtime check.
    process_shards: int = 2

    def resolved_tolerances(self) -> Tolerances:
        if self.tolerances is not None:
            return self.tolerances
        if self.profile == "dag":
            return Tolerances().loosened(0.10)
        return Tolerances()

    def generator_config(self) -> GeneratorConfig:
        if self.profile == "tree":
            return GeneratorConfig(max_vertices=12, max_in_degree=1)
        if self.profile == "dag":
            return GeneratorConfig(max_vertices=12)
        raise ValueError(f"unknown conformance profile {self.profile!r}")

    def runtime_generator_config(self) -> GeneratorConfig:
        """Topologies small and slow enough to measure on wall-clock.

        Service times are clamped into [4ms, 8ms]: long enough that the
        ~100-300us of uncompensated scheduling overhead per item (sleep
        wakeup jitter plus the actor loop itself) stays a few percent
        of the service time, short enough that a few seconds of
        execution yield statistically meaningful counts.
        """
        return GeneratorConfig(
            min_vertices=3, max_vertices=6, max_in_degree=1,
            template_names=RUNTIME_TEMPLATES,
            min_service_time=4e-3, max_service_time=8e-3,
        )


def topology_for_seed(seed: int,
                      config: Optional[ConformanceConfig] = None,
                      generator: Optional[GeneratorConfig] = None) -> Topology:
    """The deterministic topology of one conformance seed."""
    config = config or ConformanceConfig()
    generator = generator or config.generator_config()
    return RandomTopologyGenerator(seed=seed, config=generator).generate(
        name=f"conformance-{seed}")


def simulate_for_conformance(
    topology: Topology,
    predicted: SteadyStateResult,
    config: ConformanceConfig,
    seed: int,
) -> Tuple[Mapping[str, object], float]:
    """Run the DES with the throughput-scaled horizon.

    Returns ``(vertex_measurements, measured_window_seconds)``.
    """
    sim_config = SimulationConfig(
        mailbox_capacity=config.mailbox_capacity,
        service_family=config.service_family,
        routing=config.routing,
        items=config.items,
        seed=seed,
    )
    engine, _ = build_engine(topology, sim_config)
    horizon = config.items / predicted.throughput
    warmup = horizon * config.warmup_fraction
    measurements = engine.run(until=horizon, warmup=warmup)
    return measurements.vertex_rates(), measurements.duration


def check_seed(
    seed: int,
    config: Optional[ConformanceConfig] = None,
    analyze_fn: AnalyzeFn = analyze_cached,
    topology: Optional[Topology] = None,
) -> ConformanceReport:
    """Model vs. simulator on the topology of one seed.

    ``analyze_fn`` is injectable so deliberately broken models can be
    pitted against the simulator (the harness's self-test); ``topology``
    overrides the seed-generated graph (used by the shrinker, which
    re-checks candidate sub-topologies under the same seed).
    """
    config = config or ConformanceConfig()
    if topology is None:
        topology = topology_for_seed(seed, config)
    predicted = analyze_fn(topology)
    measured, window = simulate_for_conformance(topology, predicted,
                                                config, seed)
    oracle = Oracle(config.resolved_tolerances())
    return oracle.compare(predicted, measured, window,
                          backend="simulator", seed=seed)


def check_optimizer_seed(
    seed: int,
    config: Optional[ConformanceConfig] = None,
) -> ConformanceReport:
    """Optimizer pipeline vs. simulator on the topology of one seed.

    The topology goes through bottleneck elimination (Algorithm 2) and
    automatic fusion (Algorithms 3-4); the *transformed* topology's
    predicted throughput must still match the simulator — guarding the
    replication and fusion cost models, not just the base analysis.
    """
    config = config or ConformanceConfig()
    topology = topology_for_seed(seed, config)
    fission = eliminate_bottlenecks(topology)
    fused = auto_fuse(fission.optimized)
    optimized = fused.fused
    # Memo hit: auto_fuse just analyzed this exact topology.
    predicted = analyze_cached(optimized)
    measured, window = simulate_for_conformance(optimized, predicted,
                                                config, seed)
    oracle = Oracle(config.resolved_tolerances().loosened(
        config.optimizer_throughput_rel))
    report = oracle.compare(
        predicted, measured, window, backend="optimizer+simulator",
        seed=seed, check_departures=False, check_utilization=False,
        check_bottlenecks=False,
    )
    return replace(report, topology_name=f"{topology.name}-optimized")


def check_chaos_seed(
    seed: int,
    config: Optional[ConformanceConfig] = None,
    topology: Optional[Topology] = None,
) -> ConformanceReport:
    """Derated model vs. simulator under the seed's fault plan.

    The seed deterministically produces both the topology and a fault
    plan (crashes, poison tuples, slowdown windows, source hiccups);
    the simulator runs it under the matching supervision strategy and
    the measured rates must agree with the *derated* steady-state model
    within ``config.chaos_tolerances``.  The run measures the full
    horizon (no warmup): the derating factors describe full-horizon
    averages, so discarding a warmup window that contains faults would
    bias the comparison.

    ``topology`` overrides the seed-generated graph so the shrinker can
    re-check candidate sub-topologies (the fault plan is regenerated
    per candidate from the same seed).
    """
    config = config or ConformanceConfig()
    if topology is None:
        topology = topology_for_seed(seed, config)
    profile = chaos_profile(topology, seed, config.chaos_faults,
                            items=config.items)
    sim_config = SimulationConfig(
        mailbox_capacity=config.mailbox_capacity,
        service_family=config.service_family,
        routing=config.routing,
        items=config.items,
        seed=seed,
        fault_plan=profile.plan,
        supervisor=profile.strategy,
        on_deadlock="report",
    )
    engine, _ = build_engine(topology, sim_config)
    measurements = engine.run(until=profile.horizon, warmup=0.0)
    oracle = Oracle(config.chaos_tolerances)
    report = oracle.compare(
        profile.derated, measurements.vertex_rates(), measurements.duration,
        backend="chaos+simulator", seed=seed,
        check_utilization=False, check_bottlenecks=False,
    )
    extra: List[Discrepancy] = []
    if measurements.deadlock is not None:
        extra.append(Discrepancy(
            kind="watchdog", operator=measurements.deadlock.verdict,
            expected=0.0,
            actual=float(len(measurements.deadlock.blocked)),
            tolerance=0.0,
        ))
    if measurements.halted is not None:
        extra.append(Discrepancy(
            kind="halted", operator=measurements.halted,
            expected=0.0, actual=1.0, tolerance=0.0,
        ))
    if extra:
        report = replace(report,
                         discrepancies=report.discrepancies + tuple(extra))
    return report


def shrink_chaos_failure(seed: int,
                         config: Optional[ConformanceConfig] = None):
    """Minimal sub-topology still failing the seed's chaos check.

    Returns the :class:`~repro.testing.shrink.ShrinkResult`, or ``None``
    when the seed passes (nothing to shrink).
    """
    from repro.testing.shrink import shrink

    config = config or ConformanceConfig()
    topology = topology_for_seed(seed, config)
    if check_chaos_seed(seed, config, topology=topology).ok:
        return None
    return shrink(
        topology,
        lambda candidate: not check_chaos_seed(seed, config,
                                               topology=candidate).ok,
    )


_SLEEP_OVERSHOOT: Optional[float] = None


def sleep_overshoot() -> float:
    """Measured ``time.sleep`` overshoot of this host, cached.

    ``time.sleep`` wakes a few hundred microseconds late (timer slack),
    which inflates every sleep-padded service time by a constant and
    would show up as a systematic 5-15% throughput deficit at
    millisecond service times.  The runtime factories subtract this
    calibrated constant from their padding targets.
    """
    global _SLEEP_OVERSHOOT
    if _SLEEP_OVERSHOOT is None:
        import time
        samples = []
        for _ in range(25):
            started = time.perf_counter()
            time.sleep(2e-3)
            samples.append(time.perf_counter() - started - 2e-3)
        samples.sort()
        _SLEEP_OVERSHOOT = max(0.0, samples[len(samples) // 2])
    return _SLEEP_OVERSHOOT


def check_runtime_seed(
    seed: int,
    config: Optional[ConformanceConfig] = None,
) -> ConformanceReport:
    """Model vs. threaded actor runtime on a wall-clock-sized topology.

    Operators are sleep-padded to their configured service times and
    their selectivities realized deterministically, so the measured
    departure rates are comparable with the model at the 10% level on a
    few seconds of execution.  Utilization and bottleneck checks are
    skipped: sleep padding and GIL scheduling distort busy-time
    accounting (and the source's pacing sleeps are not busy time).
    """
    from repro.operators.source_sink import GeneratorSource
    from repro.runtime.synthetic import GainOperator, PaddedOperator
    from repro.runtime.system import RuntimeConfig, run_topology

    config = config or ConformanceConfig()
    topology = topology_for_seed(seed, config,
                                 generator=config.runtime_generator_config())
    predicted = analyze_cached(topology)

    overshoot = sleep_overshoot()
    factories = {}
    for spec in topology.operators:
        if spec.name == topology.source:
            factories[spec.name] = lambda s=seed: GeneratorSource(seed=s)
        else:
            padding = max(spec.service_time - overshoot, 1e-4)
            factories[spec.name] = lambda g=spec.gain, p=padding: (
                PaddedOperator(GainOperator(g), p))

    runtime_config = RuntimeConfig(
        mailbox_capacity=config.runtime_mailbox_capacity,
        source_rate=topology.operator(topology.source).service_rate,
        seed=seed,
        batch_size=config.runtime_batch_size,
        batch_flush_timeout=config.runtime_batch_flush_timeout,
    )
    result = run_topology(
        topology, factories,
        duration=config.runtime_duration,
        warmup=config.runtime_duration * 0.25,
        config=runtime_config,
    )
    oracle = Oracle(config.runtime_tolerances)
    report = oracle.compare(
        predicted, result.vertices, result.measurements.duration,
        backend="runtime", seed=seed,
        check_utilization=False, check_bottlenecks=False,
    )
    # Fault-free hygiene gates: a correctly sized run must deliver every
    # message (no silent BoundedMailbox.put timeouts) and stop() must
    # reap every actor thread.
    extra: List[Discrepancy] = []
    dropped = result.measurements.total_dropped()
    if dropped:
        extra.append(Discrepancy(
            kind="dropped-messages", operator="<runtime>",
            expected=0.0, actual=float(dropped), tolerance=0.0,
        ))
    if result.leaked_actors:
        extra.append(Discrepancy(
            kind="thread-leak", operator=",".join(result.leaked_actors),
            expected=0.0, actual=float(len(result.leaked_actors)),
            tolerance=0.0,
        ))
    if extra:
        report = replace(report,
                         discrepancies=report.discrepancies + tuple(extra))
    return report


def check_process_seed(
    seed: int,
    config: Optional[ConformanceConfig] = None,
) -> ConformanceReport:
    """Model vs. multi-process sharded runtime (the fourth backend).

    Same topology, factories and tolerances as
    :func:`check_runtime_seed`, but executed by
    :class:`repro.runtime.procshard.ProcShardSystem` across
    ``config.process_shards`` worker processes with solver-driven
    placement.  Beyond rate agreement, the check gates process hygiene:
    zero dropped messages, no wedged actors inside any shard, no worker
    process surviving teardown, and no shard-level failure (crashed
    channel, drain timeout, lost report).
    """
    from repro.operators.source_sink import GeneratorSource
    from repro.runtime.procshard import ProcShardConfig, run_sharded
    from repro.runtime.synthetic import GainOperator, PaddedOperator

    config = config or ConformanceConfig()
    topology = topology_for_seed(seed, config,
                                 generator=config.runtime_generator_config())
    predicted = analyze_cached(topology)

    overshoot = sleep_overshoot()
    factories = {}
    for spec in topology.operators:
        if spec.name == topology.source:
            factories[spec.name] = lambda s=seed: GeneratorSource(seed=s)
        else:
            padding = max(spec.service_time - overshoot, 1e-4)
            factories[spec.name] = lambda g=spec.gain, p=padding: (
                PaddedOperator(GainOperator(g), p))

    proc_config = ProcShardConfig(
        shards=config.process_shards,
        mailbox_capacity=config.runtime_mailbox_capacity,
        # Keep the queue-fill transient inside the warmup: the credit
        # window stands in for the remote mailbox, and channel
        # envelopes stay at the runtime batch size — the default
        # 32-tuple envelopes would triple the slack on a crossing edge
        # and the throttled steady state would not be reached in time.
        channel_capacity=config.runtime_mailbox_capacity,
        channel_batch_size=max(config.runtime_batch_size, 1),
        source_rate=topology.operator(topology.source).service_rate,
        seed=seed,
        batch_size=config.runtime_batch_size,
        batch_flush_timeout=config.runtime_batch_flush_timeout,
    )
    result = run_sharded(
        topology, factories,
        duration=config.runtime_duration,
        # Crossing edges roughly double the buffered slack of a local
        # edge, so the process check warms up longer than the threaded
        # check's quarter.
        warmup=config.runtime_duration * 0.5,
        config=proc_config,
    )
    oracle = Oracle(config.runtime_tolerances)
    report = oracle.compare(
        predicted, result.vertices, result.measurements.duration,
        backend="process", seed=seed,
        check_utilization=False, check_bottlenecks=False,
    )
    extra: List[Discrepancy] = []
    dropped = result.dropped_messages
    if dropped:
        extra.append(Discrepancy(
            kind="dropped-messages", operator="<process>",
            expected=0.0, actual=float(dropped), tolerance=0.0,
        ))
    if result.leaked_actors:
        extra.append(Discrepancy(
            kind="thread-leak", operator=",".join(result.leaked_actors),
            expected=0.0, actual=float(len(result.leaked_actors)),
            tolerance=0.0,
        ))
    if result.leaked_workers:
        extra.append(Discrepancy(
            kind="worker-leak", operator=",".join(result.leaked_workers),
            expected=0.0, actual=float(len(result.leaked_workers)),
            tolerance=0.0,
        ))
    if result.failure:
        extra.append(Discrepancy(
            kind="shard-failure", operator=result.failure,
            expected=0.0, actual=1.0, tolerance=0.0,
        ))
    if extra:
        report = replace(report,
                         discrepancies=report.discrepancies + tuple(extra))
    return report


def check_chaos_runtime_seed(
    seed: int,
    config: Optional[ConformanceConfig] = None,
) -> ConformanceReport:
    """Derated model vs. threaded runtime under the seed's fault plan.

    The wall-clock analog of :func:`check_chaos_seed`: the fault plan is
    sized to the items a ``runtime_duration``-second run processes, the
    actor system runs it under the matching supervision strategy, and
    the measured rates must agree with the derated model within the
    (loose) ``config.chaos_runtime_tolerances``.  Escalations, watchdog
    verdicts and leaked threads are hard failures regardless of rates.
    """
    from repro.operators.source_sink import GeneratorSource
    from repro.runtime.synthetic import GainOperator, PaddedOperator
    from repro.runtime.system import RuntimeConfig, run_topology

    config = config or ConformanceConfig()
    topology = topology_for_seed(seed, config,
                                 generator=config.runtime_generator_config())
    base = analyze_cached(topology)
    items = max(int(base.throughput * config.runtime_duration), 50)
    profile = chaos_profile(topology, seed, config.chaos_faults, items=items)

    overshoot = sleep_overshoot()
    factories = {}
    for spec in topology.operators:
        if spec.name == topology.source:
            factories[spec.name] = lambda s=seed: GeneratorSource(seed=s)
        else:
            padding = max(spec.service_time - overshoot, 1e-4)
            factories[spec.name] = lambda g=spec.gain, p=padding: (
                PaddedOperator(GainOperator(g), p))

    runtime_config = RuntimeConfig(
        mailbox_capacity=config.runtime_mailbox_capacity,
        source_rate=topology.operator(topology.source).service_rate,
        seed=seed,
        fault_plan=profile.plan,
        supervisor=profile.strategy,
    )
    result = run_topology(
        topology, factories,
        duration=config.runtime_duration,
        warmup=0.0,
        config=runtime_config,
    )
    oracle = Oracle(config.chaos_runtime_tolerances)
    report = oracle.compare(
        profile.derated, result.vertices, result.measurements.duration,
        backend="chaos+runtime", seed=seed,
        check_utilization=False, check_bottlenecks=False,
    )
    extra: List[Discrepancy] = []
    if result.failure is not None:
        extra.append(Discrepancy(
            kind="runtime-failure", operator=result.failure,
            expected=0.0, actual=1.0, tolerance=0.0,
        ))
    if result.leaked_actors:
        extra.append(Discrepancy(
            kind="thread-leak", operator=",".join(result.leaked_actors),
            expected=0.0, actual=float(len(result.leaked_actors)),
            tolerance=0.0,
        ))
    if extra:
        report = replace(report,
                         discrepancies=report.discrepancies + tuple(extra))
    return report


@dataclass(frozen=True)
class SweepOutcome:
    """All reports of a multi-seed conformance sweep."""

    reports: Tuple[ConformanceReport, ...]

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def failures(self) -> List[ConformanceReport]:
        return [report for report in self.reports if not report.ok]

    @property
    def max_departure_error(self) -> float:
        if not self.reports:
            return 0.0
        return max(report.max_departure_error for report in self.reports)

    def summary(self) -> str:
        lines = [
            f"{len(self.reports)} checks, {len(self.failures)} failed, "
            f"max departure error {self.max_departure_error:.2%}"
        ]
        for report in self.reports:
            if not report.ok:
                lines.append(report.summary())
        return "\n".join(lines)


def _sweep_task(task: Tuple[str, int, ConformanceConfig]):
    """One virtual-time check, runnable in a worker process.

    Every check derives all randomness from its seed (topology
    generator, DES RNG, fault plans), so where it runs cannot change the
    result — parallel sweeps are bit-identical to serial ones.  The
    worker's counter deltas ride back with the report so the parent can
    aggregate process-wide stats.
    """
    kind, seed, config = task
    before = instrumentation.snapshot()
    if kind == "sim":
        report = check_seed(seed, config)
    elif kind == "optimizer":
        report = check_optimizer_seed(seed, config)
    elif kind == "chaos":
        report = check_chaos_seed(seed, config)
    else:  # pragma: no cover - guarded by run_sweep
        raise ValueError(f"unknown sweep task kind {kind!r}")
    return (
        report,
        instrumentation.SOLVER.since(before.solver),
        instrumentation.ENGINE.since(before.engine),
    )


def run_sweep(
    seeds: int,
    config: Optional[ConformanceConfig] = None,
    runtime_seeds: int = 0,
    analyze_fn: AnalyzeFn = analyze_cached,
    chaos_seeds: int = 0,
    workers: Optional[int] = None,
    process_seeds: int = 0,
) -> SweepOutcome:
    """Sweep ``seeds`` consecutive seeds from ``config.base_seed``.

    Each seed runs the model-vs-simulator check and (when enabled) the
    optimizer check; the first ``runtime_seeds`` seeds additionally run
    the wall-clock actor runtime, the first ``process_seeds`` seeds run
    the multi-process sharded runtime, and the first ``chaos_seeds``
    seeds run the degraded-mode (fault-injected) simulator check.

    ``workers`` > 1 fans the virtual-time checks (sim, optimizer,
    chaos) over a :mod:`multiprocessing` pool.  Seeds are isolated —
    every RNG is derived from the seed inside the check — so the
    outcome is bit-identical to the serial sweep in serial order.  The
    wall-clock runtime checks stay in this process: forking competes
    with their sleep-calibrated timing, and their thread-per-actor
    design does not benefit from extra processes.  A custom
    ``analyze_fn`` (the harness self-test hook) forces the serial path,
    since arbitrary callables do not cross process boundaries.
    """
    config = config or ConformanceConfig()
    parallel = (
        workers is not None and workers > 1
        and analyze_fn is analyze_cached
        and (seeds > 0 or chaos_seeds > 0)
    )
    if parallel:
        tasks: List[Tuple[str, int, ConformanceConfig]] = []
        for index in range(seeds):
            seed = config.base_seed + index
            tasks.append(("sim", seed, config))
            if config.optimizer:
                tasks.append(("optimizer", seed, config))
        chaos_tasks = [
            ("chaos", config.base_seed + index, config)
            for index in range(chaos_seeds)
        ]
        import multiprocessing

        with multiprocessing.Pool(processes=workers) as pool:
            outcomes = pool.map(_sweep_task, tasks + chaos_tasks)
        reports = []
        for report, solver_delta, engine_delta in outcomes:
            reports.append(report)
            instrumentation.SOLVER.add(solver_delta)
            instrumentation.ENGINE.add(engine_delta)
        # Serial order: per-seed checks, then runtime, then chaos.
        chaos_reports = reports[len(tasks):]
        reports = reports[:len(tasks)]
    else:
        reports = []
        for index in range(seeds):
            seed = config.base_seed + index
            reports.append(check_seed(seed, config, analyze_fn=analyze_fn))
            if config.optimizer:
                reports.append(check_optimizer_seed(seed, config))
        chaos_reports = [
            check_chaos_seed(config.base_seed + index, config)
            for index in range(chaos_seeds)
        ]
    for index in range(runtime_seeds):
        seed = config.base_seed + index
        reports.append(check_runtime_seed(seed, config))
    # Process-backend checks also run in this process (the driver forks
    # its own shard workers; nesting it in a pool worker would orphan
    # them on a pool timeout).
    for index in range(process_seeds):
        seed = config.base_seed + index
        reports.append(check_process_seed(seed, config))
    reports.extend(chaos_reports)
    return SweepOutcome(reports=tuple(reports))
