"""Adaptive conformance: live reconfigurations proven correct per seed.

The adaptive controller (:mod:`repro.runtime.adaptive`) claims three
properties, and this module turns each into a seeded, replayable check:

* **It adapts, correctly** — :func:`check_adaptive_seed` runs a seeded
  wall-clock topology under a mid-run service-time shift (the workload
  phase change).  The controller must fire, converge within the tick
  budget, and the *post-reconfiguration* measured steady state must
  match the freshly re-solved analytical model of the shifted topology
  with the replicas the controller actually deployed — the same oracle
  and tolerances the static four-way conformance uses.
* **It moves state without losing tuples** — :func:`check_migration_seed`
  reuses the differential chain testbeds: a run interleaved with
  drain-and-migrate tickets (standalone actors, replicated ensembles
  and fused meta-operator members alike) must produce sink output
  **bit-equal** to the undisturbed run.  Stateful members (windowed
  aggregates, collecting sinks) make this a real state-carrying
  migration, not a stateless swap.
* **It does nothing on a stationary workload** —
  :func:`check_stationary_seed` is the negative control: no shift, so
  any reconfiguration is thrashing and fails the seed.

:func:`check_adaptive_chaos_seed` adds the interaction hazard: crash
and slowdown faults injected *while* the controller reconfigures.
Supervision restarts and controller rescales must not fight — the run
has to keep making progress (the stall watchdog is armed), stop
cleanly, and keep dead letters bounded by the injected faults.

Determinism: the shift vertex and factor are chosen analytically from
the seed (the smallest slowdown factor that makes the re-solved plan
require replication), the controller is driven tick by tick from this
thread (no controller thread), and every estimator window is item-count
based — so a seed's decision *sequence* replays; only service-time
measurements inherit scheduler jitter, which the model tolerances
absorb.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.fission import eliminate_bottlenecks
from repro.core.fusion import apply_fusion
from repro.core.graph import Topology, TopologyError
from repro.core.solver import analyze_cached
from repro.faults.plan import CrashFault, FaultPlan, SlowdownFault
from repro.operators.source_sink import GeneratorSource
from repro.profiling.online import EstimatorConfig
from repro.runtime.actors import OperatorActor, SourceActor
from repro.runtime.adaptive import AdaptiveConfig, AdaptiveController
from repro.runtime.meta import MetaOperatorActor
from repro.runtime.metrics import (
    ActorRates,
    CounterSnapshot,
    RuntimeMeasurements,
    rates_between,
)
from repro.runtime.supervision import (
    Directive,
    SupervisionPolicy,
    SupervisorStrategy,
)
from repro.runtime.synthetic import (
    AdjustablePaddedOperator,
    GainOperator,
    ServiceTimeControl,
)
from repro.runtime.system import ActorSystem, RuntimeConfig
from repro.testing.differential import (
    DifferentialConfig,
    DifferentialReport,
    _collect_sinks,
    _compare,
    run_capture,
    topology_factories,
)
from repro.testing.harness import (
    ConformanceConfig,
    sleep_overshoot,
    topology_for_seed,
)
from repro.testing.oracle import ConformanceReport, Discrepancy, Oracle


@dataclass(frozen=True)
class AdaptiveScenarioConfig:
    """Knobs of one seeded adaptation scenario (tier-1 budget defaults)."""

    #: Seconds between manually driven controller ticks.
    control_period: float = 0.25
    #: Estimator windowing: ``min_items`` is low because the runtime
    #: topologies run at 125-250 items/s and deep branches see a
    #: fraction of that; the x3+ injected drift dwarfs the extra noise.
    estimator: EstimatorConfig = field(default_factory=lambda: EstimatorConfig(
        window_ticks=5, min_items=15, change_threshold=0.25))
    cooldown_ticks: int = 2
    #: Pre-shift ticks (controller observes the declared regime).
    warmup_ticks: int = 3
    #: Post-shift tick budget: the controller must fire *and* settle
    #: within this many control periods (the convergence bound K).
    max_ticks: int = 28
    #: Consecutive quiet (non-cooldown, non-fired) ticks = converged.
    settle_ticks: int = 4
    #: Escalating slowdown factors tried when picking the shift vertex;
    #: the smallest factor whose re-solved plan needs replication wins.
    slowdown_factors: Tuple[float, ...] = (3.0, 5.0, 8.0, 12.0)
    #: Steady-state measurement window after convergence.
    measure_duration: float = 1.5
    #: Deadline for the pre-measurement backlog drain (see
    #: :func:`_wait_backlog_drain`).
    drain_timeout: float = 8.0
    mailbox_capacity: int = 16
    #: Post-warmup ticks of the stationary (negative-control) check.
    stationary_ticks: int = 5

    def adaptive_config(self, seed: int) -> AdaptiveConfig:
        return AdaptiveConfig(
            control_period=self.control_period,
            estimator=self.estimator,
            cooldown_ticks=self.cooldown_ticks,
            seed=seed,
        )


@dataclass
class _Scenario:
    """One built-but-not-started adaptation scenario."""

    topology: Topology
    system: ActorSystem
    controller: AdaptiveController
    controls: Dict[str, ServiceTimeControl]
    shift_vertex: str
    shift_factor: float
    offered_rate: float

    @property
    def shifted_topology(self) -> Topology:
        """The topology as the workload actually behaves post-shift."""
        spec = self.topology.operator(self.shift_vertex)
        return self.topology.with_operator(
            spec.with_service_time(spec.service_time * self.shift_factor))


def choose_shift(topology: Topology, offered_rate: float,
                 seed: int,
                 factors: Tuple[float, ...] = (3.0, 5.0, 8.0, 12.0),
                 ) -> Tuple[str, float]:
    """The seed's deterministic phase shift: ``(vertex, factor)``.

    Scans escalating slowdown factors and picks (seeded-random) among
    the non-source vertices whose re-solved plan requires replication
    once slowed by that factor — guaranteeing the shift creates a real
    bottleneck the controller *must* resolve, at the smallest factor
    that does so.  Purely analytical, so the scenario is known before
    any thread starts.
    """
    for factor in factors:
        candidates = []
        for name in topology.names:
            if name == topology.source:
                continue
            spec = topology.operator(name)
            slowed = topology.with_operator(
                spec.with_service_time(spec.service_time * factor))
            result = eliminate_bottlenecks(
                slowed, source_rate=offered_rate, code_safety="off")
            if result.replications.get(name, 1) > 1:
                candidates.append(name)
        if candidates:
            rng = random.Random(seed * 9973 + 7)
            return candidates[rng.randrange(len(candidates))], factor
    raise TopologyError(
        f"no vertex of {topology.name!r} becomes a bottleneck under "
        f"factors {factors} at rate {offered_rate:g}/s")


def build_scenario(seed: int,
                   config: Optional[ConformanceConfig] = None,
                   scenario: Optional[AdaptiveScenarioConfig] = None,
                   fault_plan: Optional[FaultPlan] = None,
                   supervisor: Optional[SupervisorStrategy] = None,
                   ) -> _Scenario:
    """Build the seed's elastic system + controller (not started).

    Operators are :class:`AdjustablePaddedOperator` around deterministic
    gain realizers, sharing one :class:`ServiceTimeControl` per vertex
    with the test driver — the knob the phase shift turns mid-run.
    Padding targets subtract the host's calibrated sleep overshoot so
    measured service times track the declared (and shifted) figures.
    """
    config = config or ConformanceConfig()
    scenario = scenario or AdaptiveScenarioConfig()
    topology = topology_for_seed(seed, config,
                                 generator=config.runtime_generator_config())
    offered_rate = topology.operator(topology.source).service_rate
    shift_vertex, shift_factor = choose_shift(
        topology, offered_rate, seed, scenario.slowdown_factors)

    overshoot = sleep_overshoot()
    controls: Dict[str, ServiceTimeControl] = {}
    factories: Dict[str, Callable] = {}
    for spec in topology.operators:
        if spec.name == topology.source:
            factories[spec.name] = lambda s=seed: GeneratorSource(seed=s)
            continue
        control = ServiceTimeControl(
            max(spec.service_time - overshoot, 1e-4))
        controls[spec.name] = control
        factories[spec.name] = lambda g=spec.gain, c=control: (
            AdjustablePaddedOperator(GainOperator(g), c))

    runtime = RuntimeConfig(
        elastic=True,
        mailbox_capacity=scenario.mailbox_capacity,
        source_rate=offered_rate,
        seed=seed,
        fault_plan=fault_plan,
        supervisor=supervisor,
    )
    system = ActorSystem.build(topology, factories, config=runtime)
    controller = AdaptiveController(system, topology,
                                    scenario.adaptive_config(seed))
    return _Scenario(
        topology=topology,
        system=system,
        controller=controller,
        controls=controls,
        shift_vertex=shift_vertex,
        shift_factor=shift_factor,
        offered_rate=offered_rate,
    )


def apply_shift(sc: _Scenario) -> None:
    """Turn the knob: the shift vertex now costs ``factor`` times more.

    The new padding targets ``factor * declared - overshoot`` so the
    *realized* post-shift service time lands on the analytical figure
    the oracle compares against (a plain ``scale(factor)`` would also
    multiply the overshoot compensation and bias the model comparison
    by ``(factor - 1) * overshoot``).
    """
    declared = sc.topology.operator(sc.shift_vertex).service_time
    sc.controls[sc.shift_vertex].set(
        max(declared * sc.shift_factor - sleep_overshoot(), 1e-4))


def _drive_to_convergence(sc: _Scenario,
                          scenario: AdaptiveScenarioConfig,
                          baseline_fires: int = 0) -> int:
    """Tick the controller until it fired and settled; returns quiet ticks.

    A tick counts as quiet only once the controller has fired at least
    once *since the shift* and the tick is neither a fire nor a
    cooldown hold — i.e. the controller looked at a fresh
    post-reconfiguration window and chose to stand pat.

    ``baseline_fires`` is the fire count recorded before the shift was
    applied: chaos scenarios can legitimately trigger a pre-shift
    reconfiguration (a warmup-window slowdown fault), and settling on
    that stale fire would end the loop before the windowed estimators
    have seen enough post-shift samples to force the rescale.
    """
    quiet = 0
    for _ in range(scenario.max_ticks):
        time.sleep(scenario.control_period)
        decision = sc.controller.tick()
        if decision.fired:
            quiet = 0
        elif (len(sc.controller.fired_decisions) > baseline_fires
              and not decision.reason.startswith("cooldown")):
            quiet += 1
            if quiet >= scenario.settle_ticks:
                break
    return quiet


def _wait_backlog_drain(system: ActorSystem, timeout: float,
                        poll: float = 0.05) -> bool:
    """Wait until the queues parked during the saturated phase drain.

    While the shifted vertex was under-provisioned, every mailbox on
    its path filled up; after the controller resolves the bottleneck,
    that backlog flushes at the new plan's *surplus* capacity — a
    transient above-steady-state flow that would bias a measurement
    window opened too early.  Steady state under a non-saturated plan
    keeps queues near empty, so a small system-wide occupancy is the
    drain-complete signal.  Returns ``False`` on timeout (a plan the
    re-solve left saturated keeps a standing queue — the model predicts
    capacity-limited rates there, so measuring anyway is sound).
    """
    mailboxes = system._mailboxes
    bound = max(4.0, 0.5 * len(mailboxes))
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if sum(len(mailbox) for mailbox in mailboxes) <= bound:
            return True
        time.sleep(poll)
    return False


def _measure_window(system: ActorSystem, duration: float,
                    ) -> Tuple[Dict[str, ActorRates], float]:
    """Per-vertex steady-state rates over one quiescent window.

    Unlike :meth:`RuntimeMeasurements.vertex_rates` on a full
    ``ActorSystem.run``, only operator-executing actors (source,
    replicas, meta) are sampled: elastic ensembles put an emitter and a
    collector on every vertex, and their forwarding counters would
    triple-count each tuple.  Retired replicas contribute zero deltas
    (their counters froze when they drained).
    """
    actors = [actor for actor in list(system.actors)
              if isinstance(actor, (SourceActor, OperatorActor,
                                    MetaOperatorActor))]
    before = {actor.actor_name: actor.counters.snapshot()
              for actor in actors}
    started = time.perf_counter()
    time.sleep(duration)
    window = max(time.perf_counter() - started, 1e-9)
    rates = {
        actor.actor_name: rates_between(
            actor.actor_name, actor.vertex,
            before.get(actor.actor_name, CounterSnapshot()),
            actor.counters.snapshot(), window)
        for actor in actors
    }
    return RuntimeMeasurements(duration=window,
                               actors=rates).vertex_rates(), window


def _path_probabilities(topology: Topology) -> Dict[str, float]:
    """Fraction of source items whose routing reaches each vertex.

    The product of edge probabilities along the path(s) from the
    source, i.e. the thinning the probabilistic routers apply before a
    vertex ever sees an item.  Selectivity gains are deliberately
    excluded: a flatmap multiplies item *counts* deterministically
    without adding independent routing samples.
    """
    probabilities = {topology.source: 1.0}
    for name in topology.topological_order():
        if name == topology.source:
            continue
        probabilities[name] = min(1.0, sum(
            probabilities.get(edge.source, 0.0) * edge.probability
            for edge in topology.in_edges(name)))
    return probabilities


def _routing_noise(probability: float, source_items: float) -> float:
    """3-sigma relative noise of a realized routing fraction.

    A vertex behind a probabilistic split sees ``Binomial(N, p)`` of
    the window's ``N`` source items; the realized fraction deviates
    from ``p`` with relative standard deviation ``sqrt((1-p)/(p*N))``.
    The model predicts rates at the *declared* ``p``, so a measurement
    window this short legitimately lands a few sigma away on rare
    branches — tolerance the per-vertex departure check must absorb.
    """
    if probability >= 1.0 or probability <= 0.0 or source_items <= 0.0:
        return 0.0
    return 3.0 * math.sqrt(
        (1.0 - probability) / (probability * source_items))


def _absorb_routing_noise(report: ConformanceReport, topology: Topology,
                          offered_rate: float,
                          window: float) -> ConformanceReport:
    """Drop departure discrepancies explained by split-sampling noise."""
    probabilities = _path_probabilities(topology)
    source_items = offered_rate * window
    kept = []
    for discrepancy in report.discrepancies:
        if discrepancy.kind == "departure-rate":
            noise = _routing_noise(
                probabilities.get(discrepancy.operator, 1.0), source_items)
            if noise > 0.0 and discrepancy.error <= \
                    discrepancy.tolerance + noise:
                continue
        kept.append(discrepancy)
    if len(kept) == len(report.discrepancies):
        return report
    return replace(report, discrepancies=tuple(kept))


def _hygiene(system: ActorSystem, leaked: List[str]) -> List[Discrepancy]:
    """Fault-free hygiene gates shared by the adaptive checks."""
    extra: List[Discrepancy] = []
    dropped = sum(snapshot.dropped
                  for snapshot in system.snapshot().values())
    if dropped:
        extra.append(Discrepancy(
            kind="dropped-messages", operator="<runtime>",
            expected=0.0, actual=float(dropped), tolerance=0.0))
    if leaked:
        extra.append(Discrepancy(
            kind="thread-leak", operator=",".join(leaked),
            expected=0.0, actual=float(len(leaked)), tolerance=0.0))
    return extra


def check_adaptive_seed(
    seed: int,
    config: Optional[ConformanceConfig] = None,
    scenario: Optional[AdaptiveScenarioConfig] = None,
    decision_sink: Optional[List[Dict]] = None,
) -> ConformanceReport:
    """The decisive adaptation oracle for one seed.

    Timeline: warmup ticks under the declared regime → service-time
    shift on the seed's chosen vertex → controller ticks until it fires
    and settles (bounded by ``max_ticks``) → one quiescent measurement
    window.  The measured steady state must match
    ``analyze_cached(shifted topology with the deployed replicas)``
    within the runtime tolerances; not firing, not settling, dropped
    tuples and leaked threads are hard discrepancies on top.

    ``decision_sink``, when given, receives one JSON-ready entry per
    seed with the scenario parameters and the full controller decision
    log (the nightly CI artifact).
    """
    config = config or ConformanceConfig()
    scenario = scenario or AdaptiveScenarioConfig()
    sc = build_scenario(seed, config, scenario)
    system, controller = sc.system, sc.controller
    extra: List[Discrepancy] = []
    try:
        system.start()
        for _ in range(scenario.warmup_ticks):
            time.sleep(scenario.control_period)
            controller.tick()
        pre_shift_fires = len(controller.fired_decisions)
        apply_shift(sc)
        quiet = _drive_to_convergence(sc, scenario)
        fired = len(controller.fired_decisions) - pre_shift_fires
        if fired == 0:
            extra.append(Discrepancy(
                kind="controller-not-fired", operator=sc.shift_vertex,
                expected=1.0, actual=0.0, tolerance=0.0))
        elif quiet < scenario.settle_ticks:
            extra.append(Discrepancy(
                kind="controller-not-converged", operator=sc.shift_vertex,
                expected=float(scenario.settle_ticks),
                actual=float(quiet), tolerance=0.0))
        deployed = {name: system.replication_of(name)
                    for name in sc.topology.names}
        predicted = analyze_cached(
            sc.shifted_topology.with_replications(deployed),
            source_rate=sc.offered_rate)
        _wait_backlog_drain(system, scenario.drain_timeout)
        measured, window = _measure_window(system,
                                           scenario.measure_duration)
        report = Oracle(config.runtime_tolerances).compare(
            predicted, measured, window,
            backend="adaptive+runtime", seed=seed,
            check_utilization=False, check_bottlenecks=False)
        report = _absorb_routing_noise(report, sc.topology,
                                       sc.offered_rate, window)
    finally:
        leaked = system.stop()
    extra.extend(_hygiene(system, leaked))
    if extra:
        report = replace(report,
                         discrepancies=report.discrepancies + tuple(extra))
    if decision_sink is not None:
        decision_sink.append({
            "seed": seed,
            "topology": sc.topology.name,
            "shift_vertex": sc.shift_vertex,
            "shift_factor": sc.shift_factor,
            "offered_rate": sc.offered_rate,
            "ok": report.ok,
            "decisions": controller.decision_log(),
        })
    return report


def check_stationary_seed(
    seed: int,
    config: Optional[ConformanceConfig] = None,
    scenario: Optional[AdaptiveScenarioConfig] = None,
) -> ConformanceReport:
    """Negative control: no shift → the controller must never fire.

    Any reconfiguration on a stationary workload is thrashing — the
    anti-noise gates (confidence floor, change threshold, gain margin)
    exist precisely to prevent it, and this check is what holds them to
    that across seeds.
    """
    config = config or ConformanceConfig()
    scenario = scenario or AdaptiveScenarioConfig()
    sc = build_scenario(seed, config, scenario)
    system, controller = sc.system, sc.controller
    try:
        system.start()
        ticks = scenario.warmup_ticks + scenario.stationary_ticks
        for _ in range(ticks):
            time.sleep(scenario.control_period)
            controller.tick()
    finally:
        leaked = system.stop()
    extra: List[Discrepancy] = []
    if controller.fired_decisions:
        fired = controller.fired_decisions
        extra.append(Discrepancy(
            kind="spurious-reconfiguration",
            operator=";".join(
                action.vertex for decision in fired
                for action in decision.actions) or "<none>",
            expected=0.0, actual=float(len(fired)), tolerance=0.0))
    if system.reconfigurations:
        extra.append(Discrepancy(
            kind="spurious-reconfiguration", operator="<system>",
            expected=0.0, actual=float(system.reconfigurations),
            tolerance=0.0))
    extra.extend(_hygiene(system, leaked))
    return ConformanceReport(
        topology_name=sc.topology.name,
        backend="adaptive+stationary",
        seed=seed,
        discrepancies=tuple(extra),
        window=scenario.control_period * (scenario.warmup_ticks
                                          + scenario.stationary_ticks),
    )


def check_adaptive_chaos_seed(
    seed: int,
    config: Optional[ConformanceConfig] = None,
    scenario: Optional[AdaptiveScenarioConfig] = None,
) -> ConformanceReport:
    """Faults injected *during* reconfiguration must not fight the loop.

    The seed's shift vertex gets deterministic crash faults (supervision
    restarts the replica) and another vertex a slowdown window, timed to
    land while the controller is scaling.  Gates are liveness and
    hygiene, not model agreement (a restarting replica legitimately
    perturbs the rates): the controller still fires, the stall watchdog
    never declares a livelock, the system stops cleanly, and dead
    letters stay bounded by the injected crash count — supervision and
    the controller never escalate each other into losing the stream.
    """
    config = config or ConformanceConfig()
    scenario = scenario or AdaptiveScenarioConfig()
    base = build_scenario(seed, config, scenario)

    rng = random.Random(seed * 7103 + 13)
    others = [name for name in base.topology.names
              if name not in (base.topology.source, base.shift_vertex)]
    slow_vertex = others[rng.randrange(len(others))] if others \
        else base.shift_vertex
    plan = FaultPlan(
        seed=seed,
        crashes=(
            CrashFault(vertex=base.shift_vertex,
                       item_index=rng.randrange(20, 50)),
            CrashFault(vertex=base.shift_vertex,
                       item_index=rng.randrange(60, 120)),
        ),
        slowdowns=(
            SlowdownFault(vertex=slow_vertex,
                          start_item=rng.randrange(10, 40),
                          end_item=rng.randrange(80, 160),
                          factor=2.0),
        ),
    )
    strategy = SupervisorStrategy(default=SupervisionPolicy(
        on_crash=Directive.RESTART,
        max_restarts=1_000_000,
        window=600.0,
        backoff_base=0.05,
        backoff_factor=1.0,
        backoff_max=0.05,
    ))
    sc = build_scenario(seed, config, scenario,
                        fault_plan=plan, supervisor=strategy)
    system, controller = sc.system, sc.controller
    try:
        system.start()
        for _ in range(scenario.warmup_ticks):
            time.sleep(scenario.control_period)
            controller.tick()
        pre_shift_fires = len(controller.fired_decisions)
        apply_shift(sc)
        _drive_to_convergence(sc, scenario, baseline_fires=pre_shift_fires)
        fired = len(controller.fired_decisions) - pre_shift_fires
    finally:
        leaked = system.stop()
    extra: List[Discrepancy] = []
    if fired == 0:
        extra.append(Discrepancy(
            kind="controller-not-fired", operator=sc.shift_vertex,
            expected=1.0, actual=0.0, tolerance=0.0))
    if system.failure_reason is not None:
        extra.append(Discrepancy(
            kind="runtime-failure", operator=system.failure_reason,
            expected=0.0, actual=1.0, tolerance=0.0))
    if leaked:
        extra.append(Discrepancy(
            kind="thread-leak", operator=",".join(leaked),
            expected=0.0, actual=float(len(leaked)), tolerance=0.0))
    # Each injected crash consumes exactly one item per replica clock;
    # replicas spawned by scale-ups carry fresh clocks, so the bound is
    # crashes x replicas-ever-started plus slowdown-window noise.  A
    # supervision/controller fight (repeated restart storms, drained
    # mailboxes dumped to dead letters) blows well past it.
    replicas_ever = sum(
        1 for actor in system.actors
        if isinstance(actor, OperatorActor)
        and actor.vertex == sc.shift_vertex)
    budget = len(plan.crashes) * max(replicas_ever, 1) + 10
    dead = system.context.dead_letters.total
    if dead > budget:
        extra.append(Discrepancy(
            kind="dead-letter-storm", operator=sc.shift_vertex,
            expected=float(budget), actual=float(dead), tolerance=0.0))
    return ConformanceReport(
        topology_name=sc.topology.name,
        backend="adaptive+chaos",
        seed=seed,
        discrepancies=tuple(extra),
        window=scenario.control_period * scenario.max_ticks,
    )


# ----------------------------------------------------------------------
# zero-loss migration differentials


def _migration_vertices(topology: Topology, seed: int,
                        count: int = 3) -> List[str]:
    """Seeded migration targets (with replacement, non-source)."""
    rng = random.Random(seed * 8009 + 31)
    candidates = [name for name in topology.names
                  if name != topology.source]
    return [candidates[rng.randrange(len(candidates))]
            for _ in range(count)]


def _run_with_migrations(
    topology: Topology,
    runtime: RuntimeConfig,
    factories,
    config: DifferentialConfig,
    migrations: List[str],
    fusion_plans=(),
) -> Tuple[Dict[str, List[str]], List[str]]:
    """A ``run_capture`` twin that fires migration tickets mid-stream.

    Returns ``(canonical sink outputs, migration errors)``.  Tickets are
    spaced a few tens of milliseconds apart so they interleave with the
    paced source; each blocks until its drain-and-migrate completes, so
    the sequence serializes in-band with the data.
    """
    system = ActorSystem.build(topology, factories, config=runtime,
                               fusion_plans=fusion_plans)
    errors: List[str] = []
    system.start()
    try:
        for vertex in migrations:
            time.sleep(0.03)
            try:
                ticket = system.migrate_vertex(vertex, timeout=10.0)
            except Exception as error:  # noqa: BLE001 - report, don't hang
                errors.append(f"{vertex}: {type(error).__name__}: {error}")
                continue
            if not ticket.ok:
                errors.append(f"{vertex}: {'; '.join(ticket.errors)}")
        deadline = time.monotonic() + config.quiet_timeout
        if system.source_actor is not None:
            system.source_actor.join(
                timeout=max(0.0, deadline - time.monotonic()))
        previous = -1
        while time.monotonic() < deadline:
            current = system._progress()
            if current == previous:
                break
            previous = current
            time.sleep(config.quiet_period)
    finally:
        system.stop()
    return _collect_sinks(system), errors


def check_migration_seed(seed: int,
                         config: Optional[DifferentialConfig] = None,
                         fused: bool = False,
                         ) -> DifferentialReport:
    """Zero tuple loss under live migration, proven by bit-equality.

    The seeded chain testbed runs twice: undisturbed, and with three
    in-band drain-and-migrate tickets fired while the (paced) source is
    still emitting.  Canonical sink outputs must be bit-equal — every
    tuple survives the "checkpoint member → move state → restore →
    resume" cycle with its value and position intact.  ``fused=True``
    fuses the member chain into a meta-operator first and migrates the
    fused vertex, exercising per-member state moves inside
    :class:`~repro.runtime.meta.MetaOperatorActor`.
    """
    from repro.testing.differential import chain_testbed

    config = config or DifferentialConfig()
    topology, members = chain_testbed(seed, config)
    factories = topology_factories(topology)
    # Pace the source so the migration tickets land mid-stream instead
    # of after a sub-100ms exhaustion burst.
    runtime = RuntimeConfig(
        mailbox_capacity=config.mailbox_capacity,
        max_items=config.items,
        seed=seed,
        watchdog=False,
        source_rate=2000.0,
    )
    if fused:
        result = apply_fusion(topology, list(members))
        executed = result.fused
        plans = (result.plan,)
        migrations = [result.plan.fused_name] * 2
        mode_b = "migrated+fused"
    else:
        executed = topology
        plans = ()
        migrations = _migration_vertices(topology, seed)
        mode_b = "migrated"

    baseline = run_capture(executed, runtime, fusion_plans=plans,
                           factories=factories, config=config)
    migrated, errors = _run_with_migrations(
        executed, runtime, factories, config, migrations,
        fusion_plans=plans)

    divergences = _compare(seed, "baseline", mode_b, baseline, migrated)
    divergences.extend(f"migration failed: {error}" for error in errors)
    return DifferentialReport(
        seed=seed, mode_a="baseline", mode_b=mode_b,
        ok=not divergences, divergences=tuple(divergences),
    )
