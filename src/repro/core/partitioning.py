"""Key partitioning heuristics for partitioned-stateful operators.

Replicating a partitioned-stateful operator requires assigning each
partitioning key to exactly one replica.  The paper (Section 3.2)
abstracts this step behind a ``KeyPartitioning()`` call that receives
the key set, the key frequency distribution and the optimal replication
degree, and returns the number of replicas actually used together with
the fraction of the input items received by the most loaded replica
(``p_max``).  The ideal outcome is ``p_max = 1 / n_opt``; with skewed
distributions this may be unattainable (a single key heavier than
``1/n_opt`` caps the achievable balance), in which case the bottleneck
is mitigated but not removed.

Two heuristics are provided, following the references the paper points
to (Gedik, "Partitioning Functions for Stateful Data Parallelism in
Stream Processing", VLDB Journal 2014):

* :func:`greedy_partitioning` — Longest-Processing-Time-first greedy
  bin packing, the strongest balance for a known distribution;
* :func:`consistent_hash_partitioning` — consistent hashing with
  virtual nodes, the distribution-oblivious scheme used when the key
  frequencies are not trusted.
"""

from __future__ import annotations

import hashlib
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.graph import KeyDistribution, TopologyError


def stable_key_hash(key: object) -> int:
    """A process-stable hash of a partitioning key.

    The builtin ``hash`` of a string is salted per interpreter
    (PYTHONHASHSEED), so two worker processes would route the same key
    to different replicas.  crc32 of the key's string form is identical
    in every process and across Python versions.
    """
    return zlib.crc32(str(key).encode("utf-8"))


@dataclass(frozen=True)
class PartitionPlan:
    """Result of a key-partitioning heuristic.

    Attributes
    ----------
    assignment:
        Map from key to replica index in ``[0, replicas)``.
    loads:
        Fraction of the input stream routed to each replica; sums to 1.
    """

    assignment: Mapping[str, int]
    loads: Tuple[float, ...]

    @property
    def replicas(self) -> int:
        return len(self.loads)

    @property
    def p_max(self) -> float:
        """Fraction of items received by the most loaded replica."""
        return max(self.loads)

    def load_imbalance(self) -> float:
        """Ratio between the heaviest load and the ideal ``1/n`` share."""
        return self.p_max * self.replicas


def greedy_partitioning(keys: KeyDistribution, replicas: int) -> PartitionPlan:
    """Assign keys to ``replicas`` bins greedily, heaviest key first.

    Keys are sorted by decreasing frequency and each is assigned to the
    currently least-loaded replica (LPT rule).  Replicas that end up
    empty are dropped, so the returned plan may use fewer replicas than
    requested — matching the paper's ``n_i <= n_opt`` behaviour.
    """
    if replicas < 1:
        raise TopologyError(f"replicas must be >= 1, got {replicas}")
    loads = [0.0] * replicas
    assignment: Dict[str, int] = {}
    # Sort by (-frequency, key) so ties break deterministically.
    for key, freq in sorted(keys.items(), key=lambda kv: (-kv[1], kv[0])):
        index = min(range(replicas), key=lambda i: (loads[i], i))
        assignment[key] = index
        loads[index] += freq
    return _drop_empty(assignment, loads)


def consistent_hash_partitioning(
    keys: KeyDistribution,
    replicas: int,
    virtual_nodes: int = 64,
) -> PartitionPlan:
    """Assign keys with a consistent-hashing ring of virtual nodes.

    Each replica owns ``virtual_nodes`` points on a hash ring; a key is
    assigned to the replica owning the first point clockwise of the key
    hash.  The scheme ignores the frequency distribution (that is its
    point: it works online, with unknown keys) so on skewed inputs it is
    measurably worse than :func:`greedy_partitioning` — the ablation
    benchmark quantifies the gap.
    """
    if replicas < 1:
        raise TopologyError(f"replicas must be >= 1, got {replicas}")
    if virtual_nodes < 1:
        raise TopologyError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
    ring: List[Tuple[int, int]] = []
    for replica in range(replicas):
        for node in range(virtual_nodes):
            ring.append((_ring_hash(f"replica-{replica}-vnode-{node}"), replica))
    ring.sort()
    points = [point for point, _ in ring]

    loads = [0.0] * replicas
    assignment: Dict[str, int] = {}
    for key, freq in keys.items():
        position = bisect_right(points, _ring_hash(key)) % len(ring)
        replica = ring[position][1]
        assignment[key] = replica
        loads[replica] += freq
    return _drop_empty(assignment, loads)


def key_partitioning(
    keys: KeyDistribution,
    optimal_replicas: int,
    heuristic: str = "greedy",
) -> Tuple[int, float, PartitionPlan]:
    """The paper's ``KeyPartitioning(K, {p_k}, rho)`` entry point.

    Returns ``(n_i, p_max, plan)``: the number of replicas actually
    used (``n_i <= optimal_replicas``), the fraction of items routed to
    the most loaded replica and the full plan.
    """
    if heuristic == "greedy":
        plan = greedy_partitioning(keys, optimal_replicas)
    elif heuristic == "consistent-hash":
        plan = consistent_hash_partitioning(keys, optimal_replicas)
    else:
        raise TopologyError(f"unknown partitioning heuristic {heuristic!r}")
    return plan.replicas, plan.p_max, plan


def partition_shares(keys: KeyDistribution, replicas: int,
                     heuristic: str = "greedy") -> Tuple[float, ...]:
    """Per-replica load shares for a partitioned operator with ``replicas``."""
    _, _, plan = key_partitioning(keys, replicas, heuristic=heuristic)
    return plan.loads


def _drop_empty(assignment: Dict[str, int], loads: List[float]) -> PartitionPlan:
    """Renumber replicas dropping the ones that received no key."""
    used = sorted({index for index in assignment.values()})
    renumber = {old: new for new, old in enumerate(used)}
    packed = {key: renumber[index] for key, index in assignment.items()}
    packed_loads = tuple(loads[old] for old in used)
    return PartitionPlan(assignment=packed, loads=packed_loads)


def _ring_hash(text: str) -> int:
    """Stable 64-bit hash for ring placement (md5-based, seed-free)."""
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
