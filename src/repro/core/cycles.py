"""Steady-state analysis of cyclic topologies (extension, paper §7).

The paper's algorithms require acyclic graphs; covering "cyclic
topologies" is its first listed future-work direction.  Feedback edges
appear in practice for retries, iterative refinement and
control loops.  This module analyzes them with a damped fixed-point
iteration that generalizes the flow-conservation principle:

* given a tentative source rate, the departure rates are the fixed
  point of ``delta_i = min(lambda_i, capacity_i) * gain_i`` with
  ``lambda_i = sum over in-edges of delta_j * p(j, i)`` — a monotone
  contraction whenever every cycle's amplification (the product of
  ``gain * probability`` around the loop) is below one;
* bottlenecks are then removed exactly as in Algorithm 1: the source
  rate is scaled by the inverse of the worst utilization factor and the
  fixed point recomputed, until no operator exceeds utilization one.

A cycle with amplification >= 1 has no steady state (each loop
traversal feeds back at least as much as it consumed); such graphs are
rejected up front.

Note on the runtime semantics: Blocking-After-Service networks with
cycles can deadlock when every buffer along a cycle fills up.  The
fixed point computed here describes the achievable steady state, but
whether a BAS deployment actually reaches it depends on where the
bottleneck sits:

* bottleneck *outside* the cycle, or cycle members with utilization
  headroom — the loop's buffers stay partially empty and the fixed
  point is what the simulator measures (validated in the tests);
* bottleneck *inside* the cycle with substantial feedback — items
  accumulate inside the loop until its buffers fill and the members
  block on each other; **no finite buffer avoids this forever**.  Real
  systems need credit-based flow control or shedding on the feedback
  edge in this regime.  :attr:`CyclicResult.saturated_in_cycle` flags
  it, and :func:`repro.sim.cyclic.simulate_cyclic` raises a diagnosed
  deadlock when a concrete configuration hits it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.graph import Edge, OperatorSpec, StateKind, TopologyError
from repro.core.steady_state import RHO_TOLERANCE
from repro.core.partitioning import partition_shares


class CyclicGraph:
    """A rooted streaming graph that may contain cycles.

    Validation mirrors :class:`repro.core.graph.Topology` minus the
    acyclicity requirement: unique source, every vertex reachable from
    it, output probabilities summing to one.
    """

    def __init__(self, operators: Iterable[OperatorSpec],
                 edges: Iterable[Edge], name: str = "cyclic") -> None:
        self.name = name
        self._operators: Dict[str, OperatorSpec] = {}
        for spec in operators:
            if spec.name in self._operators:
                raise TopologyError(f"duplicate operator name {spec.name!r}")
            self._operators[spec.name] = spec
        self._edges: List[Edge] = []
        self._out: Dict[str, List[Edge]] = {n: [] for n in self._operators}
        self._in: Dict[str, List[Edge]] = {n: [] for n in self._operators}
        seen = set()
        for edge in edges:
            for endpoint in (edge.source, edge.target):
                if endpoint not in self._operators:
                    raise TopologyError(
                        f"edge references unknown operator {endpoint!r}")
            if (edge.source, edge.target) in seen:
                raise TopologyError(
                    f"duplicate edge {edge.source!r}->{edge.target!r}")
            seen.add((edge.source, edge.target))
            self._edges.append(edge)
            self._out[edge.source].append(edge)
            self._in[edge.target].append(edge)

        for name_, out_edges in self._out.items():
            if out_edges:
                total = sum(e.probability for e in out_edges)
                if not math.isclose(total, 1.0, abs_tol=1e-6):
                    raise TopologyError(
                        f"output probabilities of {name_!r} sum to {total}")

        sources = [n for n, ins in self._in.items() if not ins]
        if len(sources) != 1:
            raise TopologyError(
                f"graph must have exactly one source, found {sorted(sources)}")
        self.source = sources[0]

        reached = set()
        stack = [self.source]
        while stack:
            current = stack.pop()
            if current in reached:
                continue
            reached.add(current)
            stack.extend(e.target for e in self._out[current])
        missing = sorted(set(self._operators) - reached)
        if missing:
            raise TopologyError(f"operators not reachable: {missing}")

    @property
    def names(self) -> List[str]:
        return list(self._operators)

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    def operator(self, name: str) -> OperatorSpec:
        try:
            return self._operators[name]
        except KeyError:
            raise TopologyError(f"unknown operator {name!r}") from None

    def in_edges(self, name: str) -> List[Edge]:
        return list(self._in[name])

    def out_edges(self, name: str) -> List[Edge]:
        return list(self._out[name])

    def cycles_exist(self) -> bool:
        """Whether the graph actually contains a cycle."""
        state: Dict[str, int] = {}

        def visit(node: str) -> bool:
            state[node] = 1
            for edge in self._out[node]:
                mark = state.get(edge.target, 0)
                if mark == 1:
                    return True
                if mark == 0 and visit(edge.target):
                    return True
            state[node] = 2
            return False

        return visit(self.source)

    def vertices_on_cycles(self) -> frozenset:
        """Names of the vertices that lie on at least one cycle.

        Computed via strongly connected components (Tarjan-style
        iterative DFS): a vertex is on a cycle iff its SCC has more
        than one member or it has a self-referencing component through
        other vertices.
        """
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        index: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        result = set()

        def strongconnect(root: str) -> None:
            work = [(root, iter(self._out[root]))]
            index[root] = lowlink[root] = index_counter[0]
            index_counter[0] += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                node, edges_iter = work[-1]
                advanced = False
                for edge in edges_iter:
                    target = edge.target
                    if target not in index:
                        index[target] = lowlink[target] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(target)
                        on_stack[target] = True
                        work.append((target, iter(self._out[target])))
                        advanced = True
                        break
                    if on_stack.get(target):
                        lowlink[node] = min(lowlink[node], index[target])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        result.update(component)

        for name in self.names:
            if name not in index:
                strongconnect(name)
        return frozenset(result)

    def max_cycle_amplification(self) -> float:
        """Largest product of ``gain * probability`` around any cycle.

        Computed over simple cycles via DFS; graphs stay small (tens of
        operators) so the enumeration is affordable.  Returns 0.0 for
        acyclic graphs.
        """
        best = 0.0
        names = self.names

        def walk(start: str, node: str, product: float,
                 visited: frozenset) -> None:
            nonlocal best
            spec = self._operators[node]
            for edge in self._out[node]:
                contribution = product * spec.gain * edge.probability
                if edge.target == start:
                    best = max(best, contribution)
                elif edge.target not in visited and edge.target != self.source:
                    walk(start, edge.target, contribution,
                         visited | {edge.target})

        for name in names:
            if name == self.source:
                continue
            walk(name, name, 1.0, frozenset({name}))
        return best


@dataclass(frozen=True)
class CyclicRates:
    """Fixed-point figures for one operator of a cyclic graph."""

    name: str
    arrival_rate: float
    departure_rate: float
    utilization: float
    capacity: float


@dataclass(frozen=True)
class CyclicResult:
    """Steady-state solution of a cyclic topology."""

    graph: CyclicGraph
    rates: Mapping[str, CyclicRates]
    source_rate: float
    corrections: int
    iterations: int

    @property
    def throughput(self) -> float:
        return self.rates[self.graph.source].departure_rate

    @property
    def saturated_in_cycle(self) -> List[str]:
        """Saturated operators that sit on a cycle.

        A non-empty list means the fixed point keeps a loop member
        permanently full — the regime where a BAS deployment *can*
        deadlock (every buffer along the loop filling simultaneously).
        The risk grows with the feedback fraction: light feedback keeps
        the other loop members' queues near-empty and the deadlock is
        metastable in practice, while heavy feedback reaches it quickly
        no matter how large the buffers are (see the module docstring
        and the deadlock tests).  Credit-based flow control or shedding
        on the feedback edges removes the risk entirely.
        """
        on_cycle = self.graph.vertices_on_cycles()
        return [
            name for name in self.graph.names
            if name in on_cycle
            and self.rates[name].utilization >= 1.0 - 1e-6
        ]

    def utilization(self, name: str) -> float:
        return self.rates[name].utilization

    def departure_rate(self, name: str) -> float:
        return self.rates[name].departure_rate

    def arrival_rate(self, name: str) -> float:
        return self.rates[name].arrival_rate


def _capacity(spec: OperatorSpec, heuristic: str) -> float:
    if spec.replication == 1:
        return spec.service_rate
    if spec.state is StateKind.PARTITIONED:
        assert spec.keys is not None
        shares = partition_shares(spec.keys, spec.replication,
                                  heuristic=heuristic)
        return spec.service_rate / max(shares)
    if spec.state is StateKind.STATEFUL:
        raise TopologyError(
            f"stateful operator {spec.name!r} cannot be replicated")
    return spec.service_rate * spec.replication


def analyze_cyclic(
    graph: CyclicGraph,
    source_rate: Optional[float] = None,
    partition_heuristic: str = "greedy",
    tolerance: float = 1e-10,
    max_fixed_point_iterations: int = 100_000,
) -> CyclicResult:
    """Solve the steady state of a (possibly) cyclic topology.

    Raises :class:`TopologyError` when a cycle amplifies flow (gain *
    probability product >= 1 around the loop), which has no steady
    state.
    """
    amplification = graph.max_cycle_amplification()
    if amplification >= 1.0:
        raise TopologyError(
            f"cycle amplification {amplification:.3f} >= 1: the feedback "
            "loop grows its own traffic and no steady state exists"
        )

    source = graph.source
    source_spec = graph.operator(source)
    if source_rate is None:
        source_rate = source_spec.service_rate
    if source_rate <= 0.0:
        raise TopologyError(f"source rate must be positive, got {source_rate}")

    capacities = {
        name: _capacity(graph.operator(name), partition_heuristic)
        for name in graph.names
    }

    current_rate = source_rate
    total_iterations = 0
    corrections = 0
    warm_start: Optional[Dict[str, float]] = None
    # Unlike the acyclic case, one correction does not pin the worst
    # operator at utilization one: the feedback contribution to its
    # arrival rate is saturated and does not scale with the source, so
    # the corrections converge geometrically at roughly the loop's
    # amplification rate.  A generous cap (plus warm-started inner
    # fixed points) keeps the solve fast and exact.
    for _ in range(20_000):
        rates, departures, iterations = _fixed_point(
            graph, capacities, current_rate, tolerance,
            max_fixed_point_iterations, warm_start,
        )
        warm_start = departures
        total_iterations += iterations
        worst_name = max(graph.names, key=lambda n: rates[n].utilization)
        worst = rates[worst_name].utilization
        if worst <= 1.0 + RHO_TOLERANCE * 100:
            return CyclicResult(
                graph=graph,
                rates=rates,
                source_rate=current_rate,
                corrections=corrections,
                iterations=total_iterations,
            )
        current_rate /= worst
        corrections += 1
    raise TopologyError(
        "cyclic steady-state analysis did not converge"
    )


def _fixed_point(
    graph: CyclicGraph,
    capacities: Mapping[str, float],
    source_rate: float,
    tolerance: float,
    max_iterations: int,
    warm_start: Optional[Dict[str, float]] = None,
) -> Tuple[Dict[str, CyclicRates], Dict[str, float], int]:
    """Iterate the flow equations to their fixed point.

    ``warm_start`` seeds the departure rates (e.g. from the previous
    source-rate correction) to cut the iteration count.
    """
    names = graph.names
    if warm_start is not None:
        departures = dict(warm_start)
    else:
        departures = {name: 0.0 for name in names}
    scale = source_rate

    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        worst_change = 0.0
        for name in names:
            spec = graph.operator(name)
            if name == graph.source:
                arrival = source_rate
            else:
                arrival = sum(
                    departures[edge.source] * edge.probability
                    for edge in graph.in_edges(name)
                )
            departure = min(arrival, capacities[name]) * spec.gain
            change = abs(departure - departures[name])
            if change > worst_change:
                worst_change = change
            departures[name] = departure
        if worst_change <= tolerance * scale:
            break
    else:
        raise TopologyError(
            "flow fixed point did not converge; check the cycle gains"
        )

    rates: Dict[str, CyclicRates] = {}
    for name in names:
        spec = graph.operator(name)
        if name == graph.source:
            arrival = source_rate
        else:
            arrival = sum(
                departures[edge.source] * edge.probability
                for edge in graph.in_edges(name)
            )
        rates[name] = CyclicRates(
            name=name,
            arrival_rate=arrival,
            departure_rate=departures[name],
            utilization=arrival / capacities[name],
            capacity=capacities[name],
        )
    return rates, departures, iterations
