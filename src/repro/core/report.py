"""Textual reports in the style of the paper's Tables 1 and 2.

The original tool shows analysis outcomes in a GUI; this module renders
the same information as fixed-width text tables: per-operator service
time, inter-departure time and utilization factor, plus the predicted
topology throughput (and the measured one when available).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Mapping, Optional, Sequence

from repro.core.fission import FissionResult
from repro.core.fusion import FusionResult
from repro.core.steady_state import SteadyStateResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render a fixed-width text table with a header separator."""
    materialized = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def _ms(seconds: float) -> str:
    """Format a duration in milliseconds with 3 significant digits."""
    if seconds <= 0.0 or math.isinf(seconds):
        return "inf"
    return f"{seconds * 1e3:.3g}"


def analysis_report(
    result: SteadyStateResult,
    measured_throughput: Optional[float] = None,
) -> str:
    """Render a steady-state analysis in the style of Table 1/2.

    Rows are the metrics of the paper tables: the inverse service rate
    ``mu^-1`` (ms), the inverse departure rate ``delta^-1`` (ms) and the
    utilization factor ``rho`` of every operator.
    """
    topology = result.topology
    names = topology.names
    rows = [
        ["mu^-1 (ms)"] + [
            _ms(topology.operator(name).service_time) for name in names
        ],
        ["delta^-1 (ms)"] + [
            _ms(1.0 / result.rates[name].departure_rate)
            if result.rates[name].departure_rate > 0.0 else "inf"
            for name in names
        ],
        ["rho"] + [f"{result.rates[name].utilization:.2f}" for name in names],
        ["replicas"] + [str(result.rates[name].replicas) for name in names],
    ]
    table = format_table(["metric"] + list(names), rows)
    lines = [f"topology: {topology.name}", table,
             f"predicted throughput: {result.throughput:,.0f} items/sec"]
    if measured_throughput is not None:
        lines.append(f"measured throughput:  {measured_throughput:,.0f} items/sec")
        if result.throughput > 0.0:
            error = abs(measured_throughput - result.throughput) / result.throughput
            lines.append(f"relative error:       {error:.2%}")
    if result.bottlenecks:
        lines.append("bottlenecks (discovery order): "
                     + ", ".join(result.bottlenecks))
    return "\n".join(lines)


def fission_report(result: FissionResult) -> str:
    """Render the outcome of the bottleneck-elimination phase."""
    rows = []
    for decision in result.decisions:
        rows.append([
            decision.name,
            decision.state.value,
            f"{decision.utilization_before:.2f}",
            str(decision.optimal_replicas),
            str(decision.replicas),
            f"{decision.p_max:.3f}",
            "yes" if decision.removed else "NO",
        ])
    table = format_table(
        ["operator", "state", "rho", "n_opt", "n", "p_max", "unblocked"],
        rows,
    )
    lines = [
        f"topology: {result.original.name}",
        table,
        f"additional replicas: {result.additional_replicas}",
        f"predicted throughput: {result.throughput:,.0f} items/sec",
    ]
    if result.replica_bound is not None:
        applied = "applied" if result.bound_applied else "not needed"
        lines.append(f"replica bound: {result.replica_bound} ({applied})")
    if result.residual_bottlenecks:
        lines.append("residual bottlenecks: "
                     + ", ".join(result.residual_bottlenecks))
    else:
        lines.append("all bottlenecks removed (ideal throughput reached)")
    return "\n".join(lines)


def fusion_report(result: FusionResult) -> str:
    """Render a fusion evaluation, including the paper-style alert."""
    plan = result.plan
    lines = [
        f"fusing {', '.join(plan.members)} -> {plan.fused_name} "
        f"(front-end: {plan.front_end})",
        f"predicted fused service time: {_ms(plan.service_time)} ms",
        f"throughput before: {result.throughput_before:,.0f} items/sec",
        f"throughput after:  {result.throughput_after:,.0f} items/sec",
    ]
    if result.impairs_performance:
        lines.append(
            f"ALERT: fusion would impair performance "
            f"(predicted degradation {result.degradation:.1%})"
        )
    else:
        lines.append("fusion is feasible: no new bottleneck predicted")
    return "\n".join(lines)


def comparison_rows(
    predicted: Mapping[str, float],
    measured: Mapping[str, float],
) -> List[List[str]]:
    """Rows comparing predicted vs measured per-operator rates."""
    rows = []
    for name in predicted:
        p = predicted[name]
        m = measured.get(name, float("nan"))
        error = abs(m - p) / p if p > 0.0 and not math.isnan(m) else float("nan")
        rows.append([name, f"{p:.1f}", f"{m:.1f}", f"{error:.2%}"])
    return rows
