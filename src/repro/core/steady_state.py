"""Steady-state throughput analysis with backpressure (paper Algorithm 1).

The topology is analyzed as a queueing network with finite buffers and
Blocking-After-Service (BAS) semantics.  Vertices are visited in
topological order; the arrival rate of each operator is the probability-
weighted sum of the departure rates of its predecessors.  When a vertex
turns out to be a bottleneck (utilization factor above one), the source
departure rate is throttled by the inverse of that utilization factor
(Theorem 3.2) and the visit restarts from the source.  At fixpoint every
operator has utilization at most one and the flow-conservation principle
gives the steady-state departure rates.

Selectivities (Section 3.4) generalize the one-in/one-out assumption:
an operator with input selectivity ``s_in`` and output selectivity
``s_out`` departs ``min(lambda, mu) * s_out / s_in`` items per second
while the utilization factor stays ``lambda / mu``.

Replication (set by the bottleneck-elimination phase) enters the model
through the *capacity* of an operator: ``n * mu`` for stateless
operators served by round-robin replicas, and ``mu / p_max`` for
partitioned-stateful operators whose hottest replica receives a
fraction ``p_max`` of the input items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Mapping, Optional, Tuple

from repro.core.graph import StateKind, Topology, TopologyError
from repro.core.partitioning import partition_shares
from repro.instrumentation import SOLVER

#: Utilization factors above ``1 + RHO_TOLERANCE`` flag a bottleneck;
#: the slack absorbs floating-point noise from repeated corrections.
RHO_TOLERANCE = 1e-9


@dataclass(frozen=True)
class OperatorRates:
    """Steady-state figures for one operator.

    All rates are items per second.  ``utilization`` is the utilization
    factor of the *binding* replica: for stateless operators the load is
    spread evenly, for partitioned-stateful operators it is the most
    loaded replica that matters.
    """

    name: str
    arrival_rate: float
    departure_rate: float
    utilization: float
    capacity: float
    replicas: int
    p_max: float = 1.0

    @property
    def service_demand(self) -> float:
        """Fraction of one replica-second consumed per second (load)."""
        return self.utilization

    @property
    def is_saturated(self) -> bool:
        """Whether the operator runs at (numerically) full utilization."""
        return self.utilization >= 1.0 - 1e-6


@dataclass(frozen=True)
class Correction:
    """One application of Theorem 3.2 during the analysis."""

    bottleneck: str
    utilization: float
    source_rate_before: float
    source_rate_after: float


@dataclass(frozen=True)
class SteadyStateResult:
    """Output of the steady-state analysis of a topology."""

    topology: Topology
    rates: Mapping[str, OperatorRates]
    corrections: Tuple[Correction, ...]
    source_rate: float

    @property
    def throughput(self) -> float:
        """Input items ingested per second — the source departure rate.

        The paper measures the topology throughput as the steady-state
        departure rate of the source (Section 5.2).
        """
        return self.rates[self.topology.source].departure_rate

    @property
    def sink_rate(self) -> float:
        """Total departure rate of the sink operators."""
        return sum(self.rates[name].departure_rate for name in self.topology.sinks)

    @property
    def bottlenecks(self) -> List[str]:
        """Operators that throttled the source, in discovery order."""
        seen: List[str] = []
        for correction in self.corrections:
            if correction.bottleneck not in seen:
                seen.append(correction.bottleneck)
        return seen

    @property
    def binding_bottleneck(self) -> Optional[str]:
        """The operator imposing the final throughput, if any."""
        if not self.corrections:
            return None
        return self.corrections[-1].bottleneck

    def utilization(self, name: str) -> float:
        return self.rates[name].utilization

    def departure_rate(self, name: str) -> float:
        return self.rates[name].departure_rate

    def arrival_rate(self, name: str) -> float:
        return self.rates[name].arrival_rate

    def underutilized(self, threshold: float = 0.5) -> List[str]:
        """Operators (excluding the source) below a utilization threshold.

        These are the fusion candidates the tool surfaces to the user.
        """
        return [
            name
            for name in self.topology.names
            if name != self.topology.source
            and self.rates[name].utilization < threshold
        ]


def operator_capacity(topology: Topology, name: str,
                      partition_heuristic: str = "greedy") -> Tuple[float, float]:
    """Effective service capacity of an operator and its ``p_max``.

    Returns ``(capacity, p_max)`` where capacity is the maximum arrival
    rate the operator sustains without becoming a bottleneck:

    * single replica: ``mu``;
    * stateless with ``n`` replicas (round-robin emitter): ``n * mu``;
    * partitioned-stateful with ``n`` replicas: ``mu / p_max`` where
      ``p_max`` is the share of the most loaded replica under the key
      partitioning heuristic.

    Stateful operators always have one replica (enforced by
    :class:`repro.core.fission`), so their capacity is ``mu``.
    """
    spec = topology.operator(name)
    if spec.replication == 1:
        return spec.service_rate, 1.0
    if spec.state is StateKind.PARTITIONED:
        if spec.keys is None:  # pragma: no cover - guarded by OperatorSpec
            raise TopologyError(f"operator {name!r} lacks a key distribution")
        shares = partition_shares(spec.keys, spec.replication,
                                  heuristic=partition_heuristic)
        p_max = max(shares)
        return spec.service_rate / p_max, p_max
    if spec.state is StateKind.STATEFUL:
        raise TopologyError(
            f"stateful operator {name!r} cannot have {spec.replication} replicas"
        )
    return spec.service_rate * spec.replication, 1.0


def analyze(
    topology: Topology,
    source_rate: Optional[float] = None,
    partition_heuristic: str = "greedy",
    max_iterations: Optional[int] = None,
    availability: Optional[Mapping[str, float]] = None,
    gain_factor: Optional[Mapping[str, float]] = None,
    input_factor: Optional[Mapping[str, float]] = None,
) -> SteadyStateResult:
    """Run the steady-state analysis (paper Algorithm 1, generalized).

    Parameters
    ----------
    topology:
        The rooted acyclic topology to analyze.
    source_rate:
        Generation rate of the source in items per second.  Defaults to
        the source service rate (the source emits as fast as it can).
    partition_heuristic:
        Heuristic used to derive ``p_max`` for replicated partitioned-
        stateful operators (see :mod:`repro.core.partitioning`).
    max_iterations:
        Safety bound on the number of restarts; defaults to the number
        of operators plus one, which Proposition 3.3 guarantees to be
        sufficient (each correction pins one operator at utilization 1).
    availability:
        Degraded-mode derating: per-operator fraction of serving
        capacity that survives faults (restart downtime, transient
        slowdowns, source hiccups).  Effective capacity becomes
        ``capacity * availability``; omitted operators default to 1.
    gain_factor:
        Degraded-mode output derating: fraction of served items that
        actually produce output (poisoned/crashed items are consumed
        but emit nothing).  Multiplies the operator's gain.
    input_factor:
        Degraded-mode input derating: fraction of offered items that
        reach service (mailbox drop windows shed the rest).  Scales the
        arrival rate before utilization and departure are computed.

    Returns
    -------
    SteadyStateResult
        Per-operator arrival/departure rates and utilizations, plus the
        sequence of backpressure corrections applied.
    """
    SOLVER.full_solves += 1
    order = topology.topological_order()
    source = topology.source
    source_spec = topology.operator(source)
    if source_rate is None:
        source_rate = source_spec.service_rate
    if source_rate <= 0.0:
        raise TopologyError(f"source rate must be positive, got {source_rate}")
    if max_iterations is None:
        max_iterations = len(order) + 1

    capacities: Dict[str, Tuple[float, float]] = {}
    for name in order:
        capacity, p_max = operator_capacity(topology, name,
                                            partition_heuristic)
        if availability is not None:
            derate = availability.get(name, 1.0)
            if not 0.0 < derate <= 1.0:
                raise TopologyError(
                    f"availability of {name!r} must be in (0, 1], "
                    f"got {derate}"
                )
            capacity *= derate
        capacities[name] = (capacity, p_max)

    corrections: List[Correction] = []
    current_rate = source_rate

    for _ in range(max_iterations):
        rates = _single_pass(topology, order, capacities, current_rate,
                             gain_factor=gain_factor,
                             input_factor=input_factor)
        bottleneck = _first_bottleneck(order, rates)
        if bottleneck is None:
            return SteadyStateResult(
                topology=topology,
                rates=rates,
                corrections=tuple(corrections),
                source_rate=current_rate,
            )
        rho = rates[bottleneck].utilization
        corrected = current_rate / rho
        corrections.append(
            Correction(
                bottleneck=bottleneck,
                utilization=rho,
                source_rate_before=current_rate,
                source_rate_after=corrected,
            )
        )
        current_rate = corrected

    raise TopologyError(
        f"steady-state analysis did not converge after {max_iterations} "
        "corrections; the topology violates the model assumptions"
    )


def _single_pass(
    topology: Topology,
    order: List[str],
    capacities: Mapping[str, Tuple[float, float]],
    source_rate: float,
    gain_factor: Optional[Mapping[str, float]] = None,
    input_factor: Optional[Mapping[str, float]] = None,
    reuse: Optional[Mapping[str, OperatorRates]] = None,
    dirty: Optional[AbstractSet[str]] = None,
) -> Dict[str, OperatorRates]:
    """One topological sweep computing rates for a given source rate.

    Departure rates are computed as if no *new* bottleneck existed; the
    caller checks utilizations and restarts with a throttled source when
    one is found (Theorem 3.2).

    When ``reuse`` is given (a converged pass of a *base* topology at
    the same source rate) vertices outside ``dirty`` copy the base
    rates instead of recomputing them — the incremental fast path of
    :mod:`repro.core.solver`, which guarantees the copied values are
    bit-identical (clean vertices have unchanged specs, input edges and
    ancestors).
    """
    SOLVER.passes += 1
    computed = 0
    reused = 0
    rates: Dict[str, OperatorRates] = {}
    source = topology.source
    for name in order:
        if reuse is not None and name not in dirty:
            rates[name] = reuse[name]
            reused += 1
            continue
        computed += 1
        spec = topology.operator(name)
        capacity, p_max = capacities[name]
        if name == source:
            arrival = source_rate
            utilization = source_rate / capacity
        else:
            arrival = sum(
                rates[edge.source].departure_rate * edge.probability
                for edge in topology.in_edges(name)
            )
            if input_factor is not None:
                arrival *= input_factor.get(name, 1.0)
            # Capacity already folds in p_max (mu / p_max for keyed
            # operators) and any availability derating, so the binding
            # replica's utilization is arrival / capacity throughout.
            utilization = arrival / capacity
        served = min(arrival, capacity)
        departure = served * spec.gain
        if gain_factor is not None:
            departure *= gain_factor.get(name, 1.0)
        rates[name] = OperatorRates(
            name=name,
            arrival_rate=arrival,
            departure_rate=departure,
            utilization=utilization,
            capacity=capacity,
            replicas=spec.replication,
            p_max=p_max,
        )
    SOLVER.vertices_computed += computed
    SOLVER.vertices_reused += reused
    return rates


def _first_bottleneck(order: List[str],
                      rates: Mapping[str, OperatorRates]) -> Optional[str]:
    """First vertex in topological order with utilization above one."""
    for name in order:
        if rates[name].utilization > 1.0 + RHO_TOLERANCE:
            return name
    return None


def predicted_throughput(topology: Topology,
                         source_rate: Optional[float] = None) -> float:
    """Convenience wrapper returning only the predicted throughput."""
    return analyze(topology, source_rate=source_rate).throughput
