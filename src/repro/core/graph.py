"""Topology model used by all SpinStreams analyses.

A streaming application is a *topology*: a directed acyclic graph whose
vertices are operators and whose edges are unidirectional data streams.
Following the paper (Section 3.1) the analyses require *rooted flow
graphs*: a unique source vertex (no input edges) from which every other
vertex is reachable.  Edges carry routing probabilities; for a vertex
with several output edges each produced item is delivered to one
destination sampled with the edge probability, so the probabilities of
the output edges of a vertex must sum to one.

This module only models the *abstract* topology: operator names,
queueing parameters (service time, selectivities, state kind) and the
weighted edges.  Executable operator logic lives in
:mod:`repro.operators`, and is attached to a topology through the
``operator_class`` attribute of :class:`OperatorSpec` (the analog of the
``.class`` files passed to the original tool).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


class StateKind(Enum):
    """How an operator manages state; drives the fission strategy.

    * ``STATELESS`` operators can always be replicated (shuffle routing).
    * ``PARTITIONED`` operators own a partitionable state indexed by a
      key attribute; replicas each own a subset of the keys.
    * ``STATEFUL`` operators own a monolithic state and can never be
      replicated.
    """

    STATELESS = "stateless"
    PARTITIONED = "partitioned-stateful"
    STATEFUL = "stateful"

    @classmethod
    def parse(cls, text: str) -> "StateKind":
        """Parse a state kind from its XML spelling (case-insensitive)."""
        normalized = text.strip().lower().replace("_", "-")
        aliases = {
            "stateless": cls.STATELESS,
            "partitioned": cls.PARTITIONED,
            "partitioned-stateful": cls.PARTITIONED,
            "stateful": cls.STATEFUL,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise TopologyError(f"unknown operator state kind: {text!r}") from None


class TopologyError(ValueError):
    """Raised when a topology violates the structural assumptions."""


@dataclass(frozen=True)
class KeyDistribution:
    """Frequency distribution of the partitioning key of an operator.

    ``frequencies`` maps each key to the probability that an input item
    carries that key.  The probabilities must be positive and sum to one
    (within numerical tolerance).
    """

    frequencies: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.frequencies:
            raise TopologyError("key distribution must contain at least one key")
        total = 0.0
        for key, freq in self.frequencies.items():
            if freq <= 0.0:
                raise TopologyError(f"key {key!r} has non-positive frequency {freq}")
            total += freq
        if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-6):
            raise TopologyError(f"key frequencies must sum to 1, got {total}")

    def __len__(self) -> int:
        return len(self.frequencies)

    def items(self) -> Iterable[Tuple[str, float]]:
        return self.frequencies.items()

    def max_frequency(self) -> float:
        return max(self.frequencies.values())

    @classmethod
    def uniform(cls, num_keys: int) -> "KeyDistribution":
        """A uniform distribution over ``num_keys`` synthetic keys."""
        if num_keys <= 0:
            raise TopologyError("num_keys must be positive")
        freq = 1.0 / num_keys
        return cls({f"k{i}": freq for i in range(num_keys)})

    @classmethod
    def zipf(cls, num_keys: int, exponent: float) -> "KeyDistribution":
        """A ZipF (power-law) distribution as used by the paper testbed."""
        if num_keys <= 0:
            raise TopologyError("num_keys must be positive")
        if exponent <= 0:
            raise TopologyError("exponent must be positive")
        weights = [1.0 / (rank ** exponent) for rank in range(1, num_keys + 1)]
        total = sum(weights)
        return cls({f"k{i}": w / total for i, w in enumerate(weights)})


@dataclass(frozen=True)
class OperatorSpec:
    """Queueing-level description of one operator of the topology.

    Parameters
    ----------
    name:
        Unique identifier inside the topology.
    service_time:
        Mean time (seconds) spent to consume one input item, including
        the communication latency to send the result — the inverse of
        the service rate ``mu`` of the paper.
    state:
        State kind (see :class:`StateKind`); defaults to stateless.
    input_selectivity:
        Average number of input items consumed before one activation
        produces output (sliding windows: the slide).  Must be > 0.
    output_selectivity:
        Average number of output items produced per activation.
        Must be >= 0 (a pure sink has 0).
    replication:
        Number of replicas (>= 1); set by the bottleneck-elimination
        algorithm, 1 in imported topologies.
    keys:
        Key frequency distribution, mandatory for partitioned-stateful
        operators.
    operator_class:
        Dotted path of the executable operator implementation used by
        code generation and the runtime (optional for pure analyses).
    operator_args:
        Keyword arguments for the operator implementation constructor.
    """

    name: str
    service_time: float
    state: StateKind = StateKind.STATELESS
    input_selectivity: float = 1.0
    output_selectivity: float = 1.0
    replication: int = 1
    keys: Optional[KeyDistribution] = None
    operator_class: Optional[str] = None
    operator_args: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("operator name must be non-empty")
        if self.service_time <= 0.0:
            raise TopologyError(
                f"operator {self.name!r}: service_time must be positive, "
                f"got {self.service_time}"
            )
        if self.input_selectivity <= 0.0:
            raise TopologyError(
                f"operator {self.name!r}: input selectivity must be positive"
            )
        if self.output_selectivity < 0.0:
            raise TopologyError(
                f"operator {self.name!r}: output selectivity must be non-negative"
            )
        if self.replication < 1:
            raise TopologyError(f"operator {self.name!r}: replication must be >= 1")
        if self.state is StateKind.PARTITIONED and self.keys is None:
            raise TopologyError(
                f"operator {self.name!r} is partitioned-stateful but has no "
                "key distribution"
            )

    @property
    def service_rate(self) -> float:
        """Items served per second by one replica (``mu`` in the paper)."""
        return 1.0 / self.service_time

    @property
    def gain(self) -> float:
        """Items emitted per item consumed (output over input selectivity)."""
        return self.output_selectivity / self.input_selectivity

    def with_replication(self, replication: int) -> "OperatorSpec":
        """A copy of this spec with a different replication degree."""
        return replace(self, replication=replication)

    def with_service_time(self, service_time: float) -> "OperatorSpec":
        """A copy of this spec with a different mean service time."""
        return replace(self, service_time=service_time)


@dataclass(frozen=True)
class BatchConfig:
    """Mailbox batching of one stream: message size and flush deadline.

    ``size`` tuples are packed into one mailbox message before delivery,
    amortizing the per-message hop cost; a partial batch older than
    ``flush_timeout`` seconds is delivered anyway so idle or exhausted
    senders never strand tuples.  ``size=1`` is semantically identical
    to unbatched delivery (gated by the differential test layer).
    """

    size: int = 1
    flush_timeout: float = 0.05

    def __post_init__(self) -> None:
        if self.size < 1:
            raise TopologyError(
                f"batch size must be >= 1, got {self.size}")
        if self.flush_timeout <= 0.0:
            raise TopologyError(
                f"batch flush timeout must be positive, "
                f"got {self.flush_timeout}")


@dataclass(frozen=True)
class CheckpointConfig:
    """Aligned-barrier checkpointing of one topology.

    The source injects a barrier envelope every ``interval_items``
    emitted items; barriers flow in-band through the mailboxes, align at
    multi-input operators and trigger ``snapshot_state()`` on every
    operator they pass (see :mod:`repro.runtime.checkpoint`).  The
    ``retained`` most recent *complete* epochs are kept for rollback;
    ``snapshot_overhead`` is the per-snapshot cost (seconds) the cost
    models charge as a periodic service-time tax.
    """

    interval_items: int = 100
    retained: int = 2
    snapshot_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_items < 1:
            raise TopologyError(
                f"checkpoint interval must be >= 1 item, "
                f"got {self.interval_items}")
        if self.retained < 1:
            raise TopologyError(
                f"checkpoint retention must be >= 1 epoch, "
                f"got {self.retained}")
        if self.snapshot_overhead < 0.0:
            raise TopologyError(
                f"checkpoint snapshot overhead must be non-negative, "
                f"got {self.snapshot_overhead}")


@dataclass(frozen=True)
class Edge:
    """A directed stream between two operators with a routing probability.

    ``capacity`` is the optional bounded-buffer size of the stream (in
    items).  ``None`` means "unspecified": the runtime falls back to its
    configured mailbox capacity.  When given it must be at least one —
    a BAS stream with a zero or negative buffer could never move an
    item.  ``batch`` optionally batches deliveries on this stream (see
    :class:`BatchConfig`); ``None`` falls back to the runtime's global
    batching configuration.
    """

    source: str
    target: str
    probability: float = 1.0
    capacity: Optional[int] = None
    batch: Optional[BatchConfig] = None

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise TopologyError(f"self-loop on operator {self.source!r}")
        if not 0.0 < self.probability <= 1.0:
            raise TopologyError(
                f"edge {self.source!r}->{self.target!r}: probability must be "
                f"in (0, 1], got {self.probability}"
            )
        if self.capacity is not None and self.capacity < 1:
            raise TopologyError(
                f"edge {self.source!r}->{self.target!r}: buffer capacity "
                f"must be >= 1, got {self.capacity}"
            )


class Topology:
    """A rooted acyclic streaming topology.

    The constructor validates all structural assumptions required by the
    SpinStreams cost models (Section 3.1 of the paper):

    * the graph is acyclic;
    * there is exactly one source (vertex without input edges);
    * every vertex is reachable from the source;
    * for every vertex with output edges the probabilities sum to one.

    Instances are immutable from the caller's point of view: derived
    topologies (after fission or fusion) are new objects.
    """

    def __init__(
        self,
        operators: Iterable[OperatorSpec],
        edges: Iterable[Edge],
        name: str = "topology",
        checkpoint: Optional[CheckpointConfig] = None,
        latency_budget: Optional[float] = None,
    ) -> None:
        self.name = name
        self.checkpoint = checkpoint
        if latency_budget is not None and latency_budget <= 0.0:
            raise TopologyError(
                f"latency budget must be positive, got {latency_budget}")
        #: End-to-end latency target (seconds) declared by the
        #: application; the deployment verifier checks batch flush
        #: deadlines against it (rule SS313).
        self.latency_budget = latency_budget
        self._operators: Dict[str, OperatorSpec] = {}
        for spec in operators:
            if spec.name in self._operators:
                raise TopologyError(f"duplicate operator name {spec.name!r}")
            self._operators[spec.name] = spec

        self._edges: List[Edge] = []
        self._out: Dict[str, List[Edge]] = {n: [] for n in self._operators}
        self._in: Dict[str, List[Edge]] = {n: [] for n in self._operators}
        seen_pairs = set()
        for edge in edges:
            for endpoint in (edge.source, edge.target):
                if endpoint not in self._operators:
                    raise TopologyError(f"edge references unknown operator {endpoint!r}")
            pair = (edge.source, edge.target)
            if pair in seen_pairs:
                raise TopologyError(f"duplicate edge {edge.source!r}->{edge.target!r}")
            seen_pairs.add(pair)
            self._edges.append(edge)
            self._out[edge.source].append(edge)
            self._in[edge.target].append(edge)

        self._validate_probabilities()
        self._source = self._find_single_source()
        self._order = self._topological_order()
        self._validate_reachability()

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _validate_probabilities(self) -> None:
        for name, out_edges in self._out.items():
            if not out_edges:
                continue
            total = sum(e.probability for e in out_edges)
            if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-6):
                raise TopologyError(
                    f"output probabilities of operator {name!r} sum to "
                    f"{total}, expected 1"
                )

    def _find_single_source(self) -> str:
        sources = [name for name, ins in self._in.items() if not ins]
        if len(sources) != 1:
            raise TopologyError(
                f"topology must have exactly one source, found {sorted(sources)}"
            )
        return sources[0]

    def _topological_order(self) -> List[str]:
        indegree = {name: len(ins) for name, ins in self._in.items()}
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: List[str] = []
        while ready:
            # Deterministic order: pop the lexicographically smallest of
            # the ready vertices so repeated runs agree.
            ready.sort()
            name = ready.pop(0)
            order.append(name)
            for edge in self._out[name]:
                indegree[edge.target] -= 1
                if indegree[edge.target] == 0:
                    ready.append(edge.target)
        if len(order) != len(self._operators):
            cyclic = sorted(set(self._operators) - set(order))
            raise TopologyError(f"topology contains a cycle through {cyclic}")
        return order

    def _validate_reachability(self) -> None:
        reached = set()
        stack = [self._source]
        while stack:
            name = stack.pop()
            if name in reached:
                continue
            reached.add(name)
            stack.extend(e.target for e in self._out[name])
        missing = sorted(set(self._operators) - reached)
        if missing:
            raise TopologyError(
                f"operators not reachable from the source: {missing}"
            )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def source(self) -> str:
        """Name of the unique source operator."""
        return self._source

    @property
    def sinks(self) -> List[str]:
        """Names of the operators without output edges, in topological order."""
        return [name for name in self._order if not self._out[name]]

    @property
    def operators(self) -> List[OperatorSpec]:
        """All operator specs in topological order."""
        return [self._operators[name] for name in self._order]

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    @property
    def names(self) -> List[str]:
        """Operator names in topological order."""
        return list(self._order)

    def __len__(self) -> int:
        return len(self._operators)

    def __contains__(self, name: str) -> bool:
        return name in self._operators

    def __iter__(self) -> Iterator[OperatorSpec]:
        return iter(self.operators)

    def operator(self, name: str) -> OperatorSpec:
        try:
            return self._operators[name]
        except KeyError:
            raise TopologyError(f"unknown operator {name!r}") from None

    def out_edges(self, name: str) -> List[Edge]:
        self.operator(name)
        return list(self._out[name])

    def in_edges(self, name: str) -> List[Edge]:
        self.operator(name)
        return list(self._in[name])

    def successors(self, name: str) -> List[str]:
        return [e.target for e in self.out_edges(name)]

    def predecessors(self, name: str) -> List[str]:
        return [e.source for e in self.in_edges(name)]

    def edge(self, source: str, target: str) -> Edge:
        for e in self._out.get(source, []):
            if e.target == target:
                return e
        raise TopologyError(f"no edge {source!r}->{target!r}")

    def topological_order(self) -> List[str]:
        """The topological ordering used by the analysis algorithms."""
        return list(self._order)

    # ------------------------------------------------------------------
    # path utilities (Theorem 3.2 machinery)
    # ------------------------------------------------------------------
    def paths_to(self, target: str) -> List[Tuple[List[str], float]]:
        """All paths from the source to ``target`` with their probabilities.

        Each returned pair is ``(vertices, probability)`` where the
        probability is the product of the probabilities of the traveled
        edges — the quantity summed in equation (1) of the paper.
        """
        self.operator(target)
        results: List[Tuple[List[str], float]] = []

        def walk(name: str, prob: float, trail: List[str]) -> None:
            trail = trail + [name]
            if name == target:
                results.append((trail, prob))
                return
            for edge in self._out[name]:
                walk(edge.target, prob * edge.probability, trail)

        walk(self._source, 1.0, [])
        return results

    def visit_probability(self, target: str) -> float:
        """Probability that one source item (or a descendant) reaches ``target``.

        This is the sum over all source-to-target paths of the path
        probabilities.  It coincides with the ratio between the arrival
        rate at ``target`` and the source departure rate when every
        operator has unit selectivity and no bottleneck throttles the flow.
        """
        # Dynamic programming over the topological order instead of
        # explicit path enumeration: robust to graphs with exponentially
        # many paths.
        prob = {name: 0.0 for name in self._order}
        prob[self._source] = 1.0
        for name in self._order:
            for edge in self._out[name]:
                prob[edge.target] += prob[name] * edge.probability
        return prob[target]

    def subgraph_is_connected(self, names: Sequence[str]) -> bool:
        """Whether ``names`` induces a weakly connected subgraph."""
        selected = set(names)
        if not selected:
            return False
        for name in selected:
            self.operator(name)
        start = next(iter(selected))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            neighbours = [
                e.target for e in self._out[current] if e.target in selected
            ] + [e.source for e in self._in[current] if e.source in selected]
            for n in neighbours:
                if n not in seen:
                    seen.add(n)
                    stack.append(n)
        return seen == selected

    # ------------------------------------------------------------------
    # derivation helpers
    # ------------------------------------------------------------------
    def with_replications(self, degrees: Mapping[str, int]) -> "Topology":
        """A copy of the topology with replication degrees applied."""
        new_specs = []
        for spec in self.operators:
            if spec.name in degrees:
                new_specs.append(spec.with_replication(degrees[spec.name]))
            else:
                new_specs.append(spec)
        return Topology(new_specs, self._edges, name=self.name,
                        checkpoint=self.checkpoint,
                        latency_budget=self.latency_budget)

    def with_operator(self, spec: OperatorSpec) -> "Topology":
        """A copy of the topology with one operator spec replaced."""
        self.operator(spec.name)
        new_specs = [spec if s.name == spec.name else s for s in self.operators]
        return Topology(new_specs, self._edges, name=self.name,
                        checkpoint=self.checkpoint,
                        latency_budget=self.latency_budget)

    def with_checkpoint(self,
                        checkpoint: Optional[CheckpointConfig]) -> "Topology":
        """A copy of the topology with a different checkpoint config."""
        return Topology(self.operators, self._edges, name=self.name,
                        checkpoint=checkpoint,
                        latency_budget=self.latency_budget)

    def with_latency_budget(self,
                            latency_budget: Optional[float]) -> "Topology":
        """A copy of the topology with a different latency budget."""
        return Topology(self.operators, self._edges, name=self.name,
                        checkpoint=self.checkpoint,
                        latency_budget=latency_budget)

    def total_replicas(self) -> int:
        """Total number of replicas across all operators."""
        return sum(spec.replication for spec in self.operators)

    def describe(self) -> str:
        """A short multi-line human-readable description."""
        lines = [f"topology {self.name!r}: {len(self)} operators, "
                 f"{len(self._edges)} edges, source={self._source!r}"]
        for name in self._order:
            spec = self._operators[name]
            outs = ", ".join(
                f"{e.target}({e.probability:.3g})" for e in self._out[name]
            ) or "-"
            lines.append(
                f"  {name}: T={spec.service_time * 1e3:.4g} ms, "
                f"{spec.state.value}, n={spec.replication}, -> {outs}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(name={self.name!r}, operators={len(self)}, "
            f"edges={len(self._edges)})"
        )
