"""Static memory-usage estimation (extension).

The paper cites memory-requirement analysis for streaming computations
([4] in its bibliography) as one of the model-driven quantities a
designer studies next to throughput.  This module estimates the
steady-state memory footprint of a topology from the same analysis the
throughput model uses:

* **queue memory** — expected buffered items per operator via Little's
  law (``L = lambda * W`` with the waiting-time estimates of
  :mod:`repro.core.latency`), capped by the mailbox capacity; saturated
  operators sit at a full buffer;
* **state memory** — windowed operators retain ``window length`` items
  (per key for partitioned-stateful operators), read from the operator
  arguments recorded in the topology;
* **replication overhead** — replicas multiply the queue allocation and
  split the keyed state.

All figures are expressed in items and converted to bytes with a
per-item size estimate, so designers can compare the memory cost of a
parallelized topology against a fused one before running either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.graph import StateKind, Topology, TopologyError
from repro.core.latency import waiting_time
from repro.core.steady_state import SteadyStateResult, analyze


@dataclass(frozen=True)
class OperatorMemory:
    """Memory footprint estimate of one operator (in items and bytes)."""

    name: str
    queued_items: float
    state_items: float
    replicas: int
    bytes_per_item: float

    @property
    def total_items(self) -> float:
        return self.queued_items + self.state_items

    @property
    def total_bytes(self) -> float:
        return self.total_items * self.bytes_per_item


@dataclass(frozen=True)
class MemoryEstimate:
    """Memory footprint estimate of a whole topology."""

    topology: Topology
    operators: Mapping[str, OperatorMemory]
    bytes_per_item: float

    @property
    def total_items(self) -> float:
        return sum(op.total_items for op in self.operators.values())

    @property
    def total_bytes(self) -> float:
        return sum(op.total_bytes for op in self.operators.values())

    def heaviest(self, count: int = 5):
        """The operators with the largest footprints, heaviest first."""
        ordered = sorted(self.operators.values(),
                         key=lambda op: -op.total_items)
        return ordered[:count]


def _window_state_items(spec) -> float:
    """Items retained by an operator's windows, derived from its args.

    Count-window operators record ``length`` in their constructor
    arguments; partitioned-stateful operators keep one window per key.
    Operators without window arguments hold no modeled state.
    """
    length = spec.operator_args.get("length") if spec.operator_args else None
    if not isinstance(length, (int, float)) or length <= 0:
        return 0.0
    if spec.state is StateKind.PARTITIONED and spec.keys is not None:
        return float(length) * len(spec.keys)
    return float(length)


def estimate_memory(
    topology: Topology,
    analysis: Optional[SteadyStateResult] = None,
    mailbox_capacity: int = 64,
    bytes_per_item: float = 128.0,
    assumption: str = "markovian",
    source_rate: Optional[float] = None,
) -> MemoryEstimate:
    """Estimate the steady-state memory footprint of a topology."""
    if bytes_per_item <= 0.0:
        raise TopologyError(
            f"bytes_per_item must be positive, got {bytes_per_item}")
    if analysis is None:
        analysis = analyze(topology, source_rate=source_rate)

    operators: Dict[str, OperatorMemory] = {}
    for spec in topology.operators:
        rates = analysis.rates[spec.name]
        if spec.name == topology.source:
            queued = 0.0  # the source has no input queue
        else:
            wait = waiting_time(
                utilization=rates.utilization,
                arrival_rate=rates.arrival_rate,
                capacity=rates.capacity,
                mailbox_capacity=mailbox_capacity,
                assumption=assumption,
            )
            # Little's law, bounded by the physical buffer allocation
            # (one bounded mailbox per replica entry point).
            queued = min(rates.arrival_rate * wait,
                         float(mailbox_capacity * spec.replication))
        operators[spec.name] = OperatorMemory(
            name=spec.name,
            queued_items=queued,
            state_items=_window_state_items(spec),
            replicas=spec.replication,
            bytes_per_item=bytes_per_item,
        )
    return MemoryEstimate(
        topology=topology,
        operators=operators,
        bytes_per_item=bytes_per_item,
    )


def memory_report(estimate: MemoryEstimate) -> str:
    """Human-readable memory report (items and megabytes)."""
    lines = [
        f"topology: {estimate.topology.name} "
        f"({estimate.bytes_per_item:g} bytes/item)",
        f"{'operator':<24} {'queued':>10} {'state':>12} {'MB':>9}",
    ]
    for name in estimate.topology.names:
        op = estimate.operators[name]
        lines.append(
            f"{name:<24} {op.queued_items:>10.1f} {op.state_items:>12.0f} "
            f"{op.total_bytes / 1e6:>9.2f}"
        )
    lines.append(
        f"total: {estimate.total_items:,.0f} items, "
        f"{estimate.total_bytes / 1e6:,.1f} MB"
    )
    return "\n".join(lines)
