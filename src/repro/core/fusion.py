"""Operator fusion (paper Section 3.3, Algorithm 3).

Fusion replaces a sub-graph of under-utilized operators with a single
semantically equivalent operator executed by one runtime entity.  The
candidate sub-graph must have a *single front-end* (a unique member
receiving edges from outside the sub-graph) and its contraction must
keep the topology acyclic.

The service time of the fused operator is the expectation, over the
paths an item travels inside the sub-graph, of the aggregate service
time of the path (Definition 2): the recursion of Algorithm 3 is

    W(i) = T_i + g_i * sum over internal edges (i, j) of p(i,j) * W(j)

where ``g_i`` is the gain (output over input selectivity) of member
``i``.  With unit selectivities this is exactly the paper's
``fusionRate()`` — note that the paper's pseudo-code accumulates only
the successors' times, but Definition 2 requires the visited vertex's
own time too, which we include.

The exit behaviour of the fused operator is summarized by the expected
number of items leaving to each external target per item entering the
front-end; the total becomes the output selectivity of the fused
operator and the normalized shares become its edge probabilities, which
also implements the paper's "merged edges with joint probability".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.graph import (
    Edge,
    OperatorSpec,
    StateKind,
    Topology,
    TopologyError,
)
from repro.core.solver import analyze_cached, analyze_edit
from repro.core.steady_state import SteadyStateResult


class FusionError(TopologyError):
    """Raised when a sub-graph violates the fusion constraints."""


@dataclass(frozen=True)
class FusionPlan:
    """A validated fusion candidate, ready to be applied.

    Attributes
    ----------
    members:
        Names of the fused operators.
    front_end:
        The unique member receiving items from outside the sub-graph.
    internal_edges:
        Edges connecting members, needed by the runtime meta-operator
        (Algorithm 4) to route items inside the fused sub-graph.
    member_edges:
        *All* out-edges of the members (internal and exiting), with the
        original probabilities — the complete routing table the
        meta-operator samples from.
    service_time:
        Expected service time of the fused operator per entering item.
    exit_rates:
        Expected items delivered to each external target per entering
        item (before normalization).
    fused_name:
        Name of the replacement operator.
    """

    members: Tuple[str, ...]
    front_end: str
    internal_edges: Tuple[Edge, ...]
    member_edges: Tuple[Edge, ...]
    service_time: float
    exit_rates: Mapping[str, float]
    fused_name: str

    @property
    def output_selectivity(self) -> float:
        return sum(self.exit_rates.values())

    @property
    def edge_probabilities(self) -> Dict[str, float]:
        """Normalized routing probabilities of the fused operator."""
        total = self.output_selectivity
        if total <= 0.0:
            return {}
        return {target: rate / total for target, rate in self.exit_rates.items()}


@dataclass(frozen=True)
class FusionResult:
    """Outcome of applying a fusion plan to a topology."""

    original: Topology
    fused: Topology
    plan: FusionPlan
    analysis_before: SteadyStateResult
    analysis_after: SteadyStateResult

    @property
    def throughput_before(self) -> float:
        return self.analysis_before.throughput

    @property
    def throughput_after(self) -> float:
        return self.analysis_after.throughput

    @property
    def impairs_performance(self) -> bool:
        """Whether the fusion makes the fused operator a new bottleneck.

        This is the alert the tool raises (Section 5.4, Table 2).
        """
        return self.throughput_after < self.throughput_before * (1.0 - 1e-9)

    @property
    def degradation(self) -> float:
        """Fraction of throughput lost by fusing (0 when harmless)."""
        if self.throughput_before <= 0.0:
            return 0.0
        loss = 1.0 - self.throughput_after / self.throughput_before
        return max(0.0, loss)


def find_front_end(topology: Topology, members: Sequence[str]) -> str:
    """The unique member with an input edge from outside the sub-graph."""
    selected = set(members)
    front_ends = sorted(
        name
        for name in selected
        if any(e.source not in selected for e in topology.in_edges(name))
    )
    if len(front_ends) != 1:
        raise FusionError(
            f"fusion sub-graph must have exactly one front-end, found "
            f"{front_ends or 'none'}"
        )
    return front_ends[0]


def validate_fusion(topology: Topology, members: Sequence[str]) -> str:
    """Check the structural fusion constraints; returns the front-end.

    Constraints (Section 3.3): at least two members, none of which is
    the source; a unique front-end; every member reachable from the
    front-end through intra-sub-graph edges (otherwise the member would
    never execute inside the fused operator); and the contracted
    topology must stay acyclic.
    """
    selected = set(members)
    if len(selected) != len(members):
        raise FusionError("fusion sub-graph contains duplicate members")
    if len(selected) < 2:
        raise FusionError("fusion needs at least two operators")
    for name in members:
        if name not in topology:
            raise FusionError(f"unknown operator {name!r} in fusion sub-graph")
    if topology.source in selected:
        raise FusionError("the source operator cannot be fused")

    front_end = find_front_end(topology, members)

    reachable = {front_end}
    stack = [front_end]
    while stack:
        current = stack.pop()
        for edge in topology.out_edges(current):
            if edge.target in selected and edge.target not in reachable:
                reachable.add(edge.target)
                stack.append(edge.target)
    unreachable = sorted(selected - reachable)
    if unreachable:
        raise FusionError(
            f"members not reachable from the front-end inside the "
            f"sub-graph: {unreachable}"
        )

    _check_contraction_acyclic(topology, selected)
    return front_end


def _check_contraction_acyclic(topology: Topology, selected: FrozenSet[str]) -> None:
    """Reject sub-graphs whose contraction would create a cycle.

    A cycle appears iff some external path leaves the sub-graph and
    re-enters it, i.e. an external vertex is reachable from a member
    through external vertices and has an edge back into the sub-graph.
    """
    selected = frozenset(selected)
    # External vertices reachable from the sub-graph without re-entering it.
    stack = [
        edge.target
        for name in selected
        for edge in topology.out_edges(name)
        if edge.target not in selected
    ]
    seen = set()
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for edge in topology.out_edges(current):
            if edge.target in selected:
                raise FusionError(
                    "fusing this sub-graph would create a cycle through "
                    f"{current!r}"
                )
            stack.append(edge.target)


def plan_fusion(
    topology: Topology,
    members: Sequence[str],
    fused_name: Optional[str] = None,
) -> FusionPlan:
    """Validate a sub-graph and compute the fused-operator parameters."""
    front_end = validate_fusion(topology, members)
    selected = frozenset(members)
    if fused_name is None:
        fused_name = "F(" + "+".join(sorted(selected)) + ")"
    if fused_name in topology and fused_name not in selected:
        raise FusionError(f"fused operator name {fused_name!r} already in use")

    service_time = fusion_service_time(topology, selected, front_end)
    exit_rates = _exit_rates(topology, selected, front_end)
    member_edges = tuple(
        edge for edge in topology.edges if edge.source in selected
    )
    internal_edges = tuple(
        edge for edge in member_edges if edge.target in selected
    )
    return FusionPlan(
        members=tuple(sorted(selected)),
        front_end=front_end,
        internal_edges=internal_edges,
        member_edges=member_edges,
        service_time=service_time,
        exit_rates=exit_rates,
        fused_name=fused_name,
    )


def fusion_service_time(
    topology: Topology,
    members: FrozenSet[str],
    front_end: str,
) -> float:
    """Expected service time per item entering the fused sub-graph.

    Implements the Algorithm 3 recursion, generalized with selectivity
    gains; memoized over members (the sub-graph is acyclic so the
    recursion is well founded).
    """
    memo: Dict[str, float] = {}

    def walk(name: str) -> float:
        if name in memo:
            return memo[name]
        spec = topology.operator(name)
        total = spec.service_time
        for edge in topology.out_edges(name):
            if edge.target in members:
                total += spec.gain * edge.probability * walk(edge.target)
        memo[name] = total
        return total

    return walk(front_end)


def _exit_rates(
    topology: Topology,
    members: FrozenSet[str],
    front_end: str,
) -> Dict[str, float]:
    """Expected items exiting to each external target per entering item."""
    # Expected arrivals at each member per item entering the front-end,
    # propagated along the (acyclic) internal edges in topological order.
    arrivals = {name: 0.0 for name in members}
    arrivals[front_end] = 1.0
    for name in topology.topological_order():
        if name not in members:
            continue
        spec = topology.operator(name)
        outflow = arrivals[name] * spec.gain
        for edge in topology.out_edges(name):
            if edge.target in members:
                arrivals[edge.target] += outflow * edge.probability

    exits: Dict[str, float] = {}
    for name in members:
        spec = topology.operator(name)
        outflow = arrivals[name] * spec.gain
        for edge in topology.out_edges(name):
            if edge.target not in members:
                exits[edge.target] = (
                    exits.get(edge.target, 0.0) + outflow * edge.probability
                )
    return exits


def apply_fusion(
    topology: Topology,
    members: Sequence[str],
    fused_name: Optional[str] = None,
    source_rate: Optional[float] = None,
    analysis: Optional[SteadyStateResult] = None,
) -> FusionResult:
    """Fuse ``members`` and evaluate the resulting topology.

    Evaluates the steady state of both the original and the fused
    topology so the caller (and the tool's GUI analog) can tell whether
    the fusion impairs performance before committing to it.  A caller
    that already analyzed ``topology`` at this ``source_rate`` can pass
    the result as ``analysis`` to skip the before-solve entirely; the
    after-solve runs incrementally (only the fused operator's downstream
    cone is re-iterated).
    """
    plan = plan_fusion(topology, members, fused_name=fused_name)
    fused = build_fused_topology(topology, plan)
    if analysis is None:
        analysis = analyze_cached(topology, source_rate=source_rate)
    after = analyze_edit(topology, fused, source_rate=source_rate)
    return FusionResult(
        original=topology,
        fused=fused,
        plan=plan,
        analysis_before=analysis,
        analysis_after=after,
    )


def build_fused_topology(topology: Topology, plan: FusionPlan) -> Topology:
    """Construct the topology with the sub-graph replaced by one operator.

    The fused operator is marked stateful because SpinStreams never
    applies fission to meta-operators (Section 4.2): the user fuses
    under-utilized operators, and replicating the merge would defeat its
    purpose while complicating state handling.
    """
    selected = set(plan.members)
    fused_spec = OperatorSpec(
        name=plan.fused_name,
        service_time=plan.service_time,
        state=StateKind.STATEFUL,
        input_selectivity=1.0,
        output_selectivity=plan.output_selectivity,
        operator_class="repro.runtime.meta.MetaOperator",
    )

    operators: List[OperatorSpec] = [
        spec for spec in topology.operators if spec.name not in selected
    ]
    operators.append(fused_spec)

    edges: List[Edge] = []
    inbound: Dict[str, float] = {}
    for edge in topology.edges:
        src_in = edge.source in selected
        dst_in = edge.target in selected
        if src_in and dst_in:
            continue  # internal edge, absorbed by the fused operator
        if not src_in and dst_in:
            # External edge into the sub-graph: necessarily targets the
            # front-end (validated); redirect to the fused operator,
            # merging parallel edges from the same predecessor.
            inbound[edge.source] = inbound.get(edge.source, 0.0) + edge.probability
            continue
        if src_in and not dst_in:
            continue  # exit edges are re-created from the plan below
        edges.append(edge)

    for source, probability in inbound.items():
        edges.append(Edge(source, plan.fused_name, probability))
    for target, probability in plan.edge_probabilities.items():
        edges.append(Edge(plan.fused_name, target, probability))

    return Topology(operators, edges, name=f"{topology.name}+fused",
                    checkpoint=topology.checkpoint,
                    latency_budget=topology.latency_budget)
